"""Tests for the command-line interface."""

import io
import json

import pytest

from repro.cli import build_parser, main


def run_cli(args):
    stream = io.StringIO()
    code = main(args, stream=stream)
    return code, stream.getvalue()


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "E99"])


class TestGenerateAndInfo:
    def test_generate_balanced_network_and_info(self, tmp_path):
        out = tmp_path / "net.json"
        code, text = run_cli(
            [
                "generate-network",
                "--topology",
                "balanced",
                "--arity",
                "2",
                "--depth",
                "2",
                "--leaves-per-bus",
                "2",
                "-o",
                str(out),
            ]
        )
        assert code == 0
        assert out.exists()
        assert "balanced network" in text

        code, text = run_cli(["info", str(out)])
        assert code == 0
        assert "n_processors" in text

    @pytest.mark.parametrize(
        "topology", ["single-bus", "star", "path", "fat-tree", "random"]
    )
    def test_all_topologies(self, tmp_path, topology):
        out = tmp_path / f"{topology}.json"
        code, _ = run_cli(
            ["generate-network", "--topology", topology, "-o", str(out)]
        )
        assert code == 0 and out.exists()


class TestWorkloadAndPlace:
    @pytest.fixture
    def instance_files(self, tmp_path):
        net_path = tmp_path / "net.json"
        wl_path = tmp_path / "wl.json"
        run_cli(
            ["generate-network", "--topology", "balanced", "--depth", "2", "-o", str(net_path)]
        )
        run_cli(
            [
                "generate-workload",
                "--network",
                str(net_path),
                "--kind",
                "zipf",
                "--objects",
                "8",
                "--requests",
                "16",
                "-o",
                str(wl_path),
            ]
        )
        return net_path, wl_path

    def test_generate_workload_kinds(self, tmp_path):
        net_path = tmp_path / "net.json"
        run_cli(["generate-network", "--topology", "single-bus", "-o", str(net_path)])
        for kind in ("uniform", "hotspot", "local", "counter", "web"):
            out = tmp_path / f"{kind}.json"
            code, text = run_cli(
                [
                    "generate-workload",
                    "--network",
                    str(net_path),
                    "--kind",
                    kind,
                    "--objects",
                    "6",
                    "-o",
                    str(out),
                ]
            )
            assert code == 0
            data = json.loads(out.read_text())
            assert data["format"] == "repro.workload/v1"

    def test_place_extended_nibble(self, instance_files, tmp_path):
        net_path, wl_path = instance_files
        out = tmp_path / "placement.json"
        code, text = run_cli(
            [
                "place",
                "--network",
                str(net_path),
                "--workload",
                str(wl_path),
                "--strategy",
                "extended-nibble",
                "-o",
                str(out),
            ]
        )
        assert code == 0
        assert "congestion" in text and "lower bound" in text
        data = json.loads(out.read_text())
        assert data["strategy"] == "extended-nibble"
        assert len(data["holders"]) == 8

    def test_place_with_local_search_refinement(self, instance_files):
        net_path, wl_path = instance_files
        code, text = run_cli(
            [
                "place",
                "--network",
                str(net_path),
                "--workload",
                str(wl_path),
                "--strategy",
                "extended-nibble",
                "--refine",
            ]
        )
        assert code == 0
        assert "local-search moves" in text
        assert "congestion before refine" in text

    @pytest.mark.parametrize("strategy", ["owner", "greedy", "full-replication"])
    def test_place_baselines(self, instance_files, strategy):
        net_path, wl_path = instance_files
        code, text = run_cli(
            [
                "place",
                "--network",
                str(net_path),
                "--workload",
                str(wl_path),
                "--strategy",
                strategy,
            ]
        )
        assert code == 0
        assert strategy in text


class TestRunExperimentsCommand:
    def test_sequential_sweep(self):
        code, text = run_cli(["run-experiments", "--ids", "E1", "E7"])
        assert code == 0
        assert "E1" in text and "E7" in text and "ok" in text

    def test_parallel_sweep_with_artifacts(self, tmp_path):
        out = tmp_path / "results"
        code, text = run_cli(
            [
                "run-experiments",
                "--ids",
                "E1",
                "E4",
                "--parallel",
                "2",
                "-o",
                str(out),
            ]
        )
        assert code == 0
        assert (out / "E1.json").exists()
        assert (out / "E4.json").exists()
        data = json.loads((out / "summary.json").read_text())
        assert data["all_ok"] is True

    def test_unknown_id_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run-experiments", "--ids", "E99"])


class TestExperimentCommand:
    def test_experiment_e1(self):
        code, text = run_cli(["experiment", "E1"])
        assert code == 0
        assert "experiment E1" in text
        assert "ringlet" in text

    def test_experiment_e5_small(self):
        code, text = run_cli(["experiment", "E5", "--small"])
        assert code == 0
        assert "ratio_lb" in text

    def test_experiment_e9_small(self):
        code, text = run_cli(["experiment", "E9", "--small"])
        assert code == 0
        assert "hindsight-static" in text
        assert "phase-shift" in text

    def test_experiment_e10_small(self):
        code, text = run_cli(["experiment", "E10", "--small"])
        assert code == 0
        assert "flash-crowd" in text
        assert "storm" in text
        assert "hindsight-static" in text
        assert "repair_consistent" in text


class TestChurnCommand:
    def test_churn_storm_smoke(self, tmp_path):
        out = tmp_path / "churn.json"
        code, text = run_cli(
            ["churn", "--scenario", "storm", "--small", "--seed", "1", "-o", str(out)]
        )
        assert code == 0
        assert "churn scenario storm" in text
        assert "edge-counter" in text and "hindsight-static" in text
        data = json.loads(out.read_text())
        assert data["format"] == "repro.churn-result/v1"
        assert data["scenario"] == "storm"
        assert data["n_mutations"] > 0
        assert len(data["records"]) == 2
        for rec in data["records"]:
            assert rec["served"] + rec["dropped"] == rec["n_events"]
            assert rec["congestion"] >= 0
            assert len(rec["trajectory"]) >= 1

    @pytest.mark.parametrize("scenario", ["flash-crowd", "maintenance", "degradation"])
    def test_churn_all_scenarios(self, scenario):
        code, text = run_cli(["churn", "--scenario", scenario, "--small"])
        assert code == 0
        assert f"churn scenario {scenario}" in text

    def test_churn_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["churn", "--scenario", "earthquake"])

    def test_run_experiments_accepts_e10(self, tmp_path):
        out = tmp_path / "res"
        code, text = run_cli(
            ["run-experiments", "--ids", "E10", "--small",
             "--stable-artifacts", "-o", str(out)]
        )
        assert code == 0
        data = json.loads((out / "E10.json").read_text())
        assert data["experiment"] == "E10"
        assert data["elapsed_seconds"] == 0.0
        assert data["n_records"] > 0


class TestSimulateCommand:
    def test_list_scenarios(self):
        code, text = run_cli(["simulate", "--list"])
        assert code == 0
        for name in ("zipf", "storm", "adversarial-storm",
                     "flash-crowd-recovery", "fleet-sweep"):
            assert name in text

    @pytest.mark.parametrize(
        "scenario", ["adversarial-storm", "flash-crowd-recovery", "fleet-sweep"]
    )
    def test_new_scenarios_end_to_end_with_artifact(self, tmp_path, scenario):
        out = tmp_path / "sim.json"
        code, text = run_cli(
            ["simulate", "--scenario", scenario, "--small", "-o", str(out)]
        )
        assert code == 0
        assert f"scenario {scenario}" in text
        data = json.loads(out.read_text())
        assert data["format"] == "repro.sim-result/v1"
        assert data["scenario"] == scenario
        from repro.core.kernels import active_backend

        assert data["backend"] == active_backend()
        assert data["spec"]["format"] == "repro.scenario-spec/v1"
        assert len(data["records"]) >= 2
        for rec in data["records"]:
            assert rec["served"] + rec["dropped"] == rec["n_events"]
            assert rec["repair_consistent"]

    def test_spec_file_round_trip(self, tmp_path):
        from repro.sim.scenario import scenario_spec

        spec_path = tmp_path / "spec.json"
        spec_path.write_text(scenario_spec("storm", seed=2, small=True).to_json())
        code, text = run_cli(["simulate", "--spec", str(spec_path)])
        assert code == 0
        assert "scenario storm" in text

    def test_requires_scenario_or_spec(self):
        code, text = run_cli(["simulate"])
        assert code == 2
        assert "--scenario" in text

    def test_scenario_and_spec_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["simulate", "--scenario", "storm", "--spec", "x.json"]
            )

    def test_spec_artifact_records_no_cli_seed(self, tmp_path):
        from repro.sim.scenario import scenario_spec

        spec_path = tmp_path / "spec.json"
        spec_path.write_text(scenario_spec("zipf", seed=2, small=True).to_json())
        out = tmp_path / "out.json"
        code, _ = run_cli(["simulate", "--spec", str(spec_path), "-o", str(out)])
        assert code == 0
        # the CLI --seed default did not produce this run; the artifact must
        # not claim it did (the spec document carries its own seeds)
        assert json.loads(out.read_text())["seed"] is None

    def test_seedless_spec_is_byte_deterministic(self, tmp_path):
        # regression: specs omitting every optional seed used to fall back
        # to fresh OS entropy per run; missing seeds now derive from the
        # spec hash, so two runs must produce byte-identical artifacts
        from repro.sim.scenario import scenario_spec

        document = scenario_spec("storm", seed=2, small=True).to_dict()
        document["workload"]["args"].pop("seed", None)
        document["workload"].pop("sequence_seed", None)
        for entry in document["churn"] or []:
            entry["args"].pop("seed", None)
        spec_path = tmp_path / "seedless.json"
        spec_path.write_text(json.dumps(document))

        artifacts = []
        for name in ("a.json", "b.json"):
            out = tmp_path / name
            code, _ = run_cli(["simulate", "--spec", str(spec_path), "-o", str(out)])
            assert code == 0
            artifacts.append(out.read_bytes())
        assert artifacts[0] == artifacts[1]


class TestSimulateParallelAndFleet:
    def test_parallel_artifact_byte_identical_to_serial(self, tmp_path):
        serial, parallel = tmp_path / "serial.json", tmp_path / "parallel.json"
        code, _ = run_cli(
            ["simulate", "--scenario", "fleet-sweep", "--small", "-o", str(serial)]
        )
        assert code == 0
        code, _ = run_cli(
            [
                "simulate", "--scenario", "fleet-sweep", "--small",
                "--parallel", "2", "-o", str(parallel),
            ]
        )
        assert code == 0
        assert serial.read_bytes() == parallel.read_bytes()

    def test_fleet_artifact_byte_identical_to_serial(self, tmp_path):
        serial, fleet = tmp_path / "serial.json", tmp_path / "fleet.json"
        code, _ = run_cli(
            ["simulate", "--scenario", "storm", "--small", "-o", str(serial)]
        )
        assert code == 0
        code, _ = run_cli(
            [
                "simulate", "--scenario", "storm", "--small",
                "--fleet", "-o", str(fleet),
            ]
        )
        assert code == 0
        assert serial.read_bytes() == fleet.read_bytes()

    def test_parallel_rejects_zero(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["simulate", "--scenario", "zipf", "--parallel", "0"]
            )


class TestServeCommands:
    def test_serve_loadgen_replay_check_round_trip(self, tmp_path):
        import socket
        import threading

        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]

        spec_args = ["--scenario", "storm", "--small", "--seed", "0"]
        record_dir = tmp_path / "recordings"
        serve_result = {}

        def serve():
            serve_result["code"], serve_result["text"] = run_cli(
                ["serve", *spec_args, "--port", str(port),
                 "--sessions", "1", "--record-dir", str(record_dir)]
            )

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        report = tmp_path / "report.json"
        code, text = run_cli(
            ["loadgen", *spec_args, "--port", str(port),
             "--report", str(report)]
        )
        thread.join(timeout=30)
        assert code == 0
        assert "achieved" in text
        assert serve_result["code"] == 0
        assert "served 1 sessions" in serve_result["text"]
        stats = json.loads(report.read_text())
        assert stats["summary"]["n_events"] == stats["n_events"]

        (recording,) = record_dir.glob("session-*.jsonl")
        code, text = run_cli(["replay-stream", str(recording), "--check"])
        assert code == 0
        assert "bit-for-bit" in text

    def test_replay_stream_check_fails_on_partial_recording(self, tmp_path):
        from repro.serve import StreamRecorder
        from repro.sim.scenario import scenario_spec

        spec = scenario_spec("zipf", seed=0, small=True)
        path = tmp_path / "partial.jsonl"
        recorder = StreamRecorder(path)
        recorder.write_header(spec.to_dict(), "edge-counter", None, 8)
        recorder.abort("test")
        code, text = run_cli(["replay-stream", str(path), "--check"])
        assert code == 1
        assert "no served summary" in text

    def test_serve_requires_scenario_or_spec(self):
        code, text = run_cli(["serve"])
        assert code == 2
        assert "--scenario" in text


class TestLab:
    """The `repro lab` command group: run-missing, status, report, gc."""

    @pytest.fixture(scope="class")
    def ci_registry(self, tmp_path_factory):
        """A tmp registry populated once with the pinned ci suite."""
        root = tmp_path_factory.mktemp("lab") / "registry"
        code, text = run_cli(
            ["lab", "run-missing", "--registry", str(root), "--suite", "ci"]
        )
        assert code == 0
        return root, text

    def test_run_missing_populates_then_noops(self, ci_registry):
        root, first_text = ci_registry
        assert "0 already stored" in first_text
        code, text = run_cli(
            ["lab", "run-missing", "--registry", str(root), "--suite", "ci"]
        )
        assert code == 0
        assert "0 executed" in text

    def test_status_reports_stored_counts(self, ci_registry, tmp_path):
        from repro.core.kernels import active_backend

        root, _ = ci_registry
        code, text = run_cli(
            ["lab", "status", "--registry", str(root), "--suite", "ci"]
        )
        assert code == 0
        assert f"suite entries stored in {root}" in text
        assert f"(kernel backend: {active_backend()})" in text
        # a fresh registry stores nothing
        code, text = run_cli(
            ["lab", "status", "--registry", str(tmp_path / "empty"), "--suite", "ci"]
        )
        assert code == 0
        assert "0 of" in text

    def test_report_write_and_check_round_trip(self, ci_registry, tmp_path):
        root, _ = ci_registry
        results = tmp_path / "RESULTS.md"
        code, _ = run_cli(
            [
                "lab", "report", "--registry", str(root), "--suite", "ci",
                "--write", "-o", str(results),
                "--bench-history", str(tmp_path / "absent.json"),
            ]
        )
        assert code == 0
        assert results.read_text().startswith("# Results")

        code, text = run_cli(
            [
                "lab", "report", "--registry", str(root), "--suite", "ci",
                "--check", "-o", str(results),
                "--bench-history", str(tmp_path / "absent.json"),
            ]
        )
        assert code == 0
        assert "matches the registry artifacts" in text

        results.write_text(results.read_text() + "drifted\n")
        code, text = run_cli(
            [
                "lab", "report", "--registry", str(root), "--suite", "ci",
                "--check", "-o", str(results),
                "--bench-history", str(tmp_path / "absent.json"),
            ]
        )
        assert code == 1
        assert "out of date" in text

    def test_gc_of_complete_suite_is_noop(self, ci_registry):
        root, _ = ci_registry
        code, text = run_cli(
            ["lab", "gc", "--registry", str(root), "--suite", "ci", "--dry-run"]
        )
        assert code == 0
        assert "would remove 0 stored runs" in text

    def test_write_and_check_are_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["lab", "report", "--write", "--check"])
