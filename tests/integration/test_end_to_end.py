"""End-to-end integration tests across the whole library.

These exercise the workflow a user of the library would follow: build a
topology (possibly from the SCI substrate), generate a workload, run the
placement strategies, evaluate congestion against the lower bound and
baselines, replay the requests, and serialize the artefacts.
"""



from repro.analysis.ratio import measure_ratio
from repro.core.baselines import greedy_congestion_placement, owner_placement
from repro.core.bounds import congestion_lower_bound, nibble_lower_bound
from repro.core.congestion import compute_loads
from repro.core.extended_nibble import extended_nibble
from repro.distributed.protocols import distributed_extended_nibble
from repro.distributed.request_sim import replay_requests
from repro.network.sci import ring_of_rings
from repro.network.serialization import load_network, save_network
from repro.network.builders import balanced_tree
from repro.workload.access import AccessPattern
from repro.workload.generators import zipf_pattern
from repro.workload.traces import web_cache_trace


class TestSCIClusterWorkflow:
    """Model an SCI cluster (Figure 1), convert it (Figure 2) and place data."""

    def test_full_pipeline(self, tmp_path):
        fabric = ring_of_rings(n_leaf_rings=3, processors_per_ring=3, top_bandwidth=4.0)
        conversion = fabric.to_bus_network()
        net = conversion.network

        # persist and reload the topology
        path = tmp_path / "cluster.json"
        save_network(net, path)
        net = load_network(path)

        pattern = web_cache_trace(net, n_pages=24, seed=1)
        result = extended_nibble(net, pattern)
        result.placement.validate_for(net, pattern, require_leaf_only=True)

        lb = nibble_lower_bound(net, pattern)
        congestion = result.congestion(net, pattern)
        assert lb == 0 or congestion <= 7 * lb + 1e-9

        # the strategy should not lose to the naive owner placement
        owner_congestion = compute_loads(net, pattern, owner_placement(net, pattern)).congestion
        assert congestion <= owner_congestion + 1e-9 or congestion <= 7 * lb

        replay = replay_requests(net, pattern, result.placement, result.assignment, batch=4)
        assert replay.makespan >= replay.congestion - 1e-9


class TestBalancedClusterComparison:
    def test_strategy_ordering_on_locality_workload(self):
        net = balanced_tree(2, 3, 2)
        pattern = zipf_pattern(net, 32, requests_per_processor=16, seed=5)

        ext = extended_nibble(net, pattern)
        ext_congestion = ext.congestion(net, pattern)
        greedy_congestion = compute_loads(
            net, pattern, greedy_congestion_placement(net, pattern)
        ).congestion
        report = congestion_lower_bound(net, pattern)

        assert report.best <= ext_congestion + 1e-9
        assert ext_congestion <= 7 * report.nibble_congestion + 1e-9
        # both congestion-aware strategies should be within 7x of the bound
        assert greedy_congestion <= 20 * report.nibble_congestion

    def test_distributed_and_sequential_agree_end_to_end(self):
        net = balanced_tree(2, 2, 3)
        pattern = zipf_pattern(net, 12, seed=7)
        sequential = extended_nibble(net, pattern)
        distributed = distributed_extended_nibble(net, pattern)
        assert distributed.result.placement == sequential.placement
        assert distributed.total_rounds > 0


class TestSmallInstanceOptimality:
    def test_measure_ratio_against_exact_optimum(self):
        net = ring_of_rings(2, 2).to_bus_network().network
        pattern = AccessPattern.from_requests(
            net,
            3,
            [
                (net.processors[0], 0, 4, 2),
                (net.processors[1], 1, 1, 3),
                (net.processors[2], 2, 5, 0),
                (net.processors[3], 0, 2, 2),
            ],
        )
        record = measure_ratio(net, pattern, compute_exact=True)
        assert record.optimal_congestion is not None
        assert record.within_paper_bound
        # the non-redundant optimum itself respects the lower bound
        assert record.lower_bound <= record.optimal_congestion + 1e-9
