"""Tests for the ready-made topology builders."""

import pytest

from repro.errors import TopologyError
from repro.network.builders import (
    balanced_tree,
    caterpillar,
    fat_tree,
    hardness_gadget,
    path_of_buses,
    random_tree,
    single_bus,
    star_of_buses,
)


class TestSingleBus:
    def test_shape(self):
        net = single_bus(5, bus_bandwidth=3.0)
        assert net.n_processors == 5
        assert net.n_buses == 1
        assert net.height() == 1
        assert net.bus_bandwidth(net.buses[0]) == 3.0

    def test_too_small(self):
        with pytest.raises(TopologyError):
            single_bus(1)


class TestBalancedTree:
    def test_counts(self):
        net = balanced_tree(arity=2, depth=3, leaves_per_bus=2)
        assert net.n_buses == 1 + 2 + 4
        assert net.n_processors == 4 * 2
        assert net.height() == 3

    def test_depth_one(self):
        net = balanced_tree(arity=3, depth=1, leaves_per_bus=4)
        assert net.n_buses == 1
        assert net.n_processors == 4

    def test_invalid_parameters(self):
        with pytest.raises(TopologyError):
            balanced_tree(0, 2)
        with pytest.raises(TopologyError):
            balanced_tree(2, 0)
        with pytest.raises(TopologyError):
            balanced_tree(2, 1, leaves_per_bus=0)

    def test_trunk_bandwidth(self):
        net = balanced_tree(2, 2, 1, trunk_bandwidth=5.0)
        root = net.canonical_root()
        child_bus = [b for b in net.buses if b != root][0]
        assert net.edge_bandwidth(root, child_bus) == 5.0


class TestRandomTree:
    @pytest.mark.parametrize("seed", range(6))
    def test_valid_and_deterministic(self, seed):
        net1 = random_tree(5, 8, seed=seed)
        net2 = random_tree(5, 8, seed=seed)
        assert net1 == net2
        net1.validate()
        assert net1.n_buses == 5
        assert net1.n_processors >= 8  # fix-up may add processors

    def test_different_seeds_differ(self):
        nets = {random_tree(5, 8, seed=s) for s in range(10)}
        assert len(nets) > 1

    def test_invalid(self):
        with pytest.raises(TopologyError):
            random_tree(0, 5)
        with pytest.raises(TopologyError):
            random_tree(3, 1)


class TestPathAndCaterpillar:
    def test_path_height(self):
        net = path_of_buses(4, leaves_per_bus=1)
        assert net.n_buses == 4
        assert net.height() >= 4

    def test_single_bus_path(self):
        net = path_of_buses(1, leaves_per_bus=1)
        # a single bus needs two processors to be valid
        assert net.n_processors >= 2

    def test_caterpillar(self):
        net = caterpillar(3, legs=3)
        assert net.n_buses == 3
        assert net.n_processors == 9

    def test_invalid(self):
        with pytest.raises(TopologyError):
            path_of_buses(0)
        with pytest.raises(TopologyError):
            caterpillar(3, legs=0)


class TestStarAndFatTree:
    def test_star_shape(self):
        net = star_of_buses(3, 2, root_bandwidth=8.0)
        assert net.n_buses == 4
        assert net.n_processors == 6
        assert net.bus_bandwidth(net.node_by_name("root")) == 8.0

    def test_star_single_child(self):
        net = star_of_buses(1, 2)
        net.validate()

    def test_star_invalid(self):
        with pytest.raises(TopologyError):
            star_of_buses(0, 2)
        with pytest.raises(TopologyError):
            star_of_buses(1, 1)

    def test_fat_tree_bandwidth_grows_towards_root(self):
        net = fat_tree(2, 3, leaves_per_bus=2, base_bandwidth=1.0, fatness=2.0)
        root = net.canonical_root()
        leaf_level_buses = [
            b for b in net.buses if any(net.is_processor(n) for n in net.neighbors(b))
        ]
        assert net.bus_bandwidth(root) > net.bus_bandwidth(leaf_level_buses[0])

    def test_fat_tree_invalid(self):
        with pytest.raises(TopologyError):
            fat_tree(2, 2, fatness=0)
        with pytest.raises(TopologyError):
            fat_tree(0, 2)


class TestHardnessGadget:
    def test_shape_and_names(self):
        net = hardness_gadget()
        assert net.n_processors == 4
        assert net.n_buses == 1
        names = {net.name(p) for p in net.processors}
        assert names == {"a", "b", "s", "sbar"}
        # the bus bandwidth is effectively unconstrained
        assert net.bus_bandwidth(net.buses[0]) >= 1e6
        # processor switch edges have bandwidth one
        for p in net.processors:
            assert net.edge_bandwidth(p, net.buses[0]) == 1.0
