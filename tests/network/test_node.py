"""Tests for node kinds and node specifications."""

import pytest

from repro.errors import BandwidthError
from repro.network.node import BusSpec, NodeKind, NodeSpec, ProcessorSpec


class TestNodeKind:
    def test_values_stable(self):
        assert int(NodeKind.PROCESSOR) == 0
        assert int(NodeKind.BUS) == 1

    def test_predicates(self):
        assert NodeKind.PROCESSOR.is_processor
        assert not NodeKind.PROCESSOR.is_bus
        assert NodeKind.BUS.is_bus
        assert not NodeKind.BUS.is_processor


class TestSpecs:
    def test_processor_spec(self):
        spec = ProcessorSpec("cpu0")
        assert spec.is_processor and not spec.is_bus
        assert spec.name == "cpu0"

    def test_bus_spec_bandwidth(self):
        spec = BusSpec("ring", bandwidth=2.5)
        assert spec.is_bus
        assert spec.bandwidth == 2.5

    def test_bus_spec_invalid_bandwidth(self):
        with pytest.raises(BandwidthError):
            BusSpec("ring", bandwidth=0.0)
        with pytest.raises(BandwidthError):
            BusSpec("ring", bandwidth=-1.0)

    def test_processor_ignores_bandwidth_check(self):
        # processor bandwidth field is irrelevant; even 0 must not raise
        spec = NodeSpec(kind=NodeKind.PROCESSOR, bandwidth=0.0)
        assert spec.is_processor

    def test_frozen(self):
        spec = ProcessorSpec("p")
        with pytest.raises(Exception):
            spec.name = "q"  # type: ignore[misc]
