"""Tests for network structural metrics."""


from repro.network.builders import balanced_tree, path_of_buses, single_bus
from repro.network.metrics import compute_metrics, diameter, eccentricity
from repro.network.tree import HierarchicalBusNetwork
from repro.network.node import ProcessorSpec


class TestDiameter:
    def test_single_bus(self):
        assert diameter(single_bus(4)) == 2

    def test_path(self):
        net = path_of_buses(3, leaves_per_bus=1)
        # leaf - b0 - b1 - b2 - leaf
        assert diameter(net) == 4

    def test_single_node(self):
        net = HierarchicalBusNetwork([ProcessorSpec("p")], [])
        assert diameter(net) == 0

    def test_eccentricity_bounds_diameter(self):
        net = balanced_tree(2, 3, 2)
        diam = diameter(net)
        assert max(eccentricity(net, v) for v in net.nodes()) == diam


class TestComputeMetrics:
    def test_fields(self):
        net = balanced_tree(2, 2, 3, bus_bandwidth=2.0)
        m = compute_metrics(net)
        assert m.n_nodes == net.n_nodes
        assert m.n_processors == net.n_processors
        assert m.n_buses == net.n_buses
        assert m.n_edges == net.n_edges
        assert m.height == net.height()
        assert m.max_degree == net.max_degree()
        assert m.diameter == diameter(net)
        assert m.min_bus_bandwidth == 2.0
        assert m.max_bus_bandwidth == 2.0
        assert m.min_edge_bandwidth == 1.0

    def test_as_dict(self):
        net = single_bus(3)
        d = compute_metrics(net).as_dict()
        assert d["n_processors"] == 3
        assert "diameter" in d and "mean_bus_degree" in d

    def test_mean_bus_degree(self):
        net = single_bus(5)
        m = compute_metrics(net)
        assert m.mean_bus_degree == 5.0
