"""Tests for the SCI ring-of-rings substrate and its bus-network conversion."""

import numpy as np
import pytest

from repro.errors import InvalidNodeError, TopologyError
from repro.network.sci import SCIFabric, ring_of_rings, transaction_ring_load


def small_fabric():
    fab = SCIFabric()
    top = fab.add_ringlet("top", bandwidth=2.0)
    left = fab.add_ringlet("left")
    right = fab.add_ringlet("right")
    fab.add_switch(left, top, bandwidth=1.5)
    fab.add_switch(right, top)
    for _ in range(2):
        fab.add_processor(left)
    for _ in range(2):
        fab.add_processor(right)
    return fab


class TestFabricConstruction:
    def test_counts(self):
        fab = small_fabric()
        assert fab.n_ringlets == 3
        assert fab.n_switches == 2
        assert fab.n_processors == 4
        fab.validate()

    def test_invalid_switch(self):
        fab = SCIFabric()
        r = fab.add_ringlet()
        with pytest.raises(TopologyError):
            fab.add_switch(r, r)
        with pytest.raises(InvalidNodeError):
            fab.add_switch(r, 99)

    def test_invalid_processor_ringlet(self):
        fab = SCIFabric()
        with pytest.raises(InvalidNodeError):
            fab.add_processor(0)

    def test_validate_rejects_cycle(self):
        fab = SCIFabric()
        a = fab.add_ringlet()
        b = fab.add_ringlet()
        fab.add_switch(a, b)
        fab.add_switch(a, b)
        fab.add_processor(a)
        fab.add_processor(b)
        with pytest.raises(TopologyError):
            fab.validate()

    def test_validate_needs_processors(self):
        fab = SCIFabric()
        fab.add_ringlet()
        with pytest.raises(TopologyError):
            fab.validate()

    def test_ringlet_processors(self):
        fab = small_fabric()
        assert fab.ringlet_processors(1) == [0, 1]
        assert fab.processor_ringlet(2) == 2


class TestConversion:
    def test_figure_1_to_figure_2(self):
        fab = small_fabric()
        conv = fab.to_bus_network()
        net = conv.network
        # ringlets become buses, processors become leaves
        assert net.n_buses == 3
        assert net.n_processors == 4
        # bandwidths carried over
        assert net.bus_bandwidth(conv.ringlet_node[0]) == 2.0
        sid = 0
        eid = conv.switch_edge[sid]
        assert net.edge_bandwidth(eid) == 1.5
        # every processor's switch edge has bandwidth 1
        for pid, node in conv.processor_node.items():
            bus = conv.ringlet_node[fab.processor_ringlet(pid)]
            assert net.edge_bandwidth(node, bus) == 1.0

    def test_ring_of_rings_builder(self):
        fab = ring_of_rings(3, 2, top_bandwidth=4.0)
        conv = fab.to_bus_network()
        assert conv.network.n_buses == 4
        assert conv.network.n_processors == 6
        assert conv.network.bus_bandwidth(conv.ringlet_node[0]) == 4.0

    def test_ring_of_rings_invalid(self):
        with pytest.raises(TopologyError):
            ring_of_rings(0, 2)


class TestTransactionLoad:
    def test_local_transactions_are_free(self):
        fab = small_fabric()
        ring_load, switch_load = transaction_ring_load(fab, [(0, 0, 5)])
        assert all(v == 0 for v in ring_load.values())
        assert all(v == 0 for v in switch_load.values())

    def test_same_ringlet_transaction(self):
        fab = small_fabric()
        ring_load, switch_load = transaction_ring_load(fab, [(0, 1, 3)])
        assert ring_load[1] == 3  # ringlet "left"
        assert ring_load[0] == 0 and ring_load[2] == 0
        assert all(v == 0 for v in switch_load.values())

    def test_cross_ringlet_transaction(self):
        fab = small_fabric()
        ring_load, switch_load = transaction_ring_load(fab, [(0, 2, 2)])
        # path: left -> top -> right, through both switches
        assert ring_load[1] == 2 and ring_load[0] == 2 and ring_load[2] == 2
        assert switch_load[0] == 2 and switch_load[1] == 2

    def test_negative_count_rejected(self):
        fab = small_fabric()
        with pytest.raises(ValueError):
            transaction_ring_load(fab, [(0, 1, -1)])

    def test_equivalence_with_bus_model(self):
        """The paper's modelling step: ring loads == bus loads (Figure 1 vs 2)."""
        fab = ring_of_rings(3, 3)
        conv = fab.to_bus_network()
        net = conv.network
        rng = np.random.default_rng(0)
        transactions = []
        for _ in range(100):
            a, b = rng.integers(0, fab.n_processors, size=2)
            if a != b:
                transactions.append((int(a), int(b), 1))
        ring_load, switch_load = transaction_ring_load(fab, transactions)

        rooted = net.rooted()
        edge_load = np.zeros(net.n_edges)
        for src, dst, count in transactions:
            for eid in rooted.path_edge_ids(
                conv.processor_node[src], conv.processor_node[dst]
            ):
                edge_load[eid] += count
        for ring_id, bus in conv.ringlet_node.items():
            incident = list(net.incident_edge_ids(bus))
            assert ring_load[ring_id] == pytest.approx(edge_load[incident].sum() / 2)
        for switch_id, eid in conv.switch_edge.items():
            assert switch_load[switch_id] == pytest.approx(edge_load[eid])
