"""Tests for JSON (de)serialization of networks."""

import json

import pytest

from repro.errors import SerializationError
from repro.network.builders import balanced_tree, fat_tree, random_tree, single_bus
from repro.network.serialization import (
    FORMAT_TAG,
    load_network,
    network_from_dict,
    network_to_dict,
    save_network,
)


class TestRoundTrip:
    @pytest.mark.parametrize(
        "net",
        [
            single_bus(3),
            balanced_tree(2, 2, 2),
            fat_tree(2, 2, 2, fatness=2.0),
            random_tree(4, 6, seed=7),
        ],
        ids=["single_bus", "balanced", "fat_tree", "random"],
    )
    def test_dict_round_trip(self, net):
        data = network_to_dict(net)
        restored = network_from_dict(data)
        assert restored == net
        # names survive the round trip too
        for v in net.nodes():
            assert restored.name(v) == net.name(v)

    def test_file_round_trip(self, tmp_path):
        net = balanced_tree(2, 2, 2, bus_bandwidth=3.0)
        path = tmp_path / "net.json"
        save_network(net, path)
        restored = load_network(path)
        assert restored == net
        # file is valid JSON with the expected format tag
        data = json.loads(path.read_text())
        assert data["format"] == FORMAT_TAG


class TestErrors:
    def test_wrong_format_tag(self):
        with pytest.raises(SerializationError):
            network_from_dict({"format": "something-else", "nodes": [], "edges": []})

    def test_not_a_mapping(self):
        with pytest.raises(SerializationError):
            network_from_dict([1, 2, 3])  # type: ignore[arg-type]

    def test_missing_keys(self):
        with pytest.raises(SerializationError):
            network_from_dict({"format": FORMAT_TAG, "nodes": []})

    def test_bad_node_kind(self):
        data = {
            "format": FORMAT_TAG,
            "nodes": [{"id": 0, "kind": "router"}],
            "edges": [],
        }
        with pytest.raises(SerializationError):
            network_from_dict(data)

    def test_non_dense_ids(self):
        data = {
            "format": FORMAT_TAG,
            "nodes": [{"id": 5, "kind": "processor"}],
            "edges": [],
        }
        with pytest.raises(SerializationError):
            network_from_dict(data)

    def test_duplicate_ids(self):
        data = {
            "format": FORMAT_TAG,
            "nodes": [
                {"id": 0, "kind": "processor"},
                {"id": 0, "kind": "processor"},
            ],
            "edges": [],
        }
        with pytest.raises(SerializationError):
            network_from_dict(data)

    def test_invalid_topology_rewrapped(self):
        # two disconnected processors: decodes to an invalid tree
        data = {
            "format": FORMAT_TAG,
            "nodes": [
                {"id": 0, "kind": "processor"},
                {"id": 1, "kind": "processor"},
            ],
            "edges": [],
        }
        with pytest.raises(SerializationError):
            network_from_dict(data)

    def test_malformed_edge(self):
        data = {
            "format": FORMAT_TAG,
            "nodes": [{"id": 0, "kind": "processor"}],
            "edges": [{"u": 0}],
        }
        with pytest.raises(SerializationError):
            network_from_dict(data)

    def test_invalid_json_file(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(SerializationError):
            load_network(path)
