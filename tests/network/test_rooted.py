"""Tests for the rooted tree view: paths, levels, subtree sums, Steiner trees."""

import numpy as np
import pytest

from repro.errors import InvalidNodeError
from repro.network.builders import balanced_tree, path_of_buses, star_of_buses


@pytest.fixture
def star():
    # root bus with 2 child buses, 2 processors per child bus
    return star_of_buses(2, 2)


class TestStructure:
    def test_parent_child_consistency(self, star):
        rooted = star.rooted(star.canonical_root())
        for v in star.nodes():
            for c in rooted.children(v):
                assert rooted.parent(c) == v
                assert rooted.depth(c) == rooted.depth(v) + 1

    def test_root_has_no_parent(self, star):
        root = star.canonical_root()
        rooted = star.rooted(root)
        assert rooted.parent(root) == -1
        assert rooted.parent_edge_id(root) == -1
        assert rooted.depth(root) == 0

    def test_level_convention(self, star):
        rooted = star.rooted()
        # root level == height, deepest node level == 0
        assert rooted.level(rooted.root) == rooted.height
        assert min(rooted.level(v) for v in star.nodes()) == 0

    def test_preorder_postorder(self, star):
        rooted = star.rooted()
        pre = rooted.preorder
        post = rooted.postorder
        assert sorted(pre) == sorted(star.nodes())
        assert list(reversed(pre)) == list(post)
        # parents appear before children in preorder
        position = {v: i for i, v in enumerate(pre)}
        for v in star.nodes():
            p = rooted.parent(v)
            if p >= 0:
                assert position[p] < position[v]

    def test_nodes_by_level_partition(self, star):
        rooted = star.rooted()
        groups = rooted.nodes_by_level()
        all_nodes = sorted(n for nodes in groups.values() for n in nodes)
        assert all_nodes == sorted(star.nodes())

    def test_subtree_size(self, star):
        rooted = star.rooted()
        assert rooted.subtree_size(rooted.root) == star.n_nodes
        for p in star.processors:
            assert rooted.subtree_size(p) == 1

    def test_is_ancestor(self, star):
        rooted = star.rooted()
        root = rooted.root
        for v in star.nodes():
            assert rooted.is_ancestor(root, v)
            assert rooted.is_ancestor(v, v)
        p = star.processors[0]
        q = star.processors[-1]
        assert not rooted.is_ancestor(p, q)

    def test_invalid_root(self, star):
        with pytest.raises(InvalidNodeError):
            star.rooted(999)


class TestPaths:
    def test_path_endpoints(self, star):
        rooted = star.rooted()
        p, q = star.processors[0], star.processors[-1]
        path = rooted.path_nodes(p, q)
        assert path[0] == p and path[-1] == q
        # consecutive nodes are adjacent
        for a, b in zip(path, path[1:]):
            assert star.has_edge(a, b)

    def test_path_edges_match_nodes(self, star):
        rooted = star.rooted()
        p, q = star.processors[0], star.processors[-1]
        nodes = rooted.path_nodes(p, q)
        edges = rooted.path_edge_ids(p, q)
        assert len(edges) == len(nodes) - 1
        for (a, b), eid in zip(zip(nodes, nodes[1:]), edges):
            assert star.edge_id(a, b) == eid

    def test_path_to_self_empty(self, star):
        rooted = star.rooted()
        p = star.processors[0]
        assert rooted.path_edge_ids(p, p) == []
        assert rooted.path_nodes(p, p) == [p]
        assert rooted.distance(p, p) == 0

    def test_distance_symmetry(self, star):
        rooted = star.rooted()
        for p in star.processors:
            for q in star.processors:
                assert rooted.distance(p, q) == rooted.distance(q, p)

    def test_lca(self, star):
        rooted = star.rooted(star.canonical_root())
        # two processors under different child buses meet at the root
        procs_by_bus = {}
        for p in star.processors:
            bus = star.neighbors(p)[0]
            procs_by_bus.setdefault(bus, []).append(p)
        buses = sorted(procs_by_bus)
        if len(buses) >= 2:
            a = procs_by_bus[buses[0]][0]
            b = procs_by_bus[buses[1]][0]
            assert rooted.lca(a, b) == star.canonical_root()
        # two processors under the same bus meet at that bus
        same = procs_by_bus[buses[0]]
        if len(same) >= 2:
            assert rooted.lca(same[0], same[1]) == buses[0]

    def test_distance_on_path_topology(self):
        net = path_of_buses(3, leaves_per_bus=1)
        rooted = net.rooted()
        procs = list(net.processors)
        # processors at the two ends of the spine are far apart
        dmax = max(rooted.distance(p, q) for p in procs for q in procs)
        assert dmax == 4  # leaf - bus - bus - bus - leaf


class TestAggregation:
    def test_subtree_sums_total(self, star):
        rooted = star.rooted()
        values = np.arange(star.n_nodes)
        sums = rooted.subtree_sums(values)
        assert sums[rooted.root] == values.sum()
        for p in star.processors:
            assert sums[p] == values[p]

    def test_subtree_sums_additivity(self, star):
        rooted = star.rooted()
        values = np.ones(star.n_nodes, dtype=np.int64)
        sums = rooted.subtree_sums(values)
        for v in star.nodes():
            expected = values[v] + sum(sums[c] for c in rooted.children(v))
            assert sums[v] == expected

    def test_subtree_sums_wrong_shape(self, star):
        rooted = star.rooted()
        with pytest.raises(ValueError):
            rooted.subtree_sums(np.ones(star.n_nodes + 1))


class TestSteiner:
    def test_empty_and_singleton(self, star):
        rooted = star.rooted()
        assert rooted.steiner_edge_ids([]) == []
        assert rooted.steiner_edge_ids([star.processors[0]]) == []
        assert rooted.steiner_node_ids([]) == []
        assert rooted.steiner_node_ids([star.processors[0]]) == [star.processors[0]]

    def test_pair_equals_path(self, star):
        rooted = star.rooted()
        p, q = star.processors[0], star.processors[-1]
        assert sorted(rooted.steiner_edge_ids([p, q])) == sorted(
            rooted.path_edge_ids(p, q)
        )

    def test_all_leaves_spans_tree(self, star):
        rooted = star.rooted()
        edges = rooted.steiner_edge_ids(star.processors)
        # connecting all leaves requires every edge of the tree
        assert sorted(edges) == list(range(star.n_edges))

    def test_invalid_terminal(self, star):
        rooted = star.rooted()
        with pytest.raises(InvalidNodeError):
            rooted.steiner_edge_ids([999])

    def test_nearest_in_set(self, star):
        rooted = star.rooted()
        p = star.processors[0]
        assert rooted.nearest_in_set(p, [p, star.processors[-1]]) == p
        with pytest.raises(InvalidNodeError):
            rooted.nearest_in_set(p, [])

    def test_nearest_tie_breaks_to_smallest_id(self):
        net = balanced_tree(2, 2, 2)
        rooted = net.rooted()
        procs = list(net.processors)
        # candidates equidistant from a processor in another subtree
        root = net.canonical_root()
        target_bus = rooted.children(root)[0]
        far_procs = [p for p in procs if not rooted.is_ancestor(target_bus, p)]
        candidates = [p for p in procs if rooted.is_ancestor(target_bus, p)]
        if len(candidates) >= 2 and far_procs:
            src = far_procs[0]
            d0 = rooted.distance(src, candidates[0])
            d1 = rooted.distance(src, candidates[1])
            if d0 == d1:
                assert rooted.nearest_in_set(src, candidates) == min(candidates)
