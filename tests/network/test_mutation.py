"""Tests for the topology-mutation engine (network/mutation.py)."""

import numpy as np
import pytest

from repro.errors import BandwidthError, MutationError, ReproError
from repro.network.builders import balanced_tree, single_bus, star_of_buses
from repro.network.mutation import (
    AttachLeaf,
    ChurnTrace,
    DetachLeaf,
    SetBusBandwidth,
    SetEdgeBandwidth,
    SplitBus,
    TimedMutation,
    apply_mutation,
    apply_mutations,
)
from repro.workload.churn import (
    bandwidth_degradation,
    flash_crowd_attach,
    mutation_storm,
    rolling_maintenance_detach,
)


class TestBandwidthMutations:
    def test_set_edge_bandwidth(self):
        net = single_bus(3)
        e = net.edges[1]
        out = apply_mutation(net, SetEdgeBandwidth(e.u, e.v, 4.0))
        assert not out.structural
        assert out.network.edge_bandwidth(e.u, e.v) == 4.0
        assert out.network.n_nodes == net.n_nodes
        assert np.array_equal(out.node_map, np.arange(net.n_nodes))
        # untouched edges keep their bandwidths
        other = net.edges[0]
        assert out.network.edge_bandwidth(other.u, other.v) == net.edge_bandwidth(
            other.u, other.v
        )

    def test_set_bus_bandwidth(self):
        net = star_of_buses(2, 2)
        out = apply_mutation(net, SetBusBandwidth(0, 3.0))
        assert out.network.bus_bandwidth(0) == 3.0
        assert out.changed_bus == 0

    def test_invalid_bandwidths_rejected(self):
        net = single_bus(3)
        e = net.edges[0]
        with pytest.raises(BandwidthError):
            apply_mutation(net, SetEdgeBandwidth(e.u, e.v, 0.0))
        with pytest.raises(BandwidthError):
            apply_mutation(net, SetBusBandwidth(0, -1.0))

    def test_set_bus_bandwidth_on_processor_rejected(self):
        net = single_bus(3)
        proc = net.processors[0]
        with pytest.raises(MutationError):
            apply_mutation(net, SetBusBandwidth(proc, 2.0))


class TestAttachLeaf:
    def test_ids_are_appended(self):
        net = single_bus(3)
        out = apply_mutation(net, AttachLeaf(0, name="newbie"))
        new = out.network
        assert out.new_node == net.n_nodes
        assert out.new_edge == net.n_edges
        assert new.n_processors == net.n_processors + 1
        assert new.is_processor(out.new_node)
        assert new.name(out.new_node) == "newbie"
        assert new.edge_bandwidth(0, out.new_node) == 1.0
        # existing ids are untouched
        assert np.array_equal(out.node_map, np.arange(net.n_nodes))
        assert np.array_equal(out.edge_map, np.arange(net.n_edges))

    def test_attach_to_processor_rejected(self):
        net = single_bus(3)
        with pytest.raises(MutationError):
            apply_mutation(net, AttachLeaf(net.processors[0]))


class TestDetachLeaf:
    def test_renumbering(self):
        net = single_bus(4)
        victim = net.processors[1]
        out = apply_mutation(net, DetachLeaf(victim))
        new = out.network
        assert new.n_processors == 3
        assert out.node_map[victim] == -1
        assert out.edge_map[out.removed_edge] == -1
        # ids above the removed ones shift down by exactly one
        for v in range(victim + 1, net.n_nodes):
            assert out.node_map[v] == v - 1
        names_old = [net.name(v) for v in range(net.n_nodes) if v != victim]
        names_new = [new.name(v) for v in range(new.n_nodes)]
        assert names_old == names_new

    def test_mapped_edge_loads_drop_removed(self):
        net = single_bus(4)
        victim = net.processors[0]
        out = apply_mutation(net, DetachLeaf(victim))
        loads = np.arange(1, net.n_edges + 1, dtype=float)
        mapped = out.mapped_edge_loads(loads)
        keep = out.edge_map >= 0
        assert np.array_equal(mapped, loads[keep])

    def test_cannot_orphan_a_bus(self):
        # path star: child buses have exactly leaves_per_bus + 1 neighbours
        net = star_of_buses(2, 1)
        proc = net.processors[0]
        with pytest.raises(MutationError):
            apply_mutation(net, DetachLeaf(proc))

    def test_cannot_detach_bus(self):
        net = single_bus(3)
        with pytest.raises(MutationError):
            apply_mutation(net, DetachLeaf(0))


class TestSplitBus:
    def test_moved_edges_keep_ids_and_bandwidths(self):
        net = single_bus(5)
        rooted = net.rooted()
        moved = rooted.children(0)[:2]
        out = apply_mutation(net, SplitBus(0, moved, bus_bandwidth=2.0))
        new = out.network
        assert new.n_buses == net.n_buses + 1
        assert new.bus_bandwidth(out.new_node) == 2.0
        for m, eid in zip(out.moved_nodes, out.moved_edge_ids):
            endpoints = new.edge_endpoints(eid)
            assert set(endpoints) == {m, out.new_node}
            assert new.edge_bandwidth(eid) == net.edge_bandwidth(eid)
        assert new.has_edge(0, out.new_node)
        # tree validity: moved leaves are now two hops from the old bus
        assert new.rooted().distance(out.moved_nodes[0], 0) == 2

    def test_cannot_move_parent_or_everything(self):
        net = star_of_buses(2, 2)
        rooted = net.rooted()
        child_bus = [b for b in net.buses if b != 0][0]
        parent = rooted.parent(child_bus)
        with pytest.raises(MutationError):
            apply_mutation(net, SplitBus(child_bus, (parent,)))
        with pytest.raises(MutationError):
            apply_mutation(net, SplitBus(0, ()))

    def test_moved_must_be_neighbours(self):
        net = star_of_buses(2, 2)
        with pytest.raises(MutationError):
            apply_mutation(net, SplitBus(0, (net.processors[0],)))


class TestChurnTrace:
    def test_sorted_and_stable(self):
        net = single_bus(3)
        trace = ChurnTrace(
            [
                (5, AttachLeaf(0, name="b")),
                (2, SetBusBandwidth(0, 2.0)),
                (5, AttachLeaf(0, name="a")),
            ]
        )
        assert [ev.time for ev in trace] == [2, 5, 5]
        # ties keep the given order
        assert trace[1].mutation.name == "b"
        assert trace[2].mutation.name == "a"
        assert trace.attach_count() == 2
        assert trace.max_time == 5

    def test_negative_time_rejected(self):
        with pytest.raises(MutationError):
            TimedMutation(-1, SetBusBandwidth(0, 1.0))

    def test_concatenated(self):
        a = ChurnTrace([(1, SetBusBandwidth(0, 2.0))])
        b = ChurnTrace([(0, SetBusBandwidth(0, 3.0))])
        merged = a.concatenated_with(b)
        assert [ev.time for ev in merged] == [0, 1]


class TestChurnGenerators:
    """The workload-side churn generators produce valid, seeded traces."""

    @pytest.fixture
    def net(self):
        return balanced_tree(2, 3, 2)

    def test_flash_crowd_attach(self, net):
        trace = flash_crowd_attach(net, n_new_leaves=5, time=7, seed=0)
        assert len(trace) == 5
        assert all(isinstance(ev.mutation, AttachLeaf) for ev in trace)
        assert all(ev.time == 7 for ev in trace)
        final, _ = apply_mutations(net, trace.mutations)
        assert final.n_processors == net.n_processors + 5

    def test_rolling_maintenance_detach_valid_chain(self, net):
        trace = rolling_maintenance_detach(net, n_detach=4, spacing=3, seed=1)
        assert 1 <= len(trace) <= 4
        final, _ = apply_mutations(net, trace.mutations)
        final.validate()
        assert final.n_processors == net.n_processors - len(trace)

    def test_bandwidth_degradation_chain(self, net):
        trace = bandwidth_degradation(net, n_steps=6, factor=0.5, floor=0.25, seed=2)
        final, _ = apply_mutations(net, trace.mutations)
        final.validate()
        assert float(np.asarray(final.edge_bandwidths).min()) >= 0.25

    def test_mutation_storm_applies_cleanly(self, net):
        trace = mutation_storm(net, n_mutations=12, seed=3)
        assert len(trace) == 12
        final, _ = apply_mutations(net, trace.mutations)
        final.validate()

    def test_generators_are_deterministic(self, net):
        a = mutation_storm(net, n_mutations=8, seed=9)
        b = mutation_storm(net, n_mutations=8, seed=9)
        assert a.mutations == b.mutations

    def test_reproerror_hierarchy(self):
        assert issubclass(MutationError, ReproError)
