"""Tests for the HierarchicalBusNetwork data structure and the builder."""

import pytest

from repro.errors import (
    BandwidthError,
    InvalidEdgeError,
    InvalidNodeError,
    NotATreeError,
    TopologyError,
)
from repro.network.node import BusSpec, NodeKind, ProcessorSpec
from repro.network.tree import Edge, HierarchicalBusNetwork, NetworkBuilder


def build_simple():
    builder = NetworkBuilder()
    bus = builder.add_bus("bus", bandwidth=4.0)
    p0 = builder.add_processor("p0")
    p1 = builder.add_processor("p1")
    builder.connect(p0, bus, bandwidth=1.0)
    builder.connect(p1, bus, bandwidth=1.0)
    return builder.build(), bus, p0, p1


class TestEdge:
    def test_canonical_order(self):
        assert Edge(3, 1) == (1, 3)
        assert Edge(1, 3).u == 1
        assert Edge(1, 3).v == 3

    def test_self_loop_rejected(self):
        with pytest.raises(InvalidEdgeError):
            Edge(2, 2)

    def test_other_endpoint(self):
        e = Edge(1, 5)
        assert e.other(1) == 5
        assert e.other(5) == 1
        with pytest.raises(InvalidEdgeError):
            e.other(3)


class TestNetworkBuilder:
    def test_basic_build(self):
        net, bus, p0, p1 = build_simple()
        assert net.n_nodes == 3
        assert net.n_processors == 2
        assert net.n_buses == 1
        assert net.is_bus(bus)
        assert net.is_processor(p0)
        assert net.is_processor(p1)
        assert net.bus_bandwidth(bus) == 4.0

    def test_connect_unknown_node(self):
        builder = NetworkBuilder()
        builder.add_bus("b")
        with pytest.raises(InvalidNodeError):
            builder.connect(0, 5)

    def test_nonpositive_bandwidth_rejected(self):
        builder = NetworkBuilder()
        b = builder.add_bus("b")
        p = builder.add_processor("p")
        with pytest.raises(BandwidthError):
            builder.connect(p, b, bandwidth=0)

    def test_names_default(self):
        net, bus, p0, _ = build_simple()
        assert net.name(bus) == "bus"
        assert net.name(p0) == "p0"
        assert net.node_by_name("p1") == 2
        with pytest.raises(InvalidNodeError):
            net.node_by_name("nope")


class TestValidation:
    def test_cycle_rejected(self):
        specs = [BusSpec("b0"), BusSpec("b1"), ProcessorSpec("p0"), ProcessorSpec("p1")]
        edges = [(0, 1), (0, 2), (1, 3), (2, 3)]
        with pytest.raises(NotATreeError):
            HierarchicalBusNetwork(specs, edges)

    def test_disconnected_rejected(self):
        specs = [BusSpec("b0"), ProcessorSpec("p0"), ProcessorSpec("p1"), ProcessorSpec("p2")]
        edges = [(0, 1), (0, 2), (0, 2)]
        with pytest.raises((NotATreeError, InvalidEdgeError)):
            HierarchicalBusNetwork(specs, edges)

    def test_bus_leaf_rejected(self):
        specs = [BusSpec("b0"), BusSpec("b1"), ProcessorSpec("p0")]
        edges = [(0, 1), (0, 2)]
        with pytest.raises(TopologyError):
            HierarchicalBusNetwork(specs, edges)

    def test_processor_inner_rejected(self):
        specs = [ProcessorSpec("p0"), ProcessorSpec("p1"), ProcessorSpec("p2")]
        edges = [(0, 1), (0, 2)]
        with pytest.raises(TopologyError):
            HierarchicalBusNetwork(specs, edges)

    def test_single_processor_allowed(self):
        net = HierarchicalBusNetwork([ProcessorSpec("p")], [])
        assert net.n_nodes == 1
        assert net.height() == 0

    def test_single_bus_rejected(self):
        with pytest.raises(TopologyError):
            HierarchicalBusNetwork([BusSpec("b")], [])

    def test_empty_rejected(self):
        with pytest.raises(TopologyError):
            HierarchicalBusNetwork([], [])

    def test_duplicate_edge_rejected(self):
        specs = [BusSpec("b"), ProcessorSpec("p0"), ProcessorSpec("p1")]
        with pytest.raises(InvalidEdgeError):
            HierarchicalBusNetwork(specs, [(0, 1), (1, 0), (0, 2)])


class TestAccessors:
    def test_edges_and_ids(self):
        net, bus, p0, p1 = build_simple()
        eid = net.edge_id(p0, bus)
        assert net.edge_endpoints(eid) == Edge(p0, bus)
        assert net.has_edge(bus, p1)
        assert not net.has_edge(p0, p1)
        with pytest.raises(InvalidEdgeError):
            net.edge_id(p0, p1)

    def test_neighbors_and_degree(self):
        net, bus, p0, p1 = build_simple()
        assert set(net.neighbors(bus)) == {p0, p1}
        assert net.degree(bus) == 2
        assert net.degree(p0) == 1
        assert net.max_degree() == 2

    def test_bandwidth_lookup(self):
        net, bus, p0, _ = build_simple()
        assert net.edge_bandwidth(p0, bus) == 1.0
        assert net.edge_bandwidth(net.edge_id(p0, bus)) == 1.0
        with pytest.raises(InvalidNodeError):
            net.bus_bandwidth(p0)

    def test_contains_iter_len(self):
        net, *_ = build_simple()
        assert 0 in net and 2 in net and 7 not in net
        assert len(net) == 3
        assert list(iter(net)) == [0, 1, 2]

    def test_invalid_node_errors(self):
        net, *_ = build_simple()
        with pytest.raises(InvalidNodeError):
            net.is_bus(17)
        with pytest.raises(InvalidNodeError):
            net.neighbors(-1)

    def test_kind(self):
        net, bus, p0, _ = build_simple()
        assert net.kind(bus) is NodeKind.BUS
        assert net.kind(p0) is NodeKind.PROCESSOR

    def test_equality_and_hash(self):
        net1, *_ = build_simple()
        net2, *_ = build_simple()
        assert net1 == net2
        assert hash(net1) == hash(net2)

    def test_bandwidth_arrays_readonly(self):
        net, *_ = build_simple()
        with pytest.raises(ValueError):
            net.edge_bandwidths[0] = 9.0
        with pytest.raises(ValueError):
            net.bus_bandwidths[0] = 9.0


class TestRootedCache:
    def test_canonical_root_is_bus(self):
        net, bus, *_ = build_simple()
        assert net.canonical_root() == bus

    def test_rooted_view_cached(self):
        net, bus, *_ = build_simple()
        assert net.rooted(bus) is net.rooted(bus)

    def test_height(self):
        net, *_ = build_simple()
        assert net.height() == 1

    def test_edge_bandwidth_sequence_constructor(self):
        specs = [BusSpec("b"), ProcessorSpec("p0"), ProcessorSpec("p1")]
        edges = [(0, 1), (0, 2)]
        net = HierarchicalBusNetwork(specs, edges, edge_bandwidths=[2.0, 3.0])
        assert net.edge_bandwidth(0, 1) == 2.0
        assert net.edge_bandwidth(0, 2) == 3.0
        with pytest.raises(BandwidthError):
            HierarchicalBusNetwork(specs, edges, edge_bandwidths=[2.0])
