"""Pool-lifecycle tests for the persistent worker pools.

The sweep layers share long-lived ``ProcessPoolExecutor``s; a worker
killed mid-job (OOM, segfault) breaks its executor permanently.  These
tests pin the public-API recovery contract: :func:`repro.parallel.run_jobs`
and :func:`repro.parallel.iter_jobs` catch
:class:`~concurrent.futures.process.BrokenProcessPool`, replace the dead
pool, and resubmit once -- and :func:`repro.parallel.shutdown_pools`
tolerates already-broken pools (it runs at interpreter exit).
"""

from __future__ import annotations

import os
import signal
from pathlib import Path

import pytest

from repro.parallel import (
    BrokenProcessPool,
    iter_jobs,
    persistent_pool,
    run_jobs,
    shutdown_pools,
)


# --------------------------------------------------------------------------- #
# worker-side helpers (module-level so they pickle into the workers)
# --------------------------------------------------------------------------- #
def _ok(value):
    return ("ok", value)


def _log_call(log_path, value):
    with open(log_path, "a") as fh:
        fh.write(f"{value}\n")
    return value


def _die_once(sentinel):
    """Kill the worker on first call; succeed once the sentinel exists."""
    path = Path(sentinel)
    if not path.exists():
        path.write_text("died")
        os.kill(os.getpid(), signal.SIGKILL)
    return "survived"


def _die_always():
    os.kill(os.getpid(), signal.SIGKILL)


@pytest.fixture(autouse=True)
def _fresh_pools():
    """Each test starts and ends with no resident pools."""
    shutdown_pools()
    yield
    shutdown_pools()


# --------------------------------------------------------------------------- #
# run_jobs
# --------------------------------------------------------------------------- #
class TestRunJobsRecovery:
    def test_killed_worker_is_replaced_and_jobs_retry_once(self, tmp_path):
        sentinel = tmp_path / "died-once"
        assert run_jobs(1, _die_once, [(str(sentinel),)]) == ["survived"]
        assert sentinel.exists()

    def test_reliably_dying_worker_raises_broken_pool(self, tmp_path):
        with pytest.raises(BrokenProcessPool):
            run_jobs(1, _die_always, [()])
        # the broken pool was discarded: the same worker count works again
        assert run_jobs(1, _ok, [(7,)]) == [("ok", 7)]

    def test_stale_broken_pool_does_not_poison_later_sweeps(self, tmp_path):
        pool = persistent_pool(1)
        future = pool.submit(_die_always)
        with pytest.raises(BrokenProcessPool):
            future.result()
        # the registry still holds the broken pool; run_jobs must replace it
        assert run_jobs(1, _ok, [(1,), (2,)]) == [("ok", 1), ("ok", 2)]
        assert persistent_pool(1) is not pool

    def test_results_keep_submission_order(self):
        assert run_jobs(2, _ok, [(i,) for i in range(8)]) == [
            ("ok", i) for i in range(8)
        ]


# --------------------------------------------------------------------------- #
# iter_jobs
# --------------------------------------------------------------------------- #
class TestIterJobsRecovery:
    def test_only_unyielded_jobs_are_resubmitted(self, tmp_path):
        log = tmp_path / "calls.log"
        sentinel = tmp_path / "died-once"
        jobs = [(str(log), "first"), (str(sentinel),)]

        results = {}
        # one worker executes jobs in submission order: the logged job
        # completes and yields, then the dying job breaks the pool
        for index, result in iter_jobs(
            1, _iter_dispatch, [(i, *job) for i, job in enumerate(jobs)]
        ):
            results[index] = result
        assert results == {0: "first", 1: "survived"}
        # the already-yielded job was NOT recomputed by the retry
        assert log.read_text().splitlines() == ["first"]

    def test_persistent_breakage_propagates(self):
        with pytest.raises(BrokenProcessPool):
            list(iter_jobs(1, _die_always, [(), ()]))
        assert run_jobs(1, _ok, [(3,)]) == [("ok", 3)]


def _iter_dispatch(index, *args):
    """Route one iter_jobs test job to the right worker helper."""
    if index == 0:
        return _log_call(*args)
    return _die_once(*args)


# --------------------------------------------------------------------------- #
# shutdown
# --------------------------------------------------------------------------- #
class TestShutdown:
    def test_shutdown_tolerates_broken_pools(self):
        pool = persistent_pool(1)
        future = pool.submit(_die_always)
        with pytest.raises(BrokenProcessPool):
            future.result()
        shutdown_pools()  # must not raise on the broken pool
        # and the registry is usable again afterwards
        assert run_jobs(1, _ok, [(0,)]) == [("ok", 0)]

    def test_shutdown_is_idempotent(self):
        persistent_pool(1)
        shutdown_pools()
        shutdown_pools()
