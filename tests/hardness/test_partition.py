"""Tests for the PARTITION solvers."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.hardness.partition import (
    PartitionInstance,
    random_partition_instance,
    solve_partition_bruteforce,
    solve_partition_dp,
)


class TestInstance:
    def test_basic_properties(self):
        inst = PartitionInstance((3, 1, 2, 2))
        assert inst.total == 8
        assert inst.half == 4
        assert inst.n == 4

    def test_invalid_values(self):
        with pytest.raises(ReproError):
            PartitionInstance(())
        with pytest.raises(ReproError):
            PartitionInstance((1, 0))
        with pytest.raises(ReproError):
            PartitionInstance((1, -2))

    def test_is_balanced_subset(self):
        inst = PartitionInstance((3, 1, 2, 2))
        assert inst.is_balanced_subset([0, 1])  # 3 + 1 == 4
        assert not inst.is_balanced_subset([0])
        odd = PartitionInstance((1, 2))
        assert not odd.is_balanced_subset([0])


class TestSolvers:
    KNOWN_YES = [
        (3, 1, 2, 2),
        (1, 1),
        (5, 5, 10),
        (4, 4, 4, 4),
        (7, 3, 2, 2, 2, 2, 2),
    ]
    KNOWN_NO = [
        (1, 2),          # odd total
        (5, 1, 1, 1),    # even but unbalanced
        (10, 2, 2, 2),
        (3,),
    ]

    @pytest.mark.parametrize("sizes", KNOWN_YES)
    def test_dp_finds_witness_on_yes_instances(self, sizes):
        inst = PartitionInstance(sizes)
        subset = solve_partition_dp(inst)
        assert subset is not None
        assert inst.is_balanced_subset(subset)

    @pytest.mark.parametrize("sizes", KNOWN_NO)
    def test_dp_rejects_no_instances(self, sizes):
        assert solve_partition_dp(PartitionInstance(sizes)) is None

    @pytest.mark.parametrize("sizes", KNOWN_YES + KNOWN_NO)
    def test_dp_agrees_with_bruteforce(self, sizes):
        inst = PartitionInstance(sizes)
        dp = solve_partition_dp(inst)
        bf = solve_partition_bruteforce(inst)
        assert (dp is None) == (bf is None)
        if bf is not None:
            assert inst.is_balanced_subset(bf)

    @pytest.mark.parametrize("seed", range(10))
    def test_dp_agrees_with_bruteforce_random(self, seed):
        rng = np.random.default_rng(seed)
        sizes = tuple(int(v) for v in rng.integers(1, 12, size=int(rng.integers(2, 9))))
        inst = PartitionInstance(sizes)
        dp = solve_partition_dp(inst)
        bf = solve_partition_bruteforce(inst)
        assert (dp is None) == (bf is None)
        if dp is not None:
            assert inst.is_balanced_subset(dp)

    def test_bruteforce_size_limit(self):
        inst = PartitionInstance(tuple([1] * 30))
        with pytest.raises(ReproError):
            solve_partition_bruteforce(inst)


class TestRandomInstances:
    def test_force_yes(self):
        for seed in range(5):
            inst = random_partition_instance(6, force_yes=True, seed=seed)
            assert solve_partition_dp(inst) is not None

    def test_force_no(self):
        for seed in range(5):
            inst = random_partition_instance(4, force_yes=False, seed=seed)
            assert solve_partition_dp(inst) is None

    def test_unconstrained(self):
        inst = random_partition_instance(5, seed=1)
        assert inst.n == 5

    def test_invalid_n(self):
        with pytest.raises(ReproError):
            random_partition_instance(0)
