"""Tests for the Theorem 2.1 reduction (PARTITION -> placement)."""

import pytest

from repro.core.congestion import compute_loads
from repro.errors import ReproError
from repro.hardness.partition import (
    PartitionInstance,
    random_partition_instance,
    solve_partition_dp,
)
from repro.hardness.reduction import (
    build_reduction_instance,
    placement_from_subset,
    verify_reduction,
)


class TestInstanceConstruction:
    def test_structure(self):
        inst = build_reduction_instance(PartitionInstance((3, 1, 2, 2)))
        assert inst.network.n_processors == 4
        assert inst.pattern.n_objects == 5  # x_1..x_4 and y
        assert inst.threshold == 16  # 4k with k = 4
        assert inst.n_items == 4

    def test_odd_total_rejected(self):
        with pytest.raises(ReproError):
            build_reduction_instance(PartitionInstance((1, 2)))

    def test_frequencies(self):
        partition = PartitionInstance((2, 2))
        inst = build_reduction_instance(partition)
        a, b, s, sbar = inst.anchors
        k = partition.half
        assert inst.pattern.writes_of(a, 2) == 4 * k + 1
        assert inst.pattern.writes_of(b, 2) == 2 * k
        for i in range(2):
            for v in inst.anchors:
                assert inst.pattern.writes_of(v, i) == 2


class TestWitnessPlacement:
    def test_witness_achieves_exactly_4k(self):
        """The forward direction of the proof: congestion == 4k on YES instances."""
        partition = PartitionInstance((3, 1, 2, 2))
        inst = build_reduction_instance(partition)
        subset = solve_partition_dp(partition)
        placement = placement_from_subset(inst, subset)
        profile = compute_loads(inst.network, inst.pattern, placement)
        assert profile.congestion == pytest.approx(inst.threshold)
        # the proof's load accounting: edges e_a and e_b carry exactly 4k
        a, b, s, sbar = inst.anchors
        bus = inst.network.buses[0]
        assert profile.edge_load(a, bus) == pytest.approx(4 * partition.half)
        assert profile.edge_load(b, bus) == pytest.approx(4 * partition.half)
        assert profile.edge_load(s, bus) == pytest.approx(4 * partition.half)
        assert profile.edge_load(sbar, bus) == pytest.approx(4 * partition.half)

    def test_unbalanced_subset_exceeds_4k(self):
        partition = PartitionInstance((3, 1, 2, 2))
        inst = build_reduction_instance(partition)
        # put every x_i on s: the load on e_s becomes 2k + 2*sum = 3*2k > 4k
        placement = placement_from_subset(inst, range(partition.n))
        profile = compute_loads(inst.network, inst.pattern, placement)
        assert profile.congestion > inst.threshold

    def test_misplacing_y_exceeds_4k(self):
        partition = PartitionInstance((3, 1, 2, 2))
        inst = build_reduction_instance(partition)
        subset = solve_partition_dp(partition)
        placement = placement_from_subset(inst, subset)
        # move y from a to b
        from repro.core.placement import Placement

        holders = [sorted(placement.holders(x))[0] for x in range(inst.pattern.n_objects)]
        holders[-1] = inst.anchors[1]
        moved = Placement.single_holder(holders)
        profile = compute_loads(inst.network, inst.pattern, moved)
        assert profile.congestion > inst.threshold


class TestEquivalence:
    YES_INSTANCES = [(3, 1, 2, 2), (1, 1), (2, 2, 2, 2), (4, 3, 1, 2, 2)]
    NO_INSTANCES = [(5, 1, 1, 1), (10, 2, 2, 2), (7, 1, 1, 1, 1, 1)]

    @pytest.mark.parametrize("sizes", YES_INSTANCES)
    def test_yes_instances(self, sizes):
        report = verify_reduction(PartitionInstance(sizes))
        assert report.partition_solvable
        assert report.witness_congestion == pytest.approx(report.instance.threshold)
        assert report.optimal_congestion <= report.instance.threshold + 1e-9
        assert report.equivalence_holds

    @pytest.mark.parametrize("sizes", NO_INSTANCES)
    def test_no_instances(self, sizes):
        report = verify_reduction(PartitionInstance(sizes))
        assert not report.partition_solvable
        assert report.witness_congestion is None
        assert report.optimal_congestion > report.instance.threshold
        assert report.equivalence_holds

    @pytest.mark.parametrize("seed", range(6))
    def test_random_instances(self, seed):
        inst = random_partition_instance(5, max_value=8, seed=seed)
        if inst.total % 2 != 0:
            inst = PartitionInstance(tuple(list(inst.sizes) + [1]))
        if inst.total % 2 != 0:
            pytest.skip("could not make the total even")
        report = verify_reduction(inst)
        assert report.equivalence_holds
