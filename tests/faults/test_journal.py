"""The crash-safe journal: torn tails, healing, deferred headers."""

from __future__ import annotations

import json

import pytest

from repro import faults
from repro.errors import InjectedFault, SimulationError
from repro.faults import FaultPlan, FaultRule
from repro.serve.recorder import (
    StreamRecorder,
    heal_journal,
    load_recording,
)
from repro.serve.batcher import build_session, resume_session
from repro.serve.loadgen import workload_from_spec


def write_session_journal(spec, path, n_events, mutations=(), sync=False):
    """Drive a real session against a recorder; returns the session."""
    recorder = StreamRecorder(path, sync=sync)
    session = build_session(spec, recorder=recorder)
    events, _ = workload_from_spec(spec)
    fed = 0
    for time, op in mutations:
        if time > fed:
            session.feed(events[fed:time])
            fed = time
        session.mutate(op)
    if fed < n_events:
        session.feed(events[fed:n_events])
    return session


class TestTornTrailingLine:
    def test_load_recording_skips_torn_tail_with_warning(self, spec, tmp_path):
        path = tmp_path / "j.jsonl"
        write_session_journal(spec, path, 6)
        intact = load_recording(path)
        text = path.read_text()
        path.write_text(text + '{"events": [[0, 1, "r"')  # crash mid-write
        with pytest.warns(UserWarning, match="torn line"):
            recording = load_recording(path)
        assert len(recording.events) == len(intact.events)

    def test_unterminated_final_line_counts_as_torn(self, spec, tmp_path):
        # the payload parses, but the newline never hit the disk: the
        # write was not durably complete
        path = tmp_path / "j.jsonl"
        write_session_journal(spec, path, 4)
        path.write_text(path.read_text() + '{"events": []}')  # no newline
        with pytest.warns(UserWarning, match="torn line"):
            load_recording(path)

    def test_mid_file_corruption_still_raises(self, spec, tmp_path):
        path = tmp_path / "j.jsonl"
        session = build_session(spec, recorder=StreamRecorder(path))
        events, _ = workload_from_spec(spec)
        session.feed(events[:2])
        session.feed(events[2:4])
        lines = path.read_text().splitlines(keepends=True)
        lines[1] = "{broken\n"
        path.write_text("".join(lines))
        with pytest.raises(SimulationError, match="corrupt journal line"):
            load_recording(path)


class TestHealJournal:
    def test_heals_torn_tail_in_place(self, spec, tmp_path):
        path = tmp_path / "j.jsonl"
        write_session_journal(spec, path, 5)
        intact = path.read_bytes()
        path.write_text(path.read_text() + '{"mutation": {"kin')
        heal = heal_journal(path)
        assert heal.truncated_torn_line and heal.repaired
        assert path.read_bytes() == intact

    def test_drops_trailing_aborted_footer(self, spec, tmp_path):
        path = tmp_path / "j.jsonl"
        session = write_session_journal(spec, path, 5)
        intact = path.read_bytes()
        session.abort("connection lost")
        heal = heal_journal(path)
        assert heal.dropped_aborted_footer
        assert path.read_bytes() == intact  # a graceful abort is not a seal

    def test_sealed_journal_reported_and_untouched(self, spec, tmp_path):
        path = tmp_path / "j.jsonl"
        session = write_session_journal(spec, path, 5)
        session.finish()
        before = path.read_bytes()
        heal = heal_journal(path)
        assert heal.sealed and not heal.repaired
        assert path.read_bytes() == before

    def test_counts_events_and_mutations(self, spec, tmp_path):
        from repro.serve.wire import mutation_to_dict
        from repro.sim.scenario import build_scenario

        built = build_scenario(spec)[0]
        op = mutation_to_dict(built.trace.events[0].mutation)
        path = tmp_path / "j.jsonl"
        write_session_journal(spec, path, 6, mutations=[(3, op)])
        heal = heal_journal(path)
        assert heal.n_events == 6
        assert heal.n_mutations == 1

    def test_missing_and_headerless_files_are_loud(self, tmp_path):
        with pytest.raises(SimulationError, match="no journal"):
            heal_journal(tmp_path / "nope.jsonl")
        torn_header = tmp_path / "torn.jsonl"
        torn_header.write_text('{"format": "repro.stream-recor')
        with pytest.raises(SimulationError, match="no intact header"):
            heal_journal(torn_header)


class TestRecorderModes:
    def test_header_is_deferred_until_first_item(self, spec, tmp_path):
        path = tmp_path / "j.jsonl"
        recorder = StreamRecorder(path)
        build_session(spec, recorder=recorder)
        assert not path.exists()  # an abandoned session leaves no file
        assert not recorder.opened

    def test_abort_of_empty_session_still_writes_header(self, spec, tmp_path):
        path = tmp_path / "j.jsonl"
        session = build_session(spec, recorder=StreamRecorder(path))
        session.abort("client disconnected before end")
        items = [json.loads(line) for line in path.read_text().splitlines()]
        assert items[0]["format"] == "repro.stream-recording/v1"
        assert items[1] == {"aborted": "client disconnected before end"}

    def test_crash_writes_no_footer(self, spec, tmp_path):
        path = tmp_path / "j.jsonl"
        session = write_session_journal(spec, path, 3)
        session.crash()
        recording = load_recording(path)
        assert recording.summary is None and recording.aborted is None

    def test_sync_mode_fsyncs_each_line(self, spec, tmp_path, monkeypatch):
        import os as os_module

        synced = []
        real_fsync = os_module.fsync
        monkeypatch.setattr(
            "repro.serve.recorder.os.fsync",
            lambda fd: (synced.append(fd), real_fsync(fd))[1],
        )
        path = tmp_path / "j.jsonl"
        write_session_journal(spec, path, 2, sync=True)
        assert synced  # every line hit the disk before the ack could

    def test_append_requires_existing_file_and_refuses_header(self, tmp_path):
        with pytest.raises(SimulationError, match="missing journal"):
            StreamRecorder(tmp_path / "nope.jsonl", append=True)
        path = tmp_path / "j.jsonl"
        path.write_text('{"format": "repro.stream-recording/v1"}\n')
        recorder = StreamRecorder(path, append=True)
        with pytest.raises(SimulationError, match="already has a header"):
            recorder.write_header(spec={}, strategy="s", chunk_size=None, n_objects=1)


class TestInjectedTornWrite:
    def test_torn_write_fault_leaves_healable_prefix(self, spec, tmp_path):
        path = tmp_path / "j.jsonl"
        # hit 1 is the header+first-event flush; tear the 3rd line
        faults.install(
            FaultPlan(
                seed=0,
                rules=(FaultRule(site="recorder.write", kind="torn-write", at=(3,)),),
            )
        )
        session = build_session(spec, recorder=StreamRecorder(path))
        events, _ = workload_from_spec(spec)
        session.feed(events[:2])
        with pytest.raises(InjectedFault):
            session.feed(events[2:4])
        faults.clear()
        heal = heal_journal(path)
        assert heal.truncated_torn_line
        recording = load_recording(path)
        assert len(recording.events) == 2  # the durable prefix survived


class TestResumeSession:
    def test_resumed_session_equals_uninterrupted(self, spec, tmp_path):
        from repro.serve.wire import mutation_to_dict
        from repro.sim.scenario import build_scenario

        built = build_scenario(spec)[0]
        events, _ = workload_from_spec(spec)
        ops = [
            (int(tm.time), mutation_to_dict(tm.mutation))
            for tm in built.trace.events
        ]
        cut = len(events) // 2
        prefix_ops = [(t, op) for t, op in ops if t <= cut]
        suffix_ops = [(t, op) for t, op in ops if t > cut]

        # uninterrupted run
        clean = build_session(spec)
        fed = 0
        for t, op in ops:
            if t > fed:
                clean.feed(events[fed:t])
                fed = t
            clean.mutate(op)
        if fed < len(events):
            clean.feed(events[fed:])
        clean_summary = clean.finish()

        # crashed at `cut`, resumed from the journal, continued
        path = tmp_path / "j.jsonl"
        crashed = write_session_journal(spec, path, cut, mutations=prefix_ops)
        crashed.crash()
        resumed, position, n_mutations = resume_session(path)
        assert position == cut
        assert n_mutations == len(prefix_ops)
        fed = cut
        for t, op in suffix_ops:
            if t > fed:
                resumed.feed(events[fed:t])
                fed = t
            resumed.mutate(op)
        if fed < len(events):
            resumed.feed(events[fed:])
        resumed_summary = resumed.finish()

        assert resumed_summary == clean_summary  # ARCHITECTURE invariant 11
        # and the continued journal replays clean (invariant 10)
        from repro.serve.recorder import replay_recording

        replayed, served = replay_recording(path)
        assert served == resumed_summary
        assert replayed == served

    def test_sealed_journal_refuses_resume(self, spec, tmp_path):
        path = tmp_path / "j.jsonl"
        session = write_session_journal(spec, path, 3)
        session.finish()
        with pytest.raises(SimulationError, match="sealed"):
            resume_session(path)
