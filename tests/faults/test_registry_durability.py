"""Registry durability: atomic writes, torn-index recovery, `lab heal`."""

from __future__ import annotations

import json

import pytest

from repro import faults
from repro.errors import InjectedFault
from repro.faults import FaultPlan, FaultRule
from repro.lab.registry import LabRegistry, scenario_entry
from repro.sim.scenario import scenario_spec


@pytest.fixture()
def entry():
    return scenario_entry(scenario_spec("zipf", seed=0, small=True), 0)


@pytest.fixture()
def entry2():
    return scenario_entry(scenario_spec("zipf", seed=1, small=True), 1)


RECORDS = [{"strategy": "edge-counter", "congestion": 3.0}]


class TestAtomicWrites:
    def test_record_leaves_no_temp_files(self, tmp_path, entry):
        registry = LabRegistry(tmp_path / "reg")
        registry.record(entry, RECORDS)
        assert not list((tmp_path / "reg").rglob("*.tmp"))

    def test_disk_error_fault_corrupts_nothing(self, tmp_path, entry, entry2):
        registry = LabRegistry(tmp_path / "reg")
        registry.record(entry, RECORDS)
        intact_index = registry.index_path.read_bytes()
        faults.install(
            FaultPlan(
                seed=0,
                rules=(
                    FaultRule(site="registry.write", kind="disk-error", at=(1,)),
                ),
            )
        )
        with pytest.raises(OSError):
            registry.record(entry2, RECORDS)
        faults.clear()
        # the failed write touched nothing: old index intact, no artifact
        assert registry.index_path.read_bytes() == intact_index
        assert not registry.artifact_path(entry2.key).exists()
        assert registry.has(entry.key) and not registry.has(entry2.key)

    def test_interrupted_record_is_retried_to_identical_bytes(
        self, tmp_path, entry
    ):
        # crash after the artifact but before the index: the orphan
        # artifact is overwritten with identical bytes on retry
        registry = LabRegistry(tmp_path / "reg")
        faults.install(
            FaultPlan(
                seed=0,
                rules=(
                    FaultRule(site="registry.write", kind="disk-error", at=(2,)),
                ),
            )
        )
        with pytest.raises(OSError):
            registry.record(entry, RECORDS)
        faults.clear()
        assert registry.artifact_path(entry.key).exists()  # orphan
        assert not registry.has(entry.key)  # but not indexed: still missing
        orphan = registry.artifact_path(entry.key).read_bytes()
        registry.record(entry, RECORDS)
        assert registry.artifact_path(entry.key).read_bytes() == orphan
        assert registry.has(entry.key)


class TestTornIndexRecovery:
    def test_torn_index_write_heals_including_the_interrupted_entry(
        self, tmp_path, entry, entry2
    ):
        registry = LabRegistry(tmp_path / "reg")
        registry.record(entry, RECORDS)
        # tear the *index* rewrite of the second record (hit 1 is its
        # artifact): the legacy in-place failure mode _durable_write and
        # heal() exist for
        faults.install(
            FaultPlan(
                seed=0,
                rules=(
                    FaultRule(site="registry.write", kind="torn-write", at=(2,)),
                ),
            )
        )
        with pytest.raises(InjectedFault):
            registry.record(entry2, RECORDS)
        faults.clear()
        with pytest.raises(json.JSONDecodeError):
            json.loads(registry.index_path.read_text())  # really torn

        index = registry.load_index()  # auto-quarantine + rebuild
        assert (tmp_path / "reg" / "index.json.corrupt").exists()
        # artifacts are the source of truth: the rebuilt index contains
        # *both* entries -- the artifact of the interrupted record was
        # already durable, so healing completes the interrupted write
        assert entry.key.as_string() in index
        assert entry2.key.as_string() in index
        assert registry.has(entry.key) and registry.has(entry2.key)

    def test_healed_index_is_byte_identical_to_uninterrupted(
        self, tmp_path, entry, entry2
    ):
        torn = LabRegistry(tmp_path / "torn")
        clean = LabRegistry(tmp_path / "clean")
        for registry in (torn, clean):
            registry.record(entry, RECORDS)
            registry.record(entry2, RECORDS)
        torn.index_path.write_text('{"format": "repro.lab-ind')
        torn.load_index()
        assert torn.index_path.read_bytes() == clean.index_path.read_bytes()

    def test_heal_quarantines_rotten_artifacts(self, tmp_path, entry, entry2):
        registry = LabRegistry(tmp_path / "reg")
        registry.record(entry, RECORDS)
        registry.record(entry2, RECORDS)
        victim = registry.artifact_path(entry2.key)
        victim.write_text('{"format": "repro.lab-artifact/v1", "name"')
        report = registry.heal()
        assert report["entries"] == 1
        assert len(report["quarantined"]) == 1
        assert victim.with_name(victim.name + ".corrupt").exists()
        assert not victim.exists()
        # the quarantined run now counts as missing: run-missing re-runs it
        assert registry.has(entry.key)
        assert not registry.has(entry2.key)
        assert registry.missing([entry, entry2]) == [entry2]


class TestHealCli:
    def test_lab_heal_command_rebuilds_a_corrupt_index(
        self, tmp_path, entry, entry2
    ):
        import io

        from repro.cli import main

        registry = LabRegistry(tmp_path / "reg")
        registry.record(entry, RECORDS)
        registry.record(entry2, RECORDS)
        intact = registry.index_path.read_bytes()
        registry.index_path.write_text("{torn mid-write")

        stream = io.StringIO()
        code = main(
            ["lab", "heal", "--registry", str(tmp_path / "reg")], stream=stream
        )
        assert code == 0
        output = stream.getvalue()
        assert "index.json.corrupt" in output
        assert "2 entries" in output
        assert registry.index_path.read_bytes() == intact

    def test_lab_heal_on_a_healthy_registry_is_idempotent(self, tmp_path, entry):
        import io

        from repro.cli import main

        registry = LabRegistry(tmp_path / "reg")
        registry.record(entry, RECORDS)
        intact = registry.index_path.read_bytes()
        code = main(
            ["lab", "heal", "--registry", str(tmp_path / "reg")],
            stream=io.StringIO(),
        )
        assert code == 0
        assert registry.index_path.read_bytes() == intact
