"""Graceful degradation: watchdog, load shedding, drain, resume guards."""

from __future__ import annotations

import asyncio
import json
import time

import pytest

from repro import faults
from repro.faults import FaultPlan, FaultRule
from repro.serve import PlacementServer, ServerThread
from repro.serve.loadgen import loadgen, run_loadgen, workload_from_spec
from repro.serve.wire import encode_events, encode_message


async def open_session(host, port):
    """Connect and read the hello; returns (reader, writer, hello)."""
    reader, writer = await asyncio.open_connection(host, port)
    hello = json.loads(await reader.readline())
    return reader, writer, hello


class TestWatchdog:
    def test_stalled_engine_pass_becomes_structured_error(self, spec):
        faults.install(
            FaultPlan(
                seed=0,
                rules=(
                    FaultRule(
                        site="server.engine", kind="stall", at=(1,), seconds=5.0
                    ),
                ),
            )
        )
        events, _ = workload_from_spec(spec)

        async def drive(host, port):
            reader, writer, _ = await open_session(host, port)
            writer.write(
                encode_message(
                    {
                        "type": "requests",
                        "id": 1,
                        "events": encode_events(events[:3]),
                    }
                )
            )
            await writer.drain()
            reply = json.loads(
                await asyncio.wait_for(reader.readline(), timeout=10)
            )
            writer.close()
            return reply

        server = PlacementServer(spec, watchdog=0.05)
        started = time.monotonic()
        with ServerThread(server) as (host, port):
            reply = asyncio.run(drive(host, port))
        assert time.monotonic() - started < 5.0  # did not sit out the stall
        assert reply["type"] == "error"
        assert reply["code"] == "watchdog"

    def test_without_watchdog_a_fast_pass_is_untouched(self, spec):
        events, mutations = workload_from_spec(spec)
        server = PlacementServer(spec, watchdog=30.0, max_sessions=1)
        with ServerThread(server) as (host, port):
            stats = loadgen(host, port, events, mutations, batch=8)
        assert stats["summary"]["n_events"] == len(events)


class TestLoadShedding:
    def test_connections_beyond_max_active_are_shed_with_retry_after(self, spec):
        async def drive(host, port):
            holder_reader, holder_writer, _ = await open_session(host, port)
            reader, writer = await asyncio.open_connection(host, port)
            shed = json.loads(await reader.readline())
            writer.close()
            holder_writer.write(encode_message({"type": "end", "id": 1}))
            await holder_writer.drain()
            await holder_reader.readline()
            holder_writer.close()
            return shed

        server = PlacementServer(spec, max_active=1, retry_after=0.25)
        with ServerThread(server) as (host, port):
            shed = asyncio.run(drive(host, port))
        assert shed["type"] == "error"
        assert shed["code"] == "overloaded"
        assert shed["retry_after"] == 0.25
        assert server.sessions_shed == 1

    def test_loadgen_honours_retry_after_and_gets_through(self, spec):
        events, _ = workload_from_spec(spec)

        async def scenario(host, port):
            # hold the only slot, then release it while the client backs off
            reader, writer, _ = await open_session(host, port)
            task = asyncio.create_task(
                run_loadgen(
                    host,
                    port,
                    events[:16],
                    batch=8,
                    retries=20,
                    backoff_base=0.01,
                    timeout=10.0,
                )
            )
            await asyncio.sleep(0.3)
            writer.write(encode_message({"type": "end", "id": 1}))
            await writer.drain()
            await reader.readline()
            writer.close()
            return await task

        server = PlacementServer(spec, max_active=1, retry_after=0.05)
        with ServerThread(server) as (host, port):
            stats = asyncio.run(scenario(host, port))
        assert stats["reconnects"] >= 1  # it was shed at least once
        assert stats["summary"]["n_events"] == 16
        assert server.sessions_shed >= 1


class TestDrain:
    def test_drain_sheds_new_lets_active_finish_then_stops(self, spec):
        async def drive(host, port, thread):
            reader, writer, _ = await open_session(host, port)
            thread.drain()
            deadline = time.monotonic() + 5
            while not thread.server.draining:
                assert time.monotonic() < deadline
                await asyncio.sleep(0.01)
            late_reader, late_writer = await asyncio.open_connection(host, port)
            shed = json.loads(await late_reader.readline())
            late_writer.close()
            writer.write(encode_message({"type": "end", "id": 1}))
            await writer.drain()
            end = json.loads(await reader.readline())
            writer.close()
            return shed, end

        server = PlacementServer(spec)
        thread = ServerThread(server)
        host, port = thread.start()
        try:
            shed, end = asyncio.run(drive(host, port, thread))
        finally:
            thread.stop()
        assert shed["type"] == "error" and shed["code"] == "draining"
        assert end["type"] == "end"  # the active session ran to completion
        assert not thread._thread.is_alive()  # last session out stopped it

    def test_drain_with_no_active_sessions_stops_immediately(self, spec):
        server = PlacementServer(spec)
        thread = ServerThread(server)
        thread.start()
        thread.drain()
        thread._thread.join(timeout=5)
        assert not thread._thread.is_alive()


class TestResumeGuards:
    def drive_resume(self, host, port, token):
        async def drive():
            reader, writer, _ = await open_session(host, port)
            writer.write(encode_message({"type": "resume", "token": token}))
            await writer.drain()
            reply = json.loads(await reader.readline())
            writer.close()
            return reply

        return asyncio.run(drive())

    def test_unknown_token_is_a_coded_error(self, spec, tmp_path):
        server = PlacementServer(spec, record_dir=tmp_path)
        with ServerThread(server) as (host, port):
            reply = self.drive_resume(host, port, "session-9999")
        assert reply["type"] == "error"
        assert reply["code"] == "unknown-token"

    def test_path_traversal_tokens_are_rejected(self, spec, tmp_path):
        server = PlacementServer(spec, record_dir=tmp_path)
        with ServerThread(server) as (host, port):
            reply = self.drive_resume(host, port, "../../../etc/passwd")
        assert reply["code"] == "unknown-token"

    def test_resume_without_record_dir_is_no_journal(self, spec):
        server = PlacementServer(spec)
        with ServerThread(server) as (host, port):
            reply = self.drive_resume(host, port, "session-0001")
        assert reply["code"] == "no-journal"

    def test_torn_header_journal_reads_as_unknown_token(self, spec, tmp_path):
        # the crash tore the header line itself: nothing was durable, so
        # the client (which saw no acks) must be told to restart fresh
        (tmp_path / "session-0042.jsonl").write_text('{"format": "repro.str')
        server = PlacementServer(spec, record_dir=tmp_path)
        with ServerThread(server) as (host, port):
            reply = self.drive_resume(host, port, "session-0042")
        assert reply["code"] == "unknown-token"


class TestClientTimeouts:
    def test_silent_server_trips_the_read_timeout(self, spec):
        async def scenario():
            async def black_hole(reader, writer):
                await asyncio.sleep(3600)  # accept, say nothing

            server = await asyncio.start_server(black_hole, "127.0.0.1", 0)
            host, port = server.sockets[0].getsockname()[:2]
            async with server:
                with pytest.raises(Exception) as info:
                    await run_loadgen(
                        host, port, [], timeout=0.2, retries=0
                    )
            return info

        started = time.monotonic()
        info = asyncio.run(scenario())
        assert time.monotonic() - started < 5.0  # bounded, not hung
        assert "connection failed" in str(info.value)
