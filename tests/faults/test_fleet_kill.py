"""Worker-kill chaos: pool recovery under real (fleet) sweep load.

The ``parallel.worker`` fault point dies with SIGKILL inside a pool
worker -- the genuine BrokenProcessPool scenario.  The plan reaches the
workers through ``REPRO_FAULT_PLAN`` in the environment, and the
cross-process ``once`` sentinel guarantees exactly one kill per run, so
a sweep must recover (replace the pool, resubmit the unfinished jobs)
and still produce a registry byte-identical to an uninterrupted one.
"""

from __future__ import annotations

import pytest

from repro import faults
from repro.faults import FaultPlan, FaultRule
from repro.lab.registry import (
    LabRegistry,
    run_missing,
    scenario_entry,
    tournament_entry,
)
from repro.parallel import iter_jobs, run_jobs, shutdown_pools
from repro.sim.scenario import scenario_spec


def _square(value):
    return value * value


@pytest.fixture(autouse=True)
def _fresh_pools():
    """Workers must fork after the plan lands in the environment."""
    shutdown_pools()
    yield
    shutdown_pools()


def arm_kill_plan(monkeypatch, sentinel) -> None:
    plan = FaultPlan(
        seed=0,
        rules=(
            FaultRule(site="parallel.worker", kind="kill", once=str(sentinel)),
        ),
    )
    monkeypatch.setenv("REPRO_FAULT_PLAN", plan.to_json())
    faults.reset()  # parent re-arms lazily from the env it just set


class TestKilledWorker:
    def test_run_jobs_recovers_from_an_injected_kill(self, tmp_path, monkeypatch):
        sentinel = tmp_path / "claimed"
        arm_kill_plan(monkeypatch, sentinel)
        assert run_jobs(2, _square, [(i,) for i in range(6)]) == [
            i * i for i in range(6)
        ]
        assert sentinel.exists()  # the kill really fired

    def test_iter_jobs_recovers_and_loses_no_results(self, tmp_path, monkeypatch):
        sentinel = tmp_path / "claimed"
        arm_kill_plan(monkeypatch, sentinel)
        results = dict(iter_jobs(2, _square, [(i,) for i in range(8)]))
        assert results == {i: i * i for i in range(8)}
        assert sentinel.exists()


class TestFleetSweepSurvivesWorkerKill:
    def test_tournament_fleet_sweep_equals_uninterrupted(
        self, tmp_path, monkeypatch
    ):
        from repro.lab.tournament import tournament_spec

        suite = [
            tournament_entry(tournament_spec("zipf", seed=0, small=True), 0),
            scenario_entry(scenario_spec("storm", seed=0, small=True), 0),
        ]
        clean = LabRegistry(tmp_path / "clean")
        run_missing(clean, suite, parallel=2, fleet=True)

        sentinel = tmp_path / "claimed"
        arm_kill_plan(monkeypatch, sentinel)
        shutdown_pools()  # fresh workers, forked under the armed plan
        chaos = LabRegistry(tmp_path / "chaos")
        outcome = run_missing(chaos, suite, parallel=2, fleet=True)

        assert sentinel.exists()  # a worker really died mid-sweep
        assert sorted(outcome.executed) == sorted(
            entry.key.as_string() for entry in suite
        )
        # the recovered registry is a pure function of the suite: index
        # and every artifact byte-identical to the uninterrupted sweep
        assert chaos.index_path.read_bytes() == clean.index_path.read_bytes()
        for entry in suite:
            assert (
                chaos.artifact_path(entry.key).read_bytes()
                == clean.artifact_path(entry.key).read_bytes()
            )
