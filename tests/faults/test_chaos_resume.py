"""End-to-end crash/recovery over real sockets: invariant 11.

The chaos matrix runs the full serving stack (daemon-thread server,
loadgen client) under a seeded fault plan mixing connection drops,
engine crashes, torn journal writes and client-side read faults, and
asserts the recovered stream is *byte-identical* to an uninterrupted
run -- summary and replayed journal both.  CI widens the seed matrix via
``REPRO_CHAOS_SEEDS``.
"""

from __future__ import annotations

import asyncio
import json
import os
import warnings

import pytest

from repro import faults
from repro.errors import SimulationError
from repro.faults import FaultPlan, FaultRule
from repro.serve import PlacementServer, ServerThread, replay_recording
from repro.serve.loadgen import loadgen, workload_from_spec
from repro.serve.recorder import load_recording
from repro.serve.wire import encode_events, encode_message

CHAOS_SEEDS = [
    int(token)
    for token in os.environ.get("REPRO_CHAOS_SEEDS", "0,1,2,3").split(",")
    if token.strip()
]


def chaos_plan(seed: int) -> FaultPlan:
    """The standing chaos mix: every fault family the plane knows.

    The ``at=`` rules guarantee at least one mid-stream disconnect and
    one torn journal line per run regardless of seed; the ``prob`` rules
    reshuffle extra faults across the matrix.
    """
    return FaultPlan(
        seed=seed,
        rules=(
            FaultRule(site="server.ack-write", kind="drop", at=(3,)),
            FaultRule(site="server.ack-write", kind="drop", prob=0.02),
            FaultRule(site="recorder.write", kind="torn-write", at=(5,)),
            FaultRule(site="server.engine", kind="crash", prob=0.02),
            FaultRule(site="server.accept", kind="drop", prob=0.10),
            FaultRule(site="loadgen.recv", kind="drop", prob=0.02),
            FaultRule(site="loadgen.send", kind="drop", prob=0.01),
        ),
    )


def clean_baseline(spec, events, mutations, batch=8):
    """The uninterrupted run every recovered run must equal."""
    server = PlacementServer(spec, max_sessions=1)
    with ServerThread(server) as (host, port):
        return loadgen(host, port, events, mutations, batch=batch)["summary"]


class TestChaosMatrix:
    @pytest.mark.parametrize("chaos_seed", CHAOS_SEEDS)
    def test_recovered_equals_uninterrupted(self, spec, tmp_path, chaos_seed):
        events, mutations = workload_from_spec(spec)
        baseline = clean_baseline(spec, events, mutations)

        faults.install(chaos_plan(chaos_seed))
        server = PlacementServer(spec, record_dir=tmp_path, journal_sync=True)
        thread = ServerThread(server)
        host, port = thread.start()
        try:
            stats = loadgen(
                host,
                port,
                events,
                mutations,
                batch=8,
                timeout=10.0,
                retries=100,
                backoff_base=0.01,
                backoff_max=0.1,
                backoff_seed=chaos_seed,
            )
        finally:
            faults.clear()
            thread.stop()

        assert stats["reconnects"] >= 1  # the at= rules guarantee chaos
        # exactly-once, end to end: ARCHITECTURE invariant 11
        assert stats["summary"] == baseline

        complete = []
        for path in sorted(tmp_path.glob("session-*.jsonl")):
            try:
                with warnings.catch_warnings():
                    warnings.simplefilter("ignore")
                    recording = load_recording(path)
            except SimulationError:
                continue  # a journal the chaos killed before its header
            if recording.complete:
                complete.append(path)
        assert len(complete) == 1  # one logical session, one sealed journal
        replayed, served = replay_recording(complete[0])
        assert served == baseline
        assert replayed == served  # and invariant 10 still holds on top

    def test_chaos_runs_are_seed_deterministic(self, spec):
        # the same plan fires the same faults at the same hits: the
        # whole matrix is replayable from (plan seed, backoff seed)
        plan_a = chaos_plan(1)
        plan_b = FaultPlan.from_spec(chaos_plan(1).to_json())
        assert plan_a == plan_b
        fired_a = [
            rule.matches(hit, seed=plan_a.seed)
            for rule in plan_a.rules
            for hit in range(1, 100)
        ]
        fired_b = [
            rule.matches(hit, seed=plan_b.seed)
            for rule in plan_b.rules
            for hit in range(1, 100)
        ]
        assert fired_a == fired_b


class TestSealedJournal:
    def test_crash_that_ate_only_the_final_ack_resumes_to_summary(
        self, spec, tmp_path
    ):
        # drop the very first ack-write: with an empty stream that is the
        # end reply itself, so the journal seals but the client never
        # hears it -- resume must answer with the recorded summary, not
        # re-run anything
        faults.install(
            FaultPlan(
                seed=0,
                rules=(
                    FaultRule(site="server.ack-write", kind="drop", at=(1,)),
                ),
            )
        )
        server = PlacementServer(spec, record_dir=tmp_path)
        thread = ServerThread(server)
        host, port = thread.start()
        try:
            stats = loadgen(
                host, port, [], retries=3, backoff_base=0.01, timeout=10.0
            )
        finally:
            faults.clear()
            thread.stop()
        assert stats["reconnects"] == 1
        assert stats["resumed"] == 0  # nothing was replayed
        assert stats["summary"]["n_events"] == 0
        (path,) = tmp_path.glob("session-*.jsonl")
        assert load_recording(path).summary == stats["summary"]
        assert server.sessions_resumed == 0


class TestServerRestart:
    def test_resume_survives_a_server_restart(self, spec, tmp_path):
        """Tokens are journal names: a *new* server process resumes them."""
        events, mutations = workload_from_spec(spec)
        baseline = clean_baseline(spec, events, mutations)
        cut = len(events) // 2

        async def drive_partial(host, port):
            reader, writer = await asyncio.open_connection(host, port)
            hello = json.loads(await reader.readline())
            token = hello["token"]
            mid = mi = pos = 0
            while pos < cut:
                while mi < len(mutations) and mutations[mi][0] <= pos:
                    mid += 1
                    writer.write(
                        encode_message(
                            {
                                "type": "mutation",
                                "id": mid,
                                "op": mutations[mi][1],
                            }
                        )
                    )
                    mi += 1
                stop = min(pos + 8, cut)
                if mi < len(mutations):
                    stop = min(stop, mutations[mi][0])
                mid += 1
                writer.write(
                    encode_message(
                        {
                            "type": "requests",
                            "id": mid,
                            "events": encode_events(events[pos:stop]),
                        }
                    )
                )
                pos = stop
            mid += 1
            writer.write(encode_message({"type": "flush", "id": mid}))
            await writer.drain()
            while True:  # wait for the watermark to cover the prefix
                message = json.loads(await reader.readline())
                if message.get("type") == "ack" and message.get("position", -1) >= cut:
                    break
            writer.transport.abort()  # die without an end
            return token

        server_a = PlacementServer(spec, record_dir=tmp_path, journal_sync=True)
        thread_a = ServerThread(server_a)
        host, port = thread_a.start()
        try:
            token = asyncio.run(drive_partial(host, port))
        finally:
            thread_a.stop()
        assert (tmp_path / f"{token}.jsonl").exists()

        async def drive_resume(host, port):
            reader, writer = await asyncio.open_connection(host, port)
            await reader.readline()  # the fresh hello of the new server
            writer.write(encode_message({"type": "resume", "token": token}))
            await writer.drain()
            reply = json.loads(await reader.readline())
            assert reply["type"] == "resumed", reply
            pos, mi, mid = int(reply["position"]), int(reply["n_mutations"]), 0
            while pos < len(events):
                while mi < len(mutations) and mutations[mi][0] <= pos:
                    mid += 1
                    writer.write(
                        encode_message(
                            {
                                "type": "mutation",
                                "id": mid,
                                "op": mutations[mi][1],
                            }
                        )
                    )
                    mi += 1
                stop = min(pos + 8, len(events))
                if mi < len(mutations):
                    stop = min(stop, mutations[mi][0])
                mid += 1
                writer.write(
                    encode_message(
                        {
                            "type": "requests",
                            "id": mid,
                            "events": encode_events(events[pos:stop]),
                        }
                    )
                )
                pos = stop
            while mi < len(mutations):
                mid += 1
                writer.write(
                    encode_message(
                        {"type": "mutation", "id": mid, "op": mutations[mi][1]}
                    )
                )
                mi += 1
            mid += 1
            writer.write(encode_message({"type": "end", "id": mid}))
            await writer.drain()
            while True:
                message = json.loads(await reader.readline())
                if message["type"] == "end":
                    writer.close()
                    return reply, message["summary"]
                assert message["type"] != "error", message

        server_b = PlacementServer(spec, record_dir=tmp_path, journal_sync=True)
        thread_b = ServerThread(server_b)
        host, port = thread_b.start()
        try:
            reply, summary = asyncio.run(drive_resume(host, port))
        finally:
            thread_b.stop()

        assert reply["position"] == cut
        assert server_b.sessions_resumed == 1
        assert summary == baseline  # invariant 11, across a restart
        # the fresh token the new server minted was never journaled, and
        # the minting skipped the existing journal instead of clobbering
        journals = sorted(path.name for path in tmp_path.glob("session-*.jsonl"))
        assert journals == [f"{token}.jsonl"]
        replayed, served = replay_recording(tmp_path / f"{token}.jsonl")
        assert served == summary
        assert replayed == served
