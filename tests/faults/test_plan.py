"""The fault plane itself: plans, rules, determinism, activation."""

from __future__ import annotations

import json

import pytest

from repro import faults
from repro.errors import FaultError, InjectedFault
from repro.faults import Fault, FaultInjector, FaultPlan, FaultRule


class TestRules:
    def test_at_fires_exactly_at_listed_hits(self):
        rule = FaultRule(site="s", kind="drop", at=(2, 5))
        fired = [hit for hit in range(1, 8) if rule.matches(hit, seed=0)]
        assert fired == [2, 5]

    def test_every_fires_every_kth_hit(self):
        rule = FaultRule(site="s", kind="drop", every=3)
        fired = [hit for hit in range(1, 10) if rule.matches(hit, seed=0)]
        assert fired == [3, 6, 9]

    def test_prob_is_a_pure_function_of_seed_site_hit(self):
        rule = FaultRule(site="s", kind="drop", prob=0.5)
        a = [rule.matches(hit, seed=3) for hit in range(1, 200)]
        b = [rule.matches(hit, seed=3) for hit in range(1, 200)]
        assert a == b
        assert any(a) and not all(a)
        # a different seed reshuffles which hits fire
        c = [rule.matches(hit, seed=4) for hit in range(1, 200)]
        assert a != c

    def test_no_trigger_means_every_hit(self):
        rule = FaultRule(site="s", kind="crash")
        assert all(rule.matches(hit, seed=0) for hit in range(1, 5))

    def test_conflicting_triggers_rejected(self):
        with pytest.raises(FaultError):
            FaultRule(site="s", kind="drop", at=(1,), every=2)

    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultError):
            FaultRule(site="s", kind="meteor")

    def test_rule_roundtrips_through_dict(self):
        rule = FaultRule(site="s", kind="stall", every=4, seconds=0.5)
        assert FaultRule.from_dict(rule.to_dict()) == rule


class TestPlan:
    def test_plan_roundtrips_through_json(self):
        plan = FaultPlan(
            seed=7,
            rules=(
                FaultRule(site="a", kind="drop", at=(1,)),
                FaultRule(site="b", kind="kill", once="/tmp/x"),
            ),
        )
        assert FaultPlan.from_spec(plan.to_json()) == plan

    def test_plan_from_file(self, tmp_path):
        path = tmp_path / "plan.json"
        plan = FaultPlan(seed=2, rules=(FaultRule(site="a", kind="crash"),))
        path.write_text(plan.to_json())
        assert FaultPlan.from_spec(str(path)) == plan

    def test_missing_file_and_bad_json_are_loud(self, tmp_path):
        with pytest.raises(FaultError):
            FaultPlan.from_spec(str(tmp_path / "nope.json"))
        with pytest.raises(FaultError):
            FaultPlan.from_spec("{not json")
        with pytest.raises(FaultError):
            FaultPlan.from_spec(json.dumps({"format": "bogus/v9"}))


class TestInjector:
    def test_per_site_hit_counters_are_independent(self):
        plan = FaultPlan(seed=0, rules=(FaultRule(site="a", kind="drop", at=(2,)),))
        injector = FaultInjector(plan)
        assert injector.check("b") is None  # does not advance site a
        assert injector.check("a") is None  # hit 1
        fault = injector.check("a")  # hit 2
        assert fault == Fault(site="a", kind="drop", hit=2, seed=0)
        assert injector.check("a") is None  # hit 3

    def test_fired_faults_are_recorded_with_identity(self):
        plan = FaultPlan(seed=9, rules=(FaultRule(site="a", kind="crash"),))
        injector = FaultInjector(plan)
        fault = injector.check("a")
        assert injector.fired == [fault]
        assert "seed=9" in fault.describe() and "site=a" in fault.describe()

    def test_once_sentinel_limits_to_a_single_firing(self, tmp_path):
        sentinel = tmp_path / "claimed"
        plan = FaultPlan(
            seed=0, rules=(FaultRule(site="a", kind="kill", once=str(sentinel)),)
        )
        injector = FaultInjector(plan)
        assert injector.check("a") is not None
        assert sentinel.exists()
        assert injector.check("a") is None  # claimed: never again
        # a *different* injector (another process, in real runs) skips too
        assert FaultInjector(plan).check("a") is None


class TestActivation:
    def test_off_path_returns_none_and_stays_off(self):
        assert faults.fault_point("anything") is None
        assert not faults.plan_active()
        assert faults.active_plan() is None

    def test_install_and_clear(self):
        faults.install(FaultPlan(seed=1, rules=(FaultRule(site="x", kind="drop"),)))
        assert faults.plan_active()
        assert faults.fault_point("x").kind == "drop"
        faults.clear()
        assert faults.fault_point("x") is None

    def test_env_var_activates_lazily(self, monkeypatch):
        plan = FaultPlan(seed=5, rules=(FaultRule(site="e", kind="crash"),))
        monkeypatch.setenv("REPRO_FAULT_PLAN", plan.to_json())
        faults.reset()
        fault = faults.fault_point("e")
        assert fault is not None and fault.seed == 5
        assert faults.active_plan() == plan

    def test_clear_does_not_rearm_from_env(self, monkeypatch):
        plan = FaultPlan(seed=5, rules=(FaultRule(site="e", kind="crash"),))
        monkeypatch.setenv("REPRO_FAULT_PLAN", plan.to_json())
        faults.reset()
        assert faults.plan_active()
        faults.clear()
        assert faults.fault_point("e") is None  # env not re-read

    def test_raise_fault_maps_kinds_to_exceptions(self):
        def fault(kind):
            return Fault(site="s", kind=kind, hit=1, seed=0)

        with pytest.raises(ConnectionResetError):
            faults.raise_fault(fault("drop"))
        with pytest.raises(OSError):
            faults.raise_fault(fault("disk-error"))
        with pytest.raises(InjectedFault):
            faults.raise_fault(fault("crash"))
        with pytest.raises(InjectedFault):
            faults.raise_fault(fault("torn-write"))
