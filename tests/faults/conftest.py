"""Shared fixtures for the chaos suite.

Every test starts and ends with the fault plane off and the environment
clean, so an installed plan never leaks into neighbouring tests (the
injector is process-global by design -- that is what lets pool workers
and the serving stack share one plan).
"""

from __future__ import annotations

import pytest

from repro import faults
from repro.sim.scenario import scenario_spec


@pytest.fixture(autouse=True)
def _clean_fault_plane(monkeypatch):
    monkeypatch.delenv("REPRO_FAULT_PLAN", raising=False)
    faults.reset()
    yield
    faults.reset()


@pytest.fixture(scope="module")
def spec():
    return scenario_spec("storm", seed=0, small=True)
