"""Tests for the array-backed adaptive counter substrate.

Pins the two contracts :mod:`repro.dynamic.adaptive_state` makes:
exact dict-semantics transitions (the differential suites cover those
end to end; here the unit surface) and the hygiene/memory story -- the
counter footprint is a function of the universe sizes, never of the
stream length, and ``unread_writes`` never accumulates entries outside
the holder mask.
"""

import numpy as np
import pytest

from repro.dynamic.adaptive_state import AdaptiveState
from repro.dynamic.online import (
    EdgeCounterManager,
    HysteresisCounterManager,
    RentOrBuyManager,
)
from repro.dynamic.sequence import sequence_from_pattern
from repro.errors import WorkloadError
from repro.network.builders import balanced_tree
from repro.workload.generators import zipf_pattern


class TestTransitions:
    def test_materialise_and_holder_queries(self):
        state = AdaptiveState(3, 5)
        assert not state.touched(0)
        state.materialise(0, 4)
        assert state.touched(0)
        assert state.holders_list(0) == [4]
        assert state.holders_set(0) == {4}

    def test_add_holder_resets_both_counters(self):
        state = AdaptiveState(2, 4)
        state.materialise(0, 1)
        state.read_credit[0, 3] = 7
        state.unread_writes[0, 3] = 2
        state.add_holder(0, 3)
        assert state.holders_list(0) == [1, 3]
        assert state.read_credit[0, 3] == 0
        assert state.unread_writes[0, 3] == 0

    def test_drop_holder_purges_unread_but_keeps_credit(self):
        # the dict implementation kept read_credit entries across
        # invalidations; the arrays must mirror that bit for bit
        state = AdaptiveState(1, 4)
        state.materialise(0, 0)
        state.add_holder(0, 2)
        state.read_credit[0, 2] = 5
        state.unread_writes[0, 2] = 1
        state.drop_holder(0, 2)
        assert state.holders_list(0) == [0]
        assert state.read_credit[0, 2] == 5
        assert state.unread_writes[0, 2] == 0

    def test_set_sole_holder_wipes_unread_row(self):
        state = AdaptiveState(1, 5)
        state.materialise(0, 0)
        state.add_holder(0, 2)
        state.unread_writes[0, 0] = 3
        state.read_credit[0, 4] = 9
        state.set_sole_holder(0, 4)
        assert state.holders_list(0) == [4]
        assert not state.unread_writes[0].any()
        assert state.read_credit[0, 4] == 0

    def test_invalid_shape_rejected(self):
        with pytest.raises(WorkloadError):
            AdaptiveState(-1, 4)
        with pytest.raises(WorkloadError):
            AdaptiveState(2, 0)


class TestChurnReshaping:
    def test_grow_appends_zero_columns(self):
        state = AdaptiveState(2, 3)
        state.materialise(0, 2)
        state.read_credit[0, 1] = 4
        state.grow(5)
        assert state.n_nodes == 5
        assert state.holders_list(0) == [2]
        assert state.read_credit[0, 1] == 4
        assert not state.holder_mask[:, 3:].any()

    def test_grow_cannot_shrink(self):
        state = AdaptiveState(1, 4)
        with pytest.raises(WorkloadError):
            state.grow(3)

    def test_remap_detach_gathers_and_reports_orphans(self):
        state = AdaptiveState(3, 4)
        state.materialise(0, 3)  # loses its only copy with node 3
        state.materialise(1, 1)  # survives, renumbered
        state.read_credit[1, 2] = 6
        node_map = np.array([0, 1, 2, -1])
        orphans = state.remap_detach(node_map, 3)
        assert orphans.tolist() == [0]
        assert state.holders_list(1) == [1]
        assert state.read_credit[1, 2] == 6
        state.rehome(0, 1)
        assert state.holders_list(0) == [1]


class TestHygieneSoak:
    """The soak-shaped memory contract of the adaptive strategies."""

    def _stream(self, net, n_objects, requests, seed):
        pattern = zipf_pattern(
            net, n_objects, requests_per_processor=requests, seed=seed
        )
        return sequence_from_pattern(net, pattern, seed=seed + 1)

    @pytest.mark.parametrize(
        "factory",
        [
            lambda net, n: EdgeCounterManager(
                net, n, object_size=2, invalidation_patience=1
            ),
            lambda net, n: HysteresisCounterManager(
                net, n, object_size=2, migration_factor=2
            ),
            lambda net, n: RentOrBuyManager(
                net, n, replicate_threshold=3, migrate_threshold=2
            ),
        ],
        ids=["edge-counter", "hysteresis", "rent-or-buy"],
    )
    def test_memory_bounded_in_stream_length(self, factory):
        # serve a short and a 4x longer thrashy stream: the strategy
        # footprint may differ only by cached nearest tables, whose count
        # is capped, never by per-event growth
        net = balanced_tree(2, 3, 2)
        n_objects = 12
        manager = factory(net, n_objects)
        for event in self._stream(net, n_objects, 8, seed=3).events:
            manager.serve(event)
        short_bytes = manager.memory_bytes()
        assert short_bytes > 0

        longer = factory(net, n_objects)
        for event in self._stream(net, n_objects, 32, seed=3).events:
            longer.serve(event)
        cap = longer._MAX_HOLDER_TABLES * net.n_nodes * np.int64().nbytes
        assert longer.memory_bytes() <= short_bytes + cap

    def test_unread_writes_zero_outside_holder_mask(self):
        # the hygiene invariant: invalidation/migration purge counters,
        # so unread_writes never accumulates entries for non-holders
        net = balanced_tree(2, 3, 2)
        manager = EdgeCounterManager(
            net, 16, object_size=2, invalidation_patience=1
        )
        for event in self._stream(net, 16, 24, seed=7).events:
            manager.serve(event)
        adaptive = manager._adaptive
        assert not adaptive.unread_writes[~adaptive.holder_mask].any()
        assert np.array_equal(
            adaptive.n_holders,
            adaptive.holder_mask.sum(axis=1, dtype=np.int64),
        )

    def test_chunked_replay_obeys_the_same_hygiene(self):
        net = balanced_tree(2, 3, 2)
        sequence = self._stream(net, 16, 24, seed=11)
        manager = EdgeCounterManager(
            net, 16, object_size=2, invalidation_patience=1
        )
        manager.serve_chunk(sequence, 0, len(sequence.events))
        adaptive = manager._adaptive
        assert not adaptive.unread_writes[~adaptive.holder_mask].any()

    def test_holder_table_cache_is_capped(self):
        net = balanced_tree(2, 3, 2)
        sequence = self._stream(net, 16, 24, seed=13)
        manager = EdgeCounterManager(
            net, 16, object_size=2, invalidation_patience=1
        )
        manager._MAX_HOLDER_TABLES = 1  # force constant cache churn
        step = 8
        for start in range(0, len(sequence.events), step):
            manager.serve_chunk(
                sequence, start, min(start + step, len(sequence.events))
            )
        # the cap wipes the cache at every chunk start, so what survives
        # is one chunk's worth of distinct holder sets -- never the
        # stream's accumulation
        assert len(manager._tables_by_holders) <= step

        reference = EdgeCounterManager(
            net, 16, object_size=2, invalidation_patience=1
        )
        for event in sequence.events:
            reference.serve(event)
        for obj in range(16):
            assert manager.holders(obj) == reference.holders(obj)
        assert manager.account.congestion == reference.account.congestion

    def test_state_memory_bytes_matches_array_sum(self):
        state = AdaptiveState(6, 9)
        expected = (
            state.holder_mask.nbytes
            + state.read_credit.nbytes
            + state.unread_writes.nbytes
            + state.n_holders.nbytes
        )
        assert state.memory_bytes() == expected
