"""Tests for interleaved request + churn replay (dynamic/churn.py)."""

import numpy as np
import pytest

from repro.core.extended_nibble import extended_nibble
from repro.dynamic.churn import replay_with_churn
from repro.dynamic.online import EdgeCounterManager, StaticPlacementManager
from repro.dynamic.sequence import RequestEvent, RequestSequence, sequence_from_pattern
from repro.errors import WorkloadError
from repro.network.builders import balanced_tree, single_bus
from repro.network.mutation import AttachLeaf, ChurnTrace, DetachLeaf, SetBusBandwidth
from repro.workload.generators import uniform_pattern


@pytest.fixture
def instance():
    net = balanced_tree(2, 2, 2)
    pattern = uniform_pattern(net, 8, requests_per_processor=10, seed=0)
    seq = sequence_from_pattern(net, pattern, seed=1)
    placement = extended_nibble(net, pattern).placement
    return net, pattern, seq, placement


class TestReplayWithChurn:
    def test_empty_trace_matches_plain_replay(self, instance):
        net, pattern, seq, placement = instance
        churned = replay_with_churn(
            StaticPlacementManager(net, placement), seq, ChurnTrace([])
        )
        plain = StaticPlacementManager(net, placement).run(seq)
        assert churned.served == len(seq)
        assert churned.dropped == 0
        assert np.array_equal(churned.account.edge_loads, plain.edge_loads)
        assert churned.account.congestion == plain.congestion

    def test_dropped_requests_counted(self, instance):
        net, pattern, seq, placement = instance
        # detach one leaf immediately: all its requests are dropped
        victim = net.processors[0]
        trace = ChurnTrace([(0, DetachLeaf(victim))])
        result = replay_with_churn(
            EdgeCounterManager(net, seq.n_objects), seq, trace
        )
        expected_drops = sum(1 for ev in seq if ev.processor == victim)
        assert result.dropped == expected_drops
        assert result.served == len(seq) - expected_drops
        assert result.network.n_processors == net.n_processors - 1

    def test_attached_leaf_serves_after_arrival(self):
        net = single_bus(3)
        new_ref = net.n_nodes  # reference id of the first attached leaf
        events = [
            RequestEvent(new_ref, 0, "read"),  # before the attach: dropped
            RequestEvent(net.processors[0], 0, "read"),
            RequestEvent(new_ref, 0, "read"),  # after the attach: served
            RequestEvent(new_ref, 0, "read"),
        ]
        seq = RequestSequence(events, 1)
        trace = ChurnTrace([(1, AttachLeaf(0))])
        result = replay_with_churn(EdgeCounterManager(net, 1), seq, trace)
        assert result.dropped == 1
        assert result.served == 3
        assert result.network.n_processors == 4

    def test_rehoming_preserves_single_copy(self, instance):
        net, pattern, seq, placement = instance
        strategy = EdgeCounterManager(net, seq.n_objects)
        # materialise every object on one leaf, then detach that leaf
        victim = net.processors[0]
        for obj in range(seq.n_objects):
            strategy.serve(RequestEvent(victim, obj, "read"))
        trace = ChurnTrace([(0, DetachLeaf(victim))])
        result = replay_with_churn(strategy, seq, trace)
        final_net = result.network
        for obj in range(seq.n_objects):
            holders = strategy.holders(obj)
            assert holders, f"object {obj} lost all copies"
            assert all(final_net.is_processor(h) for h in holders)

    def test_static_placement_rehomed_and_valid(self, instance):
        net, pattern, seq, placement = instance
        victim = [p for p in net.processors
                  if net.degree(next(iter(net.neighbors(p)))) > 2][0]
        strategy = StaticPlacementManager(net, placement)
        result = replay_with_churn(
            strategy, seq, ChurnTrace([(len(seq) // 3, DetachLeaf(victim))])
        )
        final_net = result.network
        strategy._placement.validate_for(final_net, require_leaf_only=True)
        assert result.account.state.verify_bus_loads()

    def test_bandwidth_mutation_changes_congestion_only_via_denominator(
        self, instance
    ):
        net, pattern, seq, placement = instance
        trace = ChurnTrace([(len(seq) // 2, SetBusBandwidth(0, 100.0))])
        churned = replay_with_churn(
            StaticPlacementManager(net, placement), seq, trace
        )
        plain = StaticPlacementManager(net, placement).run(seq)
        # loads are identical; only the relative-load denominators moved
        assert np.array_equal(churned.account.edge_loads, plain.edge_loads)
        assert churned.account.congestion <= plain.congestion

    def test_trajectory_sampling(self, instance):
        net, pattern, seq, placement = instance
        result = replay_with_churn(
            StaticPlacementManager(net, placement),
            seq,
            ChurnTrace([]),
            sample_every=10,
        )
        assert result.trajectory is not None
        assert result.sample_times[-1] == len(seq)
        assert np.all(np.diff(result.trajectory) >= 0)  # static never drops

    def test_out_of_universe_reference_rejected(self):
        net = single_bus(3)
        seq = RequestSequence([RequestEvent(99, 0, "read")], 1)
        with pytest.raises(WorkloadError):
            replay_with_churn(EdgeCounterManager(net, 1), seq, ChurnTrace([]))

    def test_invalid_sample_every_rejected(self, instance):
        net, pattern, seq, placement = instance
        with pytest.raises(WorkloadError):
            replay_with_churn(
                StaticPlacementManager(net, placement), seq, ChurnTrace([]),
                sample_every=0,
            )

    def test_mutations_after_sequence_end_applied(self, instance):
        net, pattern, seq, placement = instance
        trace = ChurnTrace([(len(seq) + 50, AttachLeaf(0))])
        result = replay_with_churn(
            StaticPlacementManager(net, placement), seq, trace
        )
        assert result.n_mutations == 1
        assert result.network.n_processors == net.n_processors + 1