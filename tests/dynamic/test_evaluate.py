"""Tests for the online-strategy evaluation harness."""

import pytest

from repro.dynamic.evaluate import (
    empirical_competitive_ratio,
    evaluate_strategies,
    hindsight_static_manager,
)
from repro.dynamic.online import EdgeCounterManager
from repro.dynamic.sequence import phase_change_sequence, sequence_from_pattern
from repro.network.builders import balanced_tree, single_bus
from repro.workload.generators import uniform_pattern
from repro.workload.traces import producer_consumer_trace, web_cache_trace


class TestEvaluateStrategies:
    def test_standard_records(self):
        net = balanced_tree(2, 2, 2)
        pattern = uniform_pattern(net, 8, requests_per_processor=8, seed=0)
        seq = sequence_from_pattern(net, pattern, seed=1)
        records = evaluate_strategies(net, seq)
        names = {rec.strategy for rec in records}
        assert {"hindsight-static", "edge-counter", "first-touch"} <= names
        for rec in records:
            assert rec.congestion >= 0
            assert rec.total_load == pytest.approx(rec.service_load + rec.management_load)

    def test_extra_strategy_included(self):
        net = single_bus(3)
        pattern = uniform_pattern(net, 4, seed=1)
        seq = sequence_from_pattern(net, pattern, seed=2)
        records = evaluate_strategies(
            net,
            seq,
            extra_strategies={"eager": lambda: EdgeCounterManager(net, 4, object_size=1)},
        )
        assert any(rec.strategy == "eager" for rec in records)

    def test_hindsight_manager_uses_extended_nibble(self):
        net = balanced_tree(2, 2, 2)
        pattern = uniform_pattern(net, 6, seed=3)
        seq = sequence_from_pattern(net, pattern, seed=4)
        manager = hindsight_static_manager(net, seq)
        for obj in range(pattern.n_objects):
            assert manager.holders(obj)  # every object has at least one holder


class TestCompetitiveRatio:
    def test_ratio_reasonable_on_stationary_workload(self):
        net = balanced_tree(2, 2, 2)
        pattern = uniform_pattern(net, 16, requests_per_processor=16, seed=0)
        seq = sequence_from_pattern(net, pattern, seed=1)
        ratio = empirical_competitive_ratio(net, seq, object_size=4)
        # the adaptive strategy should stay within a small constant factor of
        # the hindsight-static reference on a stationary mixed workload
        assert ratio <= 6.0

    def test_rarely_touched_read_objects_are_the_hard_case(self):
        """With few requests per (processor, page) pair the rent-or-buy
        threshold is never reached, so the online strategy legitimately pays
        much more than the hindsight-static replication -- the classic lower
        bound intuition for online replication."""
        net = balanced_tree(2, 2, 2)
        pattern = web_cache_trace(net, n_pages=16, requests_per_processor=16, seed=0)
        seq = sequence_from_pattern(net, pattern, seed=1)
        ratio = empirical_competitive_ratio(net, seq, object_size=4)
        assert ratio >= 1.0

    def test_total_load_objective(self):
        net = single_bus(4)
        pattern = uniform_pattern(net, 6, requests_per_processor=10, seed=2)
        seq = sequence_from_pattern(net, pattern, seed=3)
        ratio = empirical_competitive_ratio(net, seq, objective="total_load")
        assert ratio > 0

    def test_unknown_objective(self):
        net = single_bus(3)
        pattern = uniform_pattern(net, 2, seed=0)
        seq = sequence_from_pattern(net, pattern, seed=0)
        with pytest.raises(ValueError):
            empirical_competitive_ratio(net, seq, objective="latency")

    def test_adaptation_beats_first_touch_on_phase_change(self):
        """When the sharing pattern flips between phases, the adaptive
        strategy should not be (much) worse than never adapting, and usually
        better on total load."""
        net = balanced_tree(2, 2, 2)
        phase1 = producer_consumer_trace(net, n_channels=8, items_per_channel=12, seed=0)
        phase2 = producer_consumer_trace(net, n_channels=8, items_per_channel=12, seed=9)
        seq = phase_change_sequence(net, [phase1, phase2], seed=1)
        records = {rec.strategy: rec for rec in evaluate_strategies(net, seq, object_size=3)}
        adaptive = records["edge-counter"]
        static_first_touch = records["first-touch"]
        assert adaptive.total_load <= 1.5 * static_first_touch.total_load
