"""Tests for request sequences and their generators."""

import numpy as np
import pytest

from repro.dynamic.sequence import (
    RequestEvent,
    RequestSequence,
    phase_change_sequence,
    sequence_from_pattern,
)
from repro.errors import WorkloadError
from repro.network.builders import balanced_tree, single_bus
from repro.workload.generators import uniform_pattern


class TestRequestEvent:
    def test_kinds(self):
        read = RequestEvent(1, 0, "read")
        write = RequestEvent(1, 0, "write")
        assert read.is_read and not read.is_write
        assert write.is_write and not write.is_read

    def test_invalid_kind(self):
        with pytest.raises(WorkloadError):
            RequestEvent(1, 0, "fetch")


class TestRequestSequence:
    def test_basic_container_behaviour(self):
        events = [RequestEvent(1, 0, "read"), RequestEvent(2, 1, "write")]
        seq = RequestSequence(events, n_objects=2)
        assert len(seq) == 2
        assert seq[0].processor == 1
        assert [e.obj for e in seq] == [0, 1]

    def test_object_range_checked(self):
        with pytest.raises(WorkloadError):
            RequestSequence([RequestEvent(1, 5, "read")], n_objects=2)

    def test_validate_for_network(self):
        net = single_bus(3)
        seq = RequestSequence([RequestEvent(net.buses[0], 0, "read")], 1)
        with pytest.raises(WorkloadError):
            seq.validate_for(net)

    def test_prefix_and_concat(self):
        events = [RequestEvent(1, 0, "read")] * 5
        seq = RequestSequence(events, 1)
        assert len(seq.prefix(3)) == 3
        assert len(seq.concatenated_with(seq)) == 10
        other = RequestSequence([], 2)
        with pytest.raises(WorkloadError):
            seq.concatenated_with(other)

    def test_to_pattern_round_trip(self):
        net = single_bus(3)
        pattern = uniform_pattern(net, 4, requests_per_processor=10, seed=0)
        seq = sequence_from_pattern(net, pattern, seed=1)
        assert seq.to_pattern(net) == pattern


class TestGenerators:
    def test_sequence_length_matches_pattern_totals(self):
        net = balanced_tree(2, 2, 2)
        pattern = uniform_pattern(net, 6, requests_per_processor=8, seed=2)
        seq = sequence_from_pattern(net, pattern, seed=0)
        assert len(seq) == int(pattern.totals.sum())

    def test_shuffling_is_deterministic_given_seed(self):
        net = single_bus(3)
        pattern = uniform_pattern(net, 4, seed=3)
        a = sequence_from_pattern(net, pattern, seed=11)
        b = sequence_from_pattern(net, pattern, seed=11)
        assert a.events == b.events

    def test_phase_change_concatenates_phases(self):
        net = single_bus(3)
        phase1 = uniform_pattern(net, 4, requests_per_processor=5, seed=0)
        phase2 = uniform_pattern(net, 4, requests_per_processor=5, seed=1)
        seq = phase_change_sequence(net, [phase1, phase2], seed=2)
        assert len(seq) == int(phase1.totals.sum() + phase2.totals.sum())
        # aggregate equals the sum of the phases
        agg = seq.to_pattern(net)
        assert np.array_equal(agg.reads, phase1.reads + phase2.reads)
        assert np.array_equal(agg.writes, phase1.writes + phase2.writes)

    def test_phase_change_requires_matching_objects(self):
        net = single_bus(3)
        with pytest.raises(WorkloadError):
            phase_change_sequence(
                net,
                [uniform_pattern(net, 4, seed=0), uniform_pattern(net, 5, seed=0)],
            )
        with pytest.raises(WorkloadError):
            phase_change_sequence(net, [])
