"""Tests for the online strategies and their cost accounting."""

import numpy as np
import pytest

from repro.core.congestion import compute_loads
from repro.core.extended_nibble import extended_nibble
from repro.core.placement import Placement
from repro.dynamic.online import EdgeCounterManager, OnlineCostAccount, StaticPlacementManager
from repro.dynamic.sequence import RequestEvent, RequestSequence, sequence_from_pattern
from repro.errors import PlacementError, WorkloadError
from repro.network.builders import balanced_tree, single_bus, star_of_buses
from repro.workload.generators import uniform_pattern


class TestCostAccount:
    def test_path_and_steiner_charging(self):
        net = star_of_buses(2, 2)
        rooted = net.rooted()
        account = OnlineCostAccount(net)
        p, q = net.processors[0], net.processors[-1]
        account.charge_path(rooted, p, q, amount=2.0)
        assert account.total_load == 2.0 * rooted.distance(p, q)
        account.charge_steiner(rooted, [p, q], amount=1.0, management=True)
        assert account.management_units > 0
        assert account.congestion > 0

    def test_zero_amount_ignored(self):
        net = single_bus(3)
        rooted = net.rooted()
        account = OnlineCostAccount(net)
        account.charge_path(rooted, net.processors[0], net.processors[1], amount=0)
        account.charge_path(rooted, net.processors[0], net.processors[0], amount=5)
        assert account.total_load == 0.0

    def test_fractional_amounts_rejected_at_api_boundary(self):
        # the integer-valued-loads invariant (ARCHITECTURE.md invariant 2)
        # is enforced by the cost account, not just by convention
        net = single_bus(3)
        rooted = net.rooted()
        account = OnlineCostAccount(net)
        p, q = net.processors[0], net.processors[1]
        with pytest.raises(WorkloadError, match="integer-valued"):
            account.charge_path(rooted, p, q, amount=0.5)
        with pytest.raises(WorkloadError, match="integer-valued"):
            account.charge_steiner(rooted, [p, q], amount=1.5)
        with pytest.raises(WorkloadError, match="integer-valued"):
            account.charge_pairs([p], [q], [0.25])
        assert account.total_load == 0.0

    def test_integer_valued_floats_accepted_and_booked_as_ints(self):
        net = single_bus(3)
        rooted = net.rooted()
        account = OnlineCostAccount(net)
        p, q = net.processors[0], net.processors[1]
        account.charge_path(rooted, p, q, amount=3.0)
        account.charge_pairs([p], [q], np.array([2.0]))
        assert isinstance(account.service_units, int)
        assert account.service_units == 5 * rooted.distance(p, q)


class TestStaticPlacementManager:
    def test_matches_static_congestion_model(self):
        """Serving a shuffled pattern from a fixed placement reproduces the
        static cost model's loads exactly (nearest-copy assignment)."""
        net = balanced_tree(2, 2, 2)
        pattern = uniform_pattern(net, 8, requests_per_processor=8, seed=0)
        seq = sequence_from_pattern(net, pattern, seed=1)
        result = extended_nibble(net, pattern)
        manager = StaticPlacementManager(net, result.placement)
        account = manager.run(seq)
        static = compute_loads(net, pattern, result.placement)
        assert np.allclose(account.edge_loads, static.edge_loads)
        assert account.congestion == pytest.approx(static.congestion)

    def test_rejects_bus_holders(self):
        net = single_bus(3)
        with pytest.raises(PlacementError):
            StaticPlacementManager(net, Placement.single_holder([net.buses[0]]))

    def test_holders_are_fixed(self):
        net = single_bus(3)
        placement = Placement.single_holder([net.processors[0], net.processors[1]])
        manager = StaticPlacementManager(net, placement)
        seq = RequestSequence(
            [RequestEvent(net.processors[2], 0, "read")] * 5, n_objects=2
        )
        manager.run(seq)
        assert manager.holders(0) == {net.processors[0]}


class TestEdgeCounterManager:
    def test_first_touch_places_object_locally(self):
        net = single_bus(3)
        manager = EdgeCounterManager(net, 1, object_size=3)
        p = net.processors[0]
        manager.serve(RequestEvent(p, 0, "read"))
        assert manager.holders(0) == {p}
        # a local read costs nothing
        assert manager.account.total_load == 0.0

    def test_repeated_remote_reads_trigger_replication(self):
        net = single_bus(3)
        p_owner, p_reader, _ = net.processors
        manager = EdgeCounterManager(net, 1, object_size=3)
        manager.serve(RequestEvent(p_owner, 0, "write"))
        for _ in range(3):
            manager.serve(RequestEvent(p_reader, 0, "read"))
        assert p_reader in manager.holders(0)
        # afterwards, reads from the replica are free
        before = manager.account.total_load
        manager.serve(RequestEvent(p_reader, 0, "read"))
        assert manager.account.total_load == before

    def test_writes_invalidate_unused_replicas(self):
        net = single_bus(3)
        p_owner, p_reader, _ = net.processors
        manager = EdgeCounterManager(net, 1, object_size=2, invalidation_patience=2)
        manager.serve(RequestEvent(p_owner, 0, "write"))
        for _ in range(2):
            manager.serve(RequestEvent(p_reader, 0, "read"))
        assert p_reader in manager.holders(0)
        for _ in range(3):
            manager.serve(RequestEvent(p_owner, 0, "write"))
        assert p_reader not in manager.holders(0)
        assert len(manager.holders(0)) >= 1

    def test_persistent_remote_writer_attracts_migration(self):
        net = single_bus(3)
        p_owner, p_writer, _ = net.processors
        manager = EdgeCounterManager(net, 1, object_size=2)
        manager.serve(RequestEvent(p_owner, 0, "read"))
        for _ in range(4):
            manager.serve(RequestEvent(p_writer, 0, "write"))
        assert manager.holders(0) == {p_writer}

    def test_invalid_parameters(self):
        net = single_bus(3)
        with pytest.raises(WorkloadError):
            EdgeCounterManager(net, 1, object_size=0)
        with pytest.raises(WorkloadError):
            EdgeCounterManager(net, 1, invalidation_patience=0)
        with pytest.raises(PlacementError):
            EdgeCounterManager(
                net, 2, initial_placement=Placement.single_holder([net.processors[0]])
            )

    def test_initial_placement_respected(self):
        net = single_bus(3)
        placement = Placement.single_holder([net.processors[1]])
        manager = EdgeCounterManager(net, 1, initial_placement=placement)
        assert manager.holders(0) == {net.processors[1]}

    def test_sequence_with_too_many_objects_rejected(self):
        net = single_bus(3)
        manager = EdgeCounterManager(net, 1)
        seq = RequestSequence([RequestEvent(net.processors[0], 1, "read")], 2)
        with pytest.raises(WorkloadError):
            manager.run(seq)


class TestIntegerValidationHoist:
    """The invariant-2 checks run once per batch, not per event, and the
    scalar path short-circuits genuine ints -- without loosening anything."""

    def test_numpy_integer_amounts_accepted(self):
        net = single_bus(3)
        rooted = net.rooted()
        account = OnlineCostAccount(net)
        p, q = net.processors[0], net.processors[1]
        account.charge_path(rooted, p, q, amount=np.int64(2))
        assert isinstance(account.service_units, int)
        assert account.service_units == 2 * rooted.distance(p, q)

    def test_integer_dtype_batches_skip_the_modulo_scan(self):
        from repro.dynamic.online import _integer_weights

        out = _integer_weights(np.array([1, 2, 3], dtype=np.int64))
        assert out.dtype == np.float64
        assert out.tolist() == [1.0, 2.0, 3.0]

    def test_fractional_batch_weights_still_raise(self):
        from repro.dynamic.online import _integer_weights

        with pytest.raises(WorkloadError, match="integer-valued"):
            _integer_weights(np.array([1.0, 2.5]))
        net = single_bus(3)
        account = OnlineCostAccount(net)
        p, q = net.processors[0], net.processors[1]
        with pytest.raises(WorkloadError, match="integer-valued"):
            account.charge_pairs([p], [q], np.array([0.5]))
        assert account.total_load == 0.0

    def test_fractional_scalar_amounts_still_raise(self):
        from repro.dynamic.online import _integer_amount

        with pytest.raises(WorkloadError, match="integer-valued"):
            _integer_amount(2.5)
        assert _integer_amount(7) == 7
        assert _integer_amount(3.0) == 3
