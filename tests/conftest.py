"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import random
import sys
from pathlib import Path

# Bare-checkout bootstrap (kept in sync with benchmarks/conftest.py): make
# ``import repro`` work without an installed package or PYTHONPATH=src.
_SRC = str(Path(__file__).resolve().parent.parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

import numpy as np
import pytest
from hypothesis import strategies as st

from repro.network.builders import (
    balanced_tree,
    hardness_gadget,
    path_of_buses,
    random_tree,
    single_bus,
    star_of_buses,
)
from repro.network.tree import HierarchicalBusNetwork
from repro.workload.access import AccessPattern
from repro.workload.generators import random_sparse_pattern


# --------------------------------------------------------------------------- #
# deterministic seeding (kept in sync with benchmarks/conftest.py)
# --------------------------------------------------------------------------- #
@pytest.fixture(autouse=True)
def _seed_global_rngs():
    """Reset the global RNGs before every test.

    All library code takes explicit seeds or Generator objects; this guards
    the tests themselves (and any future code path falling back to the
    global state) against order-dependent randomness in CI.
    """
    random.seed(0)
    np.random.seed(0)


# --------------------------------------------------------------------------- #
# deterministic fixture networks
# --------------------------------------------------------------------------- #
@pytest.fixture
def bus4() -> HierarchicalBusNetwork:
    """The 4-processor single-bus gadget network of the NP-hardness proof."""
    return hardness_gadget()


@pytest.fixture
def small_bus() -> HierarchicalBusNetwork:
    """A single bus with three processors."""
    return single_bus(3)


@pytest.fixture
def two_level_tree() -> HierarchicalBusNetwork:
    """A root bus with two child buses, two processors each (Figure 2 shape)."""
    return star_of_buses(2, 2)


@pytest.fixture
def deep_tree() -> HierarchicalBusNetwork:
    """A path of four buses with one processor each (height 5)."""
    return path_of_buses(4, leaves_per_bus=1)


@pytest.fixture
def medium_tree() -> HierarchicalBusNetwork:
    """Balanced binary bus tree of depth 3 with two processors per leaf bus."""
    return balanced_tree(2, 3, 2)


@pytest.fixture
def line_network() -> HierarchicalBusNetwork:
    """Two processors connected through a single bus (smallest valid network)."""
    return single_bus(2)


@pytest.fixture
def simple_pattern(small_bus) -> AccessPattern:
    """Deterministic small pattern on the 3-processor bus."""
    procs = list(small_bus.processors)
    return AccessPattern.from_requests(
        small_bus,
        2,
        [
            (procs[0], 0, 4, 2),
            (procs[1], 0, 1, 1),
            (procs[2], 1, 3, 0),
            (procs[0], 1, 0, 2),
        ],
    )


# --------------------------------------------------------------------------- #
# helpers used by many tests
# --------------------------------------------------------------------------- #
def make_instance(seed: int, n_buses: int = 5, n_procs: int = 8, n_objects: int = 6):
    """A deterministic random (network, pattern) instance."""
    net = random_tree(n_buses, n_procs, seed=seed)
    pat = random_sparse_pattern(net, n_objects, seed=seed)
    return net, pat


@pytest.fixture
def instance_factory():
    """Factory fixture returning :func:`make_instance`."""
    return make_instance


# --------------------------------------------------------------------------- #
# hypothesis strategies
# --------------------------------------------------------------------------- #
@st.composite
def networks(draw, max_buses: int = 6, max_processors: int = 10):
    """Random hierarchical bus networks (via the random_tree builder)."""
    n_buses = draw(st.integers(min_value=1, max_value=max_buses))
    n_procs = draw(st.integers(min_value=2, max_value=max_processors))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    return random_tree(n_buses, n_procs, seed=seed)


@st.composite
def instances(
    draw,
    max_buses: int = 5,
    max_processors: int = 8,
    max_objects: int = 6,
    max_frequency: int = 8,
):
    """Random (network, access pattern) instances."""
    network = draw(networks(max_buses=max_buses, max_processors=max_processors))
    n_objects = draw(st.integers(min_value=1, max_value=max_objects))
    n_procs = network.n_processors
    reads = np.zeros((network.n_nodes, n_objects), dtype=np.int64)
    writes = np.zeros((network.n_nodes, n_objects), dtype=np.int64)
    procs = list(network.processors)
    entries = draw(
        st.lists(
            st.tuples(
                st.integers(0, n_procs - 1),
                st.integers(0, n_objects - 1),
                st.integers(0, max_frequency),
                st.integers(0, max_frequency),
            ),
            min_size=0,
            max_size=3 * n_objects,
        )
    )
    for proc_idx, obj, r, w in entries:
        reads[procs[proc_idx], obj] += r
        writes[procs[proc_idx], obj] += w
    pattern = AccessPattern(reads, writes)
    return network, pattern
