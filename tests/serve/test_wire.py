"""Wire-format tests: encoding round-trips and loud failure on junk."""

from __future__ import annotations

import pytest

from repro.dynamic.sequence import READ, WRITE, RequestEvent
from repro.errors import SimulationError
from repro.network.mutation import (
    AttachLeaf,
    DetachLeaf,
    SetBusBandwidth,
    SetEdgeBandwidth,
    SplitBus,
)
from repro.serve.wire import (
    decode_events,
    decode_message,
    encode_events,
    encode_message,
    mutation_from_dict,
    mutation_to_dict,
)

MUTATIONS = [
    SetEdgeBandwidth(2, 5, 0.25),
    SetBusBandwidth(1, 4.0),
    AttachLeaf(0),
    AttachLeaf(3, name="p99", bandwidth=2.5),
    DetachLeaf(7),
    SplitBus(2, moved=(4, 5, 6)),
    SplitBus(1, moved=(9,), name="annex", bus_bandwidth=0.5, trunk_bandwidth=3.0),
]


class TestMutationSerialisation:
    @pytest.mark.parametrize("mutation", MUTATIONS, ids=lambda m: type(m).__name__)
    def test_roundtrip_is_exact(self, mutation):
        assert mutation_from_dict(mutation_to_dict(mutation)) == mutation

    @pytest.mark.parametrize("mutation", MUTATIONS, ids=lambda m: type(m).__name__)
    def test_encoding_is_json_stable(self, mutation):
        import json

        document = mutation_to_dict(mutation)
        assert mutation_from_dict(json.loads(json.dumps(document))) == mutation

    def test_unknown_kind_is_rejected(self):
        with pytest.raises(SimulationError, match="unknown mutation kind"):
            mutation_from_dict({"kind": "reverse-the-polarity"})

    def test_malformed_document_is_rejected(self):
        with pytest.raises(SimulationError, match="malformed mutation"):
            mutation_from_dict({"kind": "detach-leaf"})  # missing processor


class TestEventEncoding:
    def test_roundtrip(self):
        events = [
            RequestEvent(0, 3, READ),
            RequestEvent(5, 0, WRITE),
            RequestEvent(2, 2, READ),
        ]
        assert decode_events(encode_events(events)) == events

    def test_long_kind_names_also_decode(self):
        assert decode_events([[1, 2, "read"], [3, 4, "write"]]) == [
            RequestEvent(1, 2, READ),
            RequestEvent(3, 4, WRITE),
        ]

    def test_malformed_rows_are_loud(self):
        with pytest.raises(SimulationError, match="malformed event row"):
            decode_events([[1, 2, "x"]])
        with pytest.raises(SimulationError, match="malformed event row"):
            decode_events([[1, 2]])


class TestMessageFraming:
    def test_roundtrip(self):
        message = {"type": "requests", "id": 7, "events": [[0, 1, "r"]]}
        line = encode_message(message)
        assert line.endswith(b"\n")
        assert decode_message(line) == message

    def test_non_object_payload_is_rejected(self):
        with pytest.raises(SimulationError):
            decode_message(b"[1,2,3]\n")

    def test_junk_bytes_are_rejected(self):
        with pytest.raises(SimulationError, match="malformed wire line"):
            decode_message(b"{nope\n")

    def test_missing_type_is_rejected(self):
        with pytest.raises(SimulationError):
            decode_message(b'{"id": 4}\n')
