"""ServeSession / MicroBatcher semantics (no sockets involved)."""

from __future__ import annotations

import pytest

from repro.dynamic.online import EdgeCounterManager
from repro.dynamic.sequence import READ, WRITE, RequestEvent
from repro.errors import SimulationError, WorkloadError
from repro.network.builders import balanced_tree
from repro.serve.batcher import MicroBatcher, ServeSession, build_session
from repro.sim.scenario import scenario_spec


def make_session(**kwargs):
    net = balanced_tree(2, 2, 2)
    return ServeSession(EdgeCounterManager(net, 4), n_objects=4, **kwargs)


def req(msg_id, *rows):
    return {"type": "requests", "id": msg_id, "events": list(rows)}


class TestServeSession:
    def test_feed_returns_live_metrics(self):
        session = make_session()
        ack = session.feed([RequestEvent(3, 0, READ), RequestEvent(4, 1, WRITE)])
        assert ack["position"] == 2
        assert ack["served"] == 2
        assert ack["dropped"] == 0
        assert ack["congestion"] >= 0.0

    def test_object_out_of_universe_is_rejected_atomically(self):
        session = make_session()
        with pytest.raises(WorkloadError):
            session.feed([RequestEvent(3, 9, READ)])
        assert session.position == 0

    def test_bus_node_reference_is_rejected_not_a_crash(self):
        # node 0 is the root bus: in range, but feeding it to the serving
        # kernels would index out of bounds -- the stream must be loud
        session = make_session()
        with pytest.raises(WorkloadError, match="bus node"):
            session.feed([RequestEvent(0, 0, READ)])
        assert session.position == 0

    def test_finish_summary_shape(self):
        session = make_session()
        session.feed([RequestEvent(3, 0, READ)])
        summary = session.finish()
        assert summary["n_events"] == 1
        assert summary["served"] == 1
        assert summary["n_mutations"] == 0
        assert "loads_sha256" in summary


class TestMicroBatcher:
    def test_requests_buffer_until_drain(self):
        session = make_session()
        batcher = MicroBatcher(session, max_batch=100)
        assert batcher.add(req(1, [3, 0, "r"])) == []
        assert batcher.add(req(2, [4, 1, "w"])) == []
        assert batcher.buffered == 2
        ack = batcher.drain()
        assert ack["type"] == "ack"
        assert ack["id"] == 2  # covers both buffered messages
        assert ack["position"] == 2
        assert batcher.drain() is None

    def test_overflowing_batches_flush_in_max_batch_chunks(self):
        session = make_session()
        batcher = MicroBatcher(session, max_batch=3)
        rows = [[3, 0, "r"]] * 7
        replies = batcher.add(req(1, *rows))
        assert [r["position"] for r in replies] == [3, 6]
        assert batcher.buffered == 1

    def test_mutation_is_a_barrier(self):
        session = make_session()
        batcher = MicroBatcher(session, max_batch=100)
        batcher.add(req(1, [3, 0, "r"]))
        replies = batcher.add(
            {"type": "mutation", "id": 2, "op": {"kind": "detach-leaf",
                                                 "processor": 3}}
        )
        # buffered events drained first, then the mutation scheduled
        assert [r["type"] for r in replies] == ["ack", "ack"]
        assert replies[0]["position"] == 1
        assert replies[1]["scheduled"] is True

    def test_flush_acks_even_when_empty(self):
        session = make_session()
        batcher = MicroBatcher(session, max_batch=100)
        (reply,) = batcher.add({"type": "flush", "id": 5})
        assert reply == {"type": "ack", "id": 5, "position": 0}

    def test_end_drains_and_finishes(self):
        session = make_session()
        batcher = MicroBatcher(session, max_batch=100)
        batcher.add(req(1, [3, 0, "r"], [4, 0, "r"]))
        replies = batcher.add({"type": "end", "id": 2})
        assert [r["type"] for r in replies] == ["ack", "end"]
        assert replies[1]["summary"]["n_events"] == 2
        assert batcher.finished
        with pytest.raises(SimulationError, match="already ended"):
            batcher.add(req(3, [3, 0, "r"]))

    def test_unknown_message_type_is_loud(self):
        batcher = MicroBatcher(make_session(), max_batch=4)
        with pytest.raises(SimulationError, match="unknown message type"):
            batcher.add({"type": "teleport"})


class TestBuildSession:
    def test_spec_session_uses_spec_strategy_names(self):
        spec = scenario_spec("zipf", seed=0, small=True)
        session = build_session(spec)
        info = session.session_info()
        assert info["scenario"] == "zipf"
        assert info["strategy"]  # the spec's first strategy label
        assert info["n_objects"] > 0

    def test_unknown_strategy_label_is_rejected(self):
        spec = scenario_spec("zipf", seed=0, small=True)
        with pytest.raises(SimulationError, match="no strategy"):
            build_session(spec, strategy="does-not-exist")
