"""End-to-end server tests over a loopback socket.

One daemon-thread server per test (port 0 = OS-assigned), the loadgen
client as the driver -- the same path the CI smoke job exercises.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.errors import SimulationError
from repro.serve import PlacementServer, ServerThread, replay_recording
from repro.serve.loadgen import loadgen, workload_from_spec
from repro.serve.recorder import load_recording
from repro.sim.scenario import scenario_spec


@pytest.fixture(scope="module")
def spec():
    return scenario_spec("storm", seed=0, small=True)


def run_server(spec, **kwargs):
    kwargs.setdefault("max_sessions", 1)
    return ServerThread(PlacementServer(spec, **kwargs))


class TestServedStream:
    def test_loadgen_roundtrip_reports_summary_and_latency(self, spec):
        events, mutations = workload_from_spec(spec)
        with run_server(spec) as (host, port):
            stats = loadgen(host, port, events, mutations, batch=5)
        summary = stats["summary"]
        assert stats["n_events"] == len(events)
        assert summary["n_events"] == len(events)
        assert summary["n_mutations"] == len(mutations)
        assert summary["served"] + summary["dropped"] == len(events)
        assert stats["events_per_sec"] > 0
        assert stats["latency_ms"]["p99"] >= stats["latency_ms"]["p50"] >= 0

    def test_served_equals_replayed_from_recording(self, spec, tmp_path):
        events, mutations = workload_from_spec(spec)
        with run_server(spec, record_dir=tmp_path) as (host, port):
            stats = loadgen(host, port, events, mutations, batch=7)
        (recording,) = sorted(tmp_path.glob("session-*.jsonl"))
        replayed, served = replay_recording(recording)
        assert served == stats["summary"]
        assert replayed == served  # ARCHITECTURE invariant 10

    def test_repeat_streams_are_positionally_extended(self, spec, tmp_path):
        events, mutations = workload_from_spec(spec)
        with run_server(spec, record_dir=tmp_path) as (host, port):
            stats = loadgen(host, port, events, mutations, batch=11, repeat=3)
        assert stats["summary"]["n_events"] == 3 * len(events)
        replayed, served = replay_recording(
            sorted(tmp_path.glob("session-*.jsonl"))[0]
        )
        assert replayed == served

    def test_rate_limit_caps_throughput(self, spec):
        events, _ = workload_from_spec(spec)
        rate = 40.0
        with run_server(spec) as (host, port):
            stats = loadgen(host, port, events, rate=rate, batch=4)
        # pacing keeps the achieved rate near (and never far above) target
        assert stats["events_per_sec"] <= rate * 1.5


class TestServerEdges:
    def test_malformed_message_gets_error_reply(self, spec):
        async def drive(host, port):
            reader, writer = await asyncio.open_connection(host, port)
            await reader.readline()  # session hello
            writer.write(b'{"type": "teleport", "id": 1}\n')
            await writer.drain()
            reply = json.loads(await reader.readline())
            writer.close()
            return reply

        with run_server(spec) as (host, port):
            reply = asyncio.run(drive(host, port))
        assert reply["type"] == "error"
        assert "teleport" in reply["message"]

    def test_disconnect_without_end_leaves_aborted_recording(self, spec, tmp_path):
        event = workload_from_spec(spec)[0][0]
        row = [event.processor, event.obj, "r"]

        async def drive(host, port):
            reader, writer = await asyncio.open_connection(host, port)
            await reader.readline()
            message = {"type": "requests", "id": 1, "events": [row]}
            writer.write(json.dumps(message).encode() + b"\n")
            await writer.drain()
            await reader.readline()  # the ack
            writer.close()
            await writer.wait_closed()

        server = PlacementServer(spec, record_dir=tmp_path)
        thread = ServerThread(server)
        host, port = thread.start()
        try:
            asyncio.run(drive(host, port))
        finally:
            thread.stop()
        (path,) = tmp_path.glob("session-*.jsonl")
        recording = load_recording(path)
        assert not recording.complete
        assert recording.aborted is not None
        assert len(recording.events) == 1

    def test_loadgen_surfaces_server_errors(self, spec):
        events = [type(e)(processor=10_000, obj=e.obj, kind=e.kind)
                  for e in workload_from_spec(spec)[0][:1]]
        with run_server(spec) as (host, port):
            with pytest.raises(SimulationError, match="server reported"):
                loadgen(host, port, events, batch=1)

    def test_session_hello_carries_universe_sizes(self, spec):
        async def drive(host, port):
            reader, writer = await asyncio.open_connection(host, port)
            hello = json.loads(await reader.readline())
            writer.write(b'{"type": "end", "id": 1}\n')
            await writer.drain()
            end = json.loads(await reader.readline())
            writer.close()
            return hello, end

        with run_server(spec) as (host, port):
            hello, end = asyncio.run(drive(host, port))
        assert hello["type"] == "session"
        assert hello["scenario"] == "storm"
        assert hello["n_nodes"] > 0 and hello["n_objects"] > 0
        assert end["type"] == "end"
        assert end["summary"]["n_events"] == 0
