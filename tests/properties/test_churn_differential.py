"""Differential fuzz harness: incremental repair equals from-scratch rebuild.

Extends invariant 1 of ARCHITECTURE.md to the mutation layer (invariant 5:
"repair equals rebuild, bit-for-bit").  Seeded random interleavings of
topology mutations and request replay are driven through the incremental
repair paths of ``RootedTree`` / ``PathMatrix`` / ``LoadState``; after
every mutation the repaired substrate must equal a from-scratch rebuild:

* the repaired rooted view matches a fresh ``RootedTree`` traversal
  (parents, parent edges, depths, subtree sizes, children, and a valid
  preorder);
* the repaired ``PathMatrix`` matches a fresh construction **bit-for-bit**
  (CSR root-path incidence, binary-lifting table, endpoint arrays);
* the repaired ``LoadState`` matches a fresh state charged with the
  surviving edge loads (fused loads, denominators, congestion, incident
  CSR) and its nearest-copy resolution agrees with the fresh path matrix;
* snapshot/rollback round-trips still work on the repaired state, while
  rolling back across a mutation raises a clear ``ReproError``.

The seed matrix is extendable via the ``REPRO_CHURN_SEEDS`` environment
variable (comma-separated integers), which CI uses to pin a fixed matrix.
"""

import os

import numpy as np
import pytest

from repro.core.loadstate import LoadState
from repro.core.pathmatrix import PathMatrix
from repro.errors import MutationError, ReproError
from repro.network.builders import balanced_tree, random_tree
from repro.network.mutation import AttachLeaf, DetachLeaf, SplitBus, apply_mutation
from repro.network.rooted import RootedTree
from repro.workload.churn import random_valid_mutation

DEFAULT_SEEDS = (0, 1, 2, 3)


def _seed_matrix():
    raw = os.environ.get("REPRO_CHURN_SEEDS", "")
    if raw.strip():
        return tuple(int(s) for s in raw.split(","))
    return DEFAULT_SEEDS


def fresh_substrate(net):
    """From-scratch rooted view and path matrix, bypassing repair caches."""
    rooted = RootedTree(net, net.canonical_root())
    return rooted, PathMatrix(rooted)


def charge_random_paths(state, ground, rooted, procs, rng, n):
    """Charge n random request paths into state and the ground-truth vector."""
    for _ in range(n):
        u, v = (int(x) for x in rng.choice(procs, size=2))
        state.apply_path(u, v)
        for eid in rooted.path_edge_ids(u, v):
            ground[eid] += 1


def assert_rooted_equals_fresh(repaired, fresh):
    assert np.array_equal(repaired._parent, fresh._parent)
    assert np.array_equal(repaired._parent_edge, fresh._parent_edge)
    assert np.array_equal(repaired._depth, fresh._depth)
    assert np.array_equal(repaired._subtree_size, fresh._subtree_size)
    assert repaired._height == fresh._height
    assert repaired.root == fresh.root
    repaired._ensure_children()
    assert repaired._children == fresh._children
    # the repaired order must still be a preorder (parents first)
    position = {int(v): i for i, v in enumerate(repaired._order)}
    for v in range(fresh.network.n_nodes):
        parent = fresh.parent(v)
        if parent >= 0:
            assert position[parent] < position[v]


def assert_pathmatrix_equals_fresh(repaired, fresh):
    assert np.array_equal(repaired._up, fresh._up)
    assert np.array_equal(repaired._rp_indptr, fresh._rp_indptr)
    assert np.array_equal(repaired._rp_edges, fresh._rp_edges)
    assert np.array_equal(repaired._rp_nodes, fresh._rp_nodes)
    assert np.array_equal(repaired._edge_u, fresh._edge_u)
    assert np.array_equal(repaired._edge_v, fresh._edge_v)
    assert np.array_equal(repaired._bus_mask, fresh._bus_mask)


def assert_loadstate_equals_rebuild(state, net, fresh_rooted, ground):
    rebuilt = LoadState(net, rooted=fresh_rooted)
    rebuilt.apply_edge_loads(ground)
    assert np.array_equal(state._loads, rebuilt._loads)
    assert np.array_equal(state._denom, rebuilt._denom)
    assert state.congestion == rebuilt.congestion
    assert np.array_equal(state._inc_edges, rebuilt._inc_edges)
    assert np.array_equal(state._inc_indptr, rebuilt._inc_indptr)
    assert state.verify_bus_loads()


class TestChurnDifferential:
    """Seeded mutation/request interleavings, checked against rebuilds."""

    @pytest.mark.parametrize("seed", _seed_matrix())
    def test_repair_equals_rebuild(self, seed):
        rng = np.random.default_rng(seed)
        net = random_tree(
            int(rng.integers(2, 7)), int(rng.integers(4, 11)), seed=seed
        )
        state = LoadState(net)
        ground = np.zeros(net.n_edges)
        fresh_rooted, fresh_pm = fresh_substrate(net)
        procs = list(net.processors)
        charge_random_paths(state, ground, fresh_rooted, procs, rng, 24)

        for _ in range(10):
            mutation = random_valid_mutation(net, rng)
            outcome = apply_mutation(net, mutation)
            state.repair(outcome)
            net = outcome.network
            ground = outcome.mapped_edge_loads(ground)
            procs = list(net.processors)

            fresh_rooted, fresh_pm = fresh_substrate(net)
            assert_rooted_equals_fresh(state.rooted, fresh_rooted)
            assert_pathmatrix_equals_fresh(state.pm, fresh_pm)
            assert_loadstate_equals_rebuild(state, net, fresh_rooted, ground)

            # nearest-copy tables resolve identically on the repaired matrix
            candidates = sorted(
                int(c) for c in rng.choice(procs, size=min(3, len(procs)), replace=False)
            )
            nodes = np.asarray(procs, dtype=np.int64)
            assert np.array_equal(
                state.pm.nearest_in_set(nodes, candidates),
                fresh_pm.nearest_in_set(nodes, candidates),
            )

            # keep replaying requests on the repaired substrate
            charge_random_paths(state, ground, fresh_rooted, procs, rng, 10)

        # the final interleaved state still equals a rebuild
        assert_loadstate_equals_rebuild(state, net, fresh_substrate(net)[0], ground)

    def test_split_repair_with_root_inside_moved_subtree(self):
        """Regression: a view rooted inside the moved subtree must rebuild.

        The split is validated against the canonical rooting; for a
        substrate rooted inside a moved subtree the structure *above* the
        split bus changes, so the CSR surgery does not apply.  RootedTree
        falls back to a fresh traversal -- PathMatrix must mirror that
        fallback instead of corrupting its root-path incidence.
        """
        net = balanced_tree(2, 3, 2)
        canonical = net.rooted()
        moved_bus = next(b for b in net.buses if canonical.parent(b) == 0)
        view = net.rooted(moved_bus)  # rooted inside the subtree being moved
        state = LoadState(net, rooted=view)
        procs = list(net.processors)
        ground = np.zeros(net.n_edges)
        rng = np.random.default_rng(0)
        charge_random_paths(state, ground, view, procs, rng, 16)

        outcome = apply_mutation(net, SplitBus(0, (moved_bus,)))
        state.repair(outcome)
        new_net = outcome.network
        new_root = int(outcome.node_map[moved_bus])
        fresh_rooted = RootedTree(new_net, new_root)
        fresh_pm = PathMatrix(fresh_rooted)
        assert_pathmatrix_equals_fresh(state.pm, fresh_pm)
        ground = outcome.mapped_edge_loads(ground)
        assert_loadstate_equals_rebuild(state, new_net, fresh_rooted, ground)
        # the repaired substrate keeps serving charges correctly
        charge_random_paths(
            state, ground, fresh_rooted, list(new_net.processors), rng, 8
        )
        assert_loadstate_equals_rebuild(state, new_net, fresh_rooted, ground)

    @pytest.mark.parametrize("seed", _seed_matrix()[:2])
    def test_snapshot_rollback_roundtrip_between_mutations(self, seed):
        rng = np.random.default_rng(seed)
        net = random_tree(3, 8, seed=seed)
        state = LoadState(net)
        procs = list(net.processors)
        ground = np.zeros(net.n_edges)
        rooted = RootedTree(net, net.canonical_root())
        charge_random_paths(state, ground, rooted, procs, rng, 12)

        for _ in range(5):
            mutation = random_valid_mutation(net, rng)
            outcome = apply_mutation(net, mutation)
            state.repair(outcome)
            net = outcome.network
            ground = outcome.mapped_edge_loads(ground)
            procs = list(net.processors)
            rooted = RootedTree(net, net.canonical_root())

            # a round-trip on the repaired state restores it exactly
            before_loads = state._loads.copy()
            before_congestion = state.congestion
            snap = state.snapshot()
            charge_random_paths(state, ground.copy(), rooted, procs, rng, 8)
            state.rollback(snap)
            assert np.array_equal(state._loads, before_loads)
            assert state.congestion == before_congestion

            charge_random_paths(state, ground, rooted, procs, rng, 4)


class TestRollbackAcrossMutationGuard:
    """Satellite: snapshots never cross a topology mutation, loads never corrupt."""

    def _open_snapshot_state(self):
        net = random_tree(3, 8, seed=0)
        state = LoadState(net)
        procs = list(net.processors)
        state.apply_path(procs[0], procs[1])
        snap = state.snapshot()
        state.apply_path(procs[1], procs[2])  # tentative delta
        outcome = apply_mutation(net, AttachLeaf(int(net.buses[0])))
        return state, snap, outcome

    def test_repair_with_open_snapshot_raises(self):
        # repairing would silently commit the journalled tentative delta
        state, _snap, outcome = self._open_snapshot_state()
        with pytest.raises(ReproError, match="snapshots are open"):
            state.repair(outcome)

    def test_refused_repair_leaves_snapshot_usable(self):
        state, snap, outcome = self._open_snapshot_state()
        with pytest.raises(MutationError):
            state.repair(outcome)
        # the state is untouched: the tentative delta can still be undone
        state.rollback(snap)
        assert state.verify_bus_loads()
        assert state.network is outcome.old_network

    def test_rollback_of_pre_repair_snapshot_raises(self):
        state, snap, outcome = self._open_snapshot_state()
        state.commit(snap)  # close the snapshot, keeping the delta
        state.repair(outcome)
        with pytest.raises(ReproError, match="topology mutation"):
            state.rollback(snap)

    def test_commit_of_pre_repair_snapshot_raises(self):
        state, snap, outcome = self._open_snapshot_state()
        state.commit(snap)
        state.repair(outcome)
        with pytest.raises(MutationError):
            state.commit(snap)

    def test_loads_not_corrupted_by_refused_rollback(self):
        state, snap, outcome = self._open_snapshot_state()
        state.commit(snap)
        state.repair(outcome)
        before = state._loads.copy()
        with pytest.raises(ReproError):
            state.rollback(snap)
        assert np.array_equal(state._loads, before)
        assert state.verify_bus_loads()

    def test_detach_also_guards(self):
        net = random_tree(2, 6, seed=1)
        state = LoadState(net)
        snap = state.snapshot()
        detachable = [
            p for p in net.processors
            if net.degree(next(iter(net.neighbors(p)))) > 2
        ]
        if not detachable:
            pytest.skip("no detachable leaf on this instance")
        outcome = apply_mutation(net, DetachLeaf(detachable[0]))
        with pytest.raises(MutationError):
            state.repair(outcome)
        state.rollback(snap)
        state.repair(outcome)  # with the snapshot closed, repair proceeds
        assert state.network is outcome.network

    def test_fresh_snapshot_after_repair_works(self):
        state, snap, outcome = self._open_snapshot_state()
        state.commit(snap)
        state.repair(outcome)
        procs = list(state.network.processors)
        before = state._loads.copy()
        fresh = state.snapshot()
        state.apply_path(procs[0], procs[-1])
        state.rollback(fresh)
        assert np.array_equal(state._loads, before)
