"""Differential tests: the simulation kernel vs. the pre-refactor loops.

The four legacy replay loops -- ``OnlineStrategy.run``'s event/chunk
replay, ``congestion_trajectory``, ``replay_with_churn`` and
``replay_requests``'s round loop -- were refactored into thin adapters
over :class:`repro.sim.engine.SimulationEngine` /
:class:`repro.sim.engine.RoundReplayDriver`.  This module keeps the
pre-refactor implementations **verbatim** (as ``_reference_*`` functions,
per ARCHITECTURE.md invariant 1) and asserts bit-for-bit agreement on
seeded scenarios: loads, cost units, congestion values, served/dropped
counts, trajectories and per-round congestion.
"""

import numpy as np
import pytest

from repro.core.extended_nibble import extended_nibble
from repro.core.loadstate import LoadState
from repro.distributed.request_sim import _expand_messages, replay_requests
from repro.dynamic.churn import replay_with_churn
from repro.dynamic.evaluate import congestion_trajectory
from repro.dynamic.online import (
    EdgeCounterManager,
    HysteresisCounterManager,
    RentOrBuyManager,
    StaticPlacementManager,
)
from repro.dynamic.sequence import RequestEvent, sequence_from_pattern
from repro.network.builders import balanced_tree, star_of_buses
from repro.network.mutation import apply_mutation
from repro.core.placement import RequestAssignment
from repro.workload.churn import mutation_storm, rolling_maintenance_detach
from repro.workload.generators import uniform_pattern, zipf_pattern


# --------------------------------------------------------------------------- #
# pre-refactor reference implementations (verbatim)
# --------------------------------------------------------------------------- #
def _reference_run(strategy, sequence, chunk_size=None):
    """``OnlineStrategy.run`` as it was before the kernel refactor."""
    if chunk_size is None:
        for event in sequence:
            strategy.serve(event)
    else:
        for start in range(0, len(sequence), chunk_size):
            strategy.serve_chunk(sequence, start, min(start + chunk_size, len(sequence)))
    return strategy.account


def _reference_congestion_trajectory(strategy, sequence, sample_every=1):
    """``congestion_trajectory`` as it was before the kernel refactor."""
    samples = []
    for i, event in enumerate(sequence):
        strategy.serve(event)
        if (i + 1) % sample_every == 0 or i + 1 == len(sequence):
            samples.append(strategy.account.congestion)
    return np.asarray(samples, dtype=np.float64)


def _reference_replay_with_churn(strategy, sequence, trace, sample_every=None):
    """``replay_with_churn`` as it was before the kernel refactor."""
    from repro.network.mutation import AttachLeaf

    base_n = strategy.network.n_nodes
    n_refs = base_n + trace.attach_count()
    current_of_ref = np.full(n_refs, -1, dtype=np.int64)
    current_of_ref[:base_n] = np.arange(base_n, dtype=np.int64)
    next_attach_ref = base_n

    outcomes = []
    served = 0
    dropped = 0
    samples = []
    sample_times = []
    timed = trace.events
    ti = 0

    def apply_pending(now):
        nonlocal ti, next_attach_ref
        while ti < len(timed) and timed[ti].time <= now:
            mutation = timed[ti].mutation
            outcome = apply_mutation(strategy.network, mutation)
            strategy.apply_mutation(outcome)
            outcomes.append(outcome)
            alive = current_of_ref >= 0
            current_of_ref[alive] = outcome.node_map[current_of_ref[alive]]
            if isinstance(mutation, AttachLeaf):
                current_of_ref[next_attach_ref] = int(outcome.new_node)
                next_attach_ref += 1
            ti += 1

    for i, event in enumerate(sequence):
        apply_pending(i)
        proc = int(current_of_ref[event.processor])
        if proc < 0:
            dropped += 1
        else:
            if proc == event.processor:
                strategy.serve(event)
            else:
                strategy.serve(RequestEvent(proc, event.obj, event.kind))
            served += 1
        if sample_every is not None and (
            (i + 1) % sample_every == 0 or i + 1 == len(sequence)
        ):
            samples.append(strategy.account.congestion)
            sample_times.append(i + 1)

    apply_pending(max(len(sequence), trace.max_time))
    return {
        "account": strategy.account,
        "network": strategy.network,
        "outcomes": outcomes,
        "served": served,
        "dropped": dropped,
        "trajectory": np.asarray(samples, dtype=np.float64) if sample_every else None,
        "sample_times": np.asarray(sample_times, dtype=np.int64) if sample_every else None,
    }


def _reference_round_replay(network, pattern, placement, assignment, batch=1):
    """The round loop of ``replay_requests`` as it was before the refactor."""
    rooted = network.rooted()
    traversals, per_edge, _dilation = _expand_messages(
        network, pattern, placement, assignment, rooted, batch
    )
    edge_bw = np.asarray(network.edge_bandwidths)
    bus_bw = np.asarray(network.bus_bandwidths)
    delivered_state = LoadState(network, rooted)
    round_congestion = []

    pending_by_edge = {e: [] for e in range(network.n_edges)}
    blocked_children = {}
    remaining = 0
    for idx, tr in enumerate(traversals):
        remaining += 1
        if tr.predecessor is None:
            pending_by_edge[tr.edge_id].append(idx)
        else:
            blocked_children.setdefault(tr.predecessor, []).append(idx)
    for queue in pending_by_edge.values():
        queue.sort(key=lambda i: traversals[i].order)

    rounds = 0
    while remaining > 0:
        rounds += 1
        edge_capacity = {
            e: int(edge_bw[e]) if edge_bw[e] >= 1 else 1 for e in range(network.n_edges)
        }
        bus_capacity = {b: max(1, int(2 * bus_bw[b])) for b in network.buses}
        newly_done = []
        for eid in range(network.n_edges):
            queue = pending_by_edge[eid]
            if not queue:
                continue
            taken = []
            for idx in queue:
                if edge_capacity[eid] <= 0:
                    break
                tr = traversals[idx]
                if any(bus_capacity[b] <= 0 for b in tr.bus_endpoints):
                    continue
                edge_capacity[eid] -= 1
                for b in tr.bus_endpoints:
                    bus_capacity[b] -= 1
                tr.done = True
                taken.append(idx)
                newly_done.append(idx)
            for idx in taken:
                queue.remove(idx)
        remaining -= len(newly_done)
        delivered_state.apply_edges(
            np.fromiter(
                (traversals[i].edge_id for i in newly_done),
                dtype=np.int64,
                count=len(newly_done),
            )
        )
        round_congestion.append(delivered_state.congestion)
        for idx in newly_done:
            for child in blocked_children.get(idx, ()):
                pending_by_edge[traversals[child].edge_id].append(child)
        for idx in newly_done:
            if idx in blocked_children:
                del blocked_children[idx]
        for queue in pending_by_edge.values():
            queue.sort(key=lambda i: traversals[i].order)

    return rounds, np.asarray(round_congestion, dtype=np.float64), per_edge


# --------------------------------------------------------------------------- #
# shared fixtures
# --------------------------------------------------------------------------- #
SEEDS = (0, 1, 2)


def _instance(seed):
    net = balanced_tree(2, 3, 2)
    pattern = zipf_pattern(net, 16, requests_per_processor=8, seed=seed)
    seq = sequence_from_pattern(net, pattern, seed=seed + 1)
    placement = extended_nibble(net, pattern).placement
    return net, pattern, seq, placement


def _assert_accounts_equal(kernel, reference):
    assert np.array_equal(kernel.edge_loads, reference.edge_loads)
    assert np.array_equal(kernel.bus_loads, reference.bus_loads)
    assert kernel.congestion == reference.congestion
    assert kernel.total_load == reference.total_load
    assert kernel.service_units == reference.service_units
    assert kernel.management_units == reference.management_units


# --------------------------------------------------------------------------- #
# 1. OnlineStrategy.run (event loop and chunked batch replay)
# --------------------------------------------------------------------------- #
class TestRunParity:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("chunk_size", [None, 1, 7, 64, 10_000])
    def test_static_manager(self, seed, chunk_size):
        net, _pattern, seq, placement = _instance(seed)
        kernel = StaticPlacementManager(net, placement).run(seq, chunk_size=chunk_size)
        reference = _reference_run(
            StaticPlacementManager(net, placement), seq, chunk_size=chunk_size
        )
        _assert_accounts_equal(kernel, reference)

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("chunk_size", [None, 5, 1024])
    def test_edge_counter(self, seed, chunk_size):
        net, _pattern, seq, _placement = _instance(seed)
        kernel = EdgeCounterManager(net, seq.n_objects).run(seq, chunk_size=chunk_size)
        reference = _reference_run(
            EdgeCounterManager(net, seq.n_objects), seq, chunk_size=chunk_size
        )
        _assert_accounts_equal(kernel, reference)

    # the batched two-phase replay must stay exact for every tuning of
    # the adaptive family, including the tournament subclasses: chunked
    # kernel replay vs the scalar event loop, plus identical holder sets
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("chunk_size", [3, 64])
    @pytest.mark.parametrize(
        "make",
        [
            lambda net, n: EdgeCounterManager(
                net, n, object_size=2, invalidation_patience=1
            ),
            lambda net, n: HysteresisCounterManager(
                net, n, object_size=2, migration_factor=2
            ),
            lambda net, n: RentOrBuyManager(
                net, n, replicate_threshold=3, migrate_threshold=2
            ),
        ],
        ids=["edge-counter-eager", "hysteresis", "rent-or-buy"],
    )
    def test_adaptive_variants(self, seed, chunk_size, make):
        net, _pattern, seq, _placement = _instance(seed)
        chunked = make(net, seq.n_objects)
        kernel = chunked.run(seq, chunk_size=chunk_size)
        scalar = make(net, seq.n_objects)
        reference = _reference_run(scalar, seq, chunk_size=None)
        _assert_accounts_equal(kernel, reference)
        for obj in range(seq.n_objects):
            assert chunked.holders(obj) == scalar.holders(obj)


# --------------------------------------------------------------------------- #
# 2. congestion_trajectory
# --------------------------------------------------------------------------- #
class TestTrajectoryParity:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("sample_every", [1, 3, 17, 100_000])
    def test_edge_counter_trajectory(self, seed, sample_every):
        net, _pattern, seq, _placement = _instance(seed)
        kernel = congestion_trajectory(
            EdgeCounterManager(net, seq.n_objects), seq, sample_every=sample_every
        )
        reference = _reference_congestion_trajectory(
            EdgeCounterManager(net, seq.n_objects), seq, sample_every=sample_every
        )
        assert np.array_equal(kernel, reference)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_static_trajectory(self, seed):
        net, _pattern, seq, placement = _instance(seed)
        kernel = congestion_trajectory(
            StaticPlacementManager(net, placement), seq, sample_every=5
        )
        reference = _reference_congestion_trajectory(
            StaticPlacementManager(net, placement), seq, sample_every=5
        )
        assert np.array_equal(kernel, reference)


# --------------------------------------------------------------------------- #
# 3. replay_with_churn
# --------------------------------------------------------------------------- #
class TestChurnReplayParity:
    def _traces(self, net, seq, seed):
        yield mutation_storm(
            net,
            n_mutations=8,
            start=len(seq) // 5,
            spacing=max(1, len(seq) // 16),
            seed=seed + 10,
        )
        yield rolling_maintenance_detach(
            net,
            n_detach=3,
            start=len(seq) // 4,
            spacing=max(1, len(seq) // 8),
            seed=seed + 11,
        )

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("strategy_kind", ["static", "edge-counter"])
    def test_churn_replay(self, seed, strategy_kind):
        net, _pattern, seq, placement = _instance(seed)

        def make():
            if strategy_kind == "static":
                return StaticPlacementManager(net, placement)
            return EdgeCounterManager(net, seq.n_objects)

        for trace in self._traces(net, seq, seed):
            kernel = replay_with_churn(make(), seq, trace, sample_every=7)
            reference = _reference_replay_with_churn(
                make(), seq, trace, sample_every=7
            )
            _assert_accounts_equal(kernel.account, reference["account"])
            assert kernel.served == reference["served"]
            assert kernel.dropped == reference["dropped"]
            assert kernel.n_mutations == len(reference["outcomes"])
            assert np.array_equal(kernel.trajectory, reference["trajectory"])
            assert np.array_equal(kernel.sample_times, reference["sample_times"])
            assert kernel.network.n_nodes == reference["network"].n_nodes
            assert kernel.account.state.verify_bus_loads()


# --------------------------------------------------------------------------- #
# 4. replay_requests round loop
# --------------------------------------------------------------------------- #
class TestRoundReplayParity:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("batch", [1, 4])
    def test_round_congestion(self, seed, batch):
        net = star_of_buses(3, 3)
        pattern = uniform_pattern(net, 8, requests_per_processor=6, seed=seed)
        placement = extended_nibble(net, pattern).placement
        assignment = RequestAssignment.nearest_copy(net, pattern, placement)

        kernel = replay_requests(
            net, pattern, placement, assignment=assignment, batch=batch
        )
        rounds, round_congestion, per_edge = _reference_round_replay(
            net, pattern, placement, assignment, batch=batch
        )
        assert kernel.makespan == rounds
        assert np.array_equal(kernel.round_congestion, round_congestion)
        assert np.array_equal(kernel.per_edge_traffic, per_edge)
        assert kernel.round_congestion[-1] == kernel.congestion
