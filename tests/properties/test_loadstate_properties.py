"""Property-based parity tests for the incremental load-state engine.

The incremental :class:`repro.core.loadstate.LoadState` (and the
:class:`repro.dynamic.online.OnlineCostAccount` facade on top of it) must
agree *exactly* -- same float values, not just approximately -- with the
retained scalar replay (``_ReferenceOnlineCostAccount``) and with the
static batch evaluator (:func:`repro.core.congestion.compute_loads`) on
randomized networks, request sequences and interleaved
migrate/replicate/invalidate traffic.  All charged quantities are
integer-valued, so bit-for-bit equality is achievable and asserted.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.congestion import compute_loads
from repro.core.extended_nibble import extended_nibble
from repro.core.loadstate import LoadState
from repro.dynamic.online import (
    EdgeCounterManager,
    OnlineCostAccount,
    StaticPlacementManager,
    _ReferenceOnlineCostAccount,
)
from repro.dynamic.sequence import sequence_from_pattern
from tests.conftest import instances, networks

SETTINGS = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def assert_accounts_equal(incremental, reference):
    """Bit-for-bit comparison of an incremental and a scalar account."""
    assert np.array_equal(incremental.edge_loads, reference.edge_loads)
    assert np.array_equal(incremental.bus_loads, reference.bus_loads)
    assert incremental.congestion == reference.congestion
    assert incremental.total_load == reference.total_load
    assert incremental.service_units == reference.service_units
    assert incremental.management_units == reference.management_units


class TestChargeParity:
    @given(net=networks(), data=st.data())
    @settings(**SETTINGS)
    def test_interleaved_path_and_steiner_charges(self, net, data):
        """Random charge streams hit both accounts identically."""
        rooted = net.rooted()
        incremental = OnlineCostAccount(net)
        reference = _ReferenceOnlineCostAccount(net)
        n_ops = data.draw(st.integers(min_value=0, max_value=25))
        for _ in range(n_ops):
            kind = data.draw(st.sampled_from(["path", "steiner"]))
            amount = data.draw(st.integers(min_value=0, max_value=6))
            management = data.draw(st.booleans())
            if kind == "path":
                src = data.draw(st.integers(0, net.n_nodes - 1))
                dst = data.draw(st.integers(0, net.n_nodes - 1))
                incremental.charge_path(rooted, src, dst, amount, management)
                reference.charge_path(rooted, src, dst, amount, management)
            else:
                k = data.draw(st.integers(1, min(4, net.n_nodes)))
                terminals = data.draw(
                    st.lists(
                        st.integers(0, net.n_nodes - 1),
                        min_size=k,
                        max_size=k,
                    )
                )
                incremental.charge_steiner(rooted, terminals, amount, management)
                reference.charge_steiner(rooted, terminals, amount, management)
            # the congestion read in the middle of the stream is the
            # streaming pattern: lazily-repaired max vs full rescan
            assert incremental.congestion == reference.congestion
        assert_accounts_equal(incremental, reference)

    @given(inst=instances())
    @settings(**SETTINGS)
    def test_edge_counter_strategy_parity(self, inst):
        """The adaptive strategy (replication, invalidation, migration)
        produces identical accounts on both engines."""
        net, pattern = inst
        seq = sequence_from_pattern(net, pattern, seed=net.n_nodes)
        incremental = EdgeCounterManager(net, pattern.n_objects, object_size=2)
        reference = EdgeCounterManager(
            net,
            pattern.n_objects,
            object_size=2,
            account=_ReferenceOnlineCostAccount(net),
        )
        incremental.run(seq)
        reference.run(seq)
        # decisions depend only on the event stream, so the holder sets and
        # the cost accounts must both agree exactly
        for obj in range(pattern.n_objects):
            assert incremental.holders(obj) == reference.holders(obj)
        assert_accounts_equal(incremental.account, reference.account)


class TestStaticReplayParity:
    @given(inst=instances(), chunk=st.integers(min_value=1, max_value=64))
    @settings(**SETTINGS)
    def test_event_chunk_and_static_model_agree(self, inst, chunk):
        """Event replay == chunked batch replay == static compute_loads."""
        net, pattern = inst
        seq = sequence_from_pattern(net, pattern, seed=net.n_nodes + 1)
        placement = extended_nibble(net, pattern).placement

        event = StaticPlacementManager(net, placement).run(seq)
        batch = StaticPlacementManager(net, placement).run(seq, chunk_size=chunk)
        reference = StaticPlacementManager(
            net, placement, account=_ReferenceOnlineCostAccount(net)
        ).run(seq)

        assert np.array_equal(event.edge_loads, batch.edge_loads)
        assert event.congestion == batch.congestion
        assert event.service_units == batch.service_units
        assert event.management_units == batch.management_units
        assert_accounts_equal(event, reference)

        # serving the shuffled pattern from a fixed placement reproduces the
        # static cost model bit-for-bit (nearest-copy assignment)
        static = compute_loads(net, pattern, placement)
        assert np.array_equal(event.edge_loads, static.edge_loads)
        assert np.array_equal(event.bus_loads, static.bus_loads)
        assert event.congestion == static.congestion


class TestSnapshotRollback:
    @given(net=networks(), data=st.data())
    @settings(**SETTINGS)
    def test_rollback_restores_state_exactly(self, net, data):
        """Any mix of deltas under a snapshot rolls back bit-for-bit."""
        state = LoadState(net)
        rng = np.random.default_rng(net.n_nodes)
        # pre-charge some baseline traffic
        for _ in range(5):
            u, v = rng.integers(0, net.n_nodes, size=2)
            state.apply_path(int(u), int(v), float(rng.integers(1, 5)))
        before_loads = state.edge_loads.copy()
        before_bus = state.bus_loads.copy()
        before_congestion = state.congestion

        snap = state.snapshot()
        n_ops = data.draw(st.integers(min_value=0, max_value=12))
        for _ in range(n_ops):
            kind = data.draw(st.sampled_from(["path", "steiner", "vector", "edges"]))
            amount = float(data.draw(st.integers(min_value=-4, max_value=6)))
            if kind == "path":
                u = data.draw(st.integers(0, net.n_nodes - 1))
                v = data.draw(st.integers(0, net.n_nodes - 1))
                state.apply_path(u, v, amount)
            elif kind == "steiner":
                k = data.draw(st.integers(2, min(4, max(2, net.n_nodes))))
                terms = [
                    data.draw(st.integers(0, net.n_nodes - 1)) for _ in range(k)
                ]
                state.apply_steiner(terms, amount)
            elif kind == "vector":
                vec = rng.integers(0, 4, size=net.n_edges).astype(np.float64)
                state.apply_edge_loads(vec)
            else:
                ids = rng.integers(0, max(1, net.n_edges), size=3)
                if net.n_edges:
                    state.apply_edges(ids, amount)
            # the incrementally maintained bus loads stay consistent with a
            # from-scratch CSR recomputation at every step
            assert state.verify_bus_loads()
        state.rollback(snap)

        assert np.array_equal(state.edge_loads, before_loads)
        assert np.array_equal(state.bus_loads, before_bus)
        assert state.congestion == before_congestion

    @given(net=networks())
    @settings(**SETTINGS)
    def test_nested_snapshots_and_commit(self, net):
        state = LoadState(net)
        procs = list(net.processors)
        state.apply_path(procs[0], procs[-1], 3.0)
        base = state.edge_loads.copy()

        outer = state.snapshot()
        state.apply_path(procs[0], procs[-1], 2.0)
        mid = state.edge_loads.copy()
        inner = state.snapshot()
        state.apply_path(procs[-1], procs[0], 5.0)
        state.rollback(inner)
        assert np.array_equal(state.edge_loads, mid)
        state.rollback(outer)
        assert np.array_equal(state.edge_loads, base)

        committed = state.snapshot()
        state.apply_path(procs[0], procs[-1], 1.0)
        state.commit(committed)
        assert state.total_load == base.sum() + state.path_length(
            procs[0], procs[-1]
        )

    @given(inst=instances())
    @settings(**SETTINGS)
    def test_trial_congestions_match_tentative_apply(self, inst):
        """Read-only trial scoring == apply + read + rollback."""
        net, pattern = inst
        state = LoadState(net)
        rng = np.random.default_rng(pattern.n_objects)
        base = rng.integers(0, 4, size=net.n_edges).astype(np.float64)
        state.apply_edge_loads(base)
        cols = rng.integers(0, 5, size=(net.n_edges, 4)).astype(np.float64)
        scores = state.trial_congestions(cols)
        for k in range(cols.shape[1]):
            snap = state.snapshot()
            state.apply_edge_loads(cols[:, k].copy())
            assert scores[k] == state.congestion
            state.rollback(snap)
