"""Property-based parity tests for the vectorized congestion engine.

The vectorized kernels in :mod:`repro.core.pathmatrix` and the rewritten
hot paths of :mod:`repro.core.congestion` must agree *exactly* (same float
values, not just approximately) with the retained scalar reference
implementations (``_reference_compute_loads`` /
``_reference_object_edge_loads``) on randomized networks, placements and
split request assignments.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.baselines import full_replication_placement, random_placement
from repro.errors import ReproError
from repro.network.builders import balanced_tree
from repro.core.congestion import (
    _reference_compute_loads,
    _reference_object_edge_loads,
    batch_congestions,
    compute_loads,
    object_edge_loads,
)
from repro.core.extended_nibble import extended_nibble
from repro.core.placement import Placement, RequestAssignment, Share
from tests.conftest import instances, networks

SETTINGS = dict(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def random_redundant_placement(network, pattern, seed):
    """A placement giving every object a random non-empty leaf subset."""
    rng = np.random.default_rng(seed)
    procs = list(network.processors)
    holders = []
    for _ in range(pattern.n_objects):
        k = int(rng.integers(1, len(procs) + 1))
        holders.append(list(rng.choice(procs, size=k, replace=False)))
    return Placement(holders)


def split_assignment(network, pattern, placement, seed):
    """An assignment that splits each pair's requests across random holders."""
    rng = np.random.default_rng(seed)
    shares = {}
    for obj in range(pattern.n_objects):
        holders = sorted(placement.holders(obj))
        for proc in pattern.requesters(obj):
            reads = pattern.reads_of(proc, obj)
            writes = pattern.writes_of(proc, obj)
            chosen = rng.choice(holders, size=min(2, len(holders)), replace=False)
            entries = []
            if len(chosen) == 1 or reads + writes < 2:
                entries.append(Share(int(chosen[0]), reads, writes))
            else:
                r0 = int(rng.integers(0, reads + 1))
                w0 = int(rng.integers(0, writes + 1))
                entries.append(Share(int(chosen[0]), r0, w0))
                entries.append(Share(int(chosen[1]), reads - r0, writes - w0))
            shares[(proc, obj)] = [s for s in entries if s.total > 0] or entries[:1]
    return RequestAssignment(shares, pattern.n_objects)


class TestStructuralParity:
    @given(net=networks())
    @settings(**SETTINGS)
    def test_lca_distance_and_steiner_match_rooted(self, net):
        rooted = net.rooted()
        pm = rooted.path_matrix()
        rng = np.random.default_rng(net.n_nodes)
        u = rng.integers(0, net.n_nodes, size=32)
        v = rng.integers(0, net.n_nodes, size=32)
        expected_lca = [rooted.lca(int(a), int(b)) for a, b in zip(u, v)]
        assert pm.lca(u, v).tolist() == expected_lca
        expected_dist = [rooted.distance(int(a), int(b)) for a, b in zip(u, v)]
        assert pm.distances(u, v).tolist() == expected_dist
        terminals = list(rng.choice(net.n_nodes, size=min(4, net.n_nodes), replace=False))
        assert (
            sorted(np.flatnonzero(pm.steiner_edge_mask(terminals)).tolist())
            == sorted(rooted.steiner_edge_ids(terminals))
        )

    @given(net=networks())
    @settings(**SETTINGS)
    def test_nearest_in_set_matches_rooted(self, net):
        rooted = net.rooted()
        pm = rooted.path_matrix()
        rng = np.random.default_rng(net.n_nodes + 1)
        candidates = list(
            rng.choice(net.n_nodes, size=min(3, net.n_nodes), replace=False)
        )
        nodes = np.arange(net.n_nodes)
        got = pm.nearest_in_set(nodes, candidates)
        expected = [rooted.nearest_in_set(int(v), candidates) for v in nodes]
        assert got.tolist() == expected


class TestCongestionParity:
    @given(inst=instances(), seed=st.integers(0, 2**16))
    @settings(**SETTINGS)
    def test_single_holder_placements(self, inst, seed):
        net, pat = inst
        placement = random_placement(net, pat, seed=seed)
        vec = compute_loads(net, pat, placement)
        ref = _reference_compute_loads(net, pat, placement)
        assert np.array_equal(vec.edge_loads, ref.edge_loads)
        assert np.array_equal(vec.bus_loads, ref.bus_loads)
        assert vec.congestion == ref.congestion

    @given(inst=instances(), seed=st.integers(0, 2**16))
    @settings(**SETTINGS)
    def test_redundant_placements(self, inst, seed):
        net, pat = inst
        placement = random_redundant_placement(net, pat, seed)
        vec = compute_loads(net, pat, placement)
        ref = _reference_compute_loads(net, pat, placement)
        assert np.array_equal(vec.edge_loads, ref.edge_loads)
        assert np.array_equal(vec.bus_loads, ref.bus_loads)

    @given(inst=instances())
    @settings(**SETTINGS)
    def test_full_replication(self, inst):
        net, pat = inst
        placement = full_replication_placement(net, pat)
        vec = compute_loads(net, pat, placement)
        ref = _reference_compute_loads(net, pat, placement)
        assert np.array_equal(vec.edge_loads, ref.edge_loads)
        assert np.array_equal(vec.bus_loads, ref.bus_loads)

    @given(inst=instances(), seed=st.integers(0, 2**16))
    @settings(**SETTINGS)
    def test_split_assignments(self, inst, seed):
        net, pat = inst
        placement = random_redundant_placement(net, pat, seed)
        assignment = split_assignment(net, pat, placement, seed + 1)
        vec = compute_loads(net, pat, placement, assignment=assignment)
        ref = _reference_compute_loads(net, pat, placement, assignment=assignment)
        assert np.array_equal(vec.edge_loads, ref.edge_loads)
        assert np.array_equal(vec.bus_loads, ref.bus_loads)

    @given(inst=instances())
    @settings(**SETTINGS)
    def test_extended_nibble_assignment(self, inst):
        net, pat = inst
        result = extended_nibble(net, pat)
        vec = compute_loads(net, pat, result.placement, assignment=result.assignment)
        ref = _reference_compute_loads(
            net, pat, result.placement, assignment=result.assignment
        )
        assert np.array_equal(vec.edge_loads, ref.edge_loads)
        assert np.array_equal(vec.bus_loads, ref.bus_loads)

    @given(inst=instances(), seed=st.integers(0, 2**16))
    @settings(**SETTINGS)
    def test_per_object_loads_sum_to_total(self, inst, seed):
        net, pat = inst
        placement = random_redundant_placement(net, pat, seed)
        per_object = [
            object_edge_loads(net, pat, placement, obj)
            for obj in range(pat.n_objects)
        ]
        reference = [
            _reference_object_edge_loads(net, pat, placement, obj)
            for obj in range(pat.n_objects)
        ]
        for vec, ref in zip(per_object, reference):
            assert np.array_equal(vec, ref)
        total = compute_loads(net, pat, placement)
        assert np.allclose(np.sum(per_object, axis=0), total.edge_loads)


class TestBatchParity:
    @given(inst=instances(), seed=st.integers(0, 2**16))
    @settings(**SETTINGS)
    def test_batch_matches_sequential(self, inst, seed):
        net, pat = inst
        placements = [
            random_placement(net, pat, seed=seed),
            random_redundant_placement(net, pat, seed + 1),
            full_replication_placement(net, pat),
        ]
        batch = batch_congestions(net, pat, placements)
        sequential = [
            _reference_compute_loads(net, pat, p, validate=False).congestion
            for p in placements
        ]
        assert batch.tolist() == sequential

    @given(inst=instances())
    @settings(**SETTINGS)
    def test_batch_with_explicit_assignments(self, inst):
        net, pat = inst
        result = extended_nibble(net, pat)
        batch = batch_congestions(
            net,
            pat,
            [result.placement, result.placement],
            assignments=[result.assignment, None],
        )
        with_assignment = _reference_compute_loads(
            net, pat, result.placement, assignment=result.assignment
        ).congestion
        nearest = _reference_compute_loads(net, pat, result.placement).congestion
        assert batch[0] == with_assignment
        assert batch[1] == nearest

    def test_empty_batch(self, small_bus):
        from repro.workload.generators import uniform_pattern

        pat = uniform_pattern(small_bus, 2, seed=0)
        assert batch_congestions(small_bus, pat, []).shape == (0,)


class TestLaneKernels:
    """The fleet kernels agree with their per-lane scalar counterparts."""

    def test_blocked_distances_match_on_demand_lca(self):
        net = balanced_tree(2, 3, 2)
        pm = net.rooted().path_matrix()
        ids = np.arange(net.n_nodes)
        expected = pm._depth[ids[:, None]] + pm._depth[ids[None, :]] - (
            2 * pm._depth[pm.lca(ids[:, None], ids[None, :])]
        )
        # the full cross product goes through the blocked path unchanged
        full = pm.distances(ids[:, None], ids[None, :])
        assert np.array_equal(full, expected)
        u = np.array([0, 3, 5])
        v = np.array([7, 7, 0])
        assert np.array_equal(pm.distances(u, v), expected[u, v])

    def test_blocked_distances_span_multiple_blocks(self):
        net = balanced_tree(2, 3, 2)
        pm = net.rooted().path_matrix()
        old_block = pm._DIST_BLOCK
        try:
            type(pm)._DIST_BLOCK = 7  # force several partial blocks
            rng = np.random.default_rng(11)
            u = rng.integers(0, net.n_nodes, size=53)
            v = rng.integers(0, net.n_nodes, size=53)
            blocked = pm.distances(u, v)
        finally:
            type(pm)._DIST_BLOCK = old_block
        assert np.array_equal(blocked, pm.distances(u, v))

    def test_pair_edge_loads_lanes_matches_per_lane_columns(self):
        rng = np.random.default_rng(5)
        net = balanced_tree(2, 3, 2)
        pm = net.rooted().path_matrix()
        procs = np.asarray(net.processors)
        u = rng.choice(procs, size=40)
        targets = rng.choice(procs, size=(40, 6))
        w = rng.integers(1, 5, size=40).astype(np.float64)
        stacked = pm.pair_edge_loads_lanes(u, targets, w)
        for lane in range(targets.shape[1]):
            expected = pm.pair_edge_loads(u, targets[:, lane], w)
            assert np.array_equal(stacked[:, lane], expected)

    def test_pair_deltas_lanes_shape_guard(self):
        net = balanced_tree(2, 2, 2)
        pm = net.rooted().path_matrix()
        with pytest.raises(ReproError):
            pm.pair_deltas_lanes(np.array([0, 1]), np.array([0, 1]), np.ones(2))
