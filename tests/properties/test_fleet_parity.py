"""Differential suite: fleet replay equals sequential replay, bit-for-bit.

Invariant 7 of ARCHITECTURE.md: one
:meth:`~repro.sim.engine.SimulationEngine.run_fleet` call over K
strategies produces exactly the results of K sequential
:meth:`~repro.sim.engine.SimulationEngine.run` calls over freshly-built
copies of the same strategies -- per-lane edge/bus loads, congestion,
service/management cost units, sampled trajectories, drop accounting and
mutation counts, under churn-free replay and under every churn generator
(structural and bandwidth mutations).  All charges are integer request
counts, so the stacked lanes and the standalone load states must agree
**bitwise**, not approximately.

The strategy fleets mix the group-served static managers (hindsight
reference plus baseline placements, batched through
``serve_chunk_fleet``) with the adaptive counter family
(:class:`EdgeCounterManager` and its hysteresis / rent-or-buy tournament
subclasses), which batches through its *own* ``serve_chunk_fleet`` group
hook -- shared chunk decode and nearest-table build, per-lane counter
cascades.  Both group-served paths plus the lane-by-lane fallback are
therefore covered, including first-touch objects appearing mid-chunk and
threshold crossings landing exactly on chunk boundaries (the crafted
boundary tests sweep every chunk alignment of an adaptation cascade).

The seed matrix is extendable via ``REPRO_FLEET_SEEDS`` (comma-separated
integers), mirroring the churn differential harness.
"""

import os

import numpy as np
import pytest

from repro.core.baselines import (
    full_replication_placement,
    median_leaf_placement,
    owner_placement,
    random_placement,
)
from repro.core.loadstate import LaneState
from repro.dynamic.evaluate import first_touch_manager, hindsight_static_manager
from repro.dynamic.online import (
    EdgeCounterManager,
    HysteresisCounterManager,
    RentOrBuyManager,
    StaticPlacementManager,
)
from repro.dynamic.sequence import RequestEvent, RequestSequence, sequence_from_pattern
from repro.errors import AlgorithmError, SimulationError
from repro.network.builders import balanced_tree
from repro.sim.engine import SimulationEngine
from repro.sim.sinks import CostBreakdownSink, DropAccountingSink, TrajectorySink
from repro.workload.churn import (
    bandwidth_degradation,
    flash_crowd_attach,
    mutation_storm,
    rolling_maintenance_detach,
)
from repro.workload.generators import zipf_pattern

DEFAULT_SEEDS = (0, 1)


def _seed_matrix():
    raw = os.environ.get("REPRO_FLEET_SEEDS", "")
    if raw.strip():
        return tuple(int(s) for s in raw.split(","))
    return DEFAULT_SEEDS


def build_instance(seed):
    """One network + sequence + access pattern, seeded."""
    net = balanced_tree(2, 3, 2)
    pattern = zipf_pattern(net, 24, requests_per_processor=10, seed=seed)
    seq = sequence_from_pattern(net, pattern, seed=seed + 1)
    return net, pattern, seq


def fleet_factories(net, pattern, seq, seed):
    """A mixed fleet: group-served static managers + adaptive strategies."""
    return [
        lambda: hindsight_static_manager(net, seq),
        lambda: StaticPlacementManager(net, owner_placement(net, pattern)),
        lambda: StaticPlacementManager(net, median_leaf_placement(net, pattern)),
        lambda: StaticPlacementManager(
            net, full_replication_placement(net, pattern)
        ),
        lambda: StaticPlacementManager(
            net, random_placement(net, pattern, seed=seed)
        ),
        lambda: EdgeCounterManager(net, seq.n_objects),
        lambda: EdgeCounterManager(
            net, seq.n_objects, object_size=2, invalidation_patience=1
        ),
        lambda: HysteresisCounterManager(
            net, seq.n_objects, object_size=2, migration_factor=3
        ),
        lambda: RentOrBuyManager(
            net, seq.n_objects, replicate_threshold=5, migrate_threshold=2
        ),
        lambda: first_touch_manager(net, seq),
    ]


def make_sinks(seq):
    return [
        TrajectorySink(max(1, len(seq) // 5)),
        CostBreakdownSink(),
        DropAccountingSink(),
    ]


CHURN_GENERATORS = {
    None: None,
    "storm": lambda net, seed: mutation_storm(
        net, n_mutations=10, start=5, spacing=3, seed=seed
    ),
    "degradation": lambda net, seed: bandwidth_degradation(
        net, n_steps=6, start=4, spacing=5, seed=seed
    ),
    "maintenance": lambda net, seed: rolling_maintenance_detach(
        net, n_detach=4, start=6, spacing=8, seed=seed
    ),
    "flash-crowd": lambda net, seed: flash_crowd_attach(
        net, n_new_leaves=5, time=10, seed=seed
    ),
}


def assert_results_equal(sequential, fleet):
    """Every observable of the two runs must agree bit-for-bit."""
    for a, b in zip(sequential, fleet):
        assert np.array_equal(a.account.edge_loads, b.account.edge_loads)
        assert np.array_equal(a.account.bus_loads, b.account.bus_loads)
        assert a.account.congestion == b.account.congestion
        assert a.account.total_load == b.account.total_load
        assert a.account.service_units == b.account.service_units
        assert a.account.management_units == b.account.management_units
        assert (a.n_events, a.served, a.dropped) == (b.n_events, b.served, b.dropped)
        assert a.n_mutations == b.n_mutations
        ta, tb = a.sink(TrajectorySink), b.sink(TrajectorySink)
        if ta is not None:
            assert np.array_equal(ta.trajectory, tb.trajectory)
            assert np.array_equal(ta.sample_times, tb.sample_times)
        ca, cb = a.sink(CostBreakdownSink), b.sink(CostBreakdownSink)
        if ca is not None:
            assert ca.breakdown == cb.breakdown
        da, db = a.sink(DropAccountingSink), b.sink(DropAccountingSink)
        if da is not None:
            assert (da.served, da.dropped, da.span_drops) == (
                db.served,
                db.dropped,
                db.span_drops,
            )
        assert b.account.state.verify_bus_loads()


@pytest.mark.parametrize("seed", _seed_matrix())
@pytest.mark.parametrize("churn", sorted(k for k in CHURN_GENERATORS if k))
def test_fleet_equals_sequential_under_churn(seed, churn):
    net, pattern, seq = build_instance(seed)
    trace = CHURN_GENERATORS[churn](net, seed + 7)
    factories = fleet_factories(net, pattern, seq, seed)

    sequential = [
        SimulationEngine(factory(), sinks=make_sinks(seq)).run(seq, trace)
        for factory in factories
    ]
    fleet = SimulationEngine.run_fleet(
        [factory() for factory in factories],
        seq,
        trace,
        sinks=[make_sinks(seq) for _ in factories],
    )
    assert_results_equal(sequential, fleet)
    assert sum(r.dropped for r in fleet) == len(factories) * sequential[0].dropped


@pytest.mark.parametrize("seed", _seed_matrix())
def test_fleet_equals_sequential_churn_free(seed):
    net, pattern, seq = build_instance(seed)
    factories = fleet_factories(net, pattern, seq, seed)
    sequential = [
        SimulationEngine(factory(), sinks=make_sinks(seq)).run(seq)
        for factory in factories
    ]
    fleet = SimulationEngine.run_fleet(
        [factory() for factory in factories],
        seq,
        sinks=[make_sinks(seq) for _ in factories],
    )
    assert_results_equal(sequential, fleet)
    assert all(r.dropped == 0 for r in fleet)


@pytest.mark.parametrize("chunk_size", (1, 7, 64))
def test_fleet_respects_chunk_grid(chunk_size):
    """Any chunk grid yields the same final state on both paths."""
    net, pattern, seq = build_instance(3)
    factories = fleet_factories(net, pattern, seq, 3)
    sequential = [
        SimulationEngine(factory(), chunk_size=chunk_size).run(seq)
        for factory in factories
    ]
    fleet = SimulationEngine.run_fleet(
        [factory() for factory in factories], seq, chunk_size=chunk_size
    )
    assert_results_equal(sequential, fleet)


def test_fleet_lanes_share_one_substrate():
    """All fleet accounts sit on lanes of one stacked state."""
    net, pattern, seq = build_instance(0)
    factories = fleet_factories(net, pattern, seq, 0)
    strategies = [factory() for factory in factories]
    SimulationEngine.run_fleet(strategies, seq)
    states = [s.account.state for s in strategies]
    assert all(isinstance(state, LaneState) for state in states)
    assert len({id(state.parent) for state in states}) == 1
    assert [state.lane_index for state in states] == list(range(len(states)))
    with pytest.raises(AlgorithmError):
        states[0].snapshot()


def test_fleet_rejects_used_strategies():
    net, pattern, seq = build_instance(0)
    manager = hindsight_static_manager(net, seq)
    SimulationEngine(manager).run(seq)
    with pytest.raises(SimulationError):
        SimulationEngine.run_fleet([manager], seq)


def test_fleet_rejects_mixed_networks():
    net_a, pattern_a, seq = build_instance(0)
    net_b, pattern_b, _ = build_instance(0)
    with pytest.raises(SimulationError):
        SimulationEngine.run_fleet(
            [
                hindsight_static_manager(net_a, seq),
                StaticPlacementManager(net_b, owner_placement(net_b, pattern_b)),
            ],
            seq,
        )


def test_fleet_rejects_duplicate_instances():
    net, pattern, seq = build_instance(0)
    manager = hindsight_static_manager(net, seq)
    with pytest.raises(SimulationError):
        SimulationEngine.run_fleet([manager, manager], seq)


def _adaptive_only_factories(net, n_objects):
    """An all-adaptive fleet: three counter tunings plus both subclasses."""
    return [
        lambda: EdgeCounterManager(net, n_objects, object_size=2),
        lambda: EdgeCounterManager(
            net, n_objects, object_size=2, invalidation_patience=1
        ),
        lambda: EdgeCounterManager(
            net, n_objects, object_size=4, invalidation_patience=3
        ),
        lambda: HysteresisCounterManager(
            net, n_objects, object_size=2, migration_factor=2
        ),
        lambda: RentOrBuyManager(
            net, n_objects, replicate_threshold=3, migrate_threshold=2
        ),
    ]


def _crossing_sequence(net):
    """A crafted sequence whose adaptation events sit at known indices.

    With ``object_size=2`` the remote reader earns its replica on its
    2nd read (index 2), the writer invalidates it (index 3 area) and a
    lonely copy migrates after persistent remote writes -- plus a fresh
    object first-touched deep into the stream (index 7), so sweeping
    every chunk size places first touches and threshold crossings at
    every possible chunk-relative offset, including exactly on chunk
    boundaries.
    """
    p0, p1, p2 = net.processors[0], net.processors[-1], net.processors[1]
    events = [
        RequestEvent(p0, 0, "read"),   # first touch: p0 materialises obj 0
        RequestEvent(p1, 0, "read"),   # credit 1
        RequestEvent(p1, 0, "read"),   # credit 2 -> replicate (crossing)
        RequestEvent(p0, 0, "write"),  # invalidation pressure on p1's copy
        RequestEvent(p0, 0, "write"),  # patience 2 -> p1's replica dropped
        RequestEvent(p2, 1, "write"),  # first touch mid-stream: obj 1 on p2
        RequestEvent(p0, 1, "write"),  # remote-writer credit 1
        RequestEvent(p0, 1, "write"),  # credit 2 -> migrate (crossing)
        RequestEvent(p1, 0, "read"),   # re-earn credit after invalidation
        RequestEvent(p1, 0, "read"),   # -> replicate again (thrash cycle)
        RequestEvent(p0, 0, "write"),
        RequestEvent(p2, 1, "read"),
    ]
    return RequestSequence(events, n_objects=2)


@pytest.mark.parametrize("chunk_size", tuple(range(1, 14)))
def test_adaptive_fleet_every_crossing_alignment(chunk_size):
    """Adaptive group replay is exact for every chunk alignment.

    Sweeping the chunk size over a crafted cascade puts each replicate /
    invalidate / migrate crossing and the mid-stream first touch at every
    chunk-relative position -- first event of a chunk, interior, and
    exactly on the boundary.
    """
    net = balanced_tree(2, 2, 2)
    seq = _crossing_sequence(net)
    factories = _adaptive_only_factories(net, seq.n_objects)
    sequential = [
        SimulationEngine(factory(), chunk_size=chunk_size).run(seq)
        for factory in factories
    ]
    fleet = SimulationEngine.run_fleet(
        [factory() for factory in factories], seq, chunk_size=chunk_size
    )
    assert_results_equal(sequential, fleet)
    for a, b in zip(sequential, fleet):
        for obj in range(seq.n_objects):
            assert a.strategy.holders(obj) == b.strategy.holders(obj)


@pytest.mark.parametrize("seed", _seed_matrix())
@pytest.mark.parametrize("churn", sorted(k for k in CHURN_GENERATORS if k))
def test_adaptive_only_fleet_under_churn(seed, churn):
    """The adaptive group hook alone, under all four churn kinds."""
    net, pattern, seq = build_instance(seed)
    trace = CHURN_GENERATORS[churn](net, seed + 13)
    factories = _adaptive_only_factories(net, seq.n_objects)
    sequential = [
        SimulationEngine(factory(), sinks=make_sinks(seq)).run(seq, trace)
        for factory in factories
    ]
    fleet = SimulationEngine.run_fleet(
        [factory() for factory in factories],
        seq,
        trace,
        sinks=[make_sinks(seq) for _ in factories],
    )
    assert_results_equal(sequential, fleet)
    for a, b in zip(sequential, fleet):
        for obj in range(seq.n_objects):
            assert a.strategy.holders(obj) == b.strategy.holders(obj)


def test_stacked_repair_is_idempotent_for_outcome_sequences():
    """Every lane may replay the same outcome *sequence* through its view."""
    from repro.core.loadstate import LoadState, StackedLoadState
    from repro.network.mutation import apply_mutation
    from repro.workload.churn import random_valid_mutation

    net = balanced_tree(2, 3, 2)
    rng = np.random.default_rng(11)
    stacked = StackedLoadState(net, 3)
    reference = LoadState(net)
    procs = net.processors
    for lane in stacked.lanes:
        lane.apply_path(procs[0], procs[-1], 2)
    reference.apply_path(procs[0], procs[-1], 2)

    outcomes = []
    current = net
    for _ in range(3):
        outcome = apply_mutation(current, random_valid_mutation(current, rng))
        outcomes.append(outcome)
        current = outcome.network
    # the batch repair applied through every lane view must run once
    for lane in stacked.lanes:
        lane.repair(outcomes)
    loads = reference.edge_loads.copy()
    for outcome in outcomes:
        loads = outcome.mapped_edge_loads(loads)
    rebuilt = LoadState(current)
    rebuilt.apply_edge_loads(loads)
    for lane in stacked.lanes:
        assert np.array_equal(lane.edge_loads, rebuilt.edge_loads)
        assert lane.congestion == rebuilt.congestion
        assert lane.verify_bus_loads()
