"""Property-based tests of the NP-hardness machinery (hypothesis)."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.congestion import compute_loads
from repro.hardness.partition import (
    PartitionInstance,
    solve_partition_bruteforce,
    solve_partition_dp,
)
from repro.hardness.reduction import (
    build_reduction_instance,
    placement_from_subset,
    verify_reduction,
)

SETTINGS = dict(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

small_partitions = st.lists(
    st.integers(min_value=1, max_value=9), min_size=2, max_size=7
).map(tuple)


class TestPartitionSolvers:
    @given(sizes=small_partitions)
    @settings(**SETTINGS)
    def test_dp_matches_bruteforce(self, sizes):
        inst = PartitionInstance(sizes)
        dp = solve_partition_dp(inst)
        bf = solve_partition_bruteforce(inst)
        assert (dp is None) == (bf is None)
        if dp is not None:
            assert inst.is_balanced_subset(dp)

    @given(sizes=small_partitions)
    @settings(**SETTINGS)
    def test_witness_is_a_valid_subset(self, sizes):
        inst = PartitionInstance(sizes)
        witness = solve_partition_dp(inst)
        if witness is not None:
            assert len(set(witness)) == len(witness)
            assert all(0 <= i < inst.n for i in witness)


class TestReductionProperties:
    @given(sizes=small_partitions)
    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_theorem_21_equivalence(self, sizes):
        """Congestion ≤ 4k is achievable iff the PARTITION instance is solvable."""
        inst = PartitionInstance(sizes)
        if inst.total % 2 != 0:
            return  # reduction defined for even totals only
        report = verify_reduction(inst)
        assert report.equivalence_holds
        if report.partition_solvable:
            assert report.witness_congestion == pytest.approx(report.instance.threshold)
            assert report.optimal_congestion <= report.instance.threshold + 1e-9
        else:
            assert report.optimal_congestion > report.instance.threshold

    @given(sizes=small_partitions, data=st.data())
    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_balanced_subsets_always_give_4k(self, sizes, data):
        """Any balanced subset (not just the DP witness) achieves exactly 4k."""
        inst = PartitionInstance(sizes)
        if inst.total % 2 != 0:
            return
        witness = solve_partition_dp(inst)
        if witness is None:
            return
        reduction = build_reduction_instance(inst)
        # also try the complement subset, which is balanced as well
        complement = [i for i in range(inst.n) if i not in set(witness)]
        for subset in (witness, complement):
            placement = placement_from_subset(reduction, subset)
            congestion = compute_loads(
                reduction.network, reduction.pattern, placement
            ).congestion
            assert congestion == pytest.approx(reduction.threshold)
