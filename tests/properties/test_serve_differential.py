"""Invariant 10 differential: served online equals offline replay, bit-for-bit.

The streaming entry point (:class:`repro.sim.engine.EngineStream`) must be
indistinguishable from the offline :class:`SimulationEngine` walking the
same workload through ``merge_timeline``: identical served/dropped splits,
identical cost accounts, identical trajectory samples (as raw float64
bytes), identical load vectors.  The stream never sees the workload's
length or partition in advance -- events arrive in ragged micro-batches
with mutations interleaved at their churn times -- so this pins the
chunk-regridding, lazy mutation flushing, and the trailing-mutation /
forced-final-sample ordering.

The second half closes the loop through the recorder: a served session
written as a ``repro.stream-recording/v1`` file, replayed offline via
:func:`repro.serve.recorder.replay_recording`, must reproduce the served
summary exactly.

The seed matrix extends via ``REPRO_SERVE_SEEDS`` (comma-separated ints).
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.dynamic.evaluate import hindsight_static_manager
from repro.dynamic.online import EdgeCounterManager
from repro.dynamic.sequence import READ, WRITE, RequestEvent, RequestSequence
from repro.network.builders import random_tree
from repro.network.mutation import AttachLeaf, ChurnTrace, apply_mutation
from repro.serve.batcher import ServeSession, result_record
from repro.serve.recorder import StreamRecorder, load_recording, replay_recording
from repro.serve.wire import mutation_to_dict
from repro.sim.engine import EngineStream, SimulationEngine
from repro.sim.scenario import build_scenario, scenario_spec
from repro.sim.sinks import CostBreakdownSink, TrajectorySink
from repro.workload.churn import random_valid_mutation

DEFAULT_SEEDS = (0, 1)

N_EVENTS = 240
N_OBJECTS = 6
# ragged on purpose: batches must not line up with any chunk or sink grid
BATCH_SIZES = (13, 1, 50, 7, 120, 3, 90, 200)


def _seed_matrix():
    raw = os.environ.get("REPRO_SERVE_SEEDS", "")
    if raw.strip():
        return tuple(int(s) for s in raw.split(","))
    return DEFAULT_SEEDS


def make_network(seed):
    return random_tree(4, 12, seed=seed)


def make_events(network, seed, n=N_EVENTS):
    rng = np.random.default_rng(seed + 1000)
    procs = np.asarray(network.processors)
    return [
        RequestEvent(
            int(rng.choice(procs)),
            int(rng.integers(N_OBJECTS)),
            WRITE if rng.random() < 0.2 else READ,
        )
        for _ in range(n)
    ]


def make_trace(seed, n=N_EVENTS):
    """Mutations valid for the evolving network, at adversarial times.

    Times include 0 (before anything is served), a duplicate pair, a grid
    multiple, ``n - 1``/``n`` (the forced-final-sample boundary), and a
    trailing time past the end.  Validity is checked against a scratch
    network that evolves exactly like the replayed one.
    """
    scratch = make_network(seed)
    rng = np.random.default_rng(seed + 2000)
    times = [0, 40, 41, 90, 90, n - 1, n]
    mutations = []
    for time in times:
        mutation = random_valid_mutation(scratch, rng)
        apply_mutation(scratch, mutation)
        mutations.append((time, mutation))
    return ChurnTrace(mutations)


def make_strategy(kind, seed, sequence):
    network = make_network(seed)
    if kind == "adaptive":
        return EdgeCounterManager(network, N_OBJECTS)
    return hindsight_static_manager(network, sequence)


def make_sinks():
    # 37 is coprime to every batch size and to chunk_size=64
    return [TrajectorySink(37), CostBreakdownSink()]


def run_offline(kind, seed, sequence, trace, chunk_size):
    strategy = make_strategy(kind, seed, sequence)
    engine = SimulationEngine(strategy, sinks=make_sinks(), chunk_size=chunk_size)
    return engine.run(sequence, trace=trace)


def run_streamed(kind, seed, sequence, trace, chunk_size):
    """Feed the same workload through EngineStream in ragged batches."""
    strategy = make_strategy(kind, seed, sequence)
    stream = EngineStream(strategy, sinks=make_sinks(), chunk_size=chunk_size)
    pending = list(trace.events) if trace else []  # already time-sorted
    events = sequence.events
    position = 0
    cursor = 0
    while position < len(events):
        while pending and pending[0].time <= position:
            stream.mutate(pending.pop(0).mutation)
        stop = position + BATCH_SIZES[cursor % len(BATCH_SIZES)]
        cursor += 1
        if pending:
            stop = min(stop, pending[0].time)
        stop = min(stop, len(events))
        stream.serve(events[position:stop])
        position = stop
    for tm in pending:  # trailing mutations (time >= n_events)
        stream.mutate(tm.mutation)
    return stream.finish()


def full_record(result):
    """The canonical parity record plus the raw metric bytes."""
    record = result_record(result)
    sink = result.sink(TrajectorySink)
    record["trajectory_sha"] = sink.trajectory.tobytes().hex()[:32]
    record["sample_times_sha"] = sink.sample_times.tobytes().hex()[:32]
    return record


@pytest.mark.parametrize("seed", _seed_matrix())
@pytest.mark.parametrize("chunk_size", [None, 64])
@pytest.mark.parametrize("churn", [False, True], ids=["plain", "churn"])
@pytest.mark.parametrize("kind", ["adaptive", "static"])
def test_streamed_equals_offline(kind, churn, chunk_size, seed):
    network = make_network(seed)
    sequence = RequestSequence(make_events(network, seed), N_OBJECTS)
    trace = make_trace(seed) if churn else None
    offline = run_offline(kind, seed, sequence, trace, chunk_size)
    streamed = run_streamed(kind, seed, sequence, trace, chunk_size)
    assert full_record(streamed) == full_record(offline)


@pytest.mark.parametrize("seed", _seed_matrix())
def test_single_event_batches_equal_offline(seed):
    """The most hostile partition: every event its own micro-batch."""
    network = make_network(seed)
    sequence = RequestSequence(make_events(network, seed, n=60), N_OBJECTS)
    strategy = make_strategy("adaptive", seed, sequence)
    stream = EngineStream(strategy, sinks=make_sinks(), chunk_size=16)
    for event in sequence.events:
        stream.serve([event])
    streamed = stream.finish()
    offline = SimulationEngine(
        make_strategy("adaptive", seed, sequence),
        sinks=make_sinks(),
        chunk_size=16,
    ).run(sequence)
    assert full_record(streamed) == full_record(offline)


def test_attach_then_address_new_processor():
    """Refs minted by AttachLeaf are servable online, same as offline."""
    seed = 7
    network = make_network(seed)
    bus = network.buses[0]
    base_events = make_events(network, seed, n=80)
    new_ref = network.n_nodes  # the attached leaf's reference id
    events = base_events[:50] + [RequestEvent(new_ref, 0, READ)] + base_events[50:]
    sequence = RequestSequence(events, N_OBJECTS)
    trace = ChurnTrace([(30, AttachLeaf(bus))])

    offline = run_offline("adaptive", seed, sequence, trace, None)
    streamed = run_streamed("adaptive", seed, sequence, trace, None)
    assert full_record(streamed) == full_record(offline)
    assert streamed.dropped == offline.dropped


@pytest.mark.parametrize("scenario", ["zipf", "storm"])
def test_recorded_session_replays_bit_for_bit(scenario, tmp_path):
    """Session -> recording -> offline replay closes invariant 10 end to end."""
    spec = scenario_spec(scenario, seed=3, small=True)
    built = build_scenario(spec)[0]
    label, factory = built.strategies[0]
    path = tmp_path / "session.jsonl"
    recorder = StreamRecorder(path)
    recorder.write_header(
        spec.to_dict(), label, None, built.sequence.n_objects
    )
    session = ServeSession(
        factory(),
        n_objects=built.sequence.n_objects,
        sinks=built.make_sinks(),
        recorder=recorder,
        meta={"scenario": spec.name, "label": built.label, "strategy": label},
    )
    pending = list(built.trace.events) if built.trace else []
    events = built.sequence.events
    position = 0
    while position < len(events):
        while pending and pending[0].time <= position:
            session.mutate(mutation_to_dict(pending.pop(0).mutation))
        stop = min(position + 9, len(events))
        if pending:
            stop = min(stop, pending[0].time)
        session.feed(events[position:stop])
        position = stop
    for tm in pending:
        session.mutate(mutation_to_dict(tm.mutation))
    served = session.finish()

    recording = load_recording(path)
    assert recording.complete
    replayed, recorded_summary = replay_recording(path)
    assert recorded_summary == served
    assert replayed == served
