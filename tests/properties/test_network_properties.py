"""Property-based tests of the network substrate (hypothesis)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.network.serialization import network_from_dict, network_to_dict
from tests.conftest import networks

SETTINGS = dict(max_examples=40, deadline=None)


class TestTreeInvariants:
    @given(net=networks())
    @settings(**SETTINGS)
    def test_tree_edge_count(self, net):
        assert net.n_edges == net.n_nodes - 1
        assert net.n_processors + net.n_buses == net.n_nodes

    @given(net=networks())
    @settings(**SETTINGS)
    def test_leaves_are_exactly_the_processors(self, net):
        for v in net.nodes():
            if net.is_processor(v):
                assert net.degree(v) == 1
            else:
                assert net.degree(v) >= 2

    @given(net=networks())
    @settings(**SETTINGS)
    def test_serialization_round_trip(self, net):
        assert network_from_dict(network_to_dict(net)) == net

    @given(net=networks())
    @settings(**SETTINGS)
    def test_path_symmetry_and_triangle_inequality(self, net):
        rooted = net.rooted()
        procs = list(net.processors)
        a, b = procs[0], procs[-1]
        c = procs[len(procs) // 2]
        assert rooted.distance(a, b) == rooted.distance(b, a)
        assert rooted.distance(a, b) <= rooted.distance(a, c) + rooted.distance(c, b)

    @given(net=networks())
    @settings(**SETTINGS)
    def test_subtree_sums_root_equals_total(self, net):
        rooted = net.rooted()
        values = np.arange(net.n_nodes, dtype=np.int64)
        sums = rooted.subtree_sums(values)
        assert sums[rooted.root] == values.sum()

    @given(net=networks(), data=st.data())
    @settings(**SETTINGS)
    def test_steiner_tree_contains_terminal_paths(self, net, data):
        procs = list(net.processors)
        k = data.draw(st.integers(min_value=1, max_value=min(4, len(procs))))
        terminals = data.draw(
            st.lists(st.sampled_from(procs), min_size=k, max_size=k, unique=True)
        )
        rooted = net.rooted()
        steiner = set(rooted.steiner_edge_ids(terminals))
        # the path between any two terminals is contained in the Steiner tree
        for i in range(len(terminals)):
            for j in range(i + 1, len(terminals)):
                path = set(rooted.path_edge_ids(terminals[i], terminals[j]))
                assert path <= steiner

    @given(net=networks())
    @settings(**SETTINGS)
    def test_level_plus_depth_is_height(self, net):
        rooted = net.rooted()
        for v in net.nodes():
            assert rooted.level(v) + rooted.depth(v) == rooted.height
