"""Property-based tests of the placement algorithms (hypothesis).

These are the machine-checkable versions of the paper's statements, tested
over randomly drawn hierarchical bus networks and access patterns:

* Theorem 3.1 -- nibble copies form a connected subtree and respect the
  ``κ_x`` per-edge bound;
* Observation 3.2 -- after the deletion step every copy of an object with
  positive write contention serves between ``κ_x`` and ``2κ_x`` requests,
  and no request is lost;
* Theorem 4.3 -- the extended-nibble placement is leaf-only and its
  congestion is at most ``7 ×`` the nibble lower bound.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.bounds import nibble_lower_bound
from repro.core.congestion import compute_loads, object_edge_loads
from repro.core.deletion import apply_deletion
from repro.core.extended_nibble import extended_nibble
from repro.core.nibble import nibble_placement
from repro.core.placement import Placement
from tests.conftest import instances

SETTINGS = dict(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


class TestNibbleProperties:
    @given(inst=instances())
    @settings(**SETTINGS)
    def test_holders_connected_and_contain_center(self, inst):
        net, pat = inst
        result = nibble_placement(net, pat)
        rooted = net.rooted()
        for obj in range(pat.n_objects):
            holders = result.placement.holders(obj)
            assert result.centers[obj] in holders
            assert set(rooted.steiner_node_ids(holders)) == set(holders)

    @given(inst=instances())
    @settings(**SETTINGS)
    def test_kappa_edge_bound(self, inst):
        net, pat = inst
        result = nibble_placement(net, pat)
        for obj in range(pat.n_objects):
            kappa = pat.write_contention(obj)
            loads = object_edge_loads(net, pat, result.placement, obj)
            if loads.size:
                assert loads.max() <= max(kappa, 0) + 1e-9


class TestDeletionProperties:
    @given(inst=instances())
    @settings(**SETTINGS)
    def test_copy_service_window_and_conservation(self, inst):
        net, pat = inst
        nib = nibble_placement(net, pat)
        copies = apply_deletion(net, pat, nib.placement)
        for oc in copies:
            assert oc.total_served == pat.total_requests(oc.obj)
            if oc.kappa > 0:
                for copy in oc.copies:
                    assert oc.kappa <= copy.s <= 2 * oc.kappa
            assert oc.holder_nodes <= nib.placement.holders(oc.obj)


class TestExtendedNibbleProperties:
    @given(inst=instances())
    @settings(**SETTINGS)
    def test_leaf_only_and_within_factor_seven(self, inst):
        net, pat = inst
        result = extended_nibble(net, pat)
        result.placement.validate_for(net, pat, require_leaf_only=True)
        result.assignment.validate_for(net, pat, result.placement)
        congestion = result.congestion(net, pat)
        lower = nibble_lower_bound(net, pat)
        if lower > 0:
            assert congestion <= 7 * lower + 1e-9
        else:
            assert congestion == 0.0


class TestCongestionModelProperties:
    @given(inst=instances(), data=st.data())
    @settings(**SETTINGS)
    def test_congestion_monotone_in_frequencies(self, inst, data):
        """Scaling all frequencies by k scales every load by exactly k."""
        net, pat = inst
        k = data.draw(st.integers(min_value=2, max_value=5))
        procs = list(net.processors)
        holders = [
            procs[data.draw(st.integers(0, len(procs) - 1))]
            for _ in range(pat.n_objects)
        ]
        placement = Placement.single_holder(holders)
        base = compute_loads(net, pat, placement)
        scaled = compute_loads(net, pat.scaled(k), placement)
        assert np.allclose(scaled.edge_loads, k * base.edge_loads)
        assert scaled.congestion == pytest.approx(k * base.congestion)

    @given(inst=instances())
    @settings(**SETTINGS)
    def test_nearest_assignment_never_beaten_by_nibble_bound(self, inst):
        """The nibble congestion never exceeds the congestion of any
        single-holder placement (per-edge optimality, aggregated)."""
        net, pat = inst
        lb = nibble_lower_bound(net, pat)
        procs = list(net.processors)
        placement = Placement.single_holder([procs[0]] * pat.n_objects)
        assert lb <= compute_loads(net, pat, placement).congestion + 1e-9

    @given(inst=instances())
    @settings(**SETTINGS)
    def test_per_object_decomposition_consistent(self, inst):
        net, pat = inst
        procs = list(net.processors)
        placement = Placement.single_holder([procs[-1]] * pat.n_objects)
        total = compute_loads(net, pat, placement).edge_loads
        summed = np.zeros(net.n_edges)
        for obj in range(pat.n_objects):
            summed += object_edge_loads(net, pat, placement, obj)
        assert np.allclose(total, summed)
