"""Differential fuzz harness: compiled kernels equal the numpy reference.

Pins ARCHITECTURE.md invariant 9 ("compiled equals reference,
bit-for-bit").  Every kernel operation of :mod:`repro.core.kernels` is
run against its numpy ``_reference_*`` twin on seeded random inputs, for
every backend available in the environment (``cc`` wherever a C compiler
exists, ``numba`` when the optional dependency is installed).  Equality
is exact -- ``np.array_equal`` on the mutated buffers and returned
arrays, never ``allclose``: all charges of the cost model are
integer-valued request counts, so every float addition the kernels
perform is exact in double precision and addition order cannot change
the result.

The suite also pins the two backend-*independent* rewrites that rode
along with the kernels:

* :func:`repro.core.kernels.aggregate_pairs` against the historical
  ``np.unique(np.stack(...), axis=1)`` aggregation;
* ``StaticPlacementManager._aggregate_chunk`` against its retained
  ``_reference_aggregate_chunk`` twin;

and closes with substrate-level end-to-end checks (PathMatrix batch ops
and LoadState replay under every backend vs the numpy backend).

The seed matrix is extendable via the ``REPRO_KERNEL_SEEDS`` environment
variable (comma-separated integers), which CI uses to pin a fixed
matrix.
"""

import os

import numpy as np
import pytest

from repro.core import kernels
from repro.core.loadstate import LoadState, StackedLoadState
from repro.dynamic.online import StaticPlacementManager
from repro.dynamic.sequence import RequestSequence, sequence_from_pattern
from repro.network.builders import balanced_tree, random_tree
from repro.workload.generators import random_sparse_pattern

DEFAULT_SEEDS = (0, 1, 2, 3)


def _seed_matrix():
    raw = os.environ.get("REPRO_KERNEL_SEEDS", "")
    if raw.strip():
        return tuple(int(s) for s in raw.split(","))
    return DEFAULT_SEEDS


SEEDS = _seed_matrix()

#: Backends to pin against the reference (everything available but numpy).
COMPILED = tuple(b for b in kernels.available_backends() if b != "numpy")

if not COMPILED:  # pragma: no cover - only in compiler-less environments
    pytest.skip(
        "no compiled kernel backend available in this environment",
        allow_module_level=True,
    )


def _substrate(seed):
    """A real path-matrix substrate plus an rng, from a seeded random tree."""
    rng = np.random.default_rng(seed)
    net = random_tree(
        int(rng.integers(3, 9)), int(rng.integers(6, 20)), seed=seed
    )
    pm = net.rooted().path_matrix()
    return net, pm, rng


def _int_floats(rng, *shape):
    """Integer-valued float64 arrays: the cost model's charge domain."""
    return rng.integers(0, 9, size=shape).astype(np.float64)


@pytest.mark.parametrize("backend", COMPILED)
@pytest.mark.parametrize("seed", SEEDS)
class TestKernelOpsBitwise:
    """Each compiled kernel op is bitwise-equal to its numpy reference."""

    def test_lca(self, backend, seed):
        net, pm, rng = _substrate(seed)
        m = 64
        u = rng.integers(0, net.n_nodes, size=m)
        v = rng.integers(0, net.n_nodes, size=m)
        # fresh copies per call: the kernels may clobber u and v
        expected = kernels._reference_lca(
            pm._up.astype(np.int64), pm._depth, u.copy(), v.copy()
        )
        with kernels.use_backend(backend):
            got = kernels.lca(pm._up, pm._depth, u.copy(), v.copy())
        assert got.dtype == np.int64
        assert np.array_equal(got, expected)

    def test_scatter_paths_1d(self, backend, seed):
        net, pm, rng = _substrate(seed)
        delta = _int_floats(rng, net.n_nodes) - 4.0
        ref = np.zeros(net.n_edges, dtype=np.float64)
        got = np.zeros(net.n_edges, dtype=np.float64)
        kernels._reference_scatter_paths(
            ref, pm._rp_edges, pm._rp_nodes, pm._rp_indptr, delta
        )
        with kernels.use_backend(backend):
            kernels.scatter_paths(
                got, pm._rp_edges, pm._rp_nodes, pm._rp_indptr, delta
            )
        assert np.array_equal(got, ref)

    def test_scatter_paths_2d(self, backend, seed):
        net, pm, rng = _substrate(seed)
        ncols = int(rng.integers(1, 5))
        delta = _int_floats(rng, net.n_nodes, ncols) - 4.0
        ref = np.zeros((net.n_edges, ncols), dtype=np.float64)
        got = np.zeros((net.n_edges, ncols), dtype=np.float64)
        kernels._reference_scatter_paths(
            ref, pm._rp_edges, pm._rp_nodes, pm._rp_indptr, delta
        )
        with kernels.use_backend(backend):
            kernels.scatter_paths(
                got, pm._rp_edges, pm._rp_nodes, pm._rp_indptr, delta
            )
        assert np.array_equal(got, ref)

    def test_pair_scatter(self, backend, seed):
        net, pm, rng = _substrate(seed)
        m = 48
        procs = np.asarray(net.processors)
        u = rng.choice(procs, size=m)
        v = rng.choice(procs, size=m)
        with kernels.use_backend("numpy"):
            anc = kernels.lca(pm._up, pm._depth, u.copy(), v.copy())
        w = _int_floats(rng, m)
        ref = _int_floats(rng, net.n_nodes)
        got = ref.copy()
        kernels._reference_pair_scatter(ref, u, v, anc, w)
        with kernels.use_backend(backend):
            kernels.pair_scatter(got, u, v, anc, w)
        assert np.array_equal(got, ref)

    def test_pair_scatter_lanes(self, backend, seed):
        net, pm, rng = _substrate(seed)
        m, lanes = 32, int(rng.integers(1, 6))
        procs = np.asarray(net.processors)
        u = rng.choice(procs, size=m)
        targets = rng.choice(procs, size=(m, lanes))
        anc = np.empty((m, lanes), dtype=np.int64)
        with kernels.use_backend("numpy"):
            for k in range(lanes):
                anc[:, k] = kernels.lca(
                    pm._up, pm._depth, u.copy(), targets[:, k].copy()
                )
        w = _int_floats(rng, m)
        ref = np.zeros((net.n_nodes, lanes), dtype=np.float64)
        got = np.zeros((net.n_nodes, lanes), dtype=np.float64)
        kernels._reference_pair_scatter_lanes(ref, u, targets, anc, w)
        with kernels.use_backend(backend):
            kernels.pair_scatter_lanes(
                got, u, np.ascontiguousarray(targets), np.ascontiguousarray(anc), w
            )
        assert np.array_equal(got, ref)

    def test_bus_fold_1d(self, backend, seed):
        net, pm, rng = _substrate(seed)
        vec = _int_floats(rng, net.n_edges)
        ref = np.zeros(net.n_nodes, dtype=np.float64)
        got = np.zeros(net.n_nodes, dtype=np.float64)
        kernels._reference_bus_fold(ref, pm._edge_u, pm._edge_v, pm._bus_mask, vec)
        with kernels.use_backend(backend):
            kernels.bus_fold(got, pm._edge_u, pm._edge_v, pm._bus_mask, vec)
        assert np.array_equal(got, ref)

    def test_bus_fold_2d(self, backend, seed):
        net, pm, rng = _substrate(seed)
        ncols = int(rng.integers(1, 5))
        vec = _int_floats(rng, net.n_edges, ncols)
        ref = np.zeros((net.n_nodes, ncols), dtype=np.float64)
        got = np.zeros((net.n_nodes, ncols), dtype=np.float64)
        kernels._reference_bus_fold(ref, pm._edge_u, pm._edge_v, pm._bus_mask, vec)
        with kernels.use_backend(backend):
            kernels.bus_fold(got, pm._edge_u, pm._edge_v, pm._bus_mask, vec)
        assert np.array_equal(got, ref)

    @pytest.mark.parametrize("sign", [1.0, -1.0])
    def test_apply_column(self, backend, seed, sign):
        net, pm, rng = _substrate(seed)
        width = net.n_edges + net.n_nodes
        vec = _int_floats(rng, net.n_edges)
        if rng.integers(0, 2):
            vec[rng.integers(0, net.n_edges)] = -3.0  # exercise the neg flag
        ref = _int_floats(rng, width)
        got = ref.copy()
        neg_ref = kernels._reference_apply_column(
            ref, vec, pm._edge_u, pm._edge_v, pm._bus_mask, net.n_edges, sign
        )
        with kernels.use_backend(backend):
            neg_got = kernels.apply_column(
                got, vec, pm._edge_u, pm._edge_v, pm._bus_mask, net.n_edges, sign
            )
        assert neg_got == neg_ref
        assert np.array_equal(got, ref)

    def test_apply_columns_lanes(self, backend, seed):
        net, pm, rng = _substrate(seed)
        n_lanes = int(rng.integers(1, 5))
        width = net.n_edges + net.n_nodes
        sel = np.flatnonzero(rng.integers(0, 2, size=n_lanes))
        if sel.size == 0:
            sel = np.asarray([0], dtype=np.int64)
        cols = _int_floats(rng, net.n_edges, sel.size)
        cols[rng.integers(0, net.n_edges), rng.integers(0, sel.size)] = -2.0
        ref = _int_floats(rng, n_lanes, width)
        got = ref.copy()
        neg_ref = kernels._reference_apply_columns_lanes(
            ref, sel, cols, pm._edge_u, pm._edge_v, pm._bus_mask, net.n_edges
        )
        with kernels.use_backend(backend):
            neg_got = kernels.apply_columns_lanes(
                got, sel, cols, pm._edge_u, pm._edge_v, pm._bus_mask, net.n_edges
            )
        assert np.array_equal(np.asarray(neg_got), np.asarray(neg_ref))
        assert np.array_equal(got, ref)

    def test_rescan(self, backend, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 64))
        loads = _int_floats(rng, n)
        denom = rng.integers(1, 5, size=n).astype(np.float64)
        ref = kernels._reference_rescan(loads, denom)
        with kernels.use_backend(backend):
            got = kernels.rescan(loads, denom)
        assert got == ref

    def test_rescan_rows(self, backend, seed):
        rng = np.random.default_rng(seed)
        n_rows, width = int(rng.integers(1, 6)), int(rng.integers(1, 40))
        loads = _int_floats(rng, n_rows, width)
        denom = rng.integers(1, 5, size=width).astype(np.float64)
        rows = np.flatnonzero(rng.integers(0, 2, size=n_rows))
        if rows.size == 0:
            rows = np.asarray([0], dtype=np.int64)
        ref = kernels._reference_rescan_rows(loads, rows, denom)
        with kernels.use_backend(backend):
            got = kernels.rescan_rows(loads, rows, denom)
        assert got.dtype == np.float64
        assert np.array_equal(got, ref)


@pytest.mark.parametrize("backend", COMPILED)
def test_nan_triggers_negative_flag(backend):
    """NaN entries must raise the stale flag on every backend (``not >= 0``)."""
    net = balanced_tree(2, 2, 2)
    pm = net.rooted().path_matrix()
    width = net.n_edges + net.n_nodes
    vec = np.zeros(net.n_edges, dtype=np.float64)
    vec[0] = np.nan
    flags = []
    for name in ("numpy", backend):
        with kernels.use_backend(name):
            flags.append(
                kernels.apply_column(
                    np.zeros(width),
                    vec,
                    pm._edge_u,
                    pm._edge_v,
                    pm._bus_mask,
                    net.n_edges,
                    1.0,
                )
            )
    assert flags == [True, True]


class TestAggregationParity:
    """The key-encoded aggregation equals the historical axis=1 unique."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_aggregate_pairs_matches_stack_unique(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(0, 200))
        procs = rng.integers(0, 40, size=n)
        objs = rng.integers(0, 17, size=n)
        uprocs, uobjs, counts = kernels.aggregate_pairs(procs, objs)
        if n == 0:
            assert uprocs.size == uobjs.size == counts.size == 0
            return
        pairs, ref_counts = np.unique(
            np.stack([procs, objs]), axis=1, return_counts=True
        )
        assert np.array_equal(uprocs, pairs[0])
        assert np.array_equal(uobjs, pairs[1])
        assert np.array_equal(counts, ref_counts)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_aggregate_chunk_matches_reference(self, seed):
        net = random_tree(4, 10, seed=seed)
        pat = random_sparse_pattern(net, 6, seed=seed)
        seq = sequence_from_pattern(net, pat, seed=seed)
        if len(seq) == 0:
            pytest.skip("empty sequence for this seed")
        rng = np.random.default_rng(seed)
        start = int(rng.integers(0, len(seq)))
        stop = int(rng.integers(start, len(seq) + 1))
        got = StaticPlacementManager._aggregate_chunk(seq, start, stop)
        ref = StaticPlacementManager._reference_aggregate_chunk(seq, start, stop)
        if ref is None:
            assert got is None
            return
        g_procs, g_counts, g_by_obj, g_written, g_wcounts = got
        r_procs, r_counts, r_by_obj, r_written, r_wcounts = ref
        assert np.array_equal(g_procs, r_procs)
        assert np.array_equal(g_counts, r_counts)
        assert np.array_equal(g_written, r_written)
        assert np.array_equal(g_wcounts, r_wcounts)
        assert len(g_by_obj) == len(r_by_obj)
        for (g_obj, g_rows), (r_obj, r_rows) in zip(g_by_obj, r_by_obj):
            assert g_obj == r_obj
            assert np.array_equal(g_rows, r_rows)

    def test_aggregate_chunk_empty(self):
        seq = RequestSequence([], 3)
        assert StaticPlacementManager._aggregate_chunk(seq, 0, 0) is None
        assert StaticPlacementManager._reference_aggregate_chunk(seq, 0, 0) is None


@pytest.mark.parametrize("backend", COMPILED)
@pytest.mark.parametrize("seed", SEEDS)
class TestSubstrateEndToEnd:
    """Whole substrate operations agree across backends, bit for bit."""

    def test_pathmatrix_batch_ops(self, backend, seed):
        net, pm, rng = _substrate(seed)
        procs = np.asarray(net.processors)
        m = 40
        u = rng.choice(procs, size=m)
        v = rng.choice(procs, size=m)
        w = _int_floats(rng, m)
        delta = _int_floats(rng, net.n_nodes) - 4.0
        fold_vec = _int_floats(rng, net.n_edges)
        results = {}
        for name in ("numpy", backend):
            with kernels.use_backend(name):
                results[name] = (
                    pm.lca(u, v),
                    pm.distances(u, v),
                    pm.pair_edge_loads(u, v, w),
                    pm.edge_loads_from_deltas(delta),
                    pm.bus_loads_from_edge_loads(fold_vec),
                )
        for a, b in zip(results["numpy"], results[backend]):
            assert np.array_equal(a, b)

    def test_loadstate_replay(self, backend, seed):
        net, _, rng = _substrate(seed)
        vectors = [_int_floats(rng, net.n_edges) for _ in range(6)]
        signs = rng.integers(0, 2, size=6)
        outputs = {}
        for name in ("numpy", backend):
            with kernels.use_backend(name):
                state = LoadState(net)
                for vec, negate in zip(vectors, signs):
                    state.apply_edge_loads(-vec if negate else vec)
                outputs[name] = (state._loads.copy(), state.congestion)
        assert np.array_equal(outputs["numpy"][0], outputs[backend][0])
        assert outputs["numpy"][1] == outputs[backend][1]

    def test_stacked_replay(self, backend, seed):
        net, _, rng = _substrate(seed)
        n_lanes = 3
        columns = [_int_floats(rng, net.n_edges, n_lanes) for _ in range(4)]
        lane_sets = [
            np.arange(n_lanes),
            np.asarray([0]),
            np.asarray([1, 2]),
            np.arange(n_lanes),
        ]
        outputs = {}
        for name in ("numpy", backend):
            with kernels.use_backend(name):
                stacked = StackedLoadState(net, n_lanes)
                for lanes, cols in zip(lane_sets, columns):
                    stacked.apply_edge_loads_lanes(lanes, cols[:, : lanes.size])
                outputs[name] = (stacked._loads.copy(), stacked.congestions)
        assert np.array_equal(outputs["numpy"][0], outputs[backend][0])
        assert np.array_equal(outputs["numpy"][1], outputs[backend][1])
