"""Tests for the full extended-nibble strategy (Theorem 4.3)."""

import pytest

from repro.core.bounds import nibble_lower_bound
from repro.core.congestion import compute_loads
from repro.core.extended_nibble import extended_nibble
from repro.core.optimal import optimal_nonredundant
from repro.network.builders import (
    balanced_tree,
    path_of_buses,
    random_tree,
    single_bus,
    star_of_buses,
)
from repro.workload.access import AccessPattern
from repro.workload.adversarial import bisection_stress, write_conflict_pattern
from repro.workload.generators import random_sparse_pattern, uniform_pattern, zipf_pattern
from repro.workload.traces import shared_counter_trace, web_cache_trace


def assert_valid_result(net, pat, result):
    """Common structural checks on an ExtendedNibbleResult."""
    result.placement.validate_for(net, pat, require_leaf_only=True)
    result.assignment.validate_for(net, pat, result.placement)
    assert result.placement.n_objects == pat.n_objects


class TestStructuralValidity:
    @pytest.mark.parametrize("seed", range(10))
    def test_random_instances(self, seed):
        net = random_tree(5, 8, seed=seed)
        pat = random_sparse_pattern(net, 8, seed=seed)
        result = extended_nibble(net, pat)
        assert_valid_result(net, pat, result)

    def test_every_object_has_a_holder(self):
        net = balanced_tree(2, 2, 2)
        pat = AccessPattern.empty(net.n_nodes, 5)
        result = extended_nibble(net, pat)
        assert_valid_result(net, pat, result)
        assert result.congestion(net, pat) == 0.0

    def test_timings_reported(self):
        net = single_bus(4)
        pat = uniform_pattern(net, 8, seed=0)
        result = extended_nibble(net, pat)
        assert result.timings.nibble >= 0
        assert result.timings.total >= result.timings.mapping

    @pytest.mark.parametrize(
        "make_net",
        [
            lambda: single_bus(6),
            lambda: balanced_tree(2, 3, 2),
            lambda: path_of_buses(5, leaves_per_bus=1),
            lambda: star_of_buses(3, 3),
        ],
        ids=["bus", "balanced", "path", "star"],
    )
    def test_various_topologies(self, make_net):
        net = make_net()
        pat = uniform_pattern(net, 16, requests_per_processor=8, seed=1)
        result = extended_nibble(net, pat)
        assert_valid_result(net, pat, result)


class TestApproximationGuarantee:
    @pytest.mark.parametrize("seed", range(10))
    def test_factor_seven_vs_nibble_lower_bound(self, seed):
        net = random_tree(5, 8, seed=seed)
        pat = random_sparse_pattern(net, 8, seed=seed)
        result = extended_nibble(net, pat)
        lb = nibble_lower_bound(net, pat)
        c = result.congestion(net, pat)
        if lb > 0:
            assert c <= 7 * lb + 1e-9
        else:
            assert c == 0.0

    @pytest.mark.parametrize(
        "make_pattern",
        [
            lambda net: shared_counter_trace(net, 4, 8, 8),
            lambda net: zipf_pattern(net, 24, seed=0),
            lambda net: web_cache_trace(net, 32, seed=0),
            lambda net: bisection_stress(net, 16, seed=0),
            lambda net: write_conflict_pattern(net, 16, seed=0),
        ],
        ids=["counter", "zipf", "web", "bisection", "conflict"],
    )
    def test_factor_seven_on_workload_families(self, make_pattern):
        net = balanced_tree(2, 3, 2)
        pat = make_pattern(net)
        result = extended_nibble(net, pat)
        lb = nibble_lower_bound(net, pat)
        c = result.congestion(net, pat)
        assert lb == 0 or c <= 7 * lb + 1e-9

    @pytest.mark.parametrize("seed", range(4))
    def test_factor_seven_vs_exact_optimum(self, seed):
        """On tiny instances, compare against the true optimum directly."""
        net = single_bus(4)
        pat = random_sparse_pattern(net, 4, density=0.6, max_frequency=5, seed=seed)
        result = extended_nibble(net, pat)
        c = result.congestion(net, pat)
        opt = optimal_nonredundant(net, pat).congestion
        if opt > 0:
            assert c <= 7 * opt + 1e-9

    def test_write_only_instances_match_single_copy_quality(self):
        # with writes only, redundancy never helps; the strategy should end
        # close to the exact optimum
        net = single_bus(5)
        pat = write_conflict_pattern(net, 6, writes_per_endpoint=4, seed=1)
        result = extended_nibble(net, pat)
        opt = optimal_nonredundant(net, pat).congestion
        assert result.congestion(net, pat) <= 7 * opt + 1e-9


class TestIntermediateArtefacts:
    def test_nibble_artefact_matches_standalone_run(self):
        from repro.core.nibble import nibble_placement

        net = balanced_tree(2, 2, 2)
        pat = uniform_pattern(net, 8, seed=2)
        result = extended_nibble(net, pat)
        standalone = nibble_placement(net, pat)
        assert result.nibble.placement == standalone.placement

    def test_modified_copies_cover_all_objects(self):
        net = balanced_tree(2, 2, 2)
        pat = uniform_pattern(net, 6, seed=3)
        result = extended_nibble(net, pat)
        assert len(result.modified_copies) == pat.n_objects
        assert [oc.obj for oc in result.modified_copies] == list(range(pat.n_objects))

    def test_mapping_diagnostics_consistent(self):
        net = balanced_tree(2, 3, 2)
        pat = shared_counter_trace(net, 4, 8, 8)
        result = extended_nibble(net, pat)
        # shared counters have huge write contention -> their nibble copies sit
        # on buses and must be mapped
        assert len(result.mapping.affected_objects) > 0
        assert result.mapping.tau_max > 0

    def test_assignment_reproduces_reported_congestion(self):
        net = star_of_buses(3, 2)
        pat = zipf_pattern(net, 16, seed=4)
        result = extended_nibble(net, pat)
        direct = compute_loads(
            net, pat, result.placement, assignment=result.assignment
        ).congestion
        assert direct == pytest.approx(result.congestion(net, pat))

    def test_deterministic(self):
        net = balanced_tree(2, 2, 2)
        pat = uniform_pattern(net, 8, seed=5)
        r1 = extended_nibble(net, pat)
        r2 = extended_nibble(net, pat)
        assert r1.placement == r2.placement
