"""Tests for the deletion algorithm (Step 2, Observation 3.2)."""

import numpy as np
import pytest

from repro.core.congestion import object_edge_loads
from repro.core.deletion import (
    CopyRecord,
    apply_deletion,
    copies_to_placement,
    delete_rarely_used_copies,
    refine_copies,
)
from repro.core.nibble import nibble_placement
from repro.network.builders import random_tree, single_bus, star_of_buses
from repro.workload.access import AccessPattern
from repro.workload.generators import uniform_pattern


def run_deletion(seed, n_objects=6):
    net = random_tree(4, 7, seed=seed)
    pat = uniform_pattern(net, n_objects, requests_per_processor=10, seed=seed)
    nib = nibble_placement(net, pat)
    copies = apply_deletion(net, pat, nib.placement)
    return net, pat, nib, copies


class TestCopyRecord:
    def test_served_accumulates_per_processor(self):
        copy = CopyRecord(obj=0, node=3)
        copy.add(1, 2, 1)
        copy.add(1, 0, 4)
        copy.add(2, 1, 0)
        assert copy.s == 8
        assert dict((p, (r, w)) for p, r, w in copy.served) == {1: (2, 5), 2: (1, 0)}

    def test_zero_add_is_ignored(self):
        copy = CopyRecord(obj=0, node=3)
        copy.add(1, 0, 0)
        assert copy.served == []

    def test_take_all_empties(self):
        copy = CopyRecord(obj=0, node=3)
        copy.add(1, 2, 2)
        taken = copy.take_all()
        assert taken == [(1, 2, 2)]
        assert copy.s == 0

    def test_home_defaults_to_initial_node(self):
        copy = CopyRecord(obj=0, node=5)
        assert copy.home == 5


class TestObservation32:
    @pytest.mark.parametrize("seed", range(6))
    def test_every_copy_serves_between_kappa_and_two_kappa(self, seed):
        net, pat, nib, copies = run_deletion(seed)
        for oc in copies:
            if oc.kappa == 0:
                continue
            for copy in oc.copies:
                assert oc.kappa <= copy.s <= 2 * oc.kappa

    @pytest.mark.parametrize("seed", range(6))
    def test_requests_are_conserved(self, seed):
        net, pat, nib, copies = run_deletion(seed)
        for oc in copies:
            assert oc.total_served == pat.total_requests(oc.obj)
            reads = sum(r for c in oc.copies for (_p, r, _w) in c.served)
            writes = sum(w for c in oc.copies for (_p, _r, w) in c.served)
            assert reads == int(pat.reads[:, oc.obj].sum())
            assert writes == int(pat.writes[:, oc.obj].sum())

    @pytest.mark.parametrize("seed", range(6))
    def test_surviving_holders_subset_of_nibble_holders(self, seed):
        net, pat, nib, copies = run_deletion(seed)
        for oc in copies:
            assert oc.holder_nodes <= nib.placement.holders(oc.obj)

    @pytest.mark.parametrize("seed", range(6))
    def test_per_edge_load_at_most_doubled(self, seed):
        """Observation 3.2: the modified placement is edge-optimal up to 2x."""
        net, pat, nib, copies = run_deletion(seed)
        fallback = [min(nib.placement.holders(x)) for x in range(pat.n_objects)]
        placement, assignment = copies_to_placement(copies, pat, fallback)
        for obj in range(pat.n_objects):
            nib_loads = object_edge_loads(net, pat, nib.placement, obj)
            mod_loads = object_edge_loads(
                net, pat, placement, obj, assignment=assignment
            )
            kappa = pat.write_contention(obj)
            # load increases by at most kappa on any edge (and hence <= 2x
            # the nibble load inside T(x), which already carries kappa)
            assert np.all(mod_loads <= nib_loads + kappa + 1e-9)


class TestStructuralBehaviour:
    def test_single_holder_untouched(self):
        net = single_bus(3)
        procs = list(net.processors)
        pat = AccessPattern.from_requests(net, 1, [(procs[0], 0, 0, 4), (procs[1], 0, 0, 4)])
        nib = nibble_placement(net, pat)
        assert len(nib.placement.holders(0)) == 1
        oc = delete_rarely_used_copies(net, pat, 0, nib.placement.holders(0))
        assert oc.holder_nodes == nib.placement.holders(0)
        assert oc.total_served == 8

    def test_rarely_used_copy_removed(self):
        net = star_of_buses(2, 2)
        procs = list(net.processors)
        # heavy requester far outweighs a light one; the light one's copy
        # (if any) must disappear because it serves fewer than kappa requests
        pat = AccessPattern.from_requests(
            net,
            1,
            [
                (procs[0], 0, 20, 5),
                (procs[3], 0, 1, 0),
            ],
        )
        nib = nibble_placement(net, pat)
        oc = delete_rarely_used_copies(net, pat, 0, nib.placement.holders(0))
        for copy in oc.copies:
            assert copy.s >= oc.kappa

    def test_splitting_creates_colocated_copies(self):
        net = single_bus(4)
        procs = list(net.processors)
        # kappa = 2, but the gravity-center copy serves 20 requests, so it
        # must be split into about 20 / (2*2) = 5 copies on the same node
        pat = AccessPattern.from_requests(
            net,
            1,
            [
                (procs[0], 0, 9, 1),
                (procs[1], 0, 9, 1),
            ],
        )
        nib = nibble_placement(net, pat)
        copies = apply_deletion(net, pat, nib.placement)
        oc = copies[0]
        assert oc.kappa == 2
        nodes = [c.node for c in oc.copies]
        # several copies may share a node
        assert len(oc.copies) >= 2
        for c in oc.copies:
            assert oc.kappa <= c.s <= 2 * oc.kappa
        assert oc.total_served == 20
        assert set(nodes) <= nib.placement.holders(0)

    def test_read_only_object_keeps_only_used_copies(self):
        net = star_of_buses(2, 2)
        procs = list(net.processors)
        pat = AccessPattern.from_requests(
            net, 1, [(procs[0], 0, 5, 0), (procs[3], 0, 7, 0)]
        )
        nib = nibble_placement(net, pat)
        copies = apply_deletion(net, pat, nib.placement)
        oc = copies[0]
        # unused (bus) copies of a read-only object are pruned
        assert all(c.s > 0 for c in oc.copies)
        assert oc.holder_nodes <= frozenset(procs)

    def test_copies_to_placement_requires_fallback_for_empty(self):
        net = single_bus(3)
        pat = AccessPattern.empty(net.n_nodes, 1)
        from repro.core.deletion import ObjectCopies
        from repro.errors import AlgorithmError

        empty = [ObjectCopies(obj=0, kappa=0, copies=[])]
        with pytest.raises(AlgorithmError):
            copies_to_placement(empty, pat)
        placement, assignment = copies_to_placement(
            empty, pat, fallback_holders=[net.processors[0]]
        )
        assert placement.holders(0) == frozenset({net.processors[0]})

    def test_disconnected_holder_set_rejected(self):
        net = single_bus(3)
        procs = list(net.processors)
        pat = AccessPattern.from_requests(net, 1, [(procs[0], 0, 1, 1)])
        from repro.errors import AlgorithmError

        with pytest.raises(AlgorithmError):
            delete_rarely_used_copies(net, pat, 0, frozenset({procs[0], procs[1]}))


class TestRefineCopies:
    def test_never_worse_and_consistent(self):
        from repro.core.congestion import compute_loads
        from repro.core.extended_nibble import extended_nibble

        net = random_tree(5, 10, seed=3)
        pat = uniform_pattern(net, 10, requests_per_processor=10, seed=3)
        result = extended_nibble(net, pat)
        refinement = refine_copies(net, pat, result.modified_copies)

        base = compute_loads(
            net, pat, result.placement, assignment=result.assignment
        ).congestion
        assert refinement.congestion_before == pytest.approx(base)
        assert refinement.congestion_after <= refinement.congestion_before + 1e-9

        # the inputs are cloned, never mutated
        assert sum(len(oc.copies) for oc in result.modified_copies) >= sum(
            len(oc.copies) for oc in refinement.copies
        )
        # the refined records still convert to a consistent placement whose
        # measured congestion equals the engine's incremental value
        fallback = [list(net.processors)[0]] * pat.n_objects
        placement, assignment = copies_to_placement(
            refinement.copies, pat, fallback_holders=fallback
        )
        check = compute_loads(net, pat, placement, assignment=assignment).congestion
        assert check == pytest.approx(refinement.congestion_after)

    def test_preserves_every_request(self):
        net = star_of_buses(3, 2)
        pat = uniform_pattern(net, 6, requests_per_processor=8, seed=1)
        nib = nibble_placement(net, pat)
        copies = apply_deletion(net, pat, nib.placement)
        refinement = refine_copies(net, pat, copies)
        served_before = sum(c.s for oc in copies for c in oc.copies)
        served_after = sum(c.s for oc in refinement.copies for c in oc.copies)
        assert served_before == served_after
        # every object keeps at least one copy
        assert all(oc.copies or pat.is_trivial(oc.obj) for oc in refinement.copies)
