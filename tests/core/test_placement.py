"""Tests for Placement, Share and RequestAssignment."""

import pytest

from repro.core.placement import Placement, RequestAssignment, Share
from repro.errors import AssignmentError, PlacementError
from repro.network.builders import single_bus
from repro.workload.access import AccessPattern


@pytest.fixture
def net():
    return single_bus(3)


@pytest.fixture
def pattern(net):
    procs = list(net.processors)
    return AccessPattern.from_requests(
        net,
        2,
        [
            (procs[0], 0, 2, 1),
            (procs[1], 0, 0, 3),
            (procs[2], 1, 4, 0),
        ],
    )


class TestPlacement:
    def test_single_holder(self, net):
        p = Placement.single_holder([net.processors[0], net.processors[1]])
        assert p.n_objects == 2
        assert p.holders(0) == frozenset({net.processors[0]})
        assert not p.is_redundant(0)
        assert p.total_copies() == 2

    def test_full_replication(self, net):
        p = Placement.full_replication(net, 3)
        assert p.n_objects == 3
        for x in range(3):
            assert p.holders(x) == frozenset(net.processors)
            assert p.is_redundant(x)

    def test_empty_holder_set_rejected(self):
        with pytest.raises(PlacementError):
            Placement([[1], []])

    def test_is_leaf_only(self, net):
        leafy = Placement.single_holder([net.processors[0]])
        assert leafy.is_leaf_only(net)
        bussy = Placement.single_holder([net.buses[0]])
        assert not bussy.is_leaf_only(net)

    def test_validate_for(self, net, pattern):
        good = Placement.single_holder([net.processors[0], net.processors[1]])
        good.validate_for(net, pattern, require_leaf_only=True)

    def test_validate_unknown_node(self, net, pattern):
        bad = Placement.single_holder([99, net.processors[0]])
        with pytest.raises(PlacementError):
            bad.validate_for(net, pattern)

    def test_validate_leaf_only_violation(self, net, pattern):
        bad = Placement.single_holder([net.buses[0], net.processors[0]])
        with pytest.raises(PlacementError):
            bad.validate_for(net, pattern, require_leaf_only=True)

    def test_validate_object_count_mismatch(self, net, pattern):
        bad = Placement.single_holder([net.processors[0]])
        with pytest.raises(PlacementError):
            bad.validate_for(net, pattern)

    def test_equality_and_hash(self, net):
        a = Placement([[1, 2], [3]])
        b = Placement([[2, 1], [3]])
        assert a == b
        assert hash(a) == hash(b)
        assert a != Placement([[1], [3]])


class TestShare:
    def test_total(self):
        s = Share(holder=1, reads=2, writes=3)
        assert s.total == 5

    def test_negative_rejected(self):
        with pytest.raises(AssignmentError):
            Share(holder=1, reads=-1, writes=0)


class TestRequestAssignment:
    def test_nearest_copy_prefers_local(self, net, pattern):
        procs = list(net.processors)
        placement = Placement([[procs[0], procs[1]], [procs[2]]])
        assignment = RequestAssignment.nearest_copy(net, pattern, placement)
        assert assignment.reference_copy(procs[0], 0) == procs[0]
        assert assignment.reference_copy(procs[1], 0) == procs[1]
        assert assignment.reference_copy(procs[2], 1) == procs[2]
        assert assignment.is_single_reference()
        assignment.validate_for(net, pattern, placement)

    def test_nearest_copy_tie_breaks_smallest_id(self, net, pattern):
        procs = list(net.processors)
        # processor 2 requests object 1; copies on procs[0] and procs[1] are
        # equidistant, so the smaller id wins
        placement = Placement([[procs[0]], [procs[0], procs[1]]])
        assignment = RequestAssignment.nearest_copy(net, pattern, placement)
        assert assignment.reference_copy(procs[2], 1) == min(procs[0], procs[1])

    def test_single_reference_constructor(self, net, pattern):
        procs = list(net.processors)
        reference = {
            (procs[0], 0): procs[1],
            (procs[1], 0): procs[1],
            (procs[2], 1): procs[2],
        }
        placement = Placement([[procs[1]], [procs[2]]])
        assignment = RequestAssignment.single_reference(pattern, reference)
        assignment.validate_for(net, pattern, placement)

    def test_single_reference_missing_pair(self, net, pattern):
        with pytest.raises(AssignmentError):
            RequestAssignment.single_reference(pattern, {})

    def test_shares_empty_for_silent_pair(self, net, pattern):
        procs = list(net.processors)
        placement = Placement([[procs[0]], [procs[0]]])
        assignment = RequestAssignment.nearest_copy(net, pattern, placement)
        assert assignment.shares(procs[2], 0) == ()

    def test_reference_copy_errors(self, net, pattern):
        procs = list(net.processors)
        placement = Placement([[procs[0]], [procs[0]]])
        assignment = RequestAssignment.nearest_copy(net, pattern, placement)
        with pytest.raises(AssignmentError):
            assignment.reference_copy(procs[2], 0)  # no requests

    def test_split_shares_detected(self, net, pattern):
        procs = list(net.processors)
        shares = {
            (procs[0], 0): [Share(procs[0], 1, 0), Share(procs[1], 1, 1)],
            (procs[1], 0): [Share(procs[1], 0, 3)],
            (procs[2], 1): [Share(procs[2], 4, 0)],
        }
        assignment = RequestAssignment(shares, 2)
        assert not assignment.is_single_reference()
        with pytest.raises(AssignmentError):
            assignment.reference_copy(procs[0], 0)
        placement = Placement([[procs[0], procs[1]], [procs[2]]])
        assignment.validate_for(net, pattern, placement)

    def test_validate_detects_count_mismatch(self, net, pattern):
        procs = list(net.processors)
        shares = {
            (procs[0], 0): [Share(procs[0], 1, 0)],  # pattern says 2 reads, 1 write
            (procs[1], 0): [Share(procs[0], 0, 3)],
            (procs[2], 1): [Share(procs[2], 4, 0)],
        }
        assignment = RequestAssignment(shares, 2)
        placement = Placement([[procs[0]], [procs[2]]])
        with pytest.raises(AssignmentError):
            assignment.validate_for(net, pattern, placement)

    def test_validate_detects_foreign_holder(self, net, pattern):
        procs = list(net.processors)
        shares = {
            (procs[0], 0): [Share(procs[2], 2, 1)],  # procs[2] holds no copy of 0
            (procs[1], 0): [Share(procs[0], 0, 3)],
            (procs[2], 1): [Share(procs[2], 4, 0)],
        }
        assignment = RequestAssignment(shares, 2)
        placement = Placement([[procs[0]], [procs[2]]])
        with pytest.raises(AssignmentError):
            assignment.validate_for(net, pattern, placement)

    def test_validate_detects_missing_shares(self, net, pattern):
        procs = list(net.processors)
        shares = {
            (procs[0], 0): [Share(procs[0], 2, 1)],
            (procs[2], 1): [Share(procs[2], 4, 0)],
        }
        assignment = RequestAssignment(shares, 2)
        placement = Placement([[procs[0]], [procs[2]]])
        with pytest.raises(AssignmentError):
            assignment.validate_for(net, pattern, placement)

    def test_object_index_out_of_range(self):
        with pytest.raises(AssignmentError):
            RequestAssignment({(0, 5): [Share(0, 1, 0)]}, 2)
