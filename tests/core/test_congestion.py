"""Tests for the load / congestion cost model of Section 1.1."""

import numpy as np
import pytest

from repro.core.congestion import (
    compute_loads,
    congestion,
    object_edge_loads,
    total_communication_load,
)
from repro.core.placement import Placement, RequestAssignment
from repro.network.builders import single_bus, star_of_buses
from repro.workload.access import AccessPattern


def bus3_instance():
    """Single bus (node 0) with processors 1, 2, 3 and a hand-made pattern."""
    net = single_bus(3)
    p1, p2, p3 = net.processors
    pattern = AccessPattern.from_requests(
        net,
        1,
        [
            (p1, 0, 5, 0),   # p1: 5 reads
            (p2, 0, 3, 1),   # p2: 3 reads, 1 write
            (p3, 0, 0, 2),   # p3: 2 writes
        ],
    )
    return net, pattern, (p1, p2, p3)


class TestSingleCopyLoads:
    def test_hand_computed_loads(self):
        net, pattern, (p1, p2, p3) = bus3_instance()
        placement = Placement.single_holder([p1])
        profile = compute_loads(net, pattern, placement)
        # requests from p2 (4) and p3 (2) travel to p1; p1's reads are local
        assert profile.edge_load(p2, net.buses[0]) == 4
        assert profile.edge_load(p3, net.buses[0]) == 2
        assert profile.edge_load(p1, net.buses[0]) == 6
        # bus load is half the sum of incident edge loads
        assert profile.bus_load(net.buses[0]) == (6 + 4 + 2) / 2
        # all bandwidths are 1, so the bus dominates
        assert profile.congestion == 6.0
        assert profile.max_edge_load == 6.0
        assert profile.total_load == 12.0

    def test_local_placement_has_minimal_traffic(self):
        net, pattern, (p1, p2, p3) = bus3_instance()
        # placing on p2 moves the 6 local requests of p1 onto the wire
        c1 = congestion(net, pattern, Placement.single_holder([p1]))
        c2 = congestion(net, pattern, Placement.single_holder([p2]))
        assert c1 < c2

    def test_bottleneck_reporting(self):
        net, pattern, (p1, p2, p3) = bus3_instance()
        profile = compute_loads(net, pattern, Placement.single_holder([p1]))
        eid = profile.bottleneck_edge()
        assert eid == net.edge_id(p1, net.buses[0])
        assert profile.bottleneck_bus() == net.buses[0]


class TestRedundantLoads:
    def test_write_broadcast_over_steiner_tree(self):
        net, pattern, (p1, p2, p3) = bus3_instance()
        placement = Placement([[p1, p2]])
        profile = compute_loads(net, pattern, placement)
        # hand-computed (see the derivation in the test module docstring):
        # e_p1 = p3's 2 writes travelling to p1 + 3 broadcast units = 5
        # e_p2 = 3 broadcast units (from the 3 total writes)
        # e_p3 = its own 2 writes
        assert profile.edge_load(p1, net.buses[0]) == 5
        assert profile.edge_load(p2, net.buses[0]) == 3
        assert profile.edge_load(p3, net.buses[0]) == 2
        assert profile.congestion == 5.0

    def test_full_replication_write_cost(self):
        net, pattern, (p1, p2, p3) = bus3_instance()
        placement = Placement.full_replication(net, 1)
        profile = compute_loads(net, pattern, placement)
        # reads are free; every write is broadcast over all three switch edges
        kappa = pattern.write_contention(0)
        for p in (p1, p2, p3):
            assert profile.edge_load(p, net.buses[0]) == kappa
        assert profile.congestion == pytest.approx(1.5 * kappa)  # bus load dominates


class TestBandwidths:
    def test_relative_loads_use_bandwidths(self):
        net = single_bus(3, bus_bandwidth=10.0)
        p1, p2, p3 = net.processors
        pattern = AccessPattern.from_requests(net, 1, [(p2, 0, 4, 0)])
        profile = compute_loads(net, pattern, Placement.single_holder([p1]))
        # bus has load 4 but bandwidth 10, edges have load 4 and bandwidth 1
        assert profile.congestion == 4.0
        assert profile.bus_relative_loads[net.buses[0]] == pytest.approx(0.4)

    def test_bus_can_be_the_bottleneck(self):
        net = single_bus(4, bus_bandwidth=1.0)
        procs = list(net.processors)
        # every processor sends 2 reads to a distinct remote holder: edge
        # loads stay at 2+2=4, but the bus sees all 8 messages -> load 8
        pattern = AccessPattern.from_requests(
            net,
            4,
            [
                (procs[0], 0, 2, 0),
                (procs[1], 1, 2, 0),
                (procs[2], 2, 2, 0),
                (procs[3], 3, 2, 0),
            ],
        )
        placement = Placement.single_holder(
            [procs[1], procs[2], procs[3], procs[0]]
        )
        profile = compute_loads(net, pattern, placement)
        assert profile.max_edge_load == 4.0
        assert profile.bus_load(net.buses[0]) == 8.0
        assert profile.congestion == 8.0


class TestPerObjectDecomposition:
    def test_object_loads_sum_to_total(self):
        net = star_of_buses(2, 2)
        procs = list(net.processors)
        pattern = AccessPattern.from_requests(
            net,
            3,
            [
                (procs[0], 0, 2, 1),
                (procs[1], 1, 0, 2),
                (procs[2], 2, 3, 0),
                (procs[3], 0, 1, 1),
            ],
        )
        placement = Placement([[procs[0]], [procs[1], procs[2]], [procs[3]]])
        total = compute_loads(net, pattern, placement)
        summed = np.zeros(net.n_edges)
        for obj in range(pattern.n_objects):
            summed += object_edge_loads(net, pattern, placement, obj)
        assert np.allclose(summed, total.edge_loads)

    def test_zero_request_object_zero_load(self):
        net = single_bus(3)
        pattern = AccessPattern.empty(net.n_nodes, 1)
        placement = Placement.single_holder([net.processors[0]])
        assert congestion(net, pattern, placement) == 0.0


class TestAssignments:
    def test_explicit_assignment_changes_loads(self):
        net, pattern, (p1, p2, p3) = bus3_instance()
        placement = Placement([[p1, p2]])
        # force p3's requests to the copy on p2 instead of the nearest (p1)
        reference = {(p1, 0): p1, (p2, 0): p2, (p3, 0): p2}
        assignment = RequestAssignment.single_reference(pattern, reference)
        profile = compute_loads(net, pattern, placement, assignment=assignment)
        assert profile.edge_load(p2, net.buses[0]) == 3 + 2  # broadcast + p3's writes
        assert profile.edge_load(p1, net.buses[0]) == 3  # broadcast only

    def test_total_communication_load(self):
        net, pattern, (p1, p2, p3) = bus3_instance()
        placement = Placement.single_holder([p1])
        assert total_communication_load(net, pattern, placement) == 12.0

    def test_validation_toggle(self):
        net, pattern, _ = bus3_instance()
        bad = Placement.single_holder([999])
        with pytest.raises(Exception):
            compute_loads(net, pattern, bad)
