"""Kernel backend selection, index-capacity guards and dtype invariants.

Covers the dispatch machinery of :mod:`repro.core.kernels` (environment
and runtime backend selection, explicit failure on unavailable
backends), the int32 capacity guard of the memory-scaled substrate
(raises :class:`~repro.errors.CapacityError`, never wraps), and the
int32/int64 parity of the shrunken CSR tables -- including across churn
repairs, where NEP 50 dtype promotion could silently widen them back.
"""

import numpy as np
import pytest

from repro.core import kernels
from repro.core.pathmatrix import PathMatrix
from repro.errors import AlgorithmError, CapacityError, ReproError
from repro.network.builders import balanced_tree, random_tree
from repro.network.mutation import apply_mutation
from repro.network.rooted import RootedTree
from repro.workload.churn import random_valid_mutation

INT32_MAX = np.iinfo(np.int32).max


class TestBackendSelection:
    def test_numpy_always_available(self):
        assert "numpy" in kernels.available_backends()

    def test_active_backend_is_available(self):
        assert kernels.active_backend() in kernels.available_backends()

    def test_env_selects_numpy(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        assert kernels.active_backend() == "numpy"

    def test_env_auto_and_blank(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "auto")
        auto = kernels.active_backend()
        monkeypatch.setenv("REPRO_BACKEND", "")
        assert kernels.active_backend() == auto
        assert auto == kernels.available_backends()[0]

    def test_env_unknown_backend_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "fortran")
        with pytest.raises(AlgorithmError, match="unknown kernel backend"):
            kernels.active_backend()

    def test_unavailable_backend_raises_not_degrades(self, monkeypatch):
        missing = [b for b in kernels.BACKENDS if b not in kernels.available_backends()]
        if not missing:
            pytest.skip("every kernel backend is available in this environment")
        monkeypatch.setenv("REPRO_BACKEND", missing[0])
        with pytest.raises(AlgorithmError, match="not.*available"):
            kernels.active_backend()

    def test_set_backend_validates_eagerly(self):
        missing = [b for b in kernels.BACKENDS if b not in kernels.available_backends()]
        if not missing:
            pytest.skip("every kernel backend is available in this environment")
        try:
            with pytest.raises(AlgorithmError):
                kernels.set_backend(missing[0])
        finally:
            kernels.set_backend(None)

    def test_use_backend_restores_previous(self):
        before = kernels.active_backend()
        with kernels.use_backend("numpy"):
            assert kernels.active_backend() == "numpy"
        assert kernels.active_backend() == before

    def test_use_backend_restores_on_error(self):
        before = kernels.active_backend()
        with pytest.raises(RuntimeError):
            with kernels.use_backend("numpy"):
                raise RuntimeError("boom")
        assert kernels.active_backend() == before

    def test_forced_backend_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", kernels.active_backend())
        with kernels.use_backend("numpy"):
            assert kernels.active_backend() == "numpy"


class TestCapacityGuard:
    def test_within_capacity_passes(self):
        kernels.ensure_index_capacity(INT32_MAX, INT32_MAX, INT32_MAX)

    @pytest.mark.parametrize(
        "kwargs, what",
        [
            (dict(n_nodes=INT32_MAX + 1, n_edges=0, path_entries=0), "node count"),
            (dict(n_nodes=0, n_edges=INT32_MAX + 1, path_entries=0), "edge count"),
            (
                dict(n_nodes=0, n_edges=0, path_entries=INT32_MAX + 1),
                "root-path entry count",
            ),
        ],
    )
    def test_overflow_raises_never_wraps(self, kwargs, what):
        with pytest.raises(CapacityError, match=what):
            kernels.ensure_index_capacity(**kwargs)

    def test_capacity_error_is_repro_error(self):
        assert issubclass(CapacityError, ReproError)

    def test_pathmatrix_construction_guards(self, monkeypatch):
        # shrink the guard threshold so a small network "overflows": the
        # construction path must refuse loudly instead of wrapping indices
        monkeypatch.setattr(kernels, "_INT32_MAX", 4)
        net = balanced_tree(2, 2, 2)
        with pytest.raises(CapacityError):
            PathMatrix(RootedTree(net, net.canonical_root()))

    def test_repair_guards_structural_growth(self, monkeypatch):
        from repro.network.mutation import AttachLeaf

        net = balanced_tree(2, 2, 2)
        rooted = net.rooted()
        pm = rooted.path_matrix()
        outcome = apply_mutation(net, AttachLeaf(int(net.buses[0])))
        monkeypatch.setattr(kernels, "_INT32_MAX", 4)
        with pytest.raises(CapacityError):
            pm.repaired(outcome, rooted.repaired(outcome))


class TestIndexDtypes:
    """The CSR/lifting substrate stays int32, fresh and across repairs."""

    INDEX_ARRAYS = ("_up", "_rp_edges", "_rp_nodes", "_edge_u", "_edge_v")

    def _assert_int32(self, pm):
        for attr in self.INDEX_ARRAYS:
            assert getattr(pm, attr).dtype == kernels.INDEX_DTYPE, attr

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_fresh_substrate_is_int32(self, seed):
        net = random_tree(5, 12, seed=seed)
        self._assert_int32(net.rooted().path_matrix())

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_repaired_substrate_stays_int32(self, seed):
        # NEP 50 regression guard: surgery on int32 tables must not promote
        # them back to int64 (np.append with python ints, int64 gathers)
        net = random_tree(5, 12, seed=seed)
        rooted = net.rooted()
        pm = rooted.path_matrix()
        rng = np.random.default_rng(seed)
        for _ in range(6):
            mutation = random_valid_mutation(net, rng)
            outcome = apply_mutation(net, mutation)
            rooted = rooted.repaired(outcome)
            pm = pm.repaired(outcome, rooted)
            net = outcome.network
            self._assert_int32(pm)

    @pytest.mark.parametrize("seed", [0, 1])
    def test_int32_substrate_matches_int64_reference(self, seed):
        # parity: the shrunken tables drive the reference kernels to the
        # same answers as their int64 widenings
        net = random_tree(5, 12, seed=seed)
        pm = net.rooted().path_matrix()
        rng = np.random.default_rng(seed)
        u = rng.integers(0, net.n_nodes, size=64)
        v = rng.integers(0, net.n_nodes, size=64)
        with kernels.use_backend("numpy"):
            narrow = kernels.lca(pm._up, pm._depth, u.copy(), v.copy())
            wide = kernels.lca(
                pm._up.astype(np.int64), pm._depth, u.copy(), v.copy()
            )
        assert np.array_equal(narrow, wide)
        delta = rng.integers(-4, 5, size=net.n_nodes).astype(np.float64)
        out32 = np.zeros(net.n_edges)
        out64 = np.zeros(net.n_edges)
        with kernels.use_backend("numpy"):
            kernels.scatter_paths(
                out32, pm._rp_edges, pm._rp_nodes, pm._rp_indptr, delta
            )
            kernels.scatter_paths(
                out64,
                pm._rp_edges.astype(np.int64),
                pm._rp_nodes.astype(np.int64),
                pm._rp_indptr,
                delta,
            )
        assert np.array_equal(out32, out64)

    def test_memory_bytes_reports_substrate(self):
        net = balanced_tree(2, 3, 2)
        pm = net.rooted().path_matrix()
        total = pm.memory_bytes()
        assert total > 0
        # int32 tables are counted at their shrunken width
        assert total >= pm._up.nbytes + pm._rp_edges.nbytes
        from repro.core.loadstate import LoadState

        state = LoadState(net)
        assert state.memory_bytes() >= total  # shares the pm arrays, adds loads


class TestAggregatePairsUnit:
    def test_empty(self):
        u, o, c = kernels.aggregate_pairs(np.empty(0, np.int64), np.empty(0, np.int64))
        assert u.size == o.size == c.size == 0
        assert u.dtype == o.dtype == c.dtype == np.int64

    def test_small_known(self):
        procs = np.asarray([3, 1, 3, 1, 3])
        objs = np.asarray([0, 2, 0, 2, 1])
        u, o, c = kernels.aggregate_pairs(procs, objs)
        assert u.tolist() == [1, 3, 3]
        assert o.tolist() == [2, 0, 1]
        assert c.tolist() == [2, 2, 1]
