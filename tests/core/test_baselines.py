"""Tests for the baseline placement strategies."""

import pytest

from repro.core.baselines import (
    full_replication_placement,
    greedy_congestion_placement,
    median_leaf_placement,
    owner_placement,
    random_placement,
)
from repro.core.congestion import compute_loads, total_communication_load
from repro.core.placement import Placement
from repro.network.builders import balanced_tree, single_bus, star_of_buses
from repro.workload.access import AccessPattern
from repro.workload.adversarial import replication_trap
from repro.workload.generators import uniform_pattern

ALL_BASELINES = [
    owner_placement,
    median_leaf_placement,
    greedy_congestion_placement,
    lambda net, pat: random_placement(net, pat, seed=0),
    full_replication_placement,
]


class TestCommonContract:
    @pytest.mark.parametrize("factory", ALL_BASELINES)
    def test_valid_leaf_only_placement(self, factory):
        net = balanced_tree(2, 2, 2)
        pat = uniform_pattern(net, 8, seed=0)
        placement = factory(net, pat)
        placement.validate_for(net, pat, require_leaf_only=True)
        assert placement.n_objects == pat.n_objects

    @pytest.mark.parametrize("factory", ALL_BASELINES)
    def test_handles_empty_pattern(self, factory):
        net = single_bus(3)
        pat = AccessPattern.empty(net.n_nodes, 2)
        placement = factory(net, pat)
        placement.validate_for(net, pat, require_leaf_only=True)


class TestOwnerPlacement:
    def test_places_on_heaviest_requester(self):
        net = single_bus(3)
        p1, p2, p3 = net.processors
        pat = AccessPattern.from_requests(
            net, 2, [(p1, 0, 10, 0), (p2, 0, 1, 1), (p3, 1, 0, 7)]
        )
        placement = owner_placement(net, pat)
        assert placement.holders(0) == frozenset({p1})
        assert placement.holders(1) == frozenset({p3})

    def test_tie_breaks_to_smallest_processor(self):
        net = single_bus(3)
        p1, p2, _ = net.processors
        pat = AccessPattern.from_requests(net, 1, [(p1, 0, 5, 0), (p2, 0, 5, 0)])
        assert owner_placement(net, pat).holders(0) == frozenset({min(p1, p2)})


class TestMedianLeafPlacement:
    def test_minimises_total_load(self):
        net = star_of_buses(2, 2)
        procs = list(net.processors)
        # three requesters on one side, one on the other: the weighted median
        # lies on the heavy side
        pat = AccessPattern.from_requests(
            net,
            1,
            [
                (procs[0], 0, 4, 0),
                (procs[1], 0, 4, 0),
                (procs[3], 0, 1, 0),
            ],
        )
        placement = median_leaf_placement(net, pat)
        chosen = next(iter(placement.holders(0)))
        best = min(
            procs,
            key=lambda leaf: total_communication_load(
                net, pat, Placement.single_holder([leaf])
            ),
        )
        assert total_communication_load(
            net, pat, placement
        ) == pytest.approx(
            total_communication_load(
                net, pat, Placement.single_holder([best])
            )
        )
        assert chosen in procs


class TestGreedyPlacement:
    def test_not_worse_than_owner_on_uniform(self):
        net = balanced_tree(2, 2, 2)
        pat = uniform_pattern(net, 16, seed=1)
        greedy = compute_loads(net, pat, greedy_congestion_placement(net, pat)).congestion
        owner = compute_loads(net, pat, owner_placement(net, pat)).congestion
        assert greedy <= owner + 1e-9

    def test_respects_explicit_order(self):
        net = single_bus(3)
        pat = uniform_pattern(net, 4, seed=2)
        p1 = greedy_congestion_placement(net, pat, object_order=[0, 1, 2, 3])
        p2 = greedy_congestion_placement(net, pat, object_order=[3, 2, 1, 0])
        # both must be valid; they may differ
        p1.validate_for(net, pat)
        p2.validate_for(net, pat)


class TestRandomAndReplication:
    def test_random_is_deterministic_given_seed(self):
        net = balanced_tree(2, 2, 2)
        pat = uniform_pattern(net, 8, seed=3)
        assert random_placement(net, pat, seed=42) == random_placement(net, pat, seed=42)

    def test_full_replication_bad_under_writes(self):
        net = single_bus(8)
        pat = replication_trap(net, 8, reads_per_processor=2, writes_per_object=4, seed=0)
        replicated = compute_loads(net, pat, full_replication_placement(net, pat)).congestion
        single = compute_loads(net, pat, owner_placement(net, pat)).congestion
        assert replicated > single

    def test_full_replication_free_reads(self):
        net = single_bus(4)
        procs = list(net.processors)
        pat = AccessPattern.from_requests(
            net, 1, [(p, 0, 5, 0) for p in procs]
        )
        profile = compute_loads(net, pat, full_replication_placement(net, pat))
        assert profile.congestion == 0.0
