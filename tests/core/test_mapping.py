"""Tests for the mapping algorithm (Step 3, Figures 5/6, Lemma 4.1)."""

import numpy as np
import pytest

from repro.core.congestion import compute_loads
from repro.core.deletion import apply_deletion, copies_to_placement
from repro.core.mapping import directed_basic_loads, map_copies_to_leaves
from repro.core.nibble import nibble_placement
from repro.network.builders import path_of_buses, random_tree, single_bus
from repro.workload.access import AccessPattern
from repro.workload.generators import uniform_pattern


def prepared_instance(seed, n_objects=6):
    net = random_tree(4, 7, seed=seed)
    pat = uniform_pattern(net, n_objects, requests_per_processor=10, seed=seed)
    nib = nibble_placement(net, pat)
    copies = apply_deletion(net, pat, nib.placement)
    return net, pat, nib, copies


class TestBasicLoads:
    def test_directed_loads_sum_to_undirected_path_lengths(self):
        net = single_bus(3)
        procs = list(net.processors)
        pat = AccessPattern.from_requests(net, 1, [(procs[1], 0, 3, 0)])
        nib = nibble_placement(net, pat)
        copies = apply_deletion(net, pat, nib.placement)
        rooted = net.rooted()
        up, down = directed_basic_loads(net, rooted, copies[0].copies)
        # the only copy is on procs[1] itself (local), so no basic load at all
        assert up.sum() == 0 and down.sum() == 0

    def test_remote_request_creates_basic_load(self):
        net = single_bus(3)
        procs = list(net.processors)
        # all writes -> single copy at the gravity center
        pat = AccessPattern.from_requests(
            net, 1, [(procs[0], 0, 0, 5), (procs[1], 0, 0, 3)]
        )
        nib = nibble_placement(net, pat)
        copies = apply_deletion(net, pat, nib.placement)
        rooted = net.rooted()
        up, down = directed_basic_loads(net, rooted, copies[0].copies)
        # basic requests point from the serving copy towards the requesting leaf
        assert up.sum() + down.sum() > 0


class TestMappingCorrectness:
    @pytest.mark.parametrize("seed", range(8))
    def test_all_copies_end_on_processors(self, seed):
        net, pat, nib, copies = prepared_instance(seed)
        map_copies_to_leaves(net, copies)
        for oc in copies:
            for copy in oc.copies:
                assert net.is_processor(copy.node)

    @pytest.mark.parametrize("seed", range(8))
    def test_served_requests_preserved(self, seed):
        net, pat, nib, copies = prepared_instance(seed)
        before = [oc.total_served for oc in copies]
        map_copies_to_leaves(net, copies)
        after = [oc.total_served for oc in copies]
        assert before == after

    @pytest.mark.parametrize("seed", range(8))
    def test_unaffected_objects_untouched(self, seed):
        net, pat, nib, copies = prepared_instance(seed)
        before = {
            oc.obj: [(c.node, tuple(sorted(c.served))) for c in oc.copies]
            for oc in copies
            if not oc.has_bus_copy(net)
        }
        map_copies_to_leaves(net, copies)
        for oc in copies:
            if oc.obj in before:
                now = [(c.node, tuple(sorted(c.served))) for c in oc.copies]
                assert now == before[oc.obj]

    @pytest.mark.parametrize("seed", range(8))
    def test_result_reports_affected_objects(self, seed):
        net, pat, nib, copies = prepared_instance(seed)
        affected_before = {oc.obj for oc in copies if oc.has_bus_copy(net)}
        result = map_copies_to_leaves(net, copies)
        assert set(result.affected_objects) == affected_before

    def test_tau_max_definition(self):
        net, pat, nib, copies = prepared_instance(0)
        kappa = {oc.obj: oc.kappa for oc in copies}
        affected = {oc.obj for oc in copies if oc.has_bus_copy(net)}
        expected = max(
            (c.s + kappa[oc.obj] for oc in copies if oc.obj in affected for c in oc.copies),
            default=0,
        )
        result = map_copies_to_leaves(net, copies)
        assert result.tau_max == expected

    def test_empty_instance(self):
        net = single_bus(3)
        result = map_copies_to_leaves(net, [])
        assert result.tau_max == 0
        assert result.moves_up == 0 and result.moves_down == 0

    def test_explicit_root_choice(self):
        net, pat, nib, copies = prepared_instance(1)
        leaf_root = net.processors[0]
        result = map_copies_to_leaves(net, copies, root=leaf_root)
        assert result.root == leaf_root
        for oc in copies:
            for copy in oc.copies:
                assert net.is_processor(copy.node)


class TestAccountingInvariants:
    @pytest.mark.parametrize("seed", range(6))
    def test_upward_mapping_load_never_exceeds_acceptable(self, seed):
        net, pat, nib, copies = prepared_instance(seed)
        result = map_copies_to_leaves(net, copies)
        # The upwards phase only moves while L_map + tau <= L_acc, so the
        # final upward mapping load never exceeds the (clamped) acceptable load.
        assert np.all(result.up_mapping_load <= result.up_acceptable_load + 1e-9)

    @pytest.mark.parametrize("seed", range(6))
    def test_downward_mapping_load_within_tau_of_acceptable(self, seed):
        net, pat, nib, copies = prepared_instance(seed)
        result = map_copies_to_leaves(net, copies)
        # Observation 3.3: either L_map <= L_acc + tau_max, or nothing was
        # moved along the edge.
        slack = result.down_acceptable_load + result.tau_max - result.down_mapping_load
        moved = result.down_mapping_load > 0
        assert np.all(slack[moved] >= -1e-9)

    @pytest.mark.parametrize("seed", range(6))
    def test_final_congestion_within_7x_of_nibble(self, seed):
        """Lemmas 4.4-4.6: the mapped placement stays within 7x of optimal."""
        net, pat, nib, copies = prepared_instance(seed)
        nibble_congestion = compute_loads(net, pat, nib.placement).congestion
        map_copies_to_leaves(net, copies)
        fallback = list(net.processors)[:1] * pat.n_objects
        placement, assignment = copies_to_placement(copies, pat, fallback)
        final = compute_loads(net, pat, placement, assignment=assignment).congestion
        if nibble_congestion > 0:
            assert final <= 7 * nibble_congestion + 1e-9


class TestDeepAndDegenerateTopologies:
    def test_deep_path_topology(self):
        net = path_of_buses(6, leaves_per_bus=1)
        pat = uniform_pattern(net, 8, requests_per_processor=6, seed=2)
        nib = nibble_placement(net, pat)
        copies = apply_deletion(net, pat, nib.placement)
        map_copies_to_leaves(net, copies)
        for oc in copies:
            for c in oc.copies:
                assert net.is_processor(c.node)

    def test_wide_bus_topology(self):
        net = single_bus(16)
        pat = uniform_pattern(net, 12, requests_per_processor=4, seed=3)
        nib = nibble_placement(net, pat)
        copies = apply_deletion(net, pat, nib.placement)
        result = map_copies_to_leaves(net, copies)
        assert result.moves_down >= 0
        for oc in copies:
            for c in oc.copies:
                assert net.is_processor(c.node)

    def test_single_processor_network(self):
        from repro.network.node import ProcessorSpec
        from repro.network.tree import HierarchicalBusNetwork

        net = HierarchicalBusNetwork([ProcessorSpec("p")], [])
        pat = AccessPattern.from_requests(net, 1, [(0, 0, 3, 2)])
        nib = nibble_placement(net, pat)
        copies = apply_deletion(net, pat, nib.placement)
        result = map_copies_to_leaves(net, copies)
        assert result.moves_up == 0 and result.moves_down == 0
        assert copies[0].copies[0].node == 0
