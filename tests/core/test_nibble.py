"""Tests for the nibble strategy (Step 1, Theorem 3.1)."""

import itertools

import numpy as np
import pytest

from repro.core.congestion import compute_loads, object_edge_loads
from repro.core.nibble import (
    center_of_gravity,
    gravity_candidates,
    nibble_holders_for_object,
    nibble_placement,
)
from repro.core.placement import Placement
from repro.errors import AlgorithmError
from repro.network.builders import balanced_tree, random_tree, single_bus, star_of_buses
from repro.workload.access import AccessPattern
from repro.workload.generators import uniform_pattern


class TestCenterOfGravity:
    def test_balanced_weights_pick_the_bus(self):
        net = single_bus(2)
        bus = net.buses[0]
        weights = np.zeros(net.n_nodes, dtype=int)
        weights[list(net.processors)] = 5
        cands = gravity_candidates(net, weights)
        assert bus in cands
        assert center_of_gravity(net, weights) == min(cands)

    def test_heavy_leaf_is_the_center(self):
        net = single_bus(3)
        p = net.processors[0]
        weights = np.zeros(net.n_nodes, dtype=int)
        weights[p] = 10
        weights[net.processors[1]] = 1
        assert center_of_gravity(net, weights) == p

    def test_zero_weights_every_node_qualifies(self):
        net = single_bus(3)
        weights = np.zeros(net.n_nodes, dtype=int)
        assert gravity_candidates(net, weights) == list(net.nodes())
        assert center_of_gravity(net, weights) == 0

    def test_candidate_components_at_most_half(self):
        net = balanced_tree(2, 3, 2)
        rng = np.random.default_rng(0)
        weights = np.zeros(net.n_nodes, dtype=int)
        weights[list(net.processors)] = rng.integers(0, 10, size=net.n_processors)
        total = weights.sum()
        rooted = net.rooted(0)
        subtree = rooted.subtree_sums(weights)
        for v in gravity_candidates(net, weights):
            comps = [subtree[c] for c in rooted.children(v)]
            comps.append(total - subtree[v])
            assert max(comps, default=0) <= total / 2

    def test_negative_weights_rejected(self):
        net = single_bus(2)
        weights = np.zeros(net.n_nodes, dtype=int)
        weights[1] = -1
        with pytest.raises(AlgorithmError):
            gravity_candidates(net, weights)

    def test_wrong_length_rejected(self):
        net = single_bus(2)
        with pytest.raises(AlgorithmError):
            gravity_candidates(net, np.zeros(net.n_nodes + 1, dtype=int))


class TestNibblePlacementStructure:
    @pytest.mark.parametrize("seed", range(5))
    def test_copies_form_connected_subtree_containing_center(self, seed):
        net = random_tree(5, 8, seed=seed)
        pat = uniform_pattern(net, 6, requests_per_processor=10, seed=seed)
        result = nibble_placement(net, pat)
        rooted = net.rooted()
        for obj in range(pat.n_objects):
            holders = result.placement.holders(obj)
            center = result.centers[obj]
            assert center in holders
            # connected: the Steiner tree over the holders contains no other nodes
            steiner_nodes = set(rooted.steiner_node_ids(holders))
            assert steiner_nodes == set(holders)

    def test_read_only_object_replicated_at_requesters(self):
        net = star_of_buses(2, 2)
        procs = list(net.processors)
        pat = AccessPattern.from_requests(
            net, 1, [(procs[0], 0, 5, 0), (procs[3], 0, 5, 0)]
        )
        result = nibble_placement(net, pat)
        holders = result.placement.holders(0)
        # with zero write contention every requester can afford its own copy
        assert procs[0] in holders and procs[3] in holders
        # and the placement induces zero load
        profile = compute_loads(net, pat, result.placement)
        assert profile.congestion == 0.0

    def test_write_only_object_single_copy(self):
        net = single_bus(3)
        procs = list(net.processors)
        pat = AccessPattern.from_requests(
            net, 1, [(procs[0], 0, 0, 4), (procs[1], 0, 0, 4)]
        )
        result = nibble_placement(net, pat)
        # h(T(v)) can never exceed w(T) when all requests are writes,
        # so only the gravity center holds a copy
        assert len(result.placement.holders(0)) == 1

    def test_trivial_object_gets_center_only(self):
        net = single_bus(3)
        pat = AccessPattern.empty(net.n_nodes, 1)
        result = nibble_placement(net, pat)
        assert len(result.placement.holders(0)) == 1


class TestTheorem31LoadProperties:
    @pytest.mark.parametrize("seed", range(5))
    def test_kappa_bound_on_every_edge(self, seed):
        net = random_tree(4, 7, seed=seed)
        pat = uniform_pattern(net, 5, requests_per_processor=8, seed=seed)
        result = nibble_placement(net, pat)
        for obj in range(pat.n_objects):
            kappa = pat.write_contention(obj)
            loads = object_edge_loads(net, pat, result.placement, obj)
            assert loads.max(initial=0.0) <= kappa + 1e-9 or kappa == 0

    @pytest.mark.parametrize("seed", range(5))
    def test_load_inside_copy_subtree_equals_kappa(self, seed):
        net = random_tree(4, 7, seed=seed)
        pat = uniform_pattern(net, 5, requests_per_processor=8, seed=seed)
        result = nibble_placement(net, pat)
        rooted = net.rooted()
        for obj in range(pat.n_objects):
            kappa = pat.write_contention(obj)
            holders = result.placement.holders(obj)
            if len(holders) < 2 or kappa == 0:
                continue
            loads = object_edge_loads(net, pat, result.placement, obj)
            for eid in rooted.steiner_edge_ids(holders):
                assert loads[eid] == pytest.approx(kappa)

    def test_per_edge_optimality_against_exhaustive_single_object(self):
        """Theorem 3.1: nibble minimises the load on every edge.

        For a single object on a tiny network we enumerate *all* placements
        (every non-empty holder subset over all nodes, nearest-copy
        assignment) and check the nibble loads are a per-edge lower bound.
        """
        net = star_of_buses(2, 2)
        procs = list(net.processors)
        pat = AccessPattern.from_requests(
            net,
            1,
            [
                (procs[0], 0, 3, 2),
                (procs[1], 0, 1, 0),
                (procs[2], 0, 0, 4),
                (procs[3], 0, 2, 1),
            ],
        )
        nib = nibble_placement(net, pat)
        nib_loads = object_edge_loads(net, pat, nib.placement, 0)

        nodes = list(net.nodes())
        for r in range(1, len(nodes) + 1):
            for subset in itertools.combinations(nodes, r):
                placement = Placement([list(subset)])
                loads = object_edge_loads(net, pat, placement, 0)
                assert np.all(nib_loads <= loads + 1e-9), (
                    f"nibble not edge-optimal against holders {subset}"
                )

    def test_congestion_is_a_lower_bound_for_leaf_only_placements(self):
        net = single_bus(4)
        pat = uniform_pattern(net, 4, requests_per_processor=10, seed=3)
        nib = nibble_placement(net, pat)
        nib_congestion = compute_loads(net, pat, nib.placement).congestion
        procs = list(net.processors)
        # sample a few leaf-only placements; none may beat the nibble congestion
        rng = np.random.default_rng(0)
        for _ in range(20):
            holders = [procs[int(rng.integers(0, len(procs)))] for _ in range(4)]
            c = compute_loads(net, pat, Placement.single_holder(holders)).congestion
            assert c >= nib_congestion - 1e-9


class TestPerObjectIndependence:
    def test_holders_depend_only_on_that_object(self):
        net = balanced_tree(2, 2, 2)
        pat = uniform_pattern(net, 4, requests_per_processor=6, seed=0)
        full = nibble_placement(net, pat)
        for obj in range(pat.n_objects):
            single = pat.restrict_objects([obj])
            alone = nibble_placement(net, single)
            assert alone.placement.holders(0) == full.placement.holders(obj)
            assert alone.centers[0] == full.centers[obj]

    def test_helper_matches_full_run(self):
        net = balanced_tree(2, 2, 2)
        pat = uniform_pattern(net, 3, seed=1)
        full = nibble_placement(net, pat)
        for obj in range(pat.n_objects):
            holders, center = nibble_holders_for_object(net, pat, obj)
            assert holders == full.placement.holders(obj)
            assert center == full.centers[obj]
