"""Tests for the congestion lower bounds."""

import numpy as np
import pytest

from repro.core.bounds import (
    congestion_lower_bound,
    contention_lower_bound,
    nibble_lower_bound,
    per_edge_lower_bounds,
)
from repro.core.congestion import compute_loads
from repro.core.nibble import nibble_placement
from repro.core.optimal import optimal_redundant
from repro.network.builders import random_tree, single_bus
from repro.workload.access import AccessPattern
from repro.workload.generators import random_sparse_pattern, uniform_pattern


class TestNibbleLowerBound:
    @pytest.mark.parametrize("seed", range(6))
    def test_lower_bounds_exact_optimum(self, seed):
        net = single_bus(4)
        pat = random_sparse_pattern(net, 3, density=0.6, max_frequency=5, seed=seed)
        lb = nibble_lower_bound(net, pat)
        opt = optimal_redundant(net, pat).congestion
        assert lb <= opt + 1e-9

    def test_reuses_precomputed_nibble(self):
        net = single_bus(4)
        pat = uniform_pattern(net, 4, seed=0)
        nib = nibble_placement(net, pat)
        assert nibble_lower_bound(net, pat, nibble=nib) == pytest.approx(
            nibble_lower_bound(net, pat)
        )

    def test_zero_for_empty_pattern(self):
        net = single_bus(3)
        pat = AccessPattern.empty(net.n_nodes, 2)
        assert nibble_lower_bound(net, pat) == 0.0


class TestPerEdgeBounds:
    @pytest.mark.parametrize("seed", range(4))
    def test_per_edge_bounds_below_any_leaf_placement(self, seed):
        net = random_tree(3, 5, seed=seed)
        pat = random_sparse_pattern(net, 4, seed=seed)
        bounds = per_edge_lower_bounds(net, pat)
        rng = np.random.default_rng(seed)
        procs = list(net.processors)
        from repro.core.placement import Placement

        for _ in range(10):
            holders = [procs[int(rng.integers(0, len(procs)))] for _ in range(pat.n_objects)]
            loads = compute_loads(net, pat, Placement.single_holder(holders)).edge_loads
            assert np.all(bounds <= loads + 1e-9)


class TestContentionBound:
    def test_balanced_write_pair(self):
        net = single_bus(2)
        p1, p2 = net.processors
        pat = AccessPattern.from_requests(net, 1, [(p1, 0, 0, 6), (p2, 0, 0, 6)])
        bound = contention_lower_bound(net, pat)
        opt = optimal_redundant(net, pat).congestion
        assert bound <= opt + 1e-9
        assert bound == 6.0

    def test_no_affected_objects_gives_zero(self):
        net = single_bus(3)
        p1, _, _ = net.processors
        # a single heavy requester: the nibble keeps the copy on the leaf
        pat = AccessPattern.from_requests(net, 1, [(p1, 0, 10, 2)])
        assert contention_lower_bound(net, pat) == 0.0

    def test_explicit_affected_list(self):
        net = single_bus(2)
        p1, p2 = net.processors
        pat = AccessPattern.from_requests(net, 1, [(p1, 0, 0, 3), (p2, 0, 0, 5)])
        assert contention_lower_bound(net, pat, affected_objects=[0]) == min(8.0, 4.0)
        assert contention_lower_bound(net, pat, affected_objects=[]) == 0.0


class TestCombinedReport:
    @pytest.mark.parametrize("seed", range(4))
    def test_best_is_max_of_components(self, seed):
        net = random_tree(3, 6, seed=seed)
        pat = random_sparse_pattern(net, 5, seed=seed)
        report = congestion_lower_bound(net, pat)
        assert report.best == max(report.nibble_congestion, report.contention_bound)

    @pytest.mark.parametrize("seed", range(4))
    def test_report_components_below_exact_optimum(self, seed):
        net = single_bus(4)
        pat = random_sparse_pattern(net, 3, density=0.6, max_frequency=4, seed=seed)
        report = congestion_lower_bound(net, pat)
        opt = optimal_redundant(net, pat).congestion
        assert report.best <= opt + 1e-9
