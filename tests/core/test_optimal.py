"""Tests for the exact solvers (branch and bound, exhaustive search)."""

import itertools

import pytest

from repro.core.congestion import compute_loads
from repro.core.optimal import (
    optimal_nonredundant,
    optimal_redundant,
    placement_decision,
)
from repro.core.placement import Placement
from repro.errors import InfeasibleError
from repro.network.builders import single_bus, star_of_buses
from repro.workload.access import AccessPattern
from repro.workload.generators import random_sparse_pattern


def brute_force_nonredundant(net, pat):
    """Independent exhaustive reference implementation."""
    procs = list(net.processors)
    best = float("inf")
    for combo in itertools.product(procs, repeat=pat.n_objects):
        c = compute_loads(net, pat, Placement.single_holder(list(combo))).congestion
        best = min(best, c)
    return best


class TestOptimalNonredundant:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_exhaustive_reference(self, seed):
        net = single_bus(3)
        pat = random_sparse_pattern(net, 3, density=0.7, max_frequency=6, seed=seed)
        result = optimal_nonredundant(net, pat)
        assert result.congestion == pytest.approx(brute_force_nonredundant(net, pat))
        # the returned placement actually achieves the reported congestion
        assert compute_loads(net, pat, result.placement).congestion == pytest.approx(
            result.congestion
        )

    def test_upper_bound_pruning_preserves_optimum(self):
        net = single_bus(3)
        pat = random_sparse_pattern(net, 3, density=0.8, max_frequency=6, seed=9)
        base = optimal_nonredundant(net, pat)
        pruned = optimal_nonredundant(net, pat, upper_bound=base.congestion + 1)
        assert pruned.congestion == pytest.approx(base.congestion)
        assert pruned.explored <= base.explored + 5

    def test_node_limit(self):
        net = single_bus(6)
        pat = random_sparse_pattern(net, 6, density=0.9, max_frequency=6, seed=0)
        with pytest.raises(InfeasibleError):
            optimal_nonredundant(net, pat, max_nodes=3)

    def test_empty_pattern(self):
        net = single_bus(3)
        pat = AccessPattern.empty(net.n_nodes, 2)
        result = optimal_nonredundant(net, pat)
        assert result.congestion == 0.0


class TestOptimalRedundant:
    def test_never_worse_than_nonredundant(self):
        net = single_bus(3)
        pat = random_sparse_pattern(net, 2, density=0.8, max_frequency=4, seed=1)
        non = optimal_nonredundant(net, pat).congestion
        red = optimal_redundant(net, pat).congestion
        assert red <= non + 1e-9

    def test_redundancy_helps_read_heavy_objects(self):
        net = star_of_buses(2, 1)
        procs = list(net.processors)
        # one object read heavily from both sides of the hierarchy and never
        # written: two copies drop the congestion to zero
        pat = AccessPattern.from_requests(
            net, 1, [(procs[0], 0, 6, 0), (procs[1], 0, 6, 0)]
        )
        non = optimal_nonredundant(net, pat).congestion
        red = optimal_redundant(net, pat).congestion
        assert red == 0.0
        assert non > 0.0

    def test_combination_limit(self):
        net = single_bus(5)
        pat = random_sparse_pattern(net, 6, seed=2)
        with pytest.raises(InfeasibleError):
            optimal_redundant(net, pat, max_combinations=10)

    def test_write_only_redundancy_never_helps(self):
        """The paper's remark: with only writes, optima are non-redundant."""
        net = single_bus(3)
        procs = list(net.processors)
        pat = AccessPattern.from_requests(
            net, 2, [(procs[0], 0, 0, 3), (procs[1], 0, 0, 2), (procs[2], 1, 0, 4)]
        )
        non = optimal_nonredundant(net, pat).congestion
        red = optimal_redundant(net, pat).congestion
        assert red == pytest.approx(non)


class TestDecision:
    def test_threshold_behaviour(self):
        net = single_bus(3)
        procs = list(net.processors)
        pat = AccessPattern.from_requests(net, 1, [(procs[0], 0, 0, 4), (procs[1], 0, 0, 4)])
        opt = optimal_nonredundant(net, pat).congestion
        assert placement_decision(net, pat, opt)
        assert placement_decision(net, pat, opt + 1)
        assert not placement_decision(net, pat, opt - 0.5)

    def test_redundant_decision(self):
        net = star_of_buses(2, 1)
        procs = list(net.processors)
        pat = AccessPattern.from_requests(
            net, 1, [(procs[0], 0, 6, 0), (procs[1], 0, 6, 0)]
        )
        assert placement_decision(net, pat, 0.0, redundant=True)
        assert not placement_decision(net, pat, 0.0, redundant=False)
