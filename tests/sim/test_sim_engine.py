"""Unit tests for the simulation kernel (timeline, protocol, engine, sinks)."""

import numpy as np
import pytest

from repro.core.extended_nibble import extended_nibble
from repro.dynamic.online import EdgeCounterManager, StaticPlacementManager
from repro.dynamic.sequence import RequestEvent, RequestSequence, sequence_from_pattern
from repro.errors import SimulationError, WorkloadError
from repro.network.builders import balanced_tree, single_bus
from repro.network.mutation import AttachLeaf, ChurnTrace, DetachLeaf
from repro.sim.engine import RoundReplayDriver, SimulationEngine
from repro.sim.protocol import validate_strategy
from repro.sim.sinks import (
    CostBreakdownSink,
    DropAccountingSink,
    RoundStatsSink,
    TrajectorySink,
)
from repro.sim.timeline import MutationPoint, ServeSpan, merge_timeline
from repro.workload.generators import uniform_pattern


@pytest.fixture
def instance():
    net = balanced_tree(2, 2, 2)
    pattern = uniform_pattern(net, 8, requests_per_processor=10, seed=0)
    seq = sequence_from_pattern(net, pattern, seed=1)
    placement = extended_nibble(net, pattern).placement
    return net, seq, placement


class TestMergeTimeline:
    def test_plain_sequence_is_one_span(self):
        items = merge_timeline(10)
        assert items == [ServeSpan(0, 10)]

    def test_chunk_grid(self):
        items = merge_timeline(10, chunk_size=4)
        assert items == [ServeSpan(0, 4), ServeSpan(4, 8), ServeSpan(8, 10)]

    def test_mutations_split_spans_and_come_first(self):
        trace = ChurnTrace([(0, AttachLeaf(0)), (5, AttachLeaf(0))])
        items = merge_timeline(10, trace)
        assert isinstance(items[0], MutationPoint) and items[0].time == 0
        assert items[1] == ServeSpan(0, 5)
        assert isinstance(items[2], MutationPoint) and items[2].time == 5
        assert items[3] == ServeSpan(5, 10)

    def test_late_mutations_after_last_span(self):
        trace = ChurnTrace([(99, AttachLeaf(0))])
        items = merge_timeline(10, trace)
        assert items[0] == ServeSpan(0, 10)
        assert isinstance(items[1], MutationPoint)

    def test_empty_sequence_applies_all_mutations(self):
        trace = ChurnTrace([(3, AttachLeaf(0)), (7, AttachLeaf(0))])
        items = merge_timeline(0, trace)
        assert all(isinstance(i, MutationPoint) for i in items)
        assert len(items) == 2

    def test_boundaries_split_spans(self):
        items = merge_timeline(10, boundaries=[3, 30])
        assert items == [ServeSpan(0, 3), ServeSpan(3, 10)]


class TestMergeTimelineEdgeCases:
    """Degenerate timelines, pinned against the engine's serve behavior."""

    def test_empty_sequence_with_pending_mutations_runs_them_all(self, instance):
        net, _seq, placement = instance
        trace = ChurnTrace([(0, AttachLeaf(0)), (5, AttachLeaf(0))])
        items = merge_timeline(0, trace)
        assert all(isinstance(i, MutationPoint) for i in items)

        n_before = net.n_nodes
        sink = TrajectorySink(10)
        result = SimulationEngine(
            StaticPlacementManager(net, placement), sinks=(sink,)
        ).run(RequestSequence([], 8), trace)
        assert result.n_events == result.served == result.dropped == 0
        assert result.n_mutations == 2
        assert result.network.n_nodes == n_before + 2
        assert len(sink.sample_times) == 0  # nothing served, nothing sampled

    def test_mutation_at_time_zero_precedes_every_event(self, instance):
        net, seq, placement = instance
        victim = net.processors[0]
        trace = ChurnTrace([(0, DetachLeaf(victim))])
        items = merge_timeline(len(seq), trace, chunk_size=5)
        assert isinstance(items[0], MutationPoint) and items[0].time == 0
        assert items[1].start == 0  # no zero-width span before the mutation
        assert all(
            s.stop > s.start for s in items if isinstance(s, ServeSpan)
        )

        result = SimulationEngine(StaticPlacementManager(net, placement)).run(
            seq, trace
        )
        # the detach lands before event 0: every victim request drops
        assert result.dropped == sum(1 for ev in seq if ev.processor == victim)

    def test_boundary_coinciding_with_chunk_cut_is_not_duplicated(self, instance):
        net, seq, placement = instance
        items = merge_timeline(10, boundaries=[4], chunk_size=4)
        assert items == [ServeSpan(0, 4), ServeSpan(4, 8), ServeSpan(8, 10)]

        # a sink interval equal to the chunk grid must not double-sample
        sink = TrajectorySink(4)
        SimulationEngine(
            StaticPlacementManager(net, placement), sinks=(sink,), chunk_size=4
        ).run(seq)
        times = list(sink.sample_times)
        assert times == sorted(set(times))
        assert times[-1] == len(seq)

    def test_chunk_size_larger_than_sequence_is_one_span(self, instance):
        net, seq, placement = instance
        assert merge_timeline(5, chunk_size=100) == [ServeSpan(0, 5)]

        big = SimulationEngine(
            StaticPlacementManager(net, placement), chunk_size=10 * len(seq)
        ).run(seq)
        plain = SimulationEngine(StaticPlacementManager(net, placement)).run(seq)
        assert big.served == plain.served == len(seq)
        assert np.array_equal(big.account.edge_loads, plain.account.edge_loads)
        assert big.account.congestion == plain.account.congestion


class TestProtocol:
    def test_online_strategies_conform(self, instance):
        net, seq, placement = instance
        validate_strategy(StaticPlacementManager(net, placement))
        validate_strategy(EdgeCounterManager(net, seq.n_objects))

    def test_non_strategy_rejected(self):
        with pytest.raises(SimulationError, match="PlacementStrategy"):
            validate_strategy(object())

    def test_engine_rejects_non_strategy(self):
        with pytest.raises(SimulationError):
            SimulationEngine(object())


class TestEngine:
    def test_bad_chunk_size_rejected(self, instance):
        net, seq, placement = instance
        with pytest.raises(WorkloadError):
            SimulationEngine(StaticPlacementManager(net, placement), chunk_size=0)

    def test_object_universe_checked(self, instance):
        net, _seq, placement = instance
        seq = RequestSequence([RequestEvent(net.processors[0], 0, "read")], 99)
        with pytest.raises(WorkloadError):
            SimulationEngine(StaticPlacementManager(net, placement)).run(seq)

    def test_chunked_equals_eventwise(self, instance):
        net, seq, placement = instance
        accounts = []
        for chunk in (1, 3, None):
            engine = SimulationEngine(
                StaticPlacementManager(net, placement), chunk_size=chunk
            )
            accounts.append(engine.run(seq).account)
        for other in accounts[1:]:
            assert np.array_equal(accounts[0].edge_loads, other.edge_loads)
            assert accounts[0].congestion == other.congestion

    def test_result_counts_without_churn(self, instance):
        net, seq, placement = instance
        result = SimulationEngine(StaticPlacementManager(net, placement)).run(seq)
        assert result.n_events == len(seq)
        assert result.served == len(seq)
        assert result.dropped == 0
        assert result.n_mutations == 0

    def test_drops_and_mutations_with_churn(self, instance):
        net, seq, placement = instance
        victim = net.processors[0]
        trace = ChurnTrace([(0, DetachLeaf(victim))])
        drops = DropAccountingSink()
        result = SimulationEngine(
            StaticPlacementManager(net, placement), sinks=(drops,)
        ).run(seq, trace)
        expected = sum(1 for ev in seq if ev.processor == victim)
        assert result.dropped == expected == drops.dropped
        assert result.served == len(seq) - expected == drops.served
        assert result.n_mutations == 1

    def test_out_of_universe_reference_rejected(self):
        net = single_bus(3)
        seq = RequestSequence([RequestEvent(99, 0, "read")], 1)
        with pytest.raises(WorkloadError, match="reference ids"):
            SimulationEngine(EdgeCounterManager(net, 1)).run(seq, ChurnTrace([]))

    def test_sink_hooks_fire(self, instance):
        net, seq, placement = instance

        class Recorder(CostBreakdownSink):
            def __init__(self):
                super().__init__()
                self.events = []

            def on_begin(self, sim):
                self.events.append("begin")

            def on_mutation(self, sim, outcome):
                self.events.append("mutation")

            def on_end(self, sim):
                super().on_end(sim)
                self.events.append("end")

        sink = Recorder()
        trace = ChurnTrace([(len(seq) // 2, AttachLeaf(0))])
        SimulationEngine(StaticPlacementManager(net, placement), sinks=(sink,)).run(
            seq, trace
        )
        assert sink.events[0] == "begin"
        assert sink.events[-1] == "end"
        assert "mutation" in sink.events
        assert sink.breakdown["total_load"] > 0
        assert sink.breakdown["management_load"] == 0


class TestTrajectorySink:
    def test_sampling_positions(self, instance):
        net, seq, placement = instance
        sink = TrajectorySink(10)
        SimulationEngine(StaticPlacementManager(net, placement), sinks=(sink,)).run(seq)
        assert sink.sample_times[-1] == len(seq)
        assert all(t % 10 == 0 for t in sink.sample_times[:-1])
        assert np.all(np.diff(sink.trajectory) >= 0)  # static never drops

    def test_invalid_sample_every(self):
        with pytest.raises(ValueError):
            TrajectorySink(0)


class TestRoundReplayDriver:
    def test_round_stats(self):
        from repro.core.loadstate import LoadState

        net = single_bus(4)
        state = LoadState(net)
        stats = RoundStatsSink()
        driver = RoundReplayDriver(state, sinks=(stats,))
        rounds = [np.array([0, 1]), np.array([2]), np.array([0])]
        assert driver.run(rounds) == 3
        assert stats.n_rounds == 3
        assert list(stats.delivered_per_round) == [2, 1, 1]
        # cumulative congestion is non-decreasing
        assert np.all(np.diff(stats.round_congestion) >= 0)
        assert state.edge_loads[0] == 2.0
