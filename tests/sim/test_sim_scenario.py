"""Tests for the declarative scenario registry (spec, JSON, building, running)."""

import json

import pytest

from repro.errors import SimulationError
from repro.sim.scenario import (
    SCENARIO_FAMILIES,
    ScenarioSpec,
    build_scenario,
    list_scenarios,
    register_scenario,
    run_scenario,
    scenario_spec,
)

NEW_FAMILIES = ("adversarial-storm", "flash-crowd-recovery", "fleet-sweep")


class TestRegistry:
    def test_all_families_registered(self):
        names = list_scenarios()
        # the re-expressed E9 + E10 suites ...
        for name in ("zipf", "adversarial", "phase-shift",
                     "flash-crowd", "maintenance", "degradation", "storm"):
            assert name in names
        # ... plus the new families
        for name in NEW_FAMILIES:
            assert name in names

    def test_unknown_scenario_rejected(self):
        with pytest.raises(KeyError):
            scenario_spec("earthquake")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(SimulationError):
            register_scenario("zipf", SCENARIO_FAMILIES["zipf"])


class TestSpecRoundTrip:
    @pytest.mark.parametrize("name", sorted(SCENARIO_FAMILIES))
    def test_json_round_trip_is_lossless(self, name):
        spec = scenario_spec(name, seed=3, small=True)
        text = spec.to_json(indent=2)
        restored = ScenarioSpec.from_json(text)
        # the JSON document is stable under a second round trip
        assert restored.to_json(indent=2) == text
        assert json.loads(text)["format"] == "repro.scenario-spec/v1"

    @pytest.mark.parametrize("name", ["storm", "flash-crowd-recovery"])
    def test_round_tripped_spec_builds_identical_scenario(self, name):
        spec = scenario_spec(name, seed=5, small=True)
        (direct,) = build_scenario(spec)[:1]
        (restored,) = build_scenario(ScenarioSpec.from_json(spec.to_json()))[:1]
        assert direct.sequence.events == restored.sequence.events
        assert direct.trace.mutations == restored.trace.mutations
        assert direct.network.n_nodes == restored.network.n_nodes

    def test_explicitly_empty_sections_survive_round_trip(self):
        spec = ScenarioSpec(
            name="bare",
            description="",
            network={"builder": "single-bus", "args": {"n_processors": 4}},
            workload={"kind": "pattern", "generator": "uniform",
                      "args": {"n_objects": 4, "seed": 0}, "sequence_seed": 1},
            strategies=({"kind": "edge-counter"},),
            sinks=(),
        )
        restored = ScenarioSpec.from_json(spec.to_json())
        assert restored.sinks == ()
        assert restored.strategies == ({"kind": "edge-counter"},)
        (record,) = run_scenario(restored)
        assert "trajectory" not in record  # no sinks were attached

    def test_unknown_format_rejected(self):
        with pytest.raises(SimulationError):
            ScenarioSpec.from_dict({"format": "bogus/v9", "name": "x",
                                    "network": {}, "workload": {}})

    def test_unknown_component_keys_rejected(self):
        spec = ScenarioSpec(
            name="broken",
            description="",
            network={"builder": "moebius-strip"},
            workload={"kind": "pattern", "generator": "zipf",
                      "args": {"n_objects": 4}},
        )
        with pytest.raises(SimulationError, match="network builder"):
            build_scenario(spec)


class TestBuildAndRun:
    def test_seed_changes_sequence(self):
        a = build_scenario(scenario_spec("zipf", seed=0, small=True))[0]
        b = build_scenario(scenario_spec("zipf", seed=1, small=True))[0]
        assert a.sequence.events != b.sequence.events

    def test_fleet_sweep_builds_multiple_sizes(self):
        built = build_scenario(scenario_spec("fleet-sweep", small=True))
        assert len(built) >= 2
        sizes = [b.network.n_processors for b in built]
        assert sizes == sorted(sizes) and sizes[0] < sizes[-1]
        labels = [b.label for b in built]
        assert len(set(labels)) == len(labels)

    @pytest.mark.parametrize("name", NEW_FAMILIES)
    def test_new_families_run_end_to_end(self, name):
        records = run_scenario(scenario_spec(name, seed=0, small=True))
        assert records
        for rec in records:
            assert rec["served"] + rec["dropped"] == rec["n_events"]
            assert rec["repair_consistent"]
            assert rec["congestion"] >= 0
            assert len(rec["trajectory"]) >= 1

    def test_flash_crowd_recovery_drops_late_crowd_requests(self):
        records = run_scenario(scenario_spec("flash-crowd-recovery", seed=0, small=True))
        # the crowd departs before the trace ends, so some of its requests drop
        assert all(rec["dropped"] > 0 for rec in records)
        # and the crowd is gone from the final network
        base = build_scenario(scenario_spec("flash-crowd-recovery", seed=0, small=True))[0]
        assert all(
            rec["n_processors_final"] == base.network.n_processors for rec in records
        )

    def test_adversarial_storm_applies_mutations(self):
        records = run_scenario(scenario_spec("adversarial-storm", seed=0, small=True))
        assert all(rec["n_mutations"] > 0 for rec in records)

    def test_first_touch_strategy_kind(self):
        spec = scenario_spec("zipf", seed=0, small=True)
        spec = ScenarioSpec.from_dict(
            {**spec.to_dict(), "strategies": [{"kind": "first-touch"}]}
        )
        (record,) = run_scenario(spec)
        assert record["strategy"] == "first-touch"
        # never adapting means no management traffic at all
        assert record["management_load"] == 0


class TestFleetAndParallel:
    """The stacked fleet engine and the worker-pool sweep path must be
    invisible in the records: identical content for any mode."""

    @pytest.mark.parametrize("name", ["zipf", "storm", "fleet-sweep"])
    def test_fleet_records_equal_serial(self, name):
        spec = scenario_spec(name, seed=0, small=True)
        serial = run_scenario(spec)
        fleet = run_scenario(spec, fleet=True)
        assert json.dumps(serial) == json.dumps(fleet)

    def test_parallel_records_equal_serial(self):
        spec = scenario_spec("fleet-sweep", seed=0, small=True)
        serial = run_scenario(spec)
        assert json.dumps(serial) == json.dumps(run_scenario(spec, parallel=2))
        assert json.dumps(serial) == json.dumps(
            run_scenario(spec, fleet=True, parallel=2)
        )

    def test_parallel_with_churn_scenario(self):
        spec = scenario_spec("storm", seed=1, small=True)
        serial = run_scenario(spec)
        assert json.dumps(serial) == json.dumps(run_scenario(spec, parallel=2))

    def test_parallel_rejects_bad_worker_count(self):
        spec = scenario_spec("zipf", seed=0, small=True)
        with pytest.raises(ValueError):
            run_scenario(spec, parallel=0)

    def test_worker_substrate_cache_is_reused(self):
        from repro.sim.scenario import _worker_run_job

        spec = scenario_spec("zipf", seed=0, small=True)
        spec_json = spec.to_json()
        first = _worker_run_job(spec_json, 0, 0, False)
        second = _worker_run_job(spec_json, 0, 1, False)
        from repro.sim import scenario as scenario_module

        assert (spec_json, 0) in scenario_module._WORKER_BUILT
        serial = run_scenario(spec)
        assert json.dumps(first + second) == json.dumps(serial)
