"""Tests for the distributed nibble / extended-nibble protocols."""

import pytest

from repro.core.nibble import nibble_placement
from repro.distributed.protocols import distributed_extended_nibble, distributed_nibble
from repro.network.builders import balanced_tree, path_of_buses, random_tree, single_bus
from repro.workload.access import AccessPattern
from repro.workload.generators import random_sparse_pattern, uniform_pattern
from repro.workload.traces import shared_counter_trace


class TestDistributedNibble:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_sequential_nibble(self, seed):
        net = random_tree(4, 7, seed=seed)
        pat = random_sparse_pattern(net, 6, seed=seed)
        dist = distributed_nibble(net, pat)
        seq = nibble_placement(net, pat)
        assert dist.result.placement == seq.placement
        assert dist.result.centers == seq.centers

    def test_round_count_scales_with_objects_plus_height(self):
        net = balanced_tree(2, 3, 2)
        small = distributed_nibble(net, uniform_pattern(net, 4, seed=0))
        large = distributed_nibble(net, uniform_pattern(net, 32, seed=0))
        # pipelining: 8x the objects should cost far less than 8x the rounds
        assert large.rounds < 8 * small.rounds

    def test_deeper_trees_need_more_rounds(self):
        shallow = path_of_buses(2, leaves_per_bus=2)
        deep = path_of_buses(10, leaves_per_bus=2)
        pat_s = uniform_pattern(shallow, 4, seed=1)
        pat_d = uniform_pattern(deep, 4, seed=1)
        assert distributed_nibble(deep, pat_d).rounds > distributed_nibble(shallow, pat_s).rounds

    def test_empty_pattern(self):
        net = single_bus(3)
        pat = AccessPattern.empty(net.n_nodes, 0)
        report = distributed_nibble(net, pat)
        assert report.rounds == 0
        assert report.messages == 0

    def test_message_counts_positive(self):
        net = balanced_tree(2, 2, 2)
        pat = uniform_pattern(net, 4, seed=2)
        report = distributed_nibble(net, pat)
        assert report.messages > 0
        assert report.message_units >= report.messages * 0  # units recorded


class TestDistributedExtendedNibble:
    @pytest.mark.parametrize("seed", range(4))
    def test_placement_matches_sequential(self, seed):
        net = random_tree(4, 7, seed=seed)
        pat = random_sparse_pattern(net, 6, seed=seed)
        report = distributed_extended_nibble(net, pat)
        from repro.core.extended_nibble import extended_nibble

        seq = extended_nibble(net, pat)
        assert report.result.placement == seq.placement

    def test_round_breakdown(self):
        net = balanced_tree(2, 3, 2)
        pat = shared_counter_trace(net, 4, 8, 8)
        report = distributed_extended_nibble(net, pat)
        assert report.nibble_rounds > 0
        assert report.mapping_rounds == 2 * net.height()  # counters need mapping
        assert report.total_rounds == (
            report.nibble_rounds + report.deletion_rounds + report.mapping_rounds
        )

    def test_no_mapping_rounds_when_nothing_to_map(self):
        net = single_bus(3)
        procs = list(net.processors)
        # a single requester per object keeps every copy on a leaf
        pat = AccessPattern.from_requests(
            net, 2, [(procs[0], 0, 5, 1), (procs[1], 1, 4, 2)]
        )
        report = distributed_extended_nibble(net, pat)
        assert report.mapping_rounds == 0

    def test_total_messages_positive_for_nontrivial_instances(self):
        net = balanced_tree(2, 2, 2)
        pat = uniform_pattern(net, 8, seed=3)
        report = distributed_extended_nibble(net, pat)
        assert report.total_messages > 0
