"""Tests for convergecast, downcast and pipelined convergecast."""

import numpy as np
import pytest

from repro.distributed.aggregation import convergecast, downcast, pipelined_convergecast
from repro.errors import SimulationError
from repro.network.builders import balanced_tree, path_of_buses, single_bus


class TestConvergecast:
    def test_subtree_sums_match_sequential(self):
        net = balanced_tree(2, 3, 2)
        root = net.canonical_root()
        values = {v: v + 1 for v in net.nodes()}
        outcome = convergecast(net, values, lambda a, b: a + b, root=root)
        rooted = net.rooted(root)
        expected = rooted.subtree_sums(np.array([v + 1 for v in net.nodes()]))
        for v in net.nodes():
            assert outcome.values[v] == expected[v]

    def test_round_count_is_height_bounded(self):
        net = path_of_buses(5, leaves_per_bus=1)
        values = {v: 1 for v in net.nodes()}
        outcome = convergecast(net, values, lambda a, b: a + b)
        assert outcome.stats.rounds <= net.height() + 2

    def test_one_message_per_edge(self):
        net = balanced_tree(2, 2, 2)
        values = {v: 1 for v in net.nodes()}
        outcome = convergecast(net, values, lambda a, b: a + b)
        assert outcome.stats.total_messages == net.n_edges

    def test_min_combiner(self):
        net = single_bus(4)
        values = {v: 10 - v for v in net.nodes()}
        outcome = convergecast(net, values, min)
        root = net.canonical_root()
        assert outcome.values[root] == min(values.values())


class TestDowncast:
    def test_every_node_receives_root_value(self):
        net = balanced_tree(2, 3, 2)
        outcome = downcast(net, "payload")
        assert all(v == "payload" for v in outcome.values.values())

    def test_transform_applied_per_edge(self):
        net = single_bus(3)
        outcome = downcast(net, 0, transform=lambda parent, child, value: value + child)
        for p in net.processors:
            assert outcome.values[p] == p

    def test_one_message_per_edge(self):
        net = balanced_tree(2, 2, 2)
        outcome = downcast(net, 1)
        assert outcome.stats.total_messages == net.n_edges

    def test_rounds_bounded_by_height(self):
        net = path_of_buses(6, leaves_per_bus=1)
        outcome = downcast(net, 1)
        assert outcome.stats.rounds <= net.height() + 2


class TestPipelinedConvergecast:
    def test_matches_sequential_subtree_sums(self):
        net = balanced_tree(2, 2, 2)
        root = net.canonical_root()
        n_items = 5
        rng = np.random.default_rng(0)
        local = {v: [int(x) for x in rng.integers(0, 10, size=n_items)] for v in net.nodes()}
        outcome = pipelined_convergecast(net, local, root=root)
        rooted = net.rooted(root)
        for item in range(n_items):
            expected = rooted.subtree_sums(
                np.array([local[v][item] for v in net.nodes()])
            )
            for v in net.nodes():
                assert outcome.values[v][item] == expected[v]

    def test_pipelining_round_bound(self):
        """Rounds grow like O(items + height), not O(items * height)."""
        net = path_of_buses(6, leaves_per_bus=1)
        height = net.height()
        n_items = 12
        local = {v: [1] * n_items for v in net.nodes()}
        outcome = pipelined_convergecast(net, local)
        assert outcome.stats.rounds <= n_items + 2 * height + 4
        assert outcome.stats.rounds < n_items * height  # no naive restart per item

    def test_mismatched_vector_lengths_rejected(self):
        net = single_bus(2)
        local = {0: [1, 2], 1: [1], 2: [1, 2]}
        with pytest.raises(SimulationError):
            pipelined_convergecast(net, local)

    def test_missing_vector_rejected(self):
        net = single_bus(2)
        with pytest.raises(SimulationError):
            pipelined_convergecast(net, {0: [1]})
