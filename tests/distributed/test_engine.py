"""Tests for the synchronous round-based tree simulator."""

import pytest

from repro.distributed.engine import Message, NodeProcess, TreeSimulator
from repro.errors import SimulationError
from repro.network.builders import single_bus, star_of_buses


class EchoOnce(NodeProcess):
    """Every processor sends one message to its neighbour in round 0."""

    def __init__(self, node, network):
        super().__init__(node)
        self.network = network
        self.sent = False
        self.received = []

    def on_start(self, ctx):
        if self.network.is_processor(self.node):
            self.sent = True
            neighbour = self.network.neighbors(self.node)[0]
            return [Message(self.node, neighbour, f"hello from {self.node}")]
        return []

    def on_round(self, ctx, inbox):
        self.received.extend(msg.payload for msg in inbox)
        return []

    def is_done(self, ctx):
        return True


class TestBasicDelivery:
    def test_messages_delivered_next_round(self):
        net = single_bus(3)
        procs = {v: EchoOnce(v, net) for v in net.nodes()}
        sim = TreeSimulator(net, procs)
        stats = sim.run()
        bus = net.buses[0]
        assert len(procs[bus].received) == 3
        assert stats.total_messages == 3
        assert stats.rounds >= 1
        assert stats.max_edge_units == 1

    def test_missing_process_rejected(self):
        net = single_bus(2)
        with pytest.raises(SimulationError):
            TreeSimulator(net, {0: NodeProcess(0)})

    def test_non_neighbour_message_rejected(self):
        net = star_of_buses(2, 1)

        class Bad(NodeProcess):
            def on_start(self, ctx):
                if self.node == ctx.network.processors[0]:
                    far = ctx.network.processors[-1]
                    return [Message(self.node, far, "too far")]
                return []

        procs = {v: Bad(v) for v in net.nodes()}
        with pytest.raises(SimulationError):
            TreeSimulator(net, procs).run()

    def test_round_limit(self):
        net = single_bus(2)

        class Chatter(NodeProcess):
            def on_start(self, ctx):
                if ctx.network.is_processor(self.node):
                    return [Message(self.node, ctx.network.buses[0], "x")]
                return []

            def on_round(self, ctx, inbox):
                # bounce every message back forever
                return [Message(self.node, m.src, m.payload) for m in inbox]

        procs = {v: Chatter(v) for v in net.nodes()}
        with pytest.raises(SimulationError):
            TreeSimulator(net, procs).run(max_rounds=5)

    def test_idle_network_terminates_immediately(self):
        net = single_bus(2)
        procs = {v: NodeProcess(v) for v in net.nodes()}
        stats = TreeSimulator(net, procs).run()
        assert stats.rounds == 0
        assert stats.total_messages == 0

    def test_per_edge_accounting(self):
        net = single_bus(3)
        procs = {v: EchoOnce(v, net) for v in net.nodes()}
        sim = TreeSimulator(net, procs)
        stats = sim.run()
        for p in net.processors:
            eid = net.edge_id(p, net.buses[0])
            assert stats.edge_units(eid) == 1
        assert stats.total_units == 3
