"""Tests for the store-and-forward request-replay simulator."""

import numpy as np
import pytest

from repro.core.baselines import owner_placement
from repro.core.congestion import compute_loads
from repro.core.extended_nibble import extended_nibble
from repro.core.placement import Placement
from repro.distributed.request_sim import replay_requests
from repro.errors import SimulationError
from repro.network.builders import balanced_tree, single_bus, star_of_buses
from repro.workload.access import AccessPattern
from repro.workload.generators import uniform_pattern
from repro.workload.traces import shared_counter_trace


class TestBasicBehaviour:
    def test_empty_pattern_zero_makespan(self):
        net = single_bus(3)
        pat = AccessPattern.empty(net.n_nodes, 1)
        placement = Placement.single_holder([net.processors[0]])
        result = replay_requests(net, pat, placement)
        assert result.makespan == 0
        assert result.total_traversals == 0
        assert result.congestion == 0.0

    def test_single_remote_read(self):
        net = single_bus(3)
        p1, p2, _ = net.processors
        pat = AccessPattern.from_requests(net, 1, [(p2, 0, 1, 0)])
        placement = Placement.single_holder([p1])
        result = replay_requests(net, pat, placement)
        # one message over two edges, forwarded one hop per round
        assert result.total_traversals == 2
        assert result.makespan == 2
        assert result.dilation == 2

    def test_traffic_matches_congestion_model(self):
        net = star_of_buses(2, 2)
        pat = uniform_pattern(net, 8, requests_per_processor=6, seed=0)
        placement = owner_placement(net, pat)
        result = replay_requests(net, pat, placement)
        model = compute_loads(net, pat, placement)
        assert np.allclose(result.per_edge_traffic, model.edge_loads)
        assert result.congestion == pytest.approx(model.congestion)

    def test_makespan_at_least_congestion(self):
        net = balanced_tree(2, 2, 2)
        pat = uniform_pattern(net, 12, requests_per_processor=8, seed=1)
        placement = owner_placement(net, pat)
        result = replay_requests(net, pat, placement)
        assert result.makespan >= result.congestion - 1e-9
        assert result.slowdown >= 1.0

    def test_makespan_bounded_by_congestion_plus_dilation_factor(self):
        net = balanced_tree(2, 3, 2)
        pat = uniform_pattern(net, 16, requests_per_processor=8, seed=2)
        res = extended_nibble(net, pat)
        result = replay_requests(net, pat, res.placement, assignment=res.assignment)
        # greedy store-and-forward on a tree stays within a small factor of
        # congestion + dilation
        assert result.makespan <= 4 * (result.congestion + result.dilation) + 5


class TestBatchingAndBandwidth:
    def test_batching_reduces_traffic_proportionally(self):
        net = single_bus(4)
        pat = shared_counter_trace(net, 2, 8, 8)
        placement = owner_placement(net, pat)
        full = replay_requests(net, pat, placement, batch=1)
        batched = replay_requests(net, pat, placement, batch=4)
        assert batched.total_traversals < full.total_traversals
        assert batched.makespan <= full.makespan

    def test_invalid_batch(self):
        net = single_bus(3)
        pat = AccessPattern.empty(net.n_nodes, 1)
        placement = Placement.single_holder([net.processors[0]])
        with pytest.raises(SimulationError):
            replay_requests(net, pat, placement, batch=0)

    def test_higher_bus_bandwidth_speeds_up_delivery(self):
        slow = single_bus(6, bus_bandwidth=1.0)
        fast = single_bus(6, bus_bandwidth=8.0)
        pat_slow = shared_counter_trace(slow, 4, 6, 6)
        pat_fast = shared_counter_trace(fast, 4, 6, 6)
        placement_slow = owner_placement(slow, pat_slow)
        placement_fast = owner_placement(fast, pat_fast)
        r_slow = replay_requests(slow, pat_slow, placement_slow)
        r_fast = replay_requests(fast, pat_fast, placement_fast)
        assert r_fast.makespan <= r_slow.makespan

    def test_better_placement_delivers_faster(self):
        net = balanced_tree(2, 3, 2)
        pat = uniform_pattern(net, 16, requests_per_processor=8, seed=3)
        good = extended_nibble(net, pat)
        good_replay = replay_requests(net, pat, good.placement, assignment=good.assignment)
        from repro.core.baselines import random_placement

        bad = random_placement(net, pat, seed=7)
        bad_replay = replay_requests(net, pat, bad)
        assert good_replay.makespan <= bad_replay.makespan
