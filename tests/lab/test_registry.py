"""Registry semantics: content addressing, index determinism, gc."""

import json

import pytest

from repro.errors import LabError
from repro.lab.registry import (
    ENGINE_VERSION,
    LabEntry,
    LabRegistry,
    RunKey,
    experiment_entry,
    run_missing,
    scenario_entry,
    suite_entries,
)
from repro.sim.scenario import scenario_spec


class TestRecordAndLookup:
    def test_record_get_round_trip(self, tmp_path):
        registry = LabRegistry(tmp_path / "reg")
        entry = scenario_entry(scenario_spec("zipf", seed=0, small=True), 0)
        records = [{"strategy": "edge-counter", "congestion": 3.0}]
        path = registry.record(entry, records)
        assert path.exists()
        assert registry.has(entry.key)
        payload = registry.get(entry.key)
        assert payload["format"] == "repro.lab-artifact/v1"
        assert payload["records"] == records
        assert payload["spec_hash"] == entry.spec_hash
        assert payload["engine_version"] == ENGINE_VERSION
        assert payload["spec"] == dict(entry.document)

    def test_artifact_path_is_content_addressed(self, tmp_path):
        registry = LabRegistry(tmp_path / "reg")
        entry = scenario_entry(scenario_spec("zipf", seed=3, small=True), 3)
        path = registry.artifact_path(entry.key)
        assert path.parent.name == entry.spec_hash[:2]
        assert path.name == f"{entry.spec_hash}-s3-v{ENGINE_VERSION}.json"

    def test_missing_artifact_file_counts_as_missing(self, tmp_path):
        registry = LabRegistry(tmp_path / "reg")
        entry = scenario_entry(scenario_spec("zipf", seed=0, small=True), 0)
        registry.record(entry, [{"x": 1}])
        registry.artifact_path(entry.key).unlink()
        assert not registry.has(entry.key)
        assert registry.missing([entry]) == [entry]
        with pytest.raises(LabError):
            registry.get(entry.key)

    def test_fresh_registry_has_nothing(self, tmp_path, tiny_suite):
        registry = LabRegistry(tmp_path / "reg")
        assert registry.missing(tiny_suite) == list(tiny_suite)
        assert registry.load_index() == {}


class TestIndexDeterminism:
    def test_index_is_sorted_and_wallclock_free(self, tmp_path, tiny_suite):
        registry = LabRegistry(tmp_path / "reg")
        for entry in tiny_suite:
            registry.record(entry, [{"x": 1}])
        document = json.loads(registry.index_path.read_text())
        assert document["format"] == "repro.lab-index/v1"
        assert list(document["entries"]) == sorted(document["entries"])
        for record in document["entries"].values():
            assert set(record) == {
                "name", "kind", "seed", "spec_hash", "engine_version",
                "artifact", "n_records",
            }

    def test_record_order_does_not_change_bytes(self, tmp_path, tiny_suite):
        a = LabRegistry(tmp_path / "a")
        b = LabRegistry(tmp_path / "b")
        for entry in tiny_suite:
            a.record(entry, [{"x": 1}])
        for entry in reversed(tiny_suite):
            b.record(entry, [{"x": 1}])
        assert a.index_path.read_bytes() == b.index_path.read_bytes()

    def test_corrupt_index_is_quarantined_and_rebuilt(self, tmp_path):
        # a torn index is a cache miss, not data loss: load_index
        # quarantines it and rebuilds from the artifact payloads
        registry = LabRegistry(tmp_path / "reg")
        entry = scenario_entry(scenario_spec("zipf", seed=0, small=True), 0)
        registry.record(entry, [{"x": 1}])
        intact = registry.index_path.read_bytes()
        registry.index_path.write_text("{not json")
        assert registry.load_index() == json.loads(intact)["entries"]
        assert registry.index_path.read_bytes() == intact
        assert (registry.root / "index.json.corrupt").exists()
        assert registry.has(entry.key)

    def test_unknown_index_format_raises(self, tmp_path):
        registry = LabRegistry(tmp_path / "reg")
        registry.root.mkdir(parents=True)
        registry.index_path.write_text(json.dumps({"format": "bogus/v9"}))
        with pytest.raises(LabError):
            registry.load_index()


class TestEntries:
    def test_e6_is_rejected(self):
        with pytest.raises(LabError):
            experiment_entry("E6", 0)

    def test_job_json_round_trip(self, tiny_suite):
        for entry in tiny_suite:
            assert LabEntry.from_job_json(entry.to_job_json()) == entry

    def test_run_key_string(self):
        key = RunKey(spec_hash="ab" * 32, seed=7, engine_version="1.0.0")
        assert key.as_string() == f"{'ab' * 32}:7:1.0.0"

    def test_unknown_suite_raises(self):
        with pytest.raises(LabError):
            suite_entries("nope")

    def test_ci_suite_is_pinned(self):
        # the ci suite ignores the knobs: the committed registry must mean
        # the same thing on every machine
        assert suite_entries("ci") == suite_entries("ci", seed=9, large=True)

    def test_full_suite_is_scenarios_tournament_experiments(self):
        full = suite_entries("full", seed=0, small=True)
        scenarios = suite_entries("scenarios", seed=0, small=True)
        tournament = suite_entries("tournament", seed=0, small=True)
        experiments = suite_entries("experiments", seed=0, small=True)
        assert full == scenarios + tournament + experiments
        assert all(e.name != "E6" for e in experiments)
        assert all(e.kind == "scenario" for e in scenarios)
        assert all(e.kind == "tournament" for e in tournament)

    def test_tournament_entries_are_distinct_from_scenarios(self):
        # the strategy set is part of the hashed document, so the
        # tournament run of a family never collides with its plain run
        scenarios = suite_entries("scenarios", seed=0, small=True)
        tournament = suite_entries("tournament", seed=0, small=True)
        assert len(tournament) == len(scenarios)
        assert {e.spec_hash for e in tournament}.isdisjoint(
            {e.spec_hash for e in scenarios}
        )
        assert all(e.name.startswith("tournament/") for e in tournament)

    def test_tournament_spec_only_swaps_strategies(self):
        from repro.lab.tournament import TOURNAMENT_STRATEGIES, tournament_spec
        from repro.sim.scenario import scenario_spec

        base = scenario_spec("zipf", seed=0, small=True)
        spec = tournament_spec("zipf", seed=0, small=True)
        assert spec.strategies == TOURNAMENT_STRATEGIES
        assert (spec.name, spec.network, spec.workload, spec.churn) == (
            base.name,
            base.network,
            base.workload,
            base.churn,
        )

    def test_experiment_seeds_are_sweep_independent(self):
        # the entry seed is the per-experiment seed, so the key of E4 does
        # not depend on which other experiments ride in the suite
        from repro.analysis.runner import EXPERIMENT_IDS, experiment_seeds

        full = experiment_seeds(0, EXPERIMENT_IDS)
        entry = experiment_entry("E4", full["E4"], small=True)
        assert entry.seed == experiment_seeds(0, ["E4"])["E4"]


class TestGc:
    def test_gc_removes_stale_runs(self, tmp_path, tiny_suite):
        registry = LabRegistry(tmp_path / "reg")
        for entry in tiny_suite:
            registry.record(entry, [{"x": 1}])
        keep = tiny_suite[:2]
        removed = registry.gc(keep)
        assert len(removed) == 2
        assert registry.missing(keep) == []
        assert registry.missing(tiny_suite) == list(tiny_suite[2:])
        for entry in tiny_suite[2:]:
            assert not registry.artifact_path(entry.key).exists()

    def test_gc_dry_run_touches_nothing(self, tmp_path, tiny_suite):
        registry = LabRegistry(tmp_path / "reg")
        for entry in tiny_suite:
            registry.record(entry, [{"x": 1}])
        before = registry.index_path.read_bytes()
        removed = registry.gc(tiny_suite[:1], dry_run=True)
        assert len(removed) == 3
        assert registry.index_path.read_bytes() == before
        assert registry.missing(tiny_suite) == []

    def test_gc_removes_orphan_artifacts(self, tmp_path, tiny_suite):
        registry = LabRegistry(tmp_path / "reg")
        registry.record(tiny_suite[0], [{"x": 1}])
        orphan = registry.root / "artifacts" / "zz" / "orphan.json"
        orphan.parent.mkdir(parents=True)
        orphan.write_text("{}")
        removed = registry.gc(tiny_suite)
        assert "artifacts/zz/orphan.json" in removed
        assert not orphan.exists()

    def test_gc_of_complete_suite_is_noop(self, tmp_path, tiny_suite):
        registry = LabRegistry(tmp_path / "reg")
        for entry in tiny_suite:
            registry.record(entry, [{"x": 1}])
        before = registry.index_path.read_bytes()
        assert registry.gc(tiny_suite) == []
        assert registry.index_path.read_bytes() == before


class TestRunMissingValidation:
    def test_bad_parallel_rejected(self, tmp_path, tiny_suite):
        with pytest.raises(ValueError):
            run_missing(LabRegistry(tmp_path), tiny_suite, parallel=0)

    def test_failed_run_is_not_registered(self, tmp_path, tiny_suite, monkeypatch):
        from repro.analysis import runner as runner_mod

        def boom(**kwargs):
            raise RuntimeError("synthetic failure")

        monkeypatch.setitem(runner_mod.EXPERIMENT_RUNNERS, "E1", boom)
        registry = LabRegistry(tmp_path / "reg")
        entries = [e for e in tiny_suite if e.name == "E1"]
        with pytest.raises(LabError):
            run_missing(registry, entries, parallel=1)
        assert registry.missing(entries) == entries


class TestBackendProvenance:
    """Artifacts name the kernel backend; *records* never depend on it."""

    def test_artifact_carries_active_backend(self, tmp_path):
        from repro.core import kernels

        registry = LabRegistry(tmp_path / "reg")
        entry = scenario_entry(scenario_spec("zipf", seed=0, small=True), 0)
        with kernels.use_backend("numpy"):
            registry.record(entry, [{"strategy": "edge-counter", "congestion": 3.0}])
            assert registry.get(entry.key)["backend"] == "numpy"

    def test_records_byte_identical_across_backends(self, tmp_path):
        """Pinned: a scenario run serializes to the same record bytes on
        every available backend, so the registry's content addressing and
        everything derived from ``records`` is backend-independent (the
        ``backend`` provenance field is the artifact's only varying byte).
        """
        from repro.core import kernels
        from repro.lab.registry import canonical_json
        from repro.sim.scenario import run_scenario

        compiled = [b for b in kernels.available_backends() if b != "numpy"]
        if not compiled:
            pytest.skip("no compiled kernel backend to compare against numpy")

        spec = scenario_spec("zipf", seed=0, small=True)
        entry = scenario_entry(spec, 0)
        serialized = {}
        artifacts = {}
        for name in ["numpy", *compiled]:
            with kernels.use_backend(name):
                records = run_scenario(spec)
                registry = LabRegistry(tmp_path / name)
                path = registry.record(entry, records)
            serialized[name] = canonical_json({"records": records})
            artifacts[name] = json.loads(path.read_text())
        for name in compiled:
            assert serialized[name] == serialized["numpy"]
            ours, ref = dict(artifacts[name]), dict(artifacts["numpy"])
            assert ours.pop("backend") == name
            assert ref.pop("backend") == "numpy"
            assert ours == ref  # the provenance field is the only difference
