"""Resume semantics: a killed sweep redoes only the unfinished entries.

The acceptance contract of `repro lab run-missing`: after k of n entries
complete, a re-run executes exactly n - k jobs, and the final registry is
byte-identical to an uninterrupted sweep -- across serial, parallel and
fleet execution modes.
"""

import pytest

from repro.errors import LabError
from repro.lab import registry as registry_mod
from repro.lab.registry import LabRegistry, run_missing


def registry_bytes(registry):
    """Every file of a registry as relative-path -> bytes."""
    return {
        path.relative_to(registry.root).as_posix(): path.read_bytes()
        for path in sorted(registry.root.rglob("*.json"))
    }


@pytest.fixture(scope="session")
def uninterrupted(tmp_path_factory, tiny_suite):
    """The reference: one clean serial sweep over the tiny suite."""
    registry = LabRegistry(tmp_path_factory.mktemp("reference") / "reg")
    result = run_missing(registry, tiny_suite, parallel=1)
    assert result.n_executed == len(tiny_suite)
    return registry_bytes(registry)


class TestResume:
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_partial_then_resume_runs_only_the_missing(
        self, tmp_path, tiny_suite, uninterrupted, k
    ):
        registry = LabRegistry(tmp_path / "reg")
        first = run_missing(registry, tiny_suite[:k], parallel=1)
        assert first.n_executed == k
        resumed = run_missing(registry, tiny_suite, parallel=1)
        assert resumed.already_stored == k
        assert resumed.n_executed == len(tiny_suite) - k
        assert registry_bytes(registry) == uninterrupted

    def test_complete_registry_executes_nothing(
        self, tmp_path, tiny_suite, uninterrupted
    ):
        registry = LabRegistry(tmp_path / "reg")
        run_missing(registry, tiny_suite, parallel=1)
        again = run_missing(registry, tiny_suite, parallel=1)
        assert again.n_executed == 0
        assert again.already_stored == len(tiny_suite)
        assert registry_bytes(registry) == uninterrupted

    def test_killed_sweep_keeps_finished_work(
        self, tmp_path, tiny_suite, uninterrupted, monkeypatch
    ):
        """Simulate a mid-sweep crash: the 3rd job dies, 2 artifacts survive."""
        registry = LabRegistry(tmp_path / "reg")
        real_execute = registry_mod._execute_entry
        calls = {"n": 0}

        def dying_execute(job_json, fleet=False):
            calls["n"] += 1
            if calls["n"] == 3:
                raise KeyboardInterrupt("sweep killed")
            return real_execute(job_json, fleet)

        monkeypatch.setattr(registry_mod, "_execute_entry", dying_execute)
        with pytest.raises(KeyboardInterrupt):
            run_missing(registry, tiny_suite, parallel=1)
        assert len(registry.missing(tiny_suite)) == len(tiny_suite) - 2

        monkeypatch.setattr(registry_mod, "_execute_entry", real_execute)
        resumed = run_missing(registry, tiny_suite, parallel=1)
        assert resumed.already_stored == 2
        assert resumed.n_executed == len(tiny_suite) - 2
        assert registry_bytes(registry) == uninterrupted

    def test_parallel_resume_matches_uninterrupted(
        self, tmp_path, tiny_suite, uninterrupted
    ):
        registry = LabRegistry(tmp_path / "reg")
        run_missing(registry, tiny_suite[:2], parallel=1)
        resumed = run_missing(registry, tiny_suite, parallel=2)
        assert resumed.n_executed == len(tiny_suite) - 2
        assert registry_bytes(registry) == uninterrupted

    def test_fleet_resume_matches_uninterrupted(
        self, tmp_path, tiny_suite, uninterrupted
    ):
        # --fleet is a pure accelerator: artifacts bit-for-bit unchanged
        registry = LabRegistry(tmp_path / "reg")
        run_missing(registry, tiny_suite[:1], parallel=1)
        run_missing(registry, tiny_suite, parallel=1, fleet=True)
        assert registry_bytes(registry) == uninterrupted

    def test_dangling_index_entry_is_healed(
        self, tmp_path, tiny_suite, uninterrupted
    ):
        # an artifact deleted out from under the index is re-run, not trusted
        registry = LabRegistry(tmp_path / "reg")
        run_missing(registry, tiny_suite, parallel=1)
        registry.artifact_path(tiny_suite[0].key).unlink()
        healed = run_missing(registry, tiny_suite, parallel=1)
        assert healed.n_executed == 1
        assert registry_bytes(registry) == uninterrupted


class TestFailureIsolation:
    def test_failure_keeps_earlier_artifacts(
        self, tmp_path, tiny_suite, monkeypatch
    ):
        from repro.analysis import runner as runner_mod

        def boom(**kwargs):
            raise RuntimeError("synthetic failure")

        # parallel=1 keeps the failure in-process so the monkeypatch applies
        monkeypatch.setitem(runner_mod.EXPERIMENT_RUNNERS, "E4", boom)
        registry = LabRegistry(tmp_path / "reg")
        with pytest.raises(LabError):
            run_missing(registry, tiny_suite, parallel=1)
        # everything before the failure is registered; the failed entry is not
        missing = registry.missing(tiny_suite)
        assert [e.name for e in missing] == ["E4"]
