"""Shared fixtures for the experiment-lab tests."""

from __future__ import annotations

import pytest

from repro.lab.registry import experiment_entry, scenario_entry
from repro.sim.scenario import scenario_spec


def _tiny_entries():
    """A fast four-entry suite (two scenarios, two experiments)."""
    from repro.analysis.runner import experiment_seeds

    seeds = experiment_seeds(0, ["E1", "E4"])
    return [
        scenario_entry(scenario_spec("zipf", seed=0, small=True), 0),
        scenario_entry(scenario_spec("storm", seed=0, small=True), 0),
        experiment_entry("E1", seeds["E1"], small=True),
        experiment_entry("E4", seeds["E4"], small=True),
    ]


@pytest.fixture(scope="session")
def tiny_suite():
    """The tiny suite as immutable entries (safe to share across tests)."""
    return _tiny_entries()
