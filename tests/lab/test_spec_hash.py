"""Spec-hash contract tests: content addressing of ScenarioSpecs.

The registry key is only useful if the hash is *stable* under every
representation detail that does not change what runs (JSON round-trips,
dict key order, list/tuple) and *distinct* under every detail that does
(network, workload, churn, strategies, seed).
"""

import json

from repro.lab.registry import canonical_hash, scenario_entry
from repro.sim.scenario import ScenarioSpec, scenario_spec


def _base_spec(**overrides):
    kwargs = dict(
        name="hash-probe",
        description="spec used by the hashing tests",
        network={"builder": "balanced-tree", "args": {"arity": 2, "depth": 2}},
        workload={
            "kind": "pattern",
            "generator": "zipf",
            "args": {"n_objects": 8, "requests_per_processor": 4, "seed": 3},
            "sequence_seed": 4,
        },
        churn=(
            {
                "generator": "mutation-storm",
                "args": {"n_mutations": 4, "start": {"events_div": 4}, "seed": 5},
            },
        ),
    )
    kwargs.update(overrides)
    return ScenarioSpec(**kwargs)


class TestHashStability:
    def test_json_round_trip_preserves_hash(self):
        spec = _base_spec()
        round_tripped = ScenarioSpec.from_json(spec.to_json())
        assert round_tripped.spec_hash() == spec.spec_hash()

    def test_indented_json_round_trip_preserves_hash(self):
        spec = _base_spec()
        round_tripped = ScenarioSpec.from_json(spec.to_json(indent=2))
        assert round_tripped.spec_hash() == spec.spec_hash()

    def test_dict_key_order_is_irrelevant(self):
        spec = _base_spec()
        # same mappings, reversed insertion order everywhere
        shuffled = _base_spec(
            network={"args": {"depth": 2, "arity": 2}, "builder": "balanced-tree"},
            workload={
                "sequence_seed": 4,
                "args": {"seed": 3, "requests_per_processor": 4, "n_objects": 8},
                "generator": "zipf",
                "kind": "pattern",
            },
        )
        assert shuffled.spec_hash() == spec.spec_hash()

    def test_canonical_json_is_key_sorted(self):
        document = json.loads(_base_spec().canonical_json())
        assert list(document) == sorted(document)

    def test_registered_family_hash_is_reproducible(self):
        a = scenario_spec("storm", seed=7, small=True)
        b = scenario_spec("storm", seed=7, small=True)
        assert a.spec_hash() == b.spec_hash()


class TestHashDistinctness:
    def test_network_change_changes_hash(self):
        changed = _base_spec(
            network={"builder": "balanced-tree", "args": {"arity": 2, "depth": 3}}
        )
        assert changed.spec_hash() != _base_spec().spec_hash()

    def test_workload_change_changes_hash(self):
        changed = _base_spec(
            workload={
                "kind": "pattern",
                "generator": "hotspot",
                "args": {"n_objects": 8, "seed": 3},
                "sequence_seed": 4,
            }
        )
        assert changed.spec_hash() != _base_spec().spec_hash()

    def test_churn_change_changes_hash(self):
        assert _base_spec(churn=()).spec_hash() != _base_spec().spec_hash()

    def test_strategy_change_changes_hash(self):
        changed = _base_spec(strategies=({"kind": "hindsight-static"},))
        assert changed.spec_hash() != _base_spec().spec_hash()

    def test_seed_change_changes_hash(self):
        # family factories embed the seed in the spec, so the content
        # address changes even though the registry key also carries it
        assert (
            scenario_spec("zipf", seed=0, small=True).spec_hash()
            != scenario_spec("zipf", seed=1, small=True).spec_hash()
        )

    def test_size_change_changes_hash(self):
        assert (
            scenario_spec("zipf", seed=0, small=True).spec_hash()
            != scenario_spec("zipf", seed=0, large=True).spec_hash()
        )


class TestEntryHashing:
    def test_entry_hash_matches_spec_hash(self):
        spec = _base_spec()
        assert scenario_entry(spec, seed=0).spec_hash == spec.spec_hash()

    def test_canonical_hash_is_key_order_invariant(self):
        a = {"x": 1, "y": {"a": 2, "b": 3}}
        b = {"y": {"b": 3, "a": 2}, "x": 1}
        assert canonical_hash(a) == canonical_hash(b)
        assert canonical_hash(a) != canonical_hash({"x": 1, "y": {"a": 2, "b": 4}})
