"""Tests for the strategy-tournament layer (specs, execution, leaderboard)."""

from __future__ import annotations

import pytest

from repro.lab.registry import LabRegistry, run_missing, tournament_entry
from repro.lab.tournament import (
    TOURNAMENT_STRATEGIES,
    leaderboard_rows,
    tournament_spec,
)


@pytest.fixture(scope="module")
def stored_tournament(tmp_path_factory):
    """One executed tournament entry in a fresh registry."""
    registry = LabRegistry(tmp_path_factory.mktemp("tournament-registry"))
    entry = tournament_entry(tournament_spec("zipf", seed=0, small=True), 0)
    run_missing(registry, [entry])
    return registry, entry


class TestExecution:
    def test_tournament_kind_executes_like_a_scenario(self, stored_tournament):
        registry, entry = stored_tournament
        payload = registry.get(entry.key)
        assert payload["kind"] == "tournament"
        assert payload["name"] == "tournament/zipf"
        strategies = {r["strategy"] for r in payload["records"]}
        assert strategies == {
            str(s.get("label", s["kind"])) for s in TOURNAMENT_STRATEGIES
        }

    def test_rerun_is_a_noop(self, stored_tournament):
        registry, entry = stored_tournament
        result = run_missing(registry, [entry])
        assert result.already_stored == 1
        assert result.n_executed == 0

    def test_fleet_execution_is_byte_identical(self, stored_tournament, tmp_path):
        registry, entry = stored_tournament
        fleet_registry = LabRegistry(tmp_path / "fleet")
        run_missing(fleet_registry, [entry], fleet=True)
        a = registry.artifact_path(entry.key).read_text()
        b = fleet_registry.artifact_path(entry.key).read_text()
        assert a == b


class TestLeaderboard:
    def test_standings_shape_and_baseline_ratio(self, stored_tournament):
        registry, entry = stored_tournament
        rows = leaderboard_rows([registry.get(entry.key)])
        assert [set(row) for row in rows] == [
            {"strategy", "wins", "entries", "mean ratio vs hindsight-static"}
        ] * len(rows)
        by_strategy = {row["strategy"]: row for row in rows}
        assert by_strategy["hindsight-static"][
            "mean ratio vs hindsight-static"
        ] == pytest.approx(1.0)
        assert sum(int(row["wins"]) for row in rows) >= 1

    def test_standings_sorted_by_wins_then_ratio(self, stored_tournament):
        registry, entry = stored_tournament
        rows = leaderboard_rows([registry.get(entry.key)])

        def sort_key(row):
            ratio = row["mean ratio vs hindsight-static"]
            return (
                -int(row["wins"]),
                float(ratio) if isinstance(ratio, float) else float("inf"),
                str(row["strategy"]),
            )

        assert rows == sorted(rows, key=sort_key)

    def test_leaderboard_is_deterministic(self, stored_tournament):
        registry, entry = stored_tournament
        payload = registry.get(entry.key)
        assert leaderboard_rows([payload]) == leaderboard_rows([payload])
