"""Artifact-generated reports: determinism, completeness, drift checking."""

import json

import pytest

from repro.errors import LabError
from repro.lab.registry import LabRegistry, run_missing
from repro.lab.reports import GENERATED_MARKER, check_results, generate_results


@pytest.fixture(scope="session")
def full_registry(tmp_path_factory, tiny_suite):
    registry = LabRegistry(tmp_path_factory.mktemp("reports") / "reg")
    run_missing(registry, tiny_suite, parallel=1)
    return registry


@pytest.fixture(scope="session")
def bench_history(tmp_path_factory):
    path = tmp_path_factory.mktemp("bench") / "BENCH_history.json"
    path.write_text(
        json.dumps(
            {
                "format": "repro.bench-history/v1",
                "runs": [
                    {
                        "label": "probe",
                        "medians": {
                            "benchmarks/bench_fleet.py::test_sequential_fleet_small": 4.0,
                            "benchmarks/bench_fleet.py::test_fleet_replay_small": 1.0,
                        },
                    }
                ],
            }
        )
    )
    return path


class TestGenerate:
    def test_partial_registry_is_refused(self, tmp_path, tiny_suite):
        registry = LabRegistry(tmp_path / "reg")
        run_missing(registry, tiny_suite[:2], parallel=1)
        with pytest.raises(LabError, match="run-missing"):
            generate_results(registry, tiny_suite)

    def test_report_structure(self, full_registry, tiny_suite):
        text = generate_results(full_registry, tiny_suite)
        assert text.startswith("# Results")
        assert GENERATED_MARKER in text
        assert "## Scenario results" in text
        assert "## Competitive ratios vs hindsight-static" in text
        assert "## Experiments" in text
        assert "### E1" in text and "### E4" in text
        # every scenario strategy run appears as a table row
        for payload_name in ("zipf", "storm"):
            assert f"| {payload_name} |" in text

    def test_report_is_deterministic(self, full_registry, tiny_suite):
        assert generate_results(full_registry, tiny_suite) == generate_results(
            full_registry, tiny_suite
        )

    def test_bench_section_derives_ratios(
        self, full_registry, tiny_suite, bench_history
    ):
        text = generate_results(full_registry, tiny_suite, bench_history=bench_history)
        assert "## Benchmark trajectory (derived speedup ratios)" in text
        assert "4.00x" in text  # 4.0 / 1.0 from the probe history
        assert "| probe |" in text

    def test_missing_bench_history_is_omitted(
        self, full_registry, tiny_suite, tmp_path
    ):
        text = generate_results(
            full_registry, tiny_suite, bench_history=tmp_path / "absent.json"
        )
        assert "Benchmark trajectory" not in text

    def test_no_absolute_paths_in_report(self, full_registry, tiny_suite):
        # location-independence: the report must regenerate byte-identically
        # from any checkout directory
        text = generate_results(full_registry, tiny_suite)
        assert str(full_registry.root) not in text


class TestCheck:
    def test_in_sync_report_passes(self, full_registry, tiny_suite, tmp_path):
        results = tmp_path / "RESULTS.md"
        results.write_text(generate_results(full_registry, tiny_suite))
        assert check_results(full_registry, tiny_suite, results) == []

    def test_drift_is_reported(self, full_registry, tiny_suite, tmp_path):
        results = tmp_path / "RESULTS.md"
        results.write_text(
            generate_results(full_registry, tiny_suite) + "hand-edited line\n"
        )
        drift = check_results(full_registry, tiny_suite, results)
        assert drift
        assert any("hand-edited line" in line for line in drift)

    def test_missing_file_is_reported(self, full_registry, tiny_suite, tmp_path):
        drift = check_results(full_registry, tiny_suite, tmp_path / "absent.md")
        assert drift and "does not exist" in drift[0]
