"""Tests for the application-style trace generators."""

import pytest

from repro.errors import WorkloadError
from repro.network.builders import balanced_tree, single_bus
from repro.workload.traces import (
    producer_consumer_trace,
    shared_counter_trace,
    stencil_halo_trace,
    web_cache_trace,
)


@pytest.fixture
def net():
    return balanced_tree(2, 2, 2)


class TestSharedCounter:
    def test_every_processor_touches_every_counter(self, net):
        pat = shared_counter_trace(
            net, n_counters=3, increments_per_processor=5, reads_per_processor=2
        )
        pat.validate_for(net)
        assert pat.n_objects == 3
        for p in net.processors:
            for x in range(3):
                assert pat.writes_of(p, x) == 5
                assert pat.reads_of(p, x) == 2

    def test_write_contention(self, net):
        pat = shared_counter_trace(
            net, n_counters=1, increments_per_processor=4, reads_per_processor=0
        )
        assert pat.write_contention(0) == 4 * net.n_processors

    def test_invalid(self, net):
        with pytest.raises(WorkloadError):
            shared_counter_trace(net, n_counters=0)


class TestProducerConsumer:
    def test_single_writer_per_channel(self, net):
        pat = producer_consumer_trace(net, n_channels=6, items_per_channel=10, seed=0)
        pat.validate_for(net)
        for x in range(pat.n_objects):
            writers = [p for p in net.processors if pat.writes_of(p, x) > 0]
            assert len(writers) == 1
            assert pat.write_contention(x) == 10

    def test_consumer_count(self, net):
        pat = producer_consumer_trace(
            net, n_channels=4, items_per_channel=5, consumers_per_channel=2, seed=1
        )
        for x in range(pat.n_objects):
            readers = [p for p in net.processors if pat.reads_of(p, x) > 0]
            assert len(readers) == 2

    def test_default_channel_count(self, net):
        pat = producer_consumer_trace(net, seed=0)
        assert pat.n_objects == net.n_processors

    def test_deterministic(self, net):
        assert producer_consumer_trace(net, seed=5) == producer_consumer_trace(net, seed=5)

    def test_invalid(self, net):
        with pytest.raises(WorkloadError):
            producer_consumer_trace(net, n_channels=0)


class TestStencil:
    def test_neighbour_structure(self):
        net = single_bus(4)
        pat = stencil_halo_trace(net, iterations=3)
        pat.validate_for(net)
        procs = list(net.processors)
        assert pat.n_objects == 2 * (len(procs) - 1)
        # object 0: written by procs[0], read by procs[1]
        assert pat.writes_of(procs[0], 0) == 3
        assert pat.reads_of(procs[1], 0) == 3
        # exactly one writer and one reader per halo object
        for x in range(pat.n_objects):
            assert sum(1 for p in procs if pat.writes_of(p, x) > 0) == 1
            assert sum(1 for p in procs if pat.reads_of(p, x) > 0) == 1

    def test_invalid(self):
        net = single_bus(4)
        with pytest.raises(WorkloadError):
            stencil_halo_trace(net, iterations=0)


class TestWebCache:
    def test_read_mostly(self, net):
        pat = web_cache_trace(net, n_pages=32, update_fraction=0.05, seed=0)
        pat.validate_for(net)
        assert pat.reads.sum() > 5 * pat.writes.sum()

    def test_zero_updates(self, net):
        pat = web_cache_trace(net, n_pages=8, update_fraction=0.0, seed=0)
        assert pat.writes.sum() == 0

    def test_origin_servers_are_only_writers(self, net):
        pat = web_cache_trace(net, n_pages=8, n_origin_servers=1, update_fraction=0.1, seed=0)
        writers = {p for p in net.processors if pat.writes[p].sum() > 0}
        assert len(writers) <= 1

    def test_invalid(self, net):
        with pytest.raises(WorkloadError):
            web_cache_trace(net, n_pages=0)
        with pytest.raises(WorkloadError):
            web_cache_trace(net, update_fraction=2.0)
