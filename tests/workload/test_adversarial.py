"""Tests for the adversarial / stress workloads."""

import pytest

from repro.errors import WorkloadError
from repro.network.builders import balanced_tree, hardness_gadget, single_bus, star_of_buses
from repro.workload.adversarial import (
    bisection_stress,
    partition_like_pattern,
    replication_trap,
    write_conflict_pattern,
)


class TestBisectionStress:
    def test_pairs_cross_the_root(self):
        net = star_of_buses(2, 3)
        pat = bisection_stress(net, 10, seed=0)
        pat.validate_for(net)
        rooted = net.rooted()
        root = net.canonical_root()
        children = rooted.children(root)
        for x in range(pat.n_objects):
            sides = set()
            for p in pat.requesters(x):
                for ci, c in enumerate(children):
                    if rooted.is_ancestor(c, p):
                        sides.add(ci)
            assert len(sides) == 2

    def test_requires_branching_root(self):
        # a root with a single subtree cannot be bisected
        net = single_bus(4)
        pat = bisection_stress(net, 4, seed=0)  # single bus root has >=2 children
        pat.validate_for(net)

    def test_write_fraction(self):
        net = star_of_buses(2, 2)
        pat = bisection_stress(net, 6, requests_per_pair=10, write_fraction=0.0, seed=0)
        assert pat.writes.sum() == 0


class TestWriteConflict:
    def test_two_writers_per_object(self):
        net = balanced_tree(2, 2, 2)
        pat = write_conflict_pattern(net, 8, writes_per_endpoint=5, seed=0)
        pat.validate_for(net)
        assert pat.reads.sum() == 0
        for x in range(pat.n_objects):
            writers = pat.requesters(x)
            assert len(writers) == 2
            assert pat.write_contention(x) == 10

    def test_partners_are_far(self):
        net = balanced_tree(2, 3, 2)
        pat = write_conflict_pattern(net, 16, seed=1)
        rooted = net.rooted()
        diameter_procs = max(
            rooted.distance(p, q) for p in net.processors for q in net.processors
        )
        for x in range(pat.n_objects):
            a, b = pat.requesters(x)
            assert rooted.distance(a, b) == diameter_procs

    def test_needs_two_processors(self):
        net = single_bus(2)
        pat = write_conflict_pattern(net, 2, seed=0)
        pat.validate_for(net)


class TestReplicationTrap:
    def test_all_processors_read(self):
        net = single_bus(5)
        pat = replication_trap(net, 4, reads_per_processor=3, writes_per_object=2, seed=0)
        pat.validate_for(net)
        for x in range(4):
            for p in net.processors:
                assert pat.reads_of(p, x) == 3
            assert pat.write_contention(x) == 2


class TestPartitionLike:
    def test_frequencies_match_the_proof(self):
        net = hardness_gadget()
        sizes = [3, 1, 2, 2]
        pat = partition_like_pattern(net, sizes)
        a = net.node_by_name("a")
        b = net.node_by_name("b")
        s = net.node_by_name("s")
        sbar = net.node_by_name("sbar")
        k = sum(sizes) // 2
        # x_i objects: every anchor writes k_i
        for i, ki in enumerate(sizes):
            for v in (a, b, s, sbar):
                assert pat.writes_of(v, i) == ki
                assert pat.reads_of(v, i) == 0
        # y object
        y = len(sizes)
        assert pat.writes_of(a, y) == 4 * k + 1
        assert pat.writes_of(b, y) == 2 * k
        assert pat.writes_of(s, y) == 0 and pat.writes_of(sbar, y) == 0
        assert pat.object_names[-1] == "y"

    def test_default_anchors(self):
        net = single_bus(5)
        pat = partition_like_pattern(net, [2, 2])
        assert pat.n_objects == 3

    def test_invalid_sizes(self):
        net = hardness_gadget()
        with pytest.raises(WorkloadError):
            partition_like_pattern(net, [])
        with pytest.raises(WorkloadError):
            partition_like_pattern(net, [0, 2])

    def test_invalid_anchor_count(self):
        net = single_bus(5)
        procs = list(net.processors)
        with pytest.raises(WorkloadError):
            partition_like_pattern(net, [1, 1], anchor_processors=procs[:3])

    def test_anchor_must_be_processor(self):
        net = hardness_gadget()
        bus = net.buses[0]
        procs = list(net.processors)
        with pytest.raises(WorkloadError):
            partition_like_pattern(net, [1, 1], anchor_processors=[bus] + procs[:3])
