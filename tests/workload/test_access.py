"""Tests for the AccessPattern frequency matrices."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.network.builders import single_bus
from repro.workload.access import AccessPattern


@pytest.fixture
def net():
    return single_bus(3)


def make_pattern(net):
    procs = list(net.processors)
    return AccessPattern.from_requests(
        net,
        2,
        [
            (procs[0], 0, 3, 1),
            (procs[1], 0, 0, 2),
            (procs[2], 1, 5, 0),
        ],
        object_names=["alpha", "beta"],
    )


class TestConstruction:
    def test_from_requests(self, net):
        pat = make_pattern(net)
        procs = list(net.processors)
        assert pat.n_objects == 2
        assert pat.reads_of(procs[0], 0) == 3
        assert pat.writes_of(procs[1], 0) == 2
        assert pat.accesses_of(procs[2], 1) == 5
        assert pat.object_names == ("alpha", "beta")

    def test_from_requests_accumulates(self, net):
        procs = list(net.processors)
        pat = AccessPattern.from_requests(
            net, 1, [(procs[0], 0, 1, 1), (procs[0], 0, 2, 3)]
        )
        assert pat.reads_of(procs[0], 0) == 3
        assert pat.writes_of(procs[0], 0) == 4

    def test_empty(self, net):
        pat = AccessPattern.empty(net.n_nodes, 3)
        assert pat.n_objects == 3
        assert pat.total_requests(0) == 0
        assert pat.is_trivial(0)

    def test_shape_mismatch(self):
        with pytest.raises(WorkloadError):
            AccessPattern(np.zeros((3, 2), dtype=int), np.zeros((3, 3), dtype=int))

    def test_negative_rejected(self):
        reads = np.zeros((3, 1), dtype=int)
        writes = np.zeros((3, 1), dtype=int)
        reads[0, 0] = -1
        with pytest.raises(WorkloadError):
            AccessPattern(reads, writes)

    def test_non_integer_rejected(self):
        reads = np.full((3, 1), 0.5)
        with pytest.raises(WorkloadError):
            AccessPattern(reads, np.zeros((3, 1)))

    def test_integer_valued_floats_accepted(self):
        reads = np.full((3, 1), 2.0)
        pat = AccessPattern(reads, np.zeros((3, 1)))
        assert pat.reads[0, 0] == 2

    def test_duplicate_names_rejected(self):
        with pytest.raises(WorkloadError):
            AccessPattern(
                np.zeros((3, 2), dtype=int),
                np.zeros((3, 2), dtype=int),
                object_names=["a", "a"],
            )

    def test_wrong_name_count(self):
        with pytest.raises(WorkloadError):
            AccessPattern(
                np.zeros((3, 2), dtype=int),
                np.zeros((3, 2), dtype=int),
                object_names=["a"],
            )

    def test_1d_rejected(self):
        with pytest.raises(WorkloadError):
            AccessPattern(np.zeros(3, dtype=int), np.zeros(3, dtype=int))

    def test_request_for_bus_rejected(self, net):
        bus = net.buses[0]
        with pytest.raises(WorkloadError):
            AccessPattern.from_requests(net, 1, [(bus, 0, 1, 0)])

    def test_request_out_of_range_object(self, net):
        procs = list(net.processors)
        with pytest.raises(WorkloadError):
            AccessPattern.from_requests(net, 1, [(procs[0], 5, 1, 0)])


class TestDerivedQuantities:
    def test_write_contention(self, net):
        pat = make_pattern(net)
        assert pat.write_contention(0) == 3
        assert pat.write_contention(1) == 0
        assert list(pat.write_contentions()) == [3, 0]

    def test_total_requests(self, net):
        pat = make_pattern(net)
        assert pat.total_requests(0) == 6
        assert pat.total_requests(1) == 5
        assert list(pat.total_requests_all()) == [6, 5]

    def test_requesters(self, net):
        pat = make_pattern(net)
        procs = list(net.processors)
        assert pat.requesters(0) == sorted([procs[0], procs[1]])
        assert pat.requesters(1) == [procs[2]]

    def test_object_weights(self, net):
        pat = make_pattern(net)
        weights = pat.object_weights(0)
        assert weights.sum() == 6

    def test_object_index(self, net):
        pat = make_pattern(net)
        assert pat.object_index("beta") == 1
        with pytest.raises(WorkloadError):
            pat.object_index("gamma")

    def test_totals_matrix(self, net):
        pat = make_pattern(net)
        assert np.array_equal(pat.totals, pat.reads + pat.writes)


class TestTransformations:
    def test_restrict_objects(self, net):
        pat = make_pattern(net)
        sub = pat.restrict_objects([1])
        assert sub.n_objects == 1
        assert sub.object_names == ("beta",)
        assert sub.total_requests(0) == 5

    def test_scaled(self, net):
        pat = make_pattern(net)
        scaled = pat.scaled(3)
        assert scaled.total_requests(0) == 18
        with pytest.raises(WorkloadError):
            pat.scaled(0)

    def test_combined_with(self, net):
        pat = make_pattern(net)
        combo = pat.combined_with(pat)
        assert combo.n_objects == 4
        # names deduplicated
        assert len(set(combo.object_names)) == 4

    def test_combined_with_mismatched_nodes(self, net):
        pat = make_pattern(net)
        other = AccessPattern.empty(net.n_nodes + 1, 1)
        with pytest.raises(WorkloadError):
            pat.combined_with(other)


class TestValidationAndSerialization:
    def test_validate_for(self, net):
        pat = make_pattern(net)
        pat.validate_for(net)  # does not raise

    def test_validate_wrong_node_count(self, net):
        pat = AccessPattern.empty(net.n_nodes + 2, 1)
        with pytest.raises(WorkloadError):
            pat.validate_for(net)

    def test_validate_bus_requests(self, net):
        reads = np.zeros((net.n_nodes, 1), dtype=int)
        reads[net.buses[0], 0] = 1
        pat = AccessPattern(reads, np.zeros_like(reads))
        with pytest.raises(WorkloadError):
            pat.validate_for(net)

    def test_dict_round_trip(self, net):
        pat = make_pattern(net)
        restored = AccessPattern.from_dict(pat.to_dict())
        assert restored == pat

    def test_from_dict_bad_format(self):
        with pytest.raises(WorkloadError):
            AccessPattern.from_dict({"format": "nope"})

    def test_readonly_views(self, net):
        pat = make_pattern(net)
        with pytest.raises(ValueError):
            pat.reads[0, 0] = 7
        with pytest.raises(ValueError):
            pat.writes[0, 0] = 7

    def test_equality(self, net):
        assert make_pattern(net) == make_pattern(net)
        assert make_pattern(net) != AccessPattern.empty(net.n_nodes, 2)
