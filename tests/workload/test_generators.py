"""Tests for the synthetic workload generators."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.network.builders import balanced_tree, single_bus
from repro.workload.generators import (
    hotspot_pattern,
    random_sparse_pattern,
    read_write_mix,
    subtree_local_pattern,
    uniform_pattern,
    zipf_pattern,
    zipf_weights,
)


@pytest.fixture
def net():
    return balanced_tree(2, 2, 2)


ALL_GENERATORS = [
    lambda net, seed: uniform_pattern(net, 8, seed=seed),
    lambda net, seed: zipf_pattern(net, 8, seed=seed),
    lambda net, seed: hotspot_pattern(net, 8, seed=seed),
    lambda net, seed: subtree_local_pattern(net, 8, seed=seed),
    lambda net, seed: random_sparse_pattern(net, 8, seed=seed),
]


class TestCommonProperties:
    @pytest.mark.parametrize("make", ALL_GENERATORS)
    def test_valid_for_network(self, net, make):
        pat = make(net, 0)
        pat.validate_for(net)
        assert pat.n_objects == 8

    @pytest.mark.parametrize("make", ALL_GENERATORS)
    def test_deterministic_given_seed(self, net, make):
        assert make(net, 123) == make(net, 123)

    @pytest.mark.parametrize("make", ALL_GENERATORS)
    def test_different_seeds_differ(self, net, make):
        patterns = [make(net, s) for s in range(5)]
        assert any(patterns[0] != p for p in patterns[1:])

    @pytest.mark.parametrize("make", ALL_GENERATORS)
    def test_non_negative_integer_frequencies(self, net, make):
        pat = make(net, 1)
        assert (pat.reads >= 0).all() and (pat.writes >= 0).all()
        assert pat.reads.dtype.kind == "i" and pat.writes.dtype.kind == "i"


class TestZipf:
    def test_weights_normalised_and_decreasing(self):
        w = zipf_weights(10, 1.0)
        assert w.sum() == pytest.approx(1.0)
        assert all(w[i] >= w[i + 1] for i in range(len(w) - 1))

    def test_weights_invalid(self):
        with pytest.raises(WorkloadError):
            zipf_weights(0)

    def test_popularity_skew(self, net):
        pat = zipf_pattern(net, 32, requests_per_processor=200, exponent=1.2, seed=0)
        totals = pat.total_requests_all()
        # the most popular object gets far more traffic than the median one
        assert totals.max() > 3 * np.median(totals[totals > 0])

    def test_write_fraction_bounds(self, net):
        with pytest.raises(WorkloadError):
            zipf_pattern(net, 4, write_fraction=1.5)


class TestUniform:
    def test_total_request_budget(self, net):
        pat = uniform_pattern(net, 8, requests_per_processor=10, seed=0)
        assert pat.totals.sum() == 10 * net.n_processors

    def test_write_fraction_extremes(self, net):
        read_only = uniform_pattern(net, 4, write_fraction=0.0, seed=0)
        assert read_only.writes.sum() == 0
        write_only = uniform_pattern(net, 4, write_fraction=1.0, seed=0)
        assert write_only.reads.sum() == 0

    def test_invalid_fraction(self, net):
        with pytest.raises(WorkloadError):
            uniform_pattern(net, 4, write_fraction=-0.1)


class TestHotspot:
    def test_hot_processors_dominate(self, net):
        pat = hotspot_pattern(
            net, 8, n_hot_processors=1, hot_requests=100, cold_requests=1, seed=0
        )
        per_proc = pat.totals.sum(axis=1)
        hot = per_proc.max()
        cold = sorted(per_proc[p] for p in net.processors)[0]
        assert hot == 100 and cold == 1

    def test_invalid_hot_count(self, net):
        with pytest.raises(WorkloadError):
            hotspot_pattern(net, 4, n_hot_processors=net.n_processors + 1)

    def test_zero_cold_requests(self, net):
        pat = hotspot_pattern(net, 4, n_hot_processors=1, cold_requests=0, seed=1)
        pat.validate_for(net)


class TestSubtreeLocal:
    def test_locality_concentrates_traffic(self):
        net = balanced_tree(2, 3, 2)
        pat = subtree_local_pattern(net, 16, locality=0.99, seed=0)
        rooted = net.rooted()
        # for most objects, one child subtree of the root should carry the
        # large majority of the requests
        root = net.canonical_root()
        children = rooted.children(root)
        concentrated = 0
        for x in range(pat.n_objects):
            weights = pat.object_weights(x)
            per_child = [
                sum(int(weights[p]) for p in net.processors if rooted.is_ancestor(c, p))
                for c in children
            ]
            total = sum(per_child)
            if total > 0 and max(per_child) >= 0.8 * total:
                concentrated += 1
        assert concentrated >= pat.n_objects // 2

    def test_invalid_locality(self):
        net = balanced_tree(2, 2, 2)
        with pytest.raises(WorkloadError):
            subtree_local_pattern(net, 4, locality=1.5)


class TestSparseAndMix:
    def test_density_zero_is_empty(self):
        net = single_bus(4)
        pat = random_sparse_pattern(net, 5, density=0.0, seed=0)
        assert pat.totals.sum() == 0

    def test_density_bounds(self):
        net = single_bus(4)
        with pytest.raises(WorkloadError):
            random_sparse_pattern(net, 5, density=2.0)

    def test_read_write_mix_scales(self):
        net = single_bus(4)
        pat = uniform_pattern(net, 4, seed=0)
        mixed = read_write_mix(pat, read_weight=3, write_weight=0)
        assert np.array_equal(mixed.reads, pat.reads * 3)
        assert mixed.writes.sum() == 0
        assert mixed.object_names == pat.object_names

    def test_read_write_mix_invalid(self):
        net = single_bus(4)
        pat = uniform_pattern(net, 4, seed=0)
        with pytest.raises(WorkloadError):
            read_write_mix(pat, read_weight=-1)
