"""Tests for the high-level experiment runners (E1 -- E10)."""

import pytest

from repro.analysis.experiments import (
    churn_scenario_suite,
    experiment_approximation_ratio,
    experiment_baseline_comparison,
    experiment_deletion_invariants,
    experiment_distributed_rounds,
    experiment_hardness_reduction,
    experiment_nibble_optimality,
    experiment_online_streaming,
    experiment_runtime_scaling,
    experiment_scenario_registry,
    experiment_sci_equivalence,
    experiment_topology_churn,
    standard_instance_suite,
    streaming_scenario_suite,
)


class TestInstanceSuite:
    def test_suite_is_valid(self):
        suite = standard_instance_suite(small=True)
        assert len(suite) >= 8
        labels = [label for label, _net, _pat in suite]
        assert len(set(labels)) == len(labels)
        for _label, net, pat in suite:
            pat.validate_for(net)

    def test_small_flag_reduces_objects(self):
        small = standard_instance_suite(small=True)
        big = standard_instance_suite(small=False)
        small_objects = sum(pat.n_objects for _l, _n, pat in small)
        big_objects = sum(pat.n_objects for _l, _n, pat in big)
        assert small_objects < big_objects


class TestE1:
    def test_ring_and_bus_models_agree(self):
        records = experiment_sci_equivalence()
        assert records
        assert all(rec["match"] for rec in records)


class TestE2:
    def test_equivalence_on_all_rows(self):
        records = experiment_hardness_reduction(item_counts=(3, 4), instances_per_count=1)
        assert records
        assert all(rec["equivalence"] for rec in records)
        # both YES and NO instances appear
        assert {rec["partition_solvable"] for rec in records} == {True, False}


class TestE3:
    def test_nibble_claims_hold(self):
        records = experiment_nibble_optimality(seeds=(0, 1))
        assert records
        assert all(rec["kappa_bound_holds"] for rec in records)
        assert all(rec["connected"] for rec in records)


class TestE4:
    def test_deletion_window_holds(self):
        records = experiment_deletion_invariants(seeds=(0, 1))
        assert records
        assert all(rec["window_holds"] for rec in records)
        assert all(rec["copies_after"] >= 1 for rec in records)


class TestE5:
    def test_all_within_factor_seven(self):
        records = experiment_approximation_ratio(small=True)
        assert records
        assert all(rec["within_7x"] for rec in records)
        assert max(rec["ratio_lb"] for rec in records) <= 7.0 + 1e-9


class TestE6:
    def test_runtime_sweep_rows(self):
        records = experiment_runtime_scaling(
            object_counts=(4, 8), heights=(2, 4), degrees=(4, 8)
        )
        sweeps = {rec["parameter"] for rec in records}
        assert sweeps == {"objects", "height", "degree"}
        assert all(rec["seconds"] > 0 for rec in records)


class TestE7:
    def test_distributed_round_rows(self):
        records = experiment_distributed_rounds(object_counts=(4,), heights=(2,))
        assert len(records) == 2
        assert all(rec["total_rounds"] > 0 for rec in records)


class TestE8:
    def test_extended_nibble_is_competitive(self):
        records = experiment_baseline_comparison(small=True)
        by_instance = {}
        for rec in records:
            by_instance.setdefault(rec["instance"], {})[rec["strategy"]] = rec["congestion"]
        for label, values in by_instance.items():
            best = min(values.values())
            # the extended-nibble is never more than 7x the best strategy here
            assert values["extended-nibble"] <= 7 * best + 1e-9

    def test_replay_columns_present_when_requested(self):
        records = experiment_baseline_comparison(small=True, with_replay=True, replay_batch=8)
        assert all("replay_makespan" in rec for rec in records)
        assert all(rec["replay_slowdown"] >= 1.0 - 1e-9 for rec in records)


class TestE9:
    def test_scenario_suite_shapes(self):
        suite = streaming_scenario_suite(small=True)
        names = [name for name, _net, _seq in suite]
        assert names == ["zipf", "adversarial", "phase-shift"]
        for _name, net, seq in suite:
            seq.validate_for(net)
            assert len(seq) > 0

    def test_online_streaming_rows(self):
        records = experiment_online_streaming(small=True)
        scenarios = {rec["scenario"] for rec in records}
        assert scenarios == {"zipf", "adversarial", "phase-shift"}
        strategies = {rec["strategy"] for rec in records}
        assert {"hindsight-static", "edge-counter", "edge-counter/trajectory"} <= strategies
        # the static reference rows normalise to ratio 1 against themselves
        for rec in records:
            if rec["strategy"] == "hindsight-static":
                assert rec["ratio_vs_static"] == 1.0
        # the sampled trajectories are running maxima, hence monotone
        for rec in records:
            if rec["strategy"] == "edge-counter/trajectory":
                assert rec["monotone"]


class TestE10:
    def test_scenario_suite_shapes(self):
        suite = churn_scenario_suite(small=True)
        names = [name for name, _net, _seq, _trace in suite]
        assert names == ["flash-crowd", "maintenance", "degradation", "storm"]
        for _name, _net, seq, trace in suite:
            assert len(seq) > 0
            assert len(trace) > 0

    def test_filtered_suite_matches_full_slice(self):
        # the CLI builds one scenario lazily; every scenario is seeded
        # independently, so the filtered tuple must equal the full one
        full = {name: (seq, trace)
                for name, _net, seq, trace in churn_scenario_suite(seed=3, small=True)}
        for name in ("flash-crowd", "storm"):
            ((got_name, _net, seq, trace),) = churn_scenario_suite(
                seed=3, small=True, names=[name]
            )
            assert got_name == name
            assert seq.events == full[name][0].events
            assert trace.mutations == full[name][1].mutations

    def test_unknown_scenario_name_rejected(self):
        with pytest.raises(KeyError):
            churn_scenario_suite(small=True, names=["earthquake"])

    def test_topology_churn_rows(self):
        records = experiment_topology_churn(small=True)
        scenarios = {rec["scenario"] for rec in records}
        assert scenarios == {"flash-crowd", "maintenance", "degradation", "storm"}
        for rec in records:
            assert rec["served"] + rec["dropped"] == rec["n_events"]
            assert rec["repair_consistent"]
            assert rec["n_mutations"] > 0


class TestE11:
    def test_scenario_registry_rows(self):
        records = experiment_scenario_registry(small=True)
        scenarios = {rec["scenario"] for rec in records}
        assert scenarios == {
            "adversarial-storm", "flash-crowd-recovery", "fleet-sweep",
        }
        for rec in records:
            assert rec["served"] + rec["dropped"] == rec["n_events"]
            assert rec["repair_consistent"]
        # the fleet sweep contributes one labelled sub-run per network size
        fleet_labels = {
            rec["label"] for rec in records if rec["scenario"] == "fleet-sweep"
        }
        assert len(fleet_labels) >= 2

    def test_deterministic_for_fixed_seed(self):
        assert experiment_scenario_registry(seed=4, small=True) == (
            experiment_scenario_registry(seed=4, small=True)
        )
