"""Tests for the parallel experiment runner."""

import json

import pytest

from repro.analysis.runner import (
    EXPERIMENT_IDS,
    ExperimentOutcome,
    experiment_seeds,
    run_experiments,
)


class TestSeeds:
    def test_deterministic(self):
        assert experiment_seeds(0, EXPERIMENT_IDS) == experiment_seeds(
            0, EXPERIMENT_IDS
        )

    def test_seed_independent_of_peer_selection(self):
        full = experiment_seeds(7, EXPERIMENT_IDS)
        subset = experiment_seeds(7, ["E4", "E7"])
        assert subset["E4"] == full["E4"]
        assert subset["E7"] == full["E7"]

    def test_base_seed_changes_seeds(self):
        assert experiment_seeds(0, ["E1"]) != experiment_seeds(1, ["E1"])


class TestRunExperiments:
    def test_inline_run_returns_records(self):
        outcomes = run_experiments(ids=["E1", "E4"], parallel=1)
        assert [o.experiment for o in outcomes] == ["E1", "E4"]
        assert all(o.ok for o in outcomes)
        assert all(len(o.records) > 0 for o in outcomes)

    def test_parallel_matches_inline(self):
        inline = run_experiments(ids=["E1", "E4", "E7"], parallel=1, seed=3)
        fanned = run_experiments(ids=["E1", "E4", "E7"], parallel=3, seed=3)
        assert [o.experiment for o in inline] == [o.experiment for o in fanned]
        assert [o.seed for o in inline] == [o.seed for o in fanned]
        assert [o.records for o in inline] == [o.records for o in fanned]

    def test_unknown_id_rejected(self):
        with pytest.raises(KeyError):
            run_experiments(ids=["E99"])

    def test_bad_parallel_rejected(self):
        with pytest.raises(ValueError):
            run_experiments(ids=["E1"], parallel=0)

    def test_small_and_large_mutually_exclusive(self):
        with pytest.raises(ValueError):
            run_experiments(ids=["E5"], small=True, large=True)


class TestArtifacts:
    def test_artifacts_written(self, tmp_path):
        out = tmp_path / "results"
        outcomes = run_experiments(ids=["E1", "E7"], parallel=1, output_dir=out)
        for outcome in outcomes:
            assert outcome.artifact is not None
            doc = json.loads(open(outcome.artifact).read())
            assert doc["format"] == "repro.experiment-result/v1"
            assert doc["experiment"] == outcome.experiment
            assert doc["n_records"] == len(outcome.records)
            assert doc["error"] is None
        summary = json.loads((out / "summary.json").read_text())
        assert summary["all_ok"] is True
        assert [e["experiment"] for e in summary["experiments"]] == ["E1", "E7"]

    def test_failed_experiment_is_isolated(self, tmp_path, monkeypatch):
        from repro.analysis import runner as runner_mod

        def boom(**kwargs):
            raise RuntimeError("synthetic failure")

        monkeypatch.setitem(runner_mod.EXPERIMENT_RUNNERS, "E1", boom)
        outcomes = run_experiments(
            ids=["E1", "E7"], parallel=1, output_dir=tmp_path / "res"
        )
        assert not outcomes[0].ok
        assert "synthetic failure" in outcomes[0].error
        assert outcomes[1].ok
        summary = json.loads((tmp_path / "res" / "summary.json").read_text())
        assert summary["all_ok"] is False


class TestParallelDeterminism:
    """--parallel must not leak into results: the seeding contract of PR 1."""

    def test_seed_matrix_natural_order(self):
        # E10/E11 sort after E9, so E1..E9 keep their entropy indices (and
        # therefore their per-experiment seeds) from before they existed
        assert EXPERIMENT_IDS[0] == "E1"
        assert list(EXPERIMENT_IDS[9:]) == ["E10", "E11"]
        assert list(EXPERIMENT_IDS[:9]) == [f"E{i}" for i in range(1, 10)]

    def test_parallel_1_and_4_byte_identical_artifacts(self, tmp_path):
        # every seeded experiment; E6 is excluded because its *records* are
        # wall-clock runtime measurements (its payload is timing data), not
        # a function of the seed
        ids = [i for i in EXPERIMENT_IDS if i != "E6"]
        run_experiments(
            ids=ids, parallel=1, seed=5, small=True,
            output_dir=tmp_path / "seq", stable_artifacts=True,
        )
        run_experiments(
            ids=ids, parallel=4, seed=5, small=True,
            output_dir=tmp_path / "par", stable_artifacts=True,
        )
        for name in [f"{i}.json" for i in ids] + ["summary.json"]:
            sequential = (tmp_path / "seq" / name).read_bytes()
            parallel = (tmp_path / "par" / name).read_bytes()
            assert sequential == parallel, f"{name} differs between parallel modes"

    def test_stable_artifacts_zero_wallclock(self, tmp_path):
        outcomes = run_experiments(
            ids=["E1"], parallel=1, output_dir=tmp_path, stable_artifacts=True
        )
        doc = json.loads((tmp_path / "E1.json").read_text())
        assert doc["elapsed_seconds"] == 0.0
        summary = json.loads((tmp_path / "summary.json").read_text())
        assert summary["total_seconds"] == 0.0
        assert summary["experiments"][0]["artifact"] == "E1.json"
        # the returned outcomes still carry the real timings
        assert outcomes[0].elapsed_seconds > 0.0

    def test_stable_artifacts_field_contract_is_pinned(self, tmp_path):
        """Exactly these fields are stabilised -- and nothing else.

        The documented contract of ``--stable-artifacts``: per-experiment
        artifacts have only ``elapsed_seconds`` zeroed; the summary has
        ``total_seconds`` zeroed and, per row, ``seconds`` zeroed and
        ``artifact`` reduced to a basename.  ``records`` are never touched.
        """
        run_experiments(
            ids=["E1"], parallel=1, seed=2,
            output_dir=tmp_path / "stable", stable_artifacts=True,
        )
        run_experiments(
            ids=["E1"], parallel=1, seed=2,
            output_dir=tmp_path / "raw", stable_artifacts=False,
        )
        stable = json.loads((tmp_path / "stable" / "E1.json").read_text())
        raw = json.loads((tmp_path / "raw" / "E1.json").read_text())
        assert set(stable) == set(raw)
        differing = {k for k in raw if stable[k] != raw[k]}
        assert differing <= {"elapsed_seconds"}
        assert stable["records"] == raw["records"]

        stable_summary = json.loads(
            (tmp_path / "stable" / "summary.json").read_text()
        )
        raw_summary = json.loads((tmp_path / "raw" / "summary.json").read_text())
        assert stable_summary["total_seconds"] == 0.0
        (stable_row,) = stable_summary["experiments"]
        (raw_row,) = raw_summary["experiments"]
        assert set(stable_row) == set(raw_row)
        assert stable_row["seconds"] == 0.0
        assert stable_row["artifact"] == "E1.json"
        row_diff = {k for k in raw_row if stable_row[k] != raw_row[k]}
        assert row_diff <= {"seconds", "artifact"}


class TestRegistryIntegration:
    def test_registry_records_successful_runs(self, tmp_path):
        from repro.lab.registry import LabRegistry, experiment_entry

        reg_root = tmp_path / "reg"
        outcomes = run_experiments(
            ids=["E1", "E4"], parallel=1, seed=0, small=True, registry=reg_root
        )
        registry = LabRegistry(reg_root)
        seeds = experiment_seeds(0, ["E1", "E4"])
        for outcome in outcomes:
            entry = experiment_entry(
                outcome.experiment, seeds[outcome.experiment], small=True
            )
            assert registry.has(entry.key)
            assert registry.get(entry.key)["records"] == outcome.records

    def test_registry_skips_e6_and_failures(self, tmp_path, monkeypatch):
        from repro.analysis import runner as runner_mod
        from repro.lab.registry import LabRegistry

        def boom(**kwargs):
            raise RuntimeError("synthetic failure")

        monkeypatch.setitem(runner_mod.EXPERIMENT_RUNNERS, "E1", boom)
        reg_root = tmp_path / "reg"
        run_experiments(ids=["E1", "E6"], parallel=1, small=True, registry=reg_root)
        index = LabRegistry(reg_root).load_index()
        assert index == {}


class TestOutcome:
    def test_summary_row_shape(self):
        outcome = ExperimentOutcome(
            experiment="E1", seed=1, small=False, elapsed_seconds=0.5
        )
        row = outcome.summary_row()
        assert row["experiment"] == "E1"
        assert row["status"] == "ok"
        assert row["artifact"] == "-"
