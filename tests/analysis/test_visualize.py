"""Tests for the ASCII visualisation helpers."""

import pytest

from repro.analysis.visualize import render_loads, render_placement_summary, render_tree
from repro.core.congestion import compute_loads
from repro.core.extended_nibble import extended_nibble
from repro.core.placement import Placement
from repro.network.builders import single_bus, star_of_buses
from repro.workload.generators import uniform_pattern


@pytest.fixture
def instance():
    net = star_of_buses(2, 2)
    pat = uniform_pattern(net, 6, requests_per_processor=8, seed=0)
    return net, pat


class TestRenderTree:
    def test_every_node_appears(self, instance):
        net, _ = instance
        text = render_tree(net)
        for v in net.nodes():
            assert net.name(v) in text
        # the root is on the first line without indentation
        assert text.splitlines()[0].startswith("[bus")

    def test_copy_annotation(self, instance):
        net, pat = instance
        result = extended_nibble(net, pat)
        text = render_tree(net, result.placement)
        assert "copies=" in text

    def test_custom_root(self, instance):
        net, _ = instance
        leaf = net.processors[0]
        text = render_tree(net, root=leaf)
        assert text.splitlines()[0].startswith(f"({net.name(leaf)})")


class TestRenderLoads:
    def test_bars_and_congestion_line(self, instance):
        net, pat = instance
        placement = Placement.single_holder([net.processors[0]] * pat.n_objects)
        profile = compute_loads(net, pat, placement)
        text = render_loads(profile)
        lines = text.splitlines()
        assert len(lines) == net.n_edges + 1
        assert lines[-1].startswith("congestion =")
        assert any("#" in line for line in lines)

    def test_zero_load_profile(self):
        net = single_bus(3)
        pat = uniform_pattern(net, 2, requests_per_processor=0, seed=0)
        placement = Placement.single_holder([net.processors[0]] * 2)
        profile = compute_loads(net, pat, placement)
        text = render_loads(profile)
        assert "congestion = 0" in text


class TestRenderPlacementSummary:
    def test_one_line_per_object(self, instance):
        net, pat = instance
        result = extended_nibble(net, pat)
        text = render_placement_summary(net, result.placement, pat.object_names)
        assert len(text.splitlines()) == pat.n_objects
        assert pat.object_names[0] in text

    def test_truncation(self, instance):
        net, pat = instance
        result = extended_nibble(net, pat)
        text = render_placement_summary(net, result.placement, max_objects=2)
        assert "more objects" in text
