"""Tests for the report/table formatting helpers."""

import pytest

from repro.analysis.report import format_table, format_value, markdown_table, records_to_table


class TestFormatValue:
    def test_floats(self):
        assert format_value(1.23456) == "1.235"
        assert format_value(2.0) == "2"
        assert format_value(float("nan")) == "nan"

    def test_bool_and_str(self):
        assert format_value(True) == "yes"
        assert format_value(False) == "no"
        assert format_value("abc") == "abc"
        assert format_value(7) == "7"

    def test_precision(self):
        assert format_value(1.23456, precision=1) == "1.2"


class TestTables:
    def test_plain_table_alignment(self):
        text = format_table([[1, 2.5], [30, "x"]], headers=["a", "value"])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert "value" in lines[0]
        assert all(len(line) <= len(lines[0]) + 10 for line in lines)

    def test_row_length_mismatch(self):
        with pytest.raises(ValueError):
            format_table([[1, 2, 3]], headers=["a", "b"])

    def test_markdown_table(self):
        md = markdown_table([[1, 2]], headers=["x", "y"])
        lines = md.splitlines()
        assert lines[0] == "| x | y |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| 1 | 2 |"

    def test_records_to_table(self):
        rows, headers = records_to_table(
            [{"a": 1, "b": 2}, {"a": 3, "b": 4}], columns=["b", "a"]
        )
        assert headers == ["b", "a"]
        assert rows == [[2, 1], [4, 3]]

    def test_records_to_table_defaults(self):
        rows, headers = records_to_table([{"a": 1, "b": 2}])
        assert headers == ["a", "b"]
        rows, headers = records_to_table([])
        assert rows == [] and headers == []
