"""Tests for the runtime scaling sweeps."""

import pytest

from repro.analysis.scaling import (
    loglog_slope,
    measure_runtime,
    sweep_degree,
    sweep_height,
    sweep_network_size,
    sweep_objects,
)
from repro.network.builders import single_bus
from repro.workload.generators import uniform_pattern


class TestMeasureRuntime:
    def test_positive_runtime(self):
        net = single_bus(4)
        pat = uniform_pattern(net, 8, seed=0)
        assert measure_runtime(net, pat) > 0


class TestSweeps:
    def test_sweep_objects_structure(self):
        points = sweep_objects([4, 8])
        assert len(points) == 2
        assert points[0].parameter == "objects"
        assert points[0].n_objects == 4 and points[1].n_objects == 8
        assert all(p.seconds > 0 for p in points)

    def test_sweep_height_structure(self):
        points = sweep_height([2, 4], n_objects=4)
        assert [p.parameter for p in points] == ["height", "height"]
        assert points[1].height > points[0].height

    def test_sweep_degree_structure(self):
        points = sweep_degree([4, 8], n_objects=4)
        assert points[1].max_degree > points[0].max_degree

    def test_sweep_network_size_structure(self):
        points = sweep_network_size([8, 16], n_objects=4)
        assert points[1].n_nodes >= points[0].n_nodes

    def test_runtime_grows_with_objects(self):
        points = sweep_objects([4, 64], requests_per_processor=4)
        assert points[1].seconds > points[0].seconds

    def test_as_dict(self):
        point = sweep_objects([4])[0]
        d = point.as_dict()
        assert d["parameter"] == "objects" and d["objects"] == 4


class TestSlope:
    def test_linear_data_gives_slope_one(self):
        from repro.analysis.scaling import ScalingPoint

        points = [
            ScalingPoint("objects", x, 10, int(x), 2, 3, seconds=0.001 * x)
            for x in (1, 2, 4, 8, 16)
        ]
        assert loglog_slope(points) == pytest.approx(1.0, abs=1e-6)

    def test_constant_data_gives_slope_zero(self):
        from repro.analysis.scaling import ScalingPoint

        points = [
            ScalingPoint("objects", x, 10, int(x), 2, 3, seconds=0.005)
            for x in (1, 2, 4, 8)
        ]
        assert loglog_slope(points) == pytest.approx(0.0, abs=1e-6)

    def test_needs_two_points(self):
        from repro.analysis.scaling import ScalingPoint

        with pytest.raises(ValueError):
            loglog_slope([ScalingPoint("objects", 1, 1, 1, 1, 1, 0.1)])
