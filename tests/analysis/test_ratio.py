"""Tests for the approximation-ratio measurement harness."""


from repro.analysis.ratio import (
    APPROXIMATION_FACTOR,
    measure_ratio,
    ratio_study,
    summarize_ratios,
)
from repro.network.builders import balanced_tree, single_bus
from repro.workload.access import AccessPattern
from repro.workload.generators import uniform_pattern


class TestMeasureRatio:
    def test_basic_record(self):
        net = balanced_tree(2, 2, 2)
        pat = uniform_pattern(net, 8, seed=0)
        rec = measure_ratio(net, pat, label="test")
        assert rec.label == "test"
        assert rec.n_nodes == net.n_nodes
        assert rec.extended_congestion >= rec.lower_bound - 1e-9 or rec.lower_bound == 0
        assert rec.ratio_vs_lower_bound >= 1.0 - 1e-9
        assert rec.within_paper_bound
        assert rec.ratio_vs_optimal is None

    def test_with_exact_optimum(self):
        net = single_bus(4)
        pat = uniform_pattern(net, 3, requests_per_processor=6, seed=1)
        rec = measure_ratio(net, pat, compute_exact=True)
        assert rec.optimal_congestion is not None
        assert rec.ratio_vs_optimal is not None
        assert rec.ratio_vs_optimal <= APPROXIMATION_FACTOR + 1e-9

    def test_empty_instance(self):
        net = single_bus(3)
        pat = AccessPattern.empty(net.n_nodes, 2)
        rec = measure_ratio(net, pat)
        assert rec.lower_bound == 0.0
        assert rec.ratio_vs_lower_bound == 1.0
        assert rec.within_paper_bound

    def test_as_dict_keys(self):
        net = single_bus(3)
        pat = uniform_pattern(net, 2, seed=2)
        d = measure_ratio(net, pat).as_dict()
        for key in ("instance", "extended", "lower_bound", "ratio_lb", "within_7x"):
            assert key in d


class TestStudy:
    def test_ratio_study_and_summary(self):
        instances = []
        for seed in range(3):
            net = balanced_tree(2, 2, 2)
            pat = uniform_pattern(net, 6, seed=seed)
            instances.append((f"inst{seed}", net, pat))
        records = ratio_study(instances)
        assert len(records) == 3
        summary = summarize_ratios(records)
        assert summary["instances"] == 3
        assert summary["all_within_7x"] == 1.0
        assert summary["max_ratio_vs_lower_bound"] >= summary["mean_ratio_vs_lower_bound"] - 1e-9

    def test_summary_with_exact(self):
        net = single_bus(3)
        pat = uniform_pattern(net, 2, requests_per_processor=4, seed=0)
        records = ratio_study([("tiny", net, pat)], compute_exact=True)
        summary = summarize_ratios(records)
        assert "max_ratio_vs_optimal" in summary
