"""E5 -- Theorem 4.3: measured approximation factor of the extended-nibble.

The paper proves congestion ≤ 7 · C_opt.  This benchmark measures the actual
ratio against (a) the certified nibble lower bound on the full instance suite
and (b) the exact optimum on small instances.  Expected shape: every ratio is
at most 7, and typical ratios are far smaller (≈ 1--2).
"""

import pytest

from repro.analysis.experiments import experiment_approximation_ratio
from repro.analysis.ratio import summarize_ratios, ratio_study
from repro.core.extended_nibble import extended_nibble
from repro.network.builders import balanced_tree, single_bus
from repro.workload.generators import uniform_pattern, zipf_pattern


@pytest.mark.benchmark(group="E5-approximation")
def test_e5_ratio_suite(benchmark, report_table):
    records = benchmark(experiment_approximation_ratio, 0, False, False)
    report_table("E5: extended-nibble congestion vs lower bound", records)
    assert all(rec["within_7x"] for rec in records)
    worst = max(rec["ratio_lb"] for rec in records)
    print(f"\nE5 worst measured ratio vs lower bound: {worst:.3f} (paper bound: 7)")


@pytest.mark.benchmark(group="E5-approximation")
def test_e5_ratio_vs_exact_optimum(benchmark, report_table):
    """Exact comparison on small instances (the paper's C_opt)."""

    def run():
        instances = []
        for seed in range(4):
            net = single_bus(4)
            pat = uniform_pattern(net, 4, requests_per_processor=6, seed=seed)
            instances.append((f"bus4/uniform-{seed}", net, pat))
        return ratio_study(instances, compute_exact=True)

    records = benchmark(run)
    report_table("E5: ratio against the exact optimum", [r.as_dict() for r in records])
    summary = summarize_ratios(records)
    assert summary["all_within_7x"] == 1.0


@pytest.mark.benchmark(group="E5-approximation")
@pytest.mark.parametrize("n_objects", [32, 128])
def test_e5_strategy_runtime(benchmark, n_objects):
    """Cost of one full extended-nibble run (the quantity Theorem 4.3 bounds)."""
    net = balanced_tree(2, 3, 3)
    pattern = zipf_pattern(net, n_objects, requests_per_processor=16, seed=0)
    result = benchmark(extended_nibble, net, pattern)
    assert result.placement.n_objects == n_objects
