"""E7 -- Theorem 4.3: distributed execution round counts.

The distributed bound is O(|X| · |P ∪ B| · log(degree(T)) + height(T)) with
pipelining over objects.  The benchmark sweeps |X| and height(T) and records
the round counts of the three phases; the expected shape is additive
(rounds grow roughly linearly in |X| for fixed height and roughly linearly
in height for fixed |X|, not multiplicatively).
"""

import pytest

from repro.analysis.experiments import experiment_distributed_rounds
from repro.distributed.aggregation import pipelined_convergecast
from repro.distributed.protocols import distributed_extended_nibble, distributed_nibble
from repro.network.builders import balanced_tree, path_of_buses
from repro.workload.generators import uniform_pattern


@pytest.mark.benchmark(group="E7-distributed")
def test_e7_round_sweeps(benchmark, report_table):
    records = benchmark(experiment_distributed_rounds, (4, 8, 16), (2, 4, 8), 0)
    report_table("E7: distributed rounds vs |X| and height", records)
    assert all(rec["total_rounds"] > 0 for rec in records)


@pytest.mark.benchmark(group="E7-distributed")
def test_e7_pipelining_benefit(benchmark):
    """Pipelined convergecast: rounds ~ |X| + height, not |X| * height."""
    net = path_of_buses(8, leaves_per_bus=1)
    n_items = 32
    local = {v: [1] * n_items for v in net.nodes()}

    outcome = benchmark(pipelined_convergecast, net, local)
    height = net.height()
    print(
        f"\nE7 pipelining: items={n_items} height={height} "
        f"rounds={outcome.stats.rounds} naive bound={n_items * height}"
    )
    assert outcome.stats.rounds < n_items * height


@pytest.mark.benchmark(group="E7-distributed")
def test_e7_distributed_nibble_cost(benchmark):
    net = balanced_tree(2, 3, 2)
    pattern = uniform_pattern(net, 32, requests_per_processor=8, seed=0)
    report = benchmark(distributed_nibble, net, pattern)
    assert report.rounds > 0


@pytest.mark.benchmark(group="E7-distributed")
def test_e7_distributed_extended_nibble_cost(benchmark):
    net = balanced_tree(2, 3, 2)
    pattern = uniform_pattern(net, 16, requests_per_processor=8, seed=0)
    report = benchmark(distributed_extended_nibble, net, pattern)
    assert report.total_rounds >= report.nibble_rounds
