"""Shared configuration for the benchmark harness.

Every benchmark module regenerates one experiment of DESIGN.md / EXPERIMENTS.md
(E1 -- E8).  Benchmarks both *measure* (via pytest-benchmark) and *print* the
result table of their experiment, so running

    pytest benchmarks/ --benchmark-only -s

reproduces the rows recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import random
import sys
from pathlib import Path

# Bare-checkout bootstrap (kept in sync with tests/conftest.py): make
# ``import repro`` work without an installed package or PYTHONPATH=src.
_SRC = str(Path(__file__).resolve().parent.parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

import numpy as np
import pytest

from repro.analysis.report import format_table, records_to_table
from repro.core import kernels


def pytest_addoption(parser):
    parser.addoption(
        "--huge",
        action="store_true",
        default=False,
        help="run the huge-tier benchmarks (10^5-leaf substrate build, "
        "memory ceiling, compiled-vs-numpy replay gate)",
    )


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "huge: huge-tier benchmark (10^5-leaf networks); needs --huge",
    )


def pytest_collection_modifyitems(config, items):
    if config.getoption("--huge"):
        return
    skip_huge = pytest.mark.skip(reason="huge tier disabled (pass --huge)")
    for item in items:
        if "huge" in item.keywords:
            item.add_marker(skip_huge)


# Deterministic seeding (kept in sync with tests/conftest.py).
@pytest.fixture(autouse=True)
def _seed_global_rngs():
    """Reset the global RNGs before every benchmark for stable inputs."""
    random.seed(0)
    np.random.seed(0)


@pytest.fixture(scope="session", autouse=True)
def _prewarm_kernel_backends():
    """One throwaway kernel call per available backend before any timing.

    The numba backend compiles on first call and the cc backend compiles
    its shared library on first load; paying that cost inside a timed
    region (or inside the first benchmark that happens to run) would
    poison the medians recorded into BENCH_history.json.
    """
    up = np.zeros((1, 2), dtype=kernels.INDEX_DTYPE)
    depth = np.zeros(2, dtype=np.int64)
    for backend in kernels.available_backends():
        with kernels.use_backend(backend):
            kernels.lca(up, depth, np.asarray([0, 1]), np.asarray([1, 0]))
            kernels.rescan(np.ones(2), np.ones(2))


def print_records(title: str, records, columns=None) -> None:
    """Print an experiment's record table under a header."""
    rows, headers = records_to_table(records, columns)
    print(f"\n=== {title} ===")
    if rows:
        print(format_table(rows, headers))
    else:
        print("(no rows)")


@pytest.fixture
def report_table():
    """Fixture exposing :func:`print_records` to benchmark modules."""
    return print_records
