"""Shared configuration for the benchmark harness.

Every benchmark module regenerates one experiment of DESIGN.md / EXPERIMENTS.md
(E1 -- E8).  Benchmarks both *measure* (via pytest-benchmark) and *print* the
result table of their experiment, so running

    pytest benchmarks/ --benchmark-only -s

reproduces the rows recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import random
import sys
from pathlib import Path

# Bare-checkout bootstrap (kept in sync with tests/conftest.py): make
# ``import repro`` work without an installed package or PYTHONPATH=src.
_SRC = str(Path(__file__).resolve().parent.parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

import numpy as np
import pytest

from repro.analysis.report import format_table, records_to_table


# Deterministic seeding (kept in sync with tests/conftest.py).
@pytest.fixture(autouse=True)
def _seed_global_rngs():
    """Reset the global RNGs before every benchmark for stable inputs."""
    random.seed(0)
    np.random.seed(0)


def print_records(title: str, records, columns=None) -> None:
    """Print an experiment's record table under a header."""
    rows, headers = records_to_table(records, columns)
    print(f"\n=== {title} ===")
    if rows:
        print(format_table(rows, headers))
    else:
        print("(no rows)")


@pytest.fixture
def report_table():
    """Fixture exposing :func:`print_records` to benchmark modules."""
    return print_records
