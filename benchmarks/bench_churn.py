"""E10 -- topology churn: incremental substrate repair vs from-scratch rebuild.

A mutable bus network invalidates every derived structure: the rooted view
(an O(n) Python traversal), the path-incidence matrix (an O(n * height)
CSR construction) and the load state (fused loads, denominators, incident
CSR).  PR 3 gave all three an incremental ``repair`` path driven by
:class:`repro.network.mutation.MutationOutcome`; this benchmark measures a
mutation storm processed both ways:

* **repair** -- ``LoadState.repair(outcome)`` per mutation (which repairs
  the rooted view and path matrix as well, all vectorized array surgery);
* **rebuild** -- fresh ``RootedTree`` + ``PathMatrix`` + ``LoadState`` per
  mutation, recharged with the surviving edge loads.

Both produce bit-for-bit identical substrate state (asserted here and in
``tests/properties/test_churn_differential.py``).  The gate at the bottom
enforces the headline number: on the largest network the repair path must
process the storm at least 5x faster than from-scratch rebuilds (measured
~30x on the reference machine).
"""

import os
import time

import numpy as np
import pytest

from repro.core.loadstate import LoadState
from repro.network.builders import balanced_tree
from repro.network.mutation import apply_mutation
from repro.network.rooted import RootedTree
from repro.workload.churn import mutation_storm

QUICK = os.environ.get("BENCH_QUICK", "") == "1"

# scenario name -> (tree dims, charged request pairs, storm length)
SCENARIOS = {
    "small": ((2, 4, 2), 4000, 12),
    "large": ((3, 6, 3), 20000, 16),
}
_cache = {}


def churn_scenario(name):
    """Build (network, outcome chain, initial edge loads) for a scenario."""
    if name not in _cache:
        dims, n_pairs, n_mutations = SCENARIOS[name]
        net = balanced_tree(*dims)
        rng = np.random.default_rng(0)
        procs = np.asarray(net.processors, dtype=np.int64)
        u = rng.choice(procs, size=n_pairs)
        v = rng.choice(procs, size=n_pairs)
        state = LoadState(net)
        state.apply_pairs(u, v, np.ones(n_pairs))
        loads0 = state.edge_loads.copy()

        trace = mutation_storm(net, n_mutations=n_mutations, seed=1)
        outcomes = []
        cur = net
        for timed in trace.events:
            outcome = apply_mutation(cur, timed.mutation)
            outcomes.append(outcome)
            cur = outcome.network
        _cache[name] = (net, outcomes, loads0, (u, v))
    return _cache[name]


def make_state(name):
    """A fresh charged LoadState on the scenario's base network.

    Also drops the repaired rooted views a previous sweep installed on the
    outcome networks, so every measured sweep performs the actual repair
    work instead of hitting the cache of an earlier round.
    """
    net, outcomes, _loads0, (u, v) = churn_scenario(name)
    for outcome in outcomes:
        outcome.network._rooted_cache.clear()
    state = LoadState(net)
    state.apply_pairs(u, v, np.ones(u.size))
    _ = state.congestion
    return state


def repair_sweep(state, outcomes):
    """Process the whole mutation storm through incremental repair."""
    for outcome in outcomes:
        state.repair(outcome)
        _ = state.congestion
    return state


def rebuild_sweep(outcomes, loads0):
    """Process the storm by rebuilding every substrate from scratch.

    One fresh traversal, one path-matrix construction (via the rooted
    view's cache, exactly like a cold LoadState build) and one recharge
    per mutation -- the honest from-scratch baseline the repair path is
    gated against.
    """
    loads = loads0
    last = None
    for outcome in outcomes:
        net = outcome.network
        rooted = RootedTree(net, net.canonical_root())
        last = LoadState(net, rooted=rooted)
        loads = outcome.mapped_edge_loads(loads)
        last.apply_edge_loads(loads)
        _ = last.congestion
    return last


# --------------------------------------------------------------------------- #
# benchmark entries
# --------------------------------------------------------------------------- #
@pytest.mark.benchmark(group="E10-churn")
def test_churn_repair_small(benchmark):
    _net, outcomes, _loads0, _pairs = churn_scenario("small")
    state = benchmark.pedantic(
        repair_sweep,
        setup=lambda: ((make_state("small"), outcomes), {}),
        rounds=3,
        iterations=1,
    )
    assert state.congestion > 0


@pytest.mark.benchmark(group="E10-churn")
def test_churn_rebuild_small(benchmark):
    _net, outcomes, loads0, _pairs = churn_scenario("small")
    last = benchmark.pedantic(
        rebuild_sweep, args=(outcomes, loads0), rounds=3, iterations=1
    )
    repaired = repair_sweep(make_state("small"), outcomes)
    assert np.array_equal(repaired._loads, last._loads)
    assert repaired.congestion == last.congestion


@pytest.mark.benchmark(group="E10-churn")
@pytest.mark.skipif(QUICK, reason="large churn scenario is skipped in quick mode")
def test_churn_repair_large(benchmark):
    _net, outcomes, _loads0, _pairs = churn_scenario("large")
    state = benchmark.pedantic(
        repair_sweep,
        setup=lambda: ((make_state("large"), outcomes), {}),
        rounds=2,
        iterations=1,
    )
    assert state.congestion > 0


@pytest.mark.benchmark(group="E10-churn")
@pytest.mark.skipif(QUICK, reason="large churn scenario is skipped in quick mode")
def test_churn_rebuild_large(benchmark):
    _net, outcomes, loads0, _pairs = churn_scenario("large")
    last = benchmark.pedantic(
        rebuild_sweep, args=(outcomes, loads0), rounds=2, iterations=1
    )
    repaired = repair_sweep(make_state("large"), outcomes)
    assert np.array_equal(repaired._loads, last._loads)


def test_repair_speedup_over_rebuild():
    """Gate the headline number of the topology-churn subsystem.

    On the largest network the incremental repair path must process the
    mutation storm at least 5x faster than from-scratch rebuilds.  The
    measure is a ratio of two runs in the same process, so machine speed
    cancels; best-of-2 per side guards against scheduler hiccups.
    """
    _net, outcomes, loads0, _pairs = churn_scenario("large")
    repair_time = rebuild_time = float("inf")
    repaired = rebuilt = None
    for _ in range(2):
        state = make_state("large")
        t0 = time.perf_counter()
        repaired = repair_sweep(state, outcomes)
        t1 = time.perf_counter()
        rebuilt = rebuild_sweep(outcomes, loads0)
        t2 = time.perf_counter()
        repair_time = min(repair_time, t1 - t0)
        rebuild_time = min(rebuild_time, t2 - t1)

    assert np.array_equal(repaired._loads, rebuilt._loads)
    assert repaired.congestion == rebuilt.congestion
    assert np.array_equal(repaired._denom, rebuilt._denom)
    speedup = rebuild_time / max(repair_time, 1e-12)
    print(
        f"\nE10 churn [large]: {len(outcomes)} mutations, "
        f"rebuild {rebuild_time:.3f}s, repair {repair_time:.3f}s -> {speedup:.1f}x"
    )
    assert speedup >= 5.0, (
        f"incremental repair only {speedup:.1f}x faster than from-scratch "
        f"rebuilds (gate: 5x)"
    )
