"""Chaos soak: the serving stack under a seeded fault schedule.

Two things are measured, both with correctness asserted before the
timing is trusted:

* **chaos-soak** -- a full loadgen run against a journaling loopback
  server while the standing chaos plan (connection drops, engine
  crashes, torn journal writes, client read faults) fires.  The
  recovered summary must equal a fault-free baseline and the sealed
  journal must replay clean (ARCHITECTURE invariant 11); the measured
  time is the *cost of recovery* -- reconnects, backoff, journal
  replays -- on top of the clean run.
* **fault-plane off overhead** -- with no plan installed, every
  ``fault_point`` call must be a near-free dictionary-miss check.  The
  serving fast path crosses a fault point per journal line, ack write
  and socket read, so "off means off" is a performance contract, not
  just a convenience (the end-to-end version of this gate is
  ``bench_serve.py``'s 2x stream-overhead ceiling, which runs with the
  plane off).

The CI bench job records the soak into ``BENCH_history.json`` under the
``pr10-chaos`` label.
"""

import os
import tempfile
import time
import warnings
from pathlib import Path

import pytest

from repro import faults
from repro.errors import SimulationError
from repro.faults import FaultPlan, FaultRule
from repro.serve import PlacementServer, ServerThread, replay_recording
from repro.serve.loadgen import loadgen, workload_from_spec
from repro.serve.recorder import load_recording
from repro.sim.scenario import scenario_spec

QUICK = os.environ.get("BENCH_QUICK", "") == "1"

_cache = {}


def soak_plan(seed: int = 0) -> FaultPlan:
    """The standing chaos mix (mirrors tests/faults/test_chaos_resume.py)."""
    return FaultPlan(
        seed=seed,
        rules=(
            FaultRule(site="server.ack-write", kind="drop", at=(3,)),
            FaultRule(site="server.ack-write", kind="drop", prob=0.02),
            FaultRule(site="recorder.write", kind="torn-write", at=(5,)),
            FaultRule(site="server.engine", kind="crash", prob=0.02),
            FaultRule(site="server.accept", kind="drop", prob=0.10),
            FaultRule(site="loadgen.recv", kind="drop", prob=0.02),
        ),
    )


def soak_workload():
    if "workload" not in _cache:
        spec = scenario_spec("storm", seed=0, small=True)
        _cache["workload"] = (spec, *workload_from_spec(spec))
    return _cache["workload"]


def clean_summary():
    if "clean" not in _cache:
        spec, events, mutations = soak_workload()
        server = PlacementServer(spec, max_sessions=1)
        with ServerThread(server) as (host, port):
            _cache["clean"] = loadgen(host, port, events, mutations, batch=8)[
                "summary"
            ]
    return _cache["clean"]


def run_soak(seed: int):
    """One chaos run; returns (stats, sealed journal path, record dir)."""
    spec, events, mutations = soak_workload()
    record_dir = Path(tempfile.mkdtemp(prefix="chaos-soak-"))
    faults.install(soak_plan(seed))
    server = PlacementServer(spec, record_dir=record_dir, journal_sync=True)
    thread = ServerThread(server)
    host, port = thread.start()
    try:
        stats = loadgen(
            host,
            port,
            events,
            mutations,
            batch=8,
            timeout=10.0,
            retries=100,
            backoff_base=0.01,
            backoff_max=0.1,
            backoff_seed=seed,
        )
    finally:
        faults.clear()
        thread.stop()
    sealed = None
    for path in sorted(record_dir.glob("session-*.jsonl")):
        try:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                if load_recording(path).complete:
                    sealed = path
        except SimulationError:
            continue
    return stats, sealed


@pytest.mark.benchmark(group="chaos")
def test_chaos_soak_recovers_exactly_once(benchmark):
    """The soak itself: recovery converges and stays exactly-once."""
    baseline = clean_summary()
    seeds = iter(range(1000))

    def soak():
        return run_soak(next(seeds))

    stats, sealed = benchmark.pedantic(soak, rounds=2 if QUICK else 4, iterations=1)
    assert stats["reconnects"] >= 1  # the at= rules guarantee chaos fired
    assert stats["summary"] == baseline  # invariant 11
    assert sealed is not None
    replayed, served = replay_recording(sealed)
    assert served == baseline and replayed == served  # invariant 10 on top
    print(
        f"\nchaos soak: {stats['summary']['n_events']} events recovered "
        f"through {stats['reconnects']} reconnect(s) / "
        f"{stats['resumed']} resume(s)"
    )


def test_fault_plane_off_is_nearly_free():
    """With no plan, a fault point is a dict-miss: nanoseconds, not micros."""
    faults.reset()
    assert not faults.plan_active()
    n = 200_000
    t0 = time.perf_counter()
    for _ in range(n):
        faults.fault_point("server.ack-write")
    per_call = (time.perf_counter() - t0) / n
    print(f"\nfault plane off: {per_call * 1e9:.0f}ns per fault_point call")
    # generous CI-proof ceiling; the real number is tens of nanoseconds
    assert per_call < 5e-6, f"fault_point off-path costs {per_call*1e6:.2f}us"
