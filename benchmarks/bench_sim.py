"""Simulation-kernel overhead: engine-mediated vs. direct batch replay.

The kernel refactor routed every replay entry point through
:class:`repro.sim.engine.SimulationEngine`.  The engine must be pure
plumbing: timeline merging, sink notification and protocol dispatch may
not add meaningful cost over calling the vectorized chunk fast path
directly.  This benchmark measures both sides on the replay scenarios of
``bench_online.py`` and gates the ratio: on the largest trace the
engine-mediated batch replay (``run_batch``, now a kernel adapter) must
stay within **10%** of a direct ``serve_chunk`` call over the whole
sequence.

It also measures the declarative scenario registry end-to-end (spec ->
build -> engine with sinks), the path ``repro simulate`` and E11 take.
"""

import os
import time

import numpy as np
import pytest

from repro.core.extended_nibble import extended_nibble
from repro.dynamic.online import StaticPlacementManager
from repro.dynamic.sequence import sequence_from_pattern
from repro.network.builders import balanced_tree
from repro.sim.scenario import run_scenario, scenario_spec
from repro.workload.generators import zipf_pattern

QUICK = os.environ.get("BENCH_QUICK", "") == "1"

# replay scenarios (kept in sync with bench_online.py)
SCENARIOS = {
    "small": ((2, 3, 2), 32, 32),
    "large": ((3, 5, 3), 64, 64),
}
_cache = {}


def replay_scenario(name):
    """Build (network, placement, sequence) for a named trace scenario."""
    if name not in _cache:
        dims, n_objects, requests = SCENARIOS[name]
        net = balanced_tree(*dims)
        pattern = zipf_pattern(
            net, n_objects, requests_per_processor=requests, seed=0
        )
        seq = sequence_from_pattern(net, pattern, seed=1)
        placement = extended_nibble(net, pattern).placement
        _cache[name] = (net, placement, seq)
    return _cache[name]


def direct_batch(net, placement, seq):
    """The raw fast path: one serve_chunk call, no kernel in between."""
    manager = StaticPlacementManager(net, placement)
    manager.serve_chunk(seq, 0, len(seq))
    _ = manager.account.congestion
    return manager.account


def engine_batch(net, placement, seq):
    """The same replay through the kernel (run_batch is an engine adapter)."""
    manager = StaticPlacementManager(net, placement)
    manager.run_batch(seq)
    _ = manager.account.congestion
    return manager.account


# --------------------------------------------------------------------------- #
# kernel-vs-direct benchmarks
# --------------------------------------------------------------------------- #
@pytest.mark.benchmark(group="sim-kernel")
def test_direct_batch_small(benchmark):
    net, placement, seq = replay_scenario("small")
    account = benchmark.pedantic(
        direct_batch, args=(net, placement, seq), rounds=3, iterations=1
    )
    assert account.congestion > 0


@pytest.mark.benchmark(group="sim-kernel")
def test_engine_batch_small(benchmark):
    net, placement, seq = replay_scenario("small")
    account = benchmark.pedantic(
        engine_batch, args=(net, placement, seq), rounds=3, iterations=1
    )
    reference = direct_batch(net, placement, seq)
    assert np.array_equal(account.edge_loads, reference.edge_loads)
    assert account.congestion == reference.congestion


@pytest.mark.benchmark(group="sim-kernel")
def test_scenario_registry_storm_small(benchmark):
    """The declarative path end-to-end: spec -> build -> engine + sinks."""
    spec = scenario_spec("storm", seed=0, small=True)
    records = benchmark(run_scenario, spec)
    assert all(rec["repair_consistent"] for rec in records)


def test_kernel_overhead_gate():
    """Gate the headline number of the kernel refactor.

    On the largest trace the engine-mediated batch replay must stay
    within 10% of the direct serve_chunk call.  Quick mode uses the small
    scenario, where both sides finish in about a millisecond and the
    engine's fixed setup cost (timeline merge, result assembly) is a
    visible fraction of the total, so it gates a conservative 50%; the
    machine-independent 10% claim is checked on the large trace.  Both
    sides take best-of-N so one scheduler hiccup cannot fail the gate.
    """
    name = "small" if QUICK else "large"
    ceiling = 1.50 if QUICK else 1.10
    repeats = 5 if QUICK else 3
    net, placement, seq = replay_scenario(name)

    direct = engine = None
    direct_time = engine_time = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        direct = direct_batch(net, placement, seq)
        t1 = time.perf_counter()
        engine = engine_batch(net, placement, seq)
        t2 = time.perf_counter()
        direct_time = min(direct_time, t1 - t0)
        engine_time = min(engine_time, t2 - t1)

    assert np.array_equal(engine.edge_loads, direct.edge_loads)
    assert engine.congestion == direct.congestion
    overhead = engine_time / max(direct_time, 1e-12)
    print(
        f"\nsim kernel [{name}]: {len(seq)} events, direct {direct_time*1e3:.2f}ms, "
        f"engine {engine_time*1e3:.2f}ms -> {overhead:.3f}x"
    )
    assert overhead <= ceiling, (
        f"kernel-mediated replay is {overhead:.2f}x the direct fast path "
        f"(gate: {ceiling:.2f}x)"
    )
