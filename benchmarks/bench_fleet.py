"""Fleet replay: one stacked pass vs. sequential per-strategy replay.

The paper's central experiment shape is comparative -- the same request
timeline replayed under a whole family of placement strategies.  Run
strategy by strategy, a K-strategy scenario pays K timeline decodes, K
chunk aggregations, K LCA passes and K scatters over the *same* network.
:meth:`repro.sim.engine.SimulationEngine.run_fleet` stacks the K cost
accounts as lanes of one :class:`~repro.core.loadstate.StackedLoadState`
and serves every chunk for all strategies at once.

This benchmark measures both sides on an 8-placement static fleet (the
extended-nibble hindsight reference plus the full baseline family) and
gates the headline number: on the largest scenario the stacked pass must
be at least **1.7x** faster than sequential per-strategy replay.  Both
sides time *replay only* -- strategies are freshly built (and their
placement-derived caches warmed) outside the timed region, identically
for both arms -- and take best-of-N so a scheduler hiccup cannot fail
the gate.  Bit-for-bit result equality between the two arms is asserted
on every run (the differential suite in
``tests/properties/test_fleet_parity.py`` covers the full matrix).

The **adaptive-fleet** group does the same for 8 differently-tuned
:class:`~repro.dynamic.online.EdgeCounterManager` lanes: the batched
group path (shared chunk decode and nearest-table build, per-lane
two-phase counter replay) against the pre-batching scalar event loop,
gated at **3x** on the largest scenario and recorded into
``BENCH_history.json`` as ``pr9-adaptive-fleet``.
"""

import os
import time

import numpy as np
import pytest

from repro.core.baselines import (
    full_replication_placement,
    greedy_congestion_placement,
    median_leaf_placement,
    owner_placement,
    random_placement,
)
from repro.core.extended_nibble import extended_nibble
from repro.dynamic.online import EdgeCounterManager, StaticPlacementManager
from repro.dynamic.sequence import sequence_from_pattern
from repro.network.builders import balanced_tree
from repro.sim.engine import SimulationEngine
from repro.workload.generators import zipf_pattern

QUICK = os.environ.get("BENCH_QUICK", "") == "1"

# replay scenarios (dims kept in sync with bench_online.py / bench_sim.py)
SCENARIOS = {
    "small": ((2, 3, 2), 32, 32),
    "large": ((3, 5, 3), 64, 64),
}
_cache = {}


def fleet_scenario(name):
    """Build (network, sequence, placements) for an 8-strategy fleet."""
    if name not in _cache:
        dims, n_objects, requests = SCENARIOS[name]
        net = balanced_tree(*dims)
        pattern = zipf_pattern(
            net, n_objects, requests_per_processor=requests, seed=0
        )
        seq = sequence_from_pattern(net, pattern, seed=1)
        placements = [
            extended_nibble(net, pattern).placement,
            owner_placement(net, pattern),
            median_leaf_placement(net, pattern),
            greedy_congestion_placement(net, pattern),
            full_replication_placement(net, pattern),
            random_placement(net, pattern, seed=0),
            random_placement(net, pattern, seed=1),
            random_placement(net, pattern, seed=2),
        ]
        _cache[name] = (net, seq, placements)
    return _cache[name]


def build_managers(name):
    """Fresh static managers for every placement, caches prewarmed.

    Manager construction and the placement-derived caches (nearest-copy
    tables, write-broadcast Steiner edge ids) are deliberately outside the
    timed region: both arms replay with identically warm strategies, so
    the measured ratio isolates the replay architecture.
    """
    net, seq, placements = fleet_scenario(name)
    managers = [StaticPlacementManager(net, pl) for pl in placements]
    for manager in managers:
        manager._nearest_tables_bulk(range(seq.n_objects))
        for obj in range(seq.n_objects):
            manager._steiner_edge_ids_for(obj, manager.account.state)
    return managers


def sequential_replay(managers, seq):
    """The pre-fleet path: one full engine run per strategy."""
    return [SimulationEngine(manager).run(seq) for manager in managers]


def fleet_replay(managers, seq):
    """The stacked path: one timeline decode, K lanes, shared scatters."""
    return SimulationEngine.run_fleet(managers, seq)


def _assert_fleet_parity(seq_results, fleet_results):
    for a, b in zip(seq_results, fleet_results):
        assert np.array_equal(a.account.edge_loads, b.account.edge_loads)
        assert a.account.congestion == b.account.congestion
        assert a.account.service_units == b.account.service_units
        assert a.account.management_units == b.account.management_units


# --------------------------------------------------------------------------- #
# sequential-vs-fleet benchmarks
# --------------------------------------------------------------------------- #
@pytest.mark.benchmark(group="fleet-replay")
def test_sequential_fleet_small(benchmark):
    net, seq, _ = fleet_scenario("small")
    results = benchmark.pedantic(
        sequential_replay,
        setup=lambda: ((build_managers("small"), seq), {}),
        rounds=3,
        iterations=1,
    )
    assert results[0].account.congestion > 0


@pytest.mark.benchmark(group="fleet-replay")
def test_fleet_replay_small(benchmark):
    net, seq, _ = fleet_scenario("small")
    results = benchmark.pedantic(
        fleet_replay,
        setup=lambda: ((build_managers("small"), seq), {}),
        rounds=3,
        iterations=1,
    )
    _assert_fleet_parity(sequential_replay(build_managers("small"), seq), results)


@pytest.mark.benchmark(group="fleet-replay")
@pytest.mark.skipif(QUICK, reason="large fleet scenario is skipped in quick mode")
def test_sequential_fleet_large(benchmark):
    net, seq, _ = fleet_scenario("large")
    results = benchmark.pedantic(
        sequential_replay,
        setup=lambda: ((build_managers("large"), seq), {}),
        rounds=3,
        iterations=1,
    )
    assert results[0].account.congestion > 0


@pytest.mark.benchmark(group="fleet-replay")
@pytest.mark.skipif(QUICK, reason="large fleet scenario is skipped in quick mode")
def test_fleet_replay_large(benchmark):
    net, seq, _ = fleet_scenario("large")
    results = benchmark.pedantic(
        fleet_replay,
        setup=lambda: ((build_managers("large"), seq), {}),
        rounds=3,
        iterations=1,
    )
    _assert_fleet_parity(sequential_replay(build_managers("large"), seq), results)


def test_fleet_speedup_gate():
    """Gate the headline number of the fleet engine.

    An 8-strategy stacked replay of the largest scenario must beat
    sequential per-strategy replay by at least 1.7x.  This is a
    machine-independent claim, so it runs on the large scenario even in
    quick mode (the scenario builds in about a second); both sides take
    best-of-N over identically warmed fresh managers.

    The floor was 3.0x when the sequential side spent most of its time
    in the 2D ``np.unique`` chunk aggregation; the compiled-kernel work
    (shared int64-key aggregation + compiled apply/rescan) made the
    *sequential* path ~5-8x faster, so the stacked-vs-sequential ratio
    legitimately compressed (~2.0x numpy, ~2.6x compiled measured).
    Absolute fleet replay time is gated by the baseline regression
    check, not this ratio.
    """
    floor = 1.7
    repeats = 3
    net, seq, _ = fleet_scenario("large")

    seq_results = fleet_results = None
    seq_time = fleet_time = float("inf")
    for _ in range(repeats):
        managers = build_managers("large")
        t0 = time.perf_counter()
        seq_results = sequential_replay(managers, seq)
        t1 = time.perf_counter()
        managers = build_managers("large")
        t2 = time.perf_counter()
        fleet_results = fleet_replay(managers, seq)
        t3 = time.perf_counter()
        seq_time = min(seq_time, t1 - t0)
        fleet_time = min(fleet_time, t3 - t2)

    _assert_fleet_parity(seq_results, fleet_results)
    speedup = seq_time / max(fleet_time, 1e-12)
    print(
        f"\nfleet replay [large]: {len(seq)} events x 8 strategies, "
        f"sequential {seq_time*1e3:.1f}ms, fleet {fleet_time*1e3:.1f}ms "
        f"-> {speedup:.2f}x"
    )
    assert speedup >= floor, (
        f"stacked fleet replay only {speedup:.2f}x faster than sequential "
        f"per-strategy replay (gate: {floor:.1f}x)"
    )


# --------------------------------------------------------------------------- #
# adaptive fleet: batched counter replay vs. the scalar event loop
# --------------------------------------------------------------------------- #
def adaptive_managers(name):
    """Eight differently-tuned edge-counter lanes over one scenario."""
    net, seq, _ = fleet_scenario(name)
    return [
        EdgeCounterManager(
            net,
            seq.n_objects,
            object_size=4 + (k % 4) * 2,
            invalidation_patience=2 + k % 3,
        )
        for k in range(8)
    ]


def lane_by_lane_replay(managers, seq):
    """The pre-batching path: the scalar event loop, one lane at a time."""
    for manager in managers:
        for event in seq.events:
            manager.serve(event)
    return managers


def adaptive_fleet_replay(managers, seq):
    """The batched group hook: shared decode and nearest tables, per-lane
    two-phase counter replay."""
    return SimulationEngine.run_fleet(managers, seq)


def _assert_adaptive_parity(scalar_managers, fleet_results):
    # both sides expose ``.account``; the fleet side wraps its manager in
    # a SimulationResult, the scalar side *is* the manager list
    _assert_fleet_parity(scalar_managers, fleet_results)
    for manager, result in zip(scalar_managers, fleet_results):
        for obj in range(manager.n_objects):
            assert manager.holders(obj) == result.strategy.holders(obj)


@pytest.mark.benchmark(group="adaptive-fleet")
def test_adaptive_lane_by_lane_small(benchmark):
    net, seq, _ = fleet_scenario("small")
    results = benchmark.pedantic(
        lane_by_lane_replay,
        setup=lambda: ((adaptive_managers("small"), seq), {}),
        rounds=3,
        iterations=1,
    )
    assert results[0].account.congestion > 0


@pytest.mark.benchmark(group="adaptive-fleet")
def test_adaptive_fleet_small(benchmark):
    net, seq, _ = fleet_scenario("small")
    results = benchmark.pedantic(
        adaptive_fleet_replay,
        setup=lambda: ((adaptive_managers("small"), seq), {}),
        rounds=3,
        iterations=1,
    )
    _assert_adaptive_parity(
        lane_by_lane_replay(adaptive_managers("small"), seq), results
    )


@pytest.mark.benchmark(group="adaptive-fleet")
@pytest.mark.skipif(QUICK, reason="large fleet scenario is skipped in quick mode")
def test_adaptive_fleet_large(benchmark):
    net, seq, _ = fleet_scenario("large")
    results = benchmark.pedantic(
        adaptive_fleet_replay,
        setup=lambda: ((adaptive_managers("large"), seq), {}),
        rounds=3,
        iterations=1,
    )
    assert results[0].account.congestion > 0


def test_adaptive_fleet_speedup_gate():
    """Gate the adaptive-fleet headline number.

    Eight differently-tuned :class:`EdgeCounterManager` lanes replaying
    the largest scenario through the batched group hook must beat the
    pre-batching scalar event loop by at least 3x.  As with the static
    gate, both arms use fresh managers and best-of-N timing, and
    bit-for-bit equality of accounts *and* final holder sets is asserted
    on every run (the exactness matrix lives in
    ``tests/properties/test_fleet_parity.py``).
    """
    floor = 3.0
    repeats = 3
    net, seq, _ = fleet_scenario("large")

    scalar_results = fleet_results = None
    scalar_time = fleet_time = float("inf")
    for _ in range(repeats):
        managers = adaptive_managers("large")
        t0 = time.perf_counter()
        scalar_results = lane_by_lane_replay(managers, seq)
        t1 = time.perf_counter()
        managers = adaptive_managers("large")
        t2 = time.perf_counter()
        fleet_results = adaptive_fleet_replay(managers, seq)
        t3 = time.perf_counter()
        scalar_time = min(scalar_time, t1 - t0)
        fleet_time = min(fleet_time, t3 - t2)

    _assert_adaptive_parity(scalar_results, fleet_results)
    speedup = scalar_time / max(fleet_time, 1e-12)
    print(
        f"\nadaptive fleet [large]: {len(seq)} events x 8 lanes, "
        f"scalar {scalar_time*1e3:.1f}ms, fleet {fleet_time*1e3:.1f}ms "
        f"-> {speedup:.2f}x"
    )
    assert speedup >= floor, (
        f"batched adaptive fleet only {speedup:.2f}x faster than the "
        f"lane-by-lane scalar loop (gate: {floor:.1f}x)"
    )
