"""E3 -- Theorem 3.1: the nibble strategy's per-edge optimality and cost.

Checks the three claims of Theorem 3.1 on random instances (connected copy
set, κ_x edge bound, per-edge load optimality used as a congestion lower
bound) and measures the nibble's linear-time behaviour.
"""

import pytest

from repro.analysis.experiments import experiment_nibble_optimality
from repro.core.nibble import nibble_placement
from repro.network.builders import balanced_tree
from repro.workload.generators import uniform_pattern


@pytest.mark.benchmark(group="E3-nibble")
def test_e3_nibble_invariants(benchmark, report_table):
    records = benchmark(experiment_nibble_optimality, (0, 1, 2, 3), 8)
    report_table("E3: nibble placement invariants", records)
    assert all(rec["kappa_bound_holds"] for rec in records)
    assert all(rec["connected"] for rec in records)


@pytest.mark.benchmark(group="E3-nibble")
@pytest.mark.parametrize("n_objects", [32, 128, 512])
def test_e3_nibble_runtime(benchmark, n_objects):
    """The nibble placement is linear in |X| for a fixed network."""
    net = balanced_tree(2, 3, 2)
    pattern = uniform_pattern(net, n_objects, requests_per_processor=8, seed=0)
    result = benchmark(nibble_placement, net, pattern)
    assert result.placement.n_objects == n_objects
