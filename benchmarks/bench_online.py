"""E9 (extension) -- online data management vs. the hindsight-static placement.

The paper's related-work section discusses dynamic strategies that adapt the
placement while serving requests.  This benchmark exercises the extension
subpackage :mod:`repro.dynamic`: it serves request sequences online with the
adaptive edge-counter strategy and compares congestion and total load against
the hindsight-static extended-nibble placement (the strongest efficiently
computable reference).

Expected shape: on stationary mixed workloads the adaptive strategy stays
within a small constant factor of the hindsight-static reference; on
phase-changing workloads adaptation recovers most of the gap to a placement
chosen with full hindsight; on rarely-touched read-mostly objects the online
strategy pays the classic rent-or-buy penalty.
"""

import pytest

from repro.dynamic.evaluate import empirical_competitive_ratio, evaluate_strategies
from repro.dynamic.sequence import phase_change_sequence, sequence_from_pattern
from repro.network.builders import balanced_tree
from repro.workload.generators import uniform_pattern
from repro.workload.traces import producer_consumer_trace


@pytest.mark.benchmark(group="E9-online")
def test_e9_stationary_workload(benchmark, report_table):
    net = balanced_tree(2, 2, 2)
    pattern = uniform_pattern(net, 24, requests_per_processor=24, seed=0)
    seq = sequence_from_pattern(net, pattern, seed=1)

    records = benchmark(evaluate_strategies, net, seq, None, 4)
    report_table("E9: online strategies, stationary workload", [r.as_dict() for r in records])
    by_name = {r.strategy: r for r in records}
    assert by_name["edge-counter"].congestion <= 6 * by_name["hindsight-static"].congestion


@pytest.mark.benchmark(group="E9-online")
def test_e9_phase_change_workload(benchmark, report_table):
    net = balanced_tree(2, 2, 2)
    phases = [
        producer_consumer_trace(net, n_channels=12, items_per_channel=16, seed=s)
        for s in (0, 7)
    ]
    seq = phase_change_sequence(net, phases, seed=1)

    records = benchmark(evaluate_strategies, net, seq, None, 3)
    report_table("E9: online strategies, phase-changing workload", [r.as_dict() for r in records])
    by_name = {r.strategy: r for r in records}
    # adapting never costs much more than refusing to adapt
    assert by_name["edge-counter"].total_load <= 1.5 * by_name["first-touch"].total_load


@pytest.mark.benchmark(group="E9-online")
@pytest.mark.parametrize("object_size", [1, 4, 16])
def test_e9_rent_or_buy_threshold(benchmark, object_size):
    """Sweep the replication threshold (rent-or-buy trade-off)."""
    net = balanced_tree(2, 2, 2)
    pattern = uniform_pattern(net, 16, requests_per_processor=24, seed=2)
    seq = sequence_from_pattern(net, pattern, seed=3)

    ratio = benchmark(
        empirical_competitive_ratio, net, seq, object_size, "total_load"
    )
    print(f"\nE9 rent-or-buy: object_size={object_size} total-load ratio={ratio:.2f}")
    assert ratio >= 1.0 - 1e-9
