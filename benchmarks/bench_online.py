"""E9 -- online streaming replay: event loop vs. incremental vs. batch.

The dynamic model (Section 1.3 of the paper, following [MMVW97]/[MVW99])
serves request sequences online.  Since the load-state refactor all replay
layers charge into the incremental :class:`repro.core.loadstate.LoadState`
engine; this benchmark measures the three replay modes against each other
on the streaming read pattern (congestion sampled after every event):

* **event/reference** -- the retained pre-refactor scalar account
  (``_ReferenceOnlineCostAccount``): Python loops per path, full edge/bus
  rescans per congestion read;
* **event/incremental** -- the same event loop on the incremental engine
  (O(path) scatter per charge, lazily-repaired running max per read);
* **batch** -- whole-sequence chunks through the path-incidence operator
  (exact for the non-adapting static reference).

All three modes produce bit-for-bit identical loads; the property tests in
``tests/properties/test_loadstate_properties.py`` assert that, and the
assertions here double-check it on the benchmark scenarios.  The speedup
gate at the bottom enforces the headline number: incremental replay at
least 20x faster than the pre-refactor event loop on the largest trace.

It also keeps the strategy-level E9 measurements (adaptive edge-counter vs
hindsight-static) that feed EXPERIMENTS.md.
"""

import os
import time

import numpy as np
import pytest

from repro.core.extended_nibble import extended_nibble
from repro.dynamic.evaluate import empirical_competitive_ratio, evaluate_strategies
from repro.dynamic.online import StaticPlacementManager, _ReferenceOnlineCostAccount
from repro.dynamic.sequence import phase_change_sequence, sequence_from_pattern
from repro.network.builders import balanced_tree
from repro.workload.generators import uniform_pattern, zipf_pattern
from repro.workload.traces import producer_consumer_trace

QUICK = os.environ.get("BENCH_QUICK", "") == "1"

# replay scenarios: (tree dims, n_objects, requests per processor)
SCENARIOS = {
    "small": ((2, 3, 2), 32, 32),
    "large": ((3, 5, 3), 64, 64),
}
_cache = {}


def replay_scenario(name):
    """Build (network, placement, sequence) for a named trace scenario."""
    if name not in _cache:
        dims, n_objects, requests = SCENARIOS[name]
        net = balanced_tree(*dims)
        pattern = zipf_pattern(
            net, n_objects, requests_per_processor=requests, seed=0
        )
        seq = sequence_from_pattern(net, pattern, seed=1)
        placement = extended_nibble(net, pattern).placement
        _cache[name] = (net, placement, seq)
    return _cache[name]


def stream_replay(net, placement, seq, account=None):
    """Event-by-event replay sampling the congestion after every event."""
    manager = StaticPlacementManager(net, placement, account=account)
    for event in seq:
        manager.serve(event)
        _ = manager.account.congestion
    return manager.account


def batch_replay(net, placement, seq):
    """Whole-sequence batch replay through the path-incidence operator."""
    manager = StaticPlacementManager(net, placement)
    manager.run_batch(seq)
    _ = manager.account.congestion
    return manager.account


# --------------------------------------------------------------------------- #
# replay-mode benchmarks
# --------------------------------------------------------------------------- #
@pytest.mark.benchmark(group="E9-replay")
def test_replay_event_reference_small(benchmark):
    net, placement, seq = replay_scenario("small")
    account = benchmark.pedantic(
        stream_replay,
        args=(net, placement, seq),
        kwargs={"account": _ReferenceOnlineCostAccount(net)},
        rounds=3,
        iterations=1,
    )
    assert account.congestion > 0


@pytest.mark.benchmark(group="E9-replay")
def test_replay_event_incremental_small(benchmark):
    net, placement, seq = replay_scenario("small")
    account = benchmark.pedantic(
        stream_replay, args=(net, placement, seq), rounds=3, iterations=1
    )
    reference = stream_replay(
        net, placement, seq, account=_ReferenceOnlineCostAccount(net)
    )
    assert np.array_equal(account.edge_loads, reference.edge_loads)
    assert account.congestion == reference.congestion


@pytest.mark.benchmark(group="E9-replay")
def test_replay_batch_small(benchmark):
    net, placement, seq = replay_scenario("small")
    account = benchmark.pedantic(
        batch_replay, args=(net, placement, seq), rounds=3, iterations=1
    )
    eventwise = stream_replay(net, placement, seq)
    assert np.array_equal(account.edge_loads, eventwise.edge_loads)
    assert account.service_units == eventwise.service_units


@pytest.mark.benchmark(group="E9-replay")
@pytest.mark.skipif(QUICK, reason="large trace scenario is skipped in quick mode")
def test_replay_event_incremental_large(benchmark):
    net, placement, seq = replay_scenario("large")
    account = benchmark.pedantic(
        stream_replay, args=(net, placement, seq), rounds=2, iterations=1
    )
    assert account.congestion > 0


@pytest.mark.benchmark(group="E9-replay")
@pytest.mark.skipif(QUICK, reason="large trace scenario is skipped in quick mode")
def test_replay_batch_large(benchmark):
    net, placement, seq = replay_scenario("large")
    account = benchmark.pedantic(
        batch_replay, args=(net, placement, seq), rounds=2, iterations=1
    )
    eventwise = stream_replay(net, placement, seq)
    assert np.array_equal(account.edge_loads, eventwise.edge_loads)


def test_incremental_speedup_over_event_loop():
    """Gate the headline number of the load-state refactor.

    On the largest trace scenario the incremental engine must replay (with
    per-event congestion reads) at least 20x faster than the retained
    pre-refactor event loop.  Quick mode uses the small scenario, where the
    fixed numpy call overhead dominates, and gates a conservative 2x.
    """
    name = "small" if QUICK else "large"
    floor = 2.0 if QUICK else 20.0
    # quick mode compares millisecond-scale runs on possibly contended CI
    # runners: take best-of-3 per side so one scheduler hiccup cannot fail
    # the gate; the large scenario runs for seconds and needs no repeats
    repeats = 3 if QUICK else 1
    net, placement, seq = replay_scenario(name)

    reference = incremental = None
    ref_time = inc_time = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        reference = stream_replay(
            net, placement, seq, account=_ReferenceOnlineCostAccount(net)
        )
        t1 = time.perf_counter()
        incremental = stream_replay(net, placement, seq)
        t2 = time.perf_counter()
        ref_time = min(ref_time, t1 - t0)
        inc_time = min(inc_time, t2 - t1)

    assert np.array_equal(incremental.edge_loads, reference.edge_loads)
    assert incremental.congestion == reference.congestion
    speedup = ref_time / max(inc_time, 1e-12)
    print(
        f"\nE9 replay [{name}]: {len(seq)} events, reference {ref_time:.3f}s, "
        f"incremental {inc_time:.3f}s -> {speedup:.1f}x"
    )
    assert speedup >= floor, (
        f"incremental replay only {speedup:.1f}x faster than the "
        f"pre-refactor event loop (gate: {floor:.0f}x)"
    )


# --------------------------------------------------------------------------- #
# strategy-level E9 measurements (feed EXPERIMENTS.md)
# --------------------------------------------------------------------------- #
@pytest.mark.benchmark(group="E9-online")
def test_e9_stationary_workload(benchmark, report_table):
    net = balanced_tree(2, 2, 2)
    pattern = uniform_pattern(net, 24, requests_per_processor=24, seed=0)
    seq = sequence_from_pattern(net, pattern, seed=1)

    records = benchmark(evaluate_strategies, net, seq, None, 4)
    report_table("E9: online strategies, stationary workload", [r.as_dict() for r in records])
    by_name = {r.strategy: r for r in records}
    assert by_name["edge-counter"].congestion <= 6 * by_name["hindsight-static"].congestion


@pytest.mark.benchmark(group="E9-online")
def test_e9_phase_change_workload(benchmark, report_table):
    net = balanced_tree(2, 2, 2)
    phases = [
        producer_consumer_trace(net, n_channels=12, items_per_channel=16, seed=s)
        for s in (0, 7)
    ]
    seq = phase_change_sequence(net, phases, seed=1)

    records = benchmark(evaluate_strategies, net, seq, None, 3)
    report_table("E9: online strategies, phase-changing workload", [r.as_dict() for r in records])
    by_name = {r.strategy: r for r in records}
    # adapting never costs much more than refusing to adapt
    assert by_name["edge-counter"].total_load <= 1.5 * by_name["first-touch"].total_load


@pytest.mark.benchmark(group="E9-online")
@pytest.mark.parametrize("object_size", [1, 4, 16])
def test_e9_rent_or_buy_threshold(benchmark, object_size):
    """Sweep the replication threshold (rent-or-buy trade-off)."""
    net = balanced_tree(2, 2, 2)
    pattern = uniform_pattern(net, 16, requests_per_processor=24, seed=2)
    seq = sequence_from_pattern(net, pattern, seed=3)

    ratio = benchmark(
        empirical_competitive_ratio, net, seq, object_size, "total_load"
    )
    print(f"\nE9 rent-or-buy: object_size={object_size} total-load ratio={ratio:.2f}")
    assert ratio >= 1.0 - 1e-9
