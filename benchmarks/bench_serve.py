"""Streaming service tier: EngineStream overhead and socket throughput.

The streaming placement service must not give back the chunk fast path:

* **stream-vs-offline** -- feeding the engine through
  :class:`~repro.sim.engine.EngineStream` in ragged micro-batches is
  gated against the offline :class:`SimulationEngine` walking the same
  workload in one call.  Both sides share the span grid, so the delta is
  pure plumbing (batch validation, regridding, ack bookkeeping).
* **served socket throughput** -- a loopback ``PlacementServer`` driven
  by the loadgen at maximum rate.  The events/sec and latency
  percentiles are printed and recorded into ``BENCH_history.json`` by
  the CI bench job (label ``pr8-serve``), so service throughput is
  visible PR-over-PR.

Every benchmark asserts the served results equal the offline replay
(invariant 10) before trusting its timing.
"""

import os
import time

import numpy as np
import pytest

from repro.dynamic.online import EdgeCounterManager
from repro.dynamic.sequence import sequence_from_pattern
from repro.network.builders import balanced_tree
from repro.serve import PlacementServer, ServerThread
from repro.serve.loadgen import loadgen
from repro.sim.engine import EngineStream, SimulationEngine
from repro.sim.scenario import scenario_spec
from repro.workload.generators import zipf_pattern

QUICK = os.environ.get("BENCH_QUICK", "") == "1"

N_OBJECTS = 32
BATCH_SIZES = (13, 50, 7, 120, 3, 90, 200)

_cache = {}


def stream_workload():
    """A mid-size adaptive replay scenario (shared by both sides)."""
    if "workload" not in _cache:
        net = balanced_tree(3, 4, 3)
        pattern = zipf_pattern(
            net, N_OBJECTS, requests_per_processor=16, seed=0
        )
        seq = sequence_from_pattern(net, pattern, seed=1)
        _cache["workload"] = (net, seq)
    return _cache["workload"]


def run_offline(net, seq, chunk_size=256):
    strategy = EdgeCounterManager(net, N_OBJECTS)
    return SimulationEngine(strategy, chunk_size=chunk_size).run(seq)


def run_streamed(net, seq, chunk_size=256):
    strategy = EdgeCounterManager(net, N_OBJECTS)
    stream = EngineStream(strategy, chunk_size=chunk_size)
    events = seq.events
    position = cursor = 0
    while position < len(events):
        stop = min(position + BATCH_SIZES[cursor % len(BATCH_SIZES)], len(events))
        cursor += 1
        stream.serve(events[position:stop])
        position = stop
    return stream.finish()


@pytest.mark.benchmark(group="serve")
def test_offline_replay_reference(benchmark):
    net, seq = stream_workload()
    result = benchmark.pedantic(
        run_offline, args=(net, seq), rounds=3, iterations=1
    )
    assert result.served == len(seq)


@pytest.mark.benchmark(group="serve")
def test_streamed_replay(benchmark):
    net, seq = stream_workload()
    result = benchmark.pedantic(
        run_streamed, args=(net, seq), rounds=3, iterations=1
    )
    offline = run_offline(net, seq)
    assert result.served == offline.served == len(seq)
    assert np.array_equal(result.account.edge_loads, offline.account.edge_loads)
    assert result.account.congestion == offline.account.congestion


def test_stream_overhead_gate():
    """Micro-batched streaming must stay near the offline chunk fast path.

    The stream re-cuts each batch at the offline span grid and validates
    every batch, so some overhead is honest; the gate keeps it bounded
    (2x on this mid-size trace; quick mode relaxes to 3x because the
    absolute times shrink toward the fixed setup cost).
    """
    ceiling = 3.0 if QUICK else 2.0
    net, seq = stream_workload()
    offline_time = streamed_time = float("inf")
    offline = streamed = None
    for _ in range(3):
        t0 = time.perf_counter()
        offline = run_offline(net, seq)
        t1 = time.perf_counter()
        streamed = run_streamed(net, seq)
        t2 = time.perf_counter()
        offline_time = min(offline_time, t1 - t0)
        streamed_time = min(streamed_time, t2 - t1)
    assert np.array_equal(
        streamed.account.edge_loads, offline.account.edge_loads
    )
    overhead = streamed_time / max(offline_time, 1e-12)
    print(
        f"\nserve stream: {len(seq)} events, offline {offline_time*1e3:.2f}ms, "
        f"streamed {streamed_time*1e3:.2f}ms -> {overhead:.3f}x"
    )
    assert overhead <= ceiling, (
        f"streamed replay is {overhead:.2f}x the offline fast path "
        f"(gate: {ceiling:.2f}x)"
    )


@pytest.mark.benchmark(group="serve")
def test_served_socket_throughput(benchmark):
    """End-to-end loopback throughput of the full service stack."""
    spec = scenario_spec("zipf", seed=0, small=QUICK)
    from repro.serve.loadgen import workload_from_spec

    events, _ = workload_from_spec(spec)
    repeat = 2 if QUICK else 4

    def served_run():
        server = PlacementServer(spec, batch_size=512, max_sessions=1)
        with ServerThread(server) as (host, port):
            return loadgen(host, port, events, batch=128, repeat=repeat)

    stats = benchmark.pedantic(served_run, rounds=3, iterations=1)
    assert stats["summary"]["n_events"] == repeat * len(events)
    latency = stats["latency_ms"]
    print(
        f"\nserve socket: {stats['summary']['n_events']} events at "
        f"{stats['events_per_sec']:.0f} ev/s, latency p50 "
        f"{latency['p50']:.2f}ms p99 {latency['p99']:.2f}ms"
    )
    assert stats["events_per_sec"] > 0


def test_served_equals_offline_with_load():
    """The throughput path itself honors invariant 10 (spot check)."""
    spec = scenario_spec("zipf", seed=0, small=True)
    from repro.serve.loadgen import workload_from_spec
    from repro.serve.recorder import replay_recording

    events, mutations = workload_from_spec(spec)
    import tempfile
    from pathlib import Path

    with tempfile.TemporaryDirectory() as tmp:
        server = PlacementServer(
            spec, batch_size=256, max_sessions=1, record_dir=tmp
        )
        with ServerThread(server) as (host, port):
            stats = loadgen(host, port, events, mutations, batch=32)
        (recording,) = Path(tmp).glob("session-*.jsonl")
        replayed, served = replay_recording(recording)
    assert served == stats["summary"]
    assert replayed == served
