"""E2 -- Theorem 2.1: the PARTITION reduction and exact-solver cost growth.

Reproduces the NP-hardness construction: for random YES and deterministic NO
PARTITION instances, a placement of congestion at most ``4k`` exists exactly
when the instance is solvable.  The second benchmark records how fast the
exact branch-and-bound blows up with the number of objects on the gadget --
the practical face of NP-hardness.
"""

import pytest

from repro.analysis.experiments import experiment_hardness_reduction
from repro.core.optimal import optimal_nonredundant
from repro.hardness.partition import PartitionInstance
from repro.hardness.reduction import build_reduction_instance, verify_reduction


@pytest.mark.benchmark(group="E2-hardness")
def test_e2_reduction_equivalence(benchmark, report_table):
    records = benchmark(
        experiment_hardness_reduction, (3, 4, 5), 2, 0
    )
    report_table("E2: PARTITION <-> placement decision", records)
    assert all(rec["equivalence"] for rec in records)
    assert {rec["partition_solvable"] for rec in records} == {True, False}


@pytest.mark.benchmark(group="E2-hardness")
@pytest.mark.parametrize("n_items", [2, 4, 6])
def test_e2_exact_solver_growth(benchmark, n_items):
    """Search-tree size of the exact solver on the gadget as |X| grows."""
    sizes = tuple([2] * n_items)
    instance = build_reduction_instance(PartitionInstance(sizes))

    def solve():
        return optimal_nonredundant(instance.network, instance.pattern)

    result = benchmark(solve)
    print(
        f"\nE2 growth: n_items={len(sizes)} explored={result.explored} "
        f"optimal={result.congestion}"
    )
    assert result.congestion <= instance.threshold + 1e-9  # balanced instances


@pytest.mark.benchmark(group="E2-hardness")
def test_e2_single_reduction_verification(benchmark):
    report = benchmark(verify_reduction, PartitionInstance((4, 3, 2, 2, 1)))
    assert report.equivalence_holds
