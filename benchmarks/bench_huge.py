"""Huge tier: 10^5-leaf substrate build, memory ceiling, compiled replay gate.

The memory-scaled substrate (int32 CSR incidence + lifting tables,
blocked distance computation) and the compiled kernel backends exist so
the replay stack handles million-entry path tables.  This module pins
both claims on a 10^5-processor network:

* **build + memory** -- constructing the full substrate (rooted view,
  path matrix, load state) must stay under an explicit byte ceiling,
  measured deterministically via the ``memory_bytes()`` audit hooks
  (RSS is printed for information only: it is allocator- and
  platform-noisy, the nbytes ceiling is the gate);
* **compiled replay gate** -- the replay inner loop (batched pair-path
  charge, fused load apply, running-max congestion) under the compiled
  backend must beat the numpy reference by at least **5x** on this
  substrate, with bit-for-bit identical results.

Run with ``pytest benchmarks/bench_huge.py --huge``; the tier is skipped
entirely without the flag (the build takes seconds, not milliseconds).
CI records the benchmark medians into ``BENCH_history.json`` via
``scripts/bench_history.py``.
"""

import os
import resource
import time

import numpy as np
import pytest

from repro.core import kernels
from repro.core.loadstate import LoadState
from repro.network.builders import balanced_tree

pytestmark = pytest.mark.huge

QUICK = os.environ.get("BENCH_QUICK", "") == "1"

# 2^11 leaf buses x 50 processors = 102,400 leaves; 4,095 buses; the CSR
# root-path table holds ~1.3M int32 entries (leaf depth 12).
HUGE_DIMS = (2, 12, 50)

#: Deterministic substrate ceiling (pm + load state, shared arrays
#: deduplicated).  The int32 tables measure ~31 MiB here; the pre-shrink
#: int64 substrate would not fit this budget.
MEMORY_CEILING_BYTES = 48 * 1024 * 1024

SPEEDUP_FLOOR = 5.0

_cache = {}


def huge_substrate():
    """Build (network, path matrix, fresh load state) once per session."""
    if "substrate" not in _cache:
        net = balanced_tree(*HUGE_DIMS)
        pm = net.rooted().path_matrix()
        _cache["substrate"] = (net, pm)
    net, pm = _cache["substrate"]
    return net, pm, LoadState(net)


def replay_batches(pm, rng, n_batches, batch):
    """Seeded random weighted request batches over the processor leaves."""
    procs = np.asarray(pm.rooted.network.processors)
    batches = []
    for _ in range(n_batches):
        u = rng.choice(procs, size=batch)
        v = rng.choice(procs, size=batch)
        w = rng.integers(1, 5, size=batch).astype(np.float64)
        batches.append((u, v, w))
    return batches


def replay_pass(pm, state, batches):
    """The serve-chunk inner loop: charge pair paths, apply, rescan."""
    for u, v, w in batches:
        edge_loads = pm.pair_edge_loads(u, v, w)
        state.apply_edge_loads(edge_loads)
    return state.congestion


def test_huge_build_under_memory_ceiling():
    t0 = time.perf_counter()
    net, pm, state = huge_substrate()
    build_s = time.perf_counter() - t0

    assert net.n_processors >= 10**5
    total = int(pm._rp_edges.size)
    assert total >= 10**6, "huge scenario must exercise a million-entry CSR"

    substrate_bytes = state.memory_bytes()
    assert substrate_bytes >= pm.memory_bytes()  # shares + extends the pm
    rss_kib = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    print(
        f"\nhuge build: {net.n_processors} processors, {net.n_nodes} nodes, "
        f"{total} CSR entries in {build_s:.2f}s; substrate "
        f"{substrate_bytes / 2**20:.1f} MiB (ceiling "
        f"{MEMORY_CEILING_BYTES / 2**20:.0f} MiB), ru_maxrss "
        f"{rss_kib / 1024:.0f} MiB (informational)"
    )
    assert substrate_bytes <= MEMORY_CEILING_BYTES, (
        f"substrate holds {substrate_bytes} bytes, over the "
        f"{MEMORY_CEILING_BYTES}-byte ceiling of the huge tier"
    )

    # int32 dtype shrink is what makes the ceiling: spot-check the tables
    for attr in ("_up", "_rp_edges", "_rp_nodes", "_edge_u", "_edge_v"):
        assert getattr(pm, attr).dtype == kernels.INDEX_DTYPE


def test_huge_blocked_distances():
    """The blocked distance path serves batches far beyond any dense cache."""
    net, pm, _ = huge_substrate()
    rng = np.random.default_rng(7)
    procs = np.asarray(net.processors)
    u = rng.choice(procs, size=2 * pm._DIST_BLOCK // 1024)
    v = rng.choice(procs, size=u.size)
    dist = pm.distances(u, v)
    depth = pm.depths
    anc = pm.lca(u, v)
    assert np.array_equal(dist, depth[u] + depth[v] - 2 * depth[anc])


@pytest.mark.benchmark(group="huge-replay")
def test_huge_replay_compiled(benchmark):
    """Benchmark-recorded compiled replay pass over the huge substrate."""
    net, pm, _ = huge_substrate()
    batches = replay_batches(pm, np.random.default_rng(0), 4, 4096)
    congestion = benchmark.pedantic(
        lambda state: replay_pass(pm, state, batches),
        setup=lambda: ((LoadState(net),), {}),
        rounds=3 if QUICK else 7,
        iterations=1,
    )
    assert congestion > 0


@pytest.mark.benchmark(group="huge-replay")
def test_huge_replay_numpy_reference(benchmark):
    """The numpy-reference side of the same pass (the RESULTS.md ratio
    divides this median by the compiled one to show the jump)."""
    net, pm, _ = huge_substrate()
    batches = replay_batches(pm, np.random.default_rng(0), 4, 4096)

    def run(state):
        with kernels.use_backend("numpy"):
            return replay_pass(pm, state, batches)

    congestion = benchmark.pedantic(
        run,
        setup=lambda: ((LoadState(net),), {}),
        rounds=2 if QUICK else 5,
        iterations=1,
    )
    assert congestion > 0


def test_huge_compiled_vs_numpy_gate():
    """The compiled backend must beat numpy >= 5x on the huge replay pass.

    Results are asserted bit-for-bit identical first (invariant 9); the
    timing takes best-of-N on both sides so a scheduler hiccup cannot
    fail the gate.
    """
    compiled = [b for b in kernels.available_backends() if b != "numpy"]
    if not compiled:
        pytest.skip("no compiled kernel backend available for the gate")
    backend = kernels.active_backend()
    if backend == "numpy":
        backend = compiled[0]

    net, pm, _ = huge_substrate()
    # Many small batches keep the numpy side CSR-bound (full np.add.at
    # scatter per batch) while the compiled side stays active-path-bound,
    # which is the steadiest shape for the gate margin.
    n_batches = 4 if QUICK else 16
    batch_size = 1024
    batches = replay_batches(pm, np.random.default_rng(1), n_batches, batch_size)
    repeats = 2 if QUICK else 3

    results = {}
    times = {}
    for name in ("numpy", backend):
        best = float("inf")
        with kernels.use_backend(name):
            for _ in range(repeats):
                state = LoadState(net)
                t0 = time.perf_counter()
                congestion = replay_pass(pm, state, batches)
                best = min(best, time.perf_counter() - t0)
        results[name] = (state._loads.copy(), congestion)
        times[name] = best

    assert np.array_equal(results["numpy"][0], results[backend][0])
    assert results["numpy"][1] == results[backend][1]

    speedup = times["numpy"] / max(times[backend], 1e-12)
    events = n_batches * batch_size
    print(
        f"\nhuge replay [{backend}]: {events} pair charges on "
        f"{net.n_processors} processors, numpy {times['numpy']*1e3:.0f}ms, "
        f"{backend} {times[backend]*1e3:.0f}ms -> {speedup:.2f}x"
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"compiled backend {backend!r} only {speedup:.2f}x faster than the "
        f"numpy reference on the huge replay pass (gate: {SPEEDUP_FLOOR}x)"
    )
