"""E4 -- Observation 3.2: the deletion step's service window and load bound.

Verifies that every surviving copy serves between κ_x and 2κ_x requests and
measures the deletion step's cost relative to the nibble step.
"""

import pytest

from repro.analysis.experiments import experiment_deletion_invariants
from repro.core.deletion import apply_deletion
from repro.core.nibble import nibble_placement
from repro.network.builders import balanced_tree
from repro.workload.traces import shared_counter_trace
from repro.workload.generators import zipf_pattern


@pytest.mark.benchmark(group="E4-deletion")
def test_e4_deletion_invariants(benchmark, report_table):
    records = benchmark(experiment_deletion_invariants, (0, 1, 2, 3), 8)
    report_table("E4: copy service window after deletion", records)
    assert all(rec["window_holds"] for rec in records)


@pytest.mark.benchmark(group="E4-deletion")
def test_e4_deletion_runtime_zipf(benchmark):
    net = balanced_tree(2, 3, 2)
    pattern = zipf_pattern(net, 128, requests_per_processor=16, seed=0)
    nib = nibble_placement(net, pattern)

    copies = benchmark(apply_deletion, net, pattern, nib.placement)
    assert len(copies) == pattern.n_objects


@pytest.mark.benchmark(group="E4-deletion")
def test_e4_deletion_shrinks_copy_count(benchmark, report_table):
    """High write contention forces the copy count down towards one."""
    net = balanced_tree(2, 3, 2)
    pattern = shared_counter_trace(net, n_counters=8, increments_per_processor=16)
    nib = nibble_placement(net, pattern)

    copies = benchmark(apply_deletion, net, pattern, nib.placement)
    records = []
    for oc in copies:
        records.append(
            {
                "object": oc.obj,
                "kappa": oc.kappa,
                "nibble_copies": len(nib.placement.holders(oc.obj)),
                "after_deletion": len(oc.copies),
            }
        )
    report_table("E4: copy counts before/after deletion (shared counters)", records)
    assert all(rec["after_deletion"] <= rec["nibble_copies"] for rec in records)
