"""E8 -- congestion vs. baseline strategies and request-replay throughput.

The introduction argues that (i) congestion is the right objective because
message delivery time follows congestion + dilation, and (ii) congestion-aware
placement beats naive policies.  This benchmark compares the extended-nibble
strategy with owner / median-leaf / greedy / random / full-replication
placements across the workload suite, and replays the requests through the
store-and-forward router to connect congestion with delivery time.

Expected shape: the extended-nibble is within 7x of the lower bound on every
instance and is the best or near-best strategy overall; full replication wins
on read-only workloads but collapses on write-heavy ones; replay makespan
tracks the congestion.
"""

import pytest

from repro.analysis.experiments import experiment_baseline_comparison
from repro.core.baselines import greedy_congestion_placement, owner_placement
from repro.core.congestion import compute_loads
from repro.core.extended_nibble import extended_nibble
from repro.distributed.request_sim import replay_requests
from repro.network.builders import balanced_tree
from repro.workload.adversarial import replication_trap
from repro.workload.generators import zipf_pattern


@pytest.mark.benchmark(group="E8-baselines")
def test_e8_strategy_comparison(benchmark, report_table):
    records = benchmark(experiment_baseline_comparison, 0, True, False, 4)
    report_table(
        "E8: congestion by strategy",
        records,
        columns=["instance", "strategy", "congestion", "total_load", "lower_bound", "ratio_vs_lb"],
    )
    ext = [r for r in records if r["strategy"] == "extended-nibble"]
    assert all(r["ratio_vs_lb"] <= 7 + 1e-9 for r in ext)


@pytest.mark.benchmark(group="E8-baselines")
def test_e8_replication_trap(benchmark, report_table):
    """Full replication collapses on write-carrying read-mostly workloads."""
    net = balanced_tree(2, 3, 2)
    pattern = replication_trap(net, 16, seed=0)

    def run():
        from repro.core.baselines import full_replication_placement

        ext = extended_nibble(net, pattern)
        return {
            "extended-nibble": ext.congestion(net, pattern),
            "owner": compute_loads(net, pattern, owner_placement(net, pattern)).congestion,
            "full-replication": compute_loads(
                net, pattern, full_replication_placement(net, pattern)
            ).congestion,
        }

    values = benchmark(run)
    report_table(
        "E8: replication trap",
        [{"strategy": k, "congestion": v} for k, v in values.items()],
    )
    assert values["extended-nibble"] <= values["full-replication"]


@pytest.mark.benchmark(group="E8-baselines")
def test_e8_replay_tracks_congestion(benchmark, report_table):
    """Store-and-forward delivery time follows congestion (+ dilation)."""
    net = balanced_tree(2, 3, 2)
    pattern = zipf_pattern(net, 24, requests_per_processor=12, seed=1)
    ext = extended_nibble(net, pattern)
    greedy = greedy_congestion_placement(net, pattern)

    def run():
        rows = []
        for name, placement, assignment in (
            ("extended-nibble", ext.placement, ext.assignment),
            ("greedy", greedy, None),
            ("owner", owner_placement(net, pattern), None),
        ):
            replay = replay_requests(net, pattern, placement, assignment=assignment, batch=2)
            rows.append(
                {
                    "strategy": name,
                    "congestion": replay.congestion,
                    "makespan": replay.makespan,
                    "dilation": replay.dilation,
                    "slowdown": replay.slowdown,
                }
            )
        return rows

    rows = benchmark(run)
    report_table("E8: request replay (makespan vs congestion)", rows)
    for row in rows:
        assert row["makespan"] >= row["congestion"] - 1e-9
        assert row["makespan"] <= 4 * (row["congestion"] + row["dilation"]) + 5
