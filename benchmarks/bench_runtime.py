"""E6 -- Theorem 4.3: sequential runtime scaling of the extended-nibble.

The bound is O(|X| · |P ∪ B| · height(T) · log(degree(T))).  The benchmark
sweeps |X|, height(T) and degree(T) separately and reports the fitted
log-log slopes; the expected shape is near-linear growth in |X| and clearly
sub-quadratic growth in the structural parameters.
"""

import os
import time

import numpy as np
import pytest

from repro.analysis.scaling import (
    loglog_slope,
    sweep_degree,
    sweep_height,
    sweep_objects,
)
from repro.core.baselines import random_placement
from repro.core.congestion import _reference_compute_loads, compute_loads
from repro.core.extended_nibble import extended_nibble
from repro.network.builders import balanced_tree, path_of_buses, single_bus
from repro.workload.generators import uniform_pattern

QUICK = os.environ.get("BENCH_QUICK", "") == "1"

OBJECT_COUNTS = (8, 16) if QUICK else (8, 16, 32, 64)
HEIGHTS = (2, 4, 8) if QUICK else (2, 4, 8, 16)
DEGREES = (4, 8, 16) if QUICK else (4, 8, 16, 32)


@pytest.mark.benchmark(group="E6-runtime")
def test_e6_object_scaling(benchmark, report_table):
    points = benchmark(sweep_objects, OBJECT_COUNTS, 3, 3, 3, 8, 0, 1)
    slope = loglog_slope(points)
    report_table("E6: runtime vs |X|", [p.as_dict() for p in points])
    print(f"\nE6 |X| log-log slope: {slope:.2f} (bound predicts ~1)")
    assert 0.3 <= slope <= 1.8


@pytest.mark.benchmark(group="E6-runtime")
def test_e6_height_scaling(benchmark, report_table):
    points = benchmark(sweep_height, HEIGHTS, 24, 2, 8, 0, 1)
    slope = loglog_slope(points)
    report_table("E6: runtime vs height(T)", [p.as_dict() for p in points])
    print(f"\nE6 height log-log slope: {slope:.2f}")
    # runtime grows with the height, but (well) below quadratically
    assert slope <= 2.5


@pytest.mark.benchmark(group="E6-runtime")
def test_e6_degree_scaling(benchmark, report_table):
    points = benchmark(sweep_degree, DEGREES, 24, 8, 0, 1)
    slope = loglog_slope(points)
    report_table("E6: runtime vs degree(T)", [p.as_dict() for p in points])
    print(f"\nE6 degree log-log slope: {slope:.2f}")
    assert slope <= 2.5


@pytest.mark.benchmark(group="E6-runtime")
def test_e6_vectorized_congestion_speedup(benchmark):
    """The path-incidence engine beats the scalar reference by >= 5x.

    Measured on the largest network the seed benchmark sweeps exercise
    (balanced 3-ary tree of depth 3 with 3 leaves per bus, 64 objects).
    """
    net = balanced_tree(3, 3, 3)
    pattern = uniform_pattern(net, 64, requests_per_processor=8, seed=0)
    placement = random_placement(net, pattern, seed=1)
    net.rooted().path_matrix()  # warm the cached incidence structure

    vec = benchmark(compute_loads, net, pattern, placement, validate=False)
    ref = _reference_compute_loads(net, pattern, placement, validate=False)
    assert np.array_equal(vec.edge_loads, ref.edge_loads)

    reps = 3 if QUICK else 7
    ref_times = []
    for _ in range(reps):
        start = time.perf_counter()
        _reference_compute_loads(net, pattern, placement, validate=False)
        ref_times.append(time.perf_counter() - start)
    ref_median = float(np.median(ref_times))
    vec_median = float(benchmark.stats.stats.median)
    speedup = ref_median / vec_median
    print(f"\nE6 vectorized congestion speedup: {speedup:.1f}x "
          f"(vec {vec_median * 1e3:.3f} ms, ref {ref_median * 1e3:.3f} ms)")
    assert speedup >= 5.0


@pytest.mark.benchmark(group="E6-runtime")
@pytest.mark.parametrize(
    "topology",
    ["bus", "balanced", "path"],
)
def test_e6_single_run_cost(benchmark, topology):
    """Absolute cost of one run on representative topologies."""
    if topology == "bus":
        net = single_bus(32)
    elif topology == "balanced":
        net = balanced_tree(2, 4, 2)
    else:
        net = path_of_buses(16, leaves_per_bus=2)
    pattern = uniform_pattern(net, 64, requests_per_processor=8, seed=0)
    result = benchmark(extended_nibble, net, pattern)
    assert result.placement.n_objects == 64
