"""E6 -- Theorem 4.3: sequential runtime scaling of the extended-nibble.

The bound is O(|X| · |P ∪ B| · height(T) · log(degree(T))).  The benchmark
sweeps |X|, height(T) and degree(T) separately and reports the fitted
log-log slopes; the expected shape is near-linear growth in |X| and clearly
sub-quadratic growth in the structural parameters.
"""

import pytest

from repro.analysis.scaling import (
    loglog_slope,
    sweep_degree,
    sweep_height,
    sweep_objects,
)
from repro.core.extended_nibble import extended_nibble
from repro.network.builders import balanced_tree, path_of_buses, single_bus
from repro.workload.generators import uniform_pattern


@pytest.mark.benchmark(group="E6-runtime")
def test_e6_object_scaling(benchmark, report_table):
    points = benchmark(sweep_objects, (8, 16, 32, 64), 3, 3, 3, 8, 0, 1)
    slope = loglog_slope(points)
    report_table("E6: runtime vs |X|", [p.as_dict() for p in points])
    print(f"\nE6 |X| log-log slope: {slope:.2f} (bound predicts ~1)")
    assert 0.3 <= slope <= 1.8


@pytest.mark.benchmark(group="E6-runtime")
def test_e6_height_scaling(benchmark, report_table):
    points = benchmark(sweep_height, (2, 4, 8, 16), 24, 2, 8, 0, 1)
    slope = loglog_slope(points)
    report_table("E6: runtime vs height(T)", [p.as_dict() for p in points])
    print(f"\nE6 height log-log slope: {slope:.2f}")
    # runtime grows with the height, but (well) below quadratically
    assert slope <= 2.5


@pytest.mark.benchmark(group="E6-runtime")
def test_e6_degree_scaling(benchmark, report_table):
    points = benchmark(sweep_degree, (4, 8, 16, 32), 24, 8, 0, 1)
    slope = loglog_slope(points)
    report_table("E6: runtime vs degree(T)", [p.as_dict() for p in points])
    print(f"\nE6 degree log-log slope: {slope:.2f}")
    assert slope <= 2.5


@pytest.mark.benchmark(group="E6-runtime")
@pytest.mark.parametrize(
    "topology",
    ["bus", "balanced", "path"],
)
def test_e6_single_run_cost(benchmark, topology):
    """Absolute cost of one run on representative topologies."""
    if topology == "bus":
        net = single_bus(32)
    elif topology == "balanced":
        net = balanced_tree(2, 4, 2)
    else:
        net = path_of_buses(16, leaves_per_bus=2)
    pattern = uniform_pattern(net, 64, requests_per_processor=8, seed=0)
    result = benchmark(extended_nibble, net, pattern)
    assert result.placement.n_objects == 64
