"""E1 -- Figures 1 and 2: SCI ring-of-rings vs. hierarchical bus network.

The paper's modelling argument: because SCI transactions are request--response
pairs that travel once around a ringlet, a ringlet behaves like a bus for load
accounting, so a tree-like connected ring network is equivalent to a
hierarchical bus network.  The benchmark builds the Figure-1 topology, converts
it (Figure 2) and checks that per-ringlet/per-switch loads agree exactly.
"""

import pytest

from repro.analysis.experiments import experiment_sci_equivalence
from repro.network.sci import ring_of_rings, transaction_ring_load


@pytest.mark.benchmark(group="E1-sci-model")
def test_e1_ring_bus_equivalence(benchmark, report_table):
    records = benchmark(experiment_sci_equivalence, 4, 4, 400, 0)
    report_table("E1: ring model load vs bus model load", records)
    assert all(rec["match"] for rec in records)


@pytest.mark.benchmark(group="E1-sci-model")
def test_e1_conversion_cost(benchmark):
    fabric = ring_of_rings(8, 8)

    def convert():
        return fabric.to_bus_network()

    conversion = benchmark(convert)
    assert conversion.network.n_buses == 9
    assert conversion.network.n_processors == 64


@pytest.mark.benchmark(group="E1-sci-model")
def test_e1_transaction_routing_throughput(benchmark):
    fabric = ring_of_rings(6, 6)
    transactions = [
        (i % fabric.n_processors, (i * 7 + 3) % fabric.n_processors, 1)
        for i in range(2000)
    ]

    ring_load, switch_load = benchmark(transaction_ring_load, fabric, transactions)
    assert sum(ring_load.values()) > 0
