#!/usr/bin/env python
"""Benchmark-regression gate for CI.

Compares the median runtimes of a fresh pytest-benchmark JSON report
against the checked-in baseline and exits non-zero when any benchmark's
median regressed by more than the threshold (default 30%).

Because CI runners and developer machines differ in absolute speed, the
default mode first *calibrates*: baseline medians are rescaled by the
median of the per-benchmark (current / baseline) ratios, which cancels a
uniform machine-speed factor while still flagging benchmarks that regressed
relative to the rest of the suite.  Pass ``--no-calibrate`` for a raw
comparison (useful when current and baseline come from the same machine).

Usage::

    python scripts/check_bench_regression.py BENCH_1.json \
        benchmarks/BENCH_baseline.json --threshold 0.30
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
from pathlib import Path


def load_medians(path: Path) -> dict:
    """Map ``fullname`` -> median seconds from a pytest-benchmark report."""
    data = json.loads(path.read_text())
    return {
        bench["fullname"]: float(bench["stats"]["median"])
        for bench in data.get("benchmarks", [])
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", type=Path, help="fresh pytest-benchmark JSON")
    parser.add_argument("baseline", type=Path, help="checked-in baseline JSON")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.30,
        help="maximum tolerated relative median regression (default 0.30)",
    )
    parser.add_argument(
        "--no-calibrate",
        action="store_true",
        help="skip machine-speed calibration (compare raw medians)",
    )
    args = parser.parse_args(argv)

    current = load_medians(args.current)
    baseline = load_medians(args.baseline)
    if not current:
        print("error: current report contains no benchmarks", file=sys.stderr)
        return 2
    if not baseline:
        print("error: baseline report contains no benchmarks", file=sys.stderr)
        return 2

    shared = sorted(set(current) & set(baseline))
    if not shared:
        print("error: no benchmarks in common with the baseline", file=sys.stderr)
        return 2
    for name in sorted(set(current) - set(baseline)):
        print(f"note: new benchmark not in baseline (skipped): {name}")
    for name in sorted(set(baseline) - set(current)):
        print(f"note: baseline benchmark missing from this run: {name}")

    scale = 1.0
    if not args.no_calibrate:
        ratios = [current[name] / baseline[name] for name in shared]
        scale = statistics.median(ratios)
        print(f"calibration: machine-speed factor {scale:.3f} "
              f"(median current/baseline ratio over {len(shared)} benchmarks)")

    failures = []
    for name in shared:
        allowed = baseline[name] * scale * (1.0 + args.threshold)
        ratio = current[name] / (baseline[name] * scale)
        status = "FAIL" if current[name] > allowed else "ok"
        print(
            f"{status:4}  {ratio:6.2f}x  "
            f"{current[name] * 1e3:10.3f} ms "
            f"(baseline {baseline[name] * scale * 1e3:10.3f} ms)  {name}"
        )
        if current[name] > allowed:
            failures.append(name)

    if failures:
        print(
            f"\n{len(failures)} benchmark(s) regressed more than "
            f"{args.threshold:.0%} vs the baseline:",
            file=sys.stderr,
        )
        for name in failures:
            print(f"  {name}", file=sys.stderr)
        return 1
    print(f"\nall {len(shared)} benchmarks within {args.threshold:.0%} of the baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
