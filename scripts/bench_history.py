#!/usr/bin/env python
"""Append a benchmark run's per-bench medians to the history file.

``check_bench_regression.py`` gates one run against one baseline; this
script keeps the *trajectory*: every CI bench run appends its medians to
``BENCH_history.json`` (one entry per run, keyed by a label such as the
commit SHA), so performance is visible PR-over-PR instead of only
pass/fail.

Usage::

    python scripts/bench_history.py BENCH_1.json \
        --history benchmarks/BENCH_history.json --label "$GITHUB_SHA"

Appending is idempotent per label: re-recording an existing label
replaces that entry instead of duplicating it.  The file stays a pure
function of the recorded runs (no timestamps), so it is diff- and
test-friendly.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

HISTORY_FORMAT = "repro.bench-history/v1"


def load_medians(path: Path) -> dict:
    """Map ``fullname`` -> median seconds from a pytest-benchmark report."""
    data = json.loads(path.read_text())
    return {
        bench["fullname"]: float(bench["stats"]["median"])
        for bench in data.get("benchmarks", [])
    }


def load_history(path: Path) -> dict:
    """Load (or initialise) the history document.

    A corrupt or format-incompatible file is discarded with a warning and
    the trajectory restarts empty: the history is an observability aid and
    must never wedge the recording step (a cached bad file would otherwise
    fail every future run until someone deletes the cache by hand).
    """
    if path.exists():
        try:
            document = json.loads(path.read_text())
            if document.get("format") != HISTORY_FORMAT or not isinstance(
                document.get("runs"), list
            ):
                raise ValueError(
                    f"unknown history format {document.get('format')!r}"
                )
            return document
        except (ValueError, KeyError, TypeError) as exc:
            print(
                f"warning: discarding unreadable history {path}: {exc}",
                file=sys.stderr,
            )
    return {"format": HISTORY_FORMAT, "runs": []}


def append_run(history: dict, label: str, medians: dict) -> dict:
    """Append one run's medians; an existing label is replaced **in place**
    so a re-recorded run keeps its chronological position in the
    trajectory."""
    runs = list(history["runs"])
    entry = {"label": label, "medians": dict(sorted(medians.items()))}
    for index, run in enumerate(runs):
        if run["label"] == label:
            runs[index] = entry
            break
    else:
        runs.append(entry)
    return {"format": HISTORY_FORMAT, "runs": runs}


def trajectory_summary(history: dict) -> str:
    """Human-readable delta of the latest run against its predecessor."""
    runs = history["runs"]
    latest = runs[-1]
    line = f"run {latest['label']!r}: {len(latest['medians'])} benchmarks"
    if len(runs) < 2:
        return line + " (first recorded run)"
    previous = runs[-2]
    shared = sorted(set(latest["medians"]) & set(previous["medians"]))
    faster = sum(
        1 for name in shared if latest["medians"][name] < previous["medians"][name]
    )
    slower = len(shared) - faster
    return (
        line
        + f"; vs {previous['label']!r}: {faster} faster, {slower} slower "
        + f"({len(shared)} shared)"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("report", type=Path, help="fresh pytest-benchmark JSON")
    parser.add_argument(
        "--history",
        type=Path,
        default=Path("benchmarks/BENCH_history.json"),
        help="history file to append to (default: benchmarks/BENCH_history.json)",
    )
    parser.add_argument(
        "--label",
        required=True,
        help="identity of this run (e.g. the commit SHA)",
    )
    args = parser.parse_args(argv)

    medians = load_medians(args.report)
    if not medians:
        print("error: report contains no benchmarks", file=sys.stderr)
        return 2
    history = append_run(load_history(args.history), args.label, medians)
    args.history.write_text(json.dumps(history, indent=2) + "\n")
    print(trajectory_summary(history))
    print(f"recorded {len(history['runs'])} runs in {args.history}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
