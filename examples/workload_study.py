#!/usr/bin/env python3
"""Workload study: congestion of every strategy across workload families.

Sweeps the standard instance suite (single bus, balanced hierarchy, star,
random tree x uniform / Zipf / hotspot / locality / adversarial workloads)
and prints the congestion of the extended-nibble strategy and the baselines,
normalised by the certified lower bound.  This is experiment E8 of
EXPERIMENTS.md in script form.

Run with:  python examples/workload_study.py
"""

from collections import defaultdict

from repro.analysis.experiments import experiment_baseline_comparison
from repro.analysis.report import format_table


def main() -> None:
    records = experiment_baseline_comparison(seed=0, small=False)

    # wide table: one row per instance, one column per strategy (ratio vs LB)
    strategies = []
    for rec in records:
        if rec["strategy"] not in strategies:
            strategies.append(rec["strategy"])
    by_instance = defaultdict(dict)
    bounds = {}
    for rec in records:
        by_instance[rec["instance"]][rec["strategy"]] = rec["congestion"]
        bounds[rec["instance"]] = rec["lower_bound"]

    rows = []
    wins = defaultdict(int)
    for instance, values in by_instance.items():
        bound = bounds[instance]
        row = [instance, bound]
        best = min(values.values())
        for strategy in strategies:
            value = values[strategy]
            ratio = value / bound if bound > 0 else 1.0
            marker = "*" if value == best else ""
            row.append(f"{ratio:.2f}{marker}")
            if value == best:
                wins[strategy] += 1
        rows.append(row)

    print(format_table(rows, headers=["instance", "lower bound"] + strategies))
    print("\n(* = best strategy for that instance; values are congestion / lower bound)")
    print("\nwins per strategy:")
    for strategy in strategies:
        print(f"  {strategy:<18} {wins[strategy]}")

    ext_ratios = [
        by_instance[i]["extended-nibble"] / bounds[i]
        for i in by_instance
        if bounds[i] > 0
    ]
    print(
        f"\nextended-nibble: worst ratio {max(ext_ratios):.2f}, "
        f"mean ratio {sum(ext_ratios) / len(ext_ratios):.2f} "
        f"(paper guarantee: 7.00)"
    )


if __name__ == "__main__":
    main()
