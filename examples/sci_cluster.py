#!/usr/bin/env python3
"""SCI cluster scenario (Figures 1 and 2 of the paper).

Models a workstation cluster built from SCI ringlets connected by switches
(a "ring of rings"), converts it into the equivalent hierarchical bus
network, places a web-cache style workload with the extended-nibble
strategy, and finally replays all requests through the store-and-forward
router to show how congestion translates into delivery time.

Run with:  python examples/sci_cluster.py
"""

from repro.analysis.report import format_table
from repro.core.baselines import owner_placement
from repro.core.bounds import nibble_lower_bound
from repro.core.congestion import compute_loads
from repro.core.extended_nibble import extended_nibble
from repro.distributed.request_sim import replay_requests
from repro.network.sci import ring_of_rings, transaction_ring_load
from repro.workload.traces import web_cache_trace


def main() -> None:
    # 1. The Figure-1 topology: a top-level ringlet joining four leaf ringlets
    #    with four workstations each.
    fabric = ring_of_rings(
        n_leaf_rings=4, processors_per_ring=4, top_bandwidth=4.0, leaf_bandwidth=2.0
    )
    conversion = fabric.to_bus_network()
    network = conversion.network
    print(
        f"SCI fabric: {fabric.n_ringlets} ringlets, {fabric.n_switches} switches, "
        f"{fabric.n_processors} workstations"
    )
    print(
        f"equivalent bus network (Figure 2): {network.n_buses} buses, "
        f"{network.n_processors} processors, height {network.height()}"
    )

    # 2. Sanity-check the modelling step on some raw transactions: the ring
    #    model and the bus model must account for the same load.
    transactions = [
        (i % fabric.n_processors, (i * 5 + 3) % fabric.n_processors, 1)
        for i in range(200)
    ]
    ring_load, _switch_load = transaction_ring_load(fabric, transactions)
    print(f"ring model total load (200 transactions): {sum(ring_load.values())}")

    # 3. A read-mostly WWW-page workload served by the cluster.
    pattern = web_cache_trace(network, n_pages=96, requests_per_processor=64, seed=3)

    # 4. Placement strategies.
    result = extended_nibble(network, pattern)
    ext = result.congestion(network, pattern)
    owner = compute_loads(network, pattern, owner_placement(network, pattern)).congestion
    bound = nibble_lower_bound(network, pattern)

    rows = [
        ["lower bound", bound, "-", "-"],
        ["extended-nibble", ext, ext / bound, ""],
        ["owner placement", owner, owner / bound, ""],
    ]

    # 5. Replay the requests through the router (batched for speed).
    for row, (placement, assignment) in zip(
        rows[1:],
        [(result.placement, result.assignment), (owner_placement(network, pattern), None)],
    ):
        replay = replay_requests(network, pattern, placement, assignment, batch=8)
        row[3] = f"{replay.makespan} rounds (slowdown {replay.slowdown:.2f})"

    print()
    print(
        format_table(
            rows, headers=["strategy", "congestion", "ratio", "replay makespan"]
        )
    )
    print()
    print("within the factor-7 guarantee:", ext <= 7 * bound)


if __name__ == "__main__":
    main()
