#!/usr/bin/env python3
"""Quickstart: place shared data objects on a hierarchical bus network.

Builds a small balanced bus hierarchy, generates a Zipf-popular workload,
runs the paper's extended-nibble strategy and compares its congestion with
the certified lower bound and two baselines.

Run with:  python examples/quickstart.py
"""

from repro.analysis.report import format_table
from repro.core.baselines import full_replication_placement, owner_placement
from repro.core.bounds import nibble_lower_bound
from repro.core.congestion import compute_loads
from repro.core.extended_nibble import extended_nibble
from repro.network.builders import balanced_tree
from repro.workload.generators import zipf_pattern


def main() -> None:
    # 1. Topology: a binary hierarchy of buses, three levels deep, with two
    #    processors attached to every leaf-level bus (16 processors total).
    network = balanced_tree(arity=2, depth=3, leaves_per_bus=2, bus_bandwidth=2.0)
    print(
        f"network: {network.n_processors} processors, {network.n_buses} buses, "
        f"height {network.height()}, max degree {network.max_degree()}"
    )

    # 2. Workload: 64 shared objects with Zipf popularity, 10% writes.
    pattern = zipf_pattern(network, n_objects=64, requests_per_processor=32, seed=7)
    print(
        f"workload: {pattern.n_objects} objects, "
        f"{int(pattern.reads.sum())} reads, {int(pattern.writes.sum())} writes"
    )

    # 3. The extended-nibble strategy (the paper's 7-approximation).
    result = extended_nibble(network, pattern)
    ext_congestion = result.congestion(network, pattern)

    # 4. Reference points.
    lower_bound = nibble_lower_bound(network, pattern)
    owner = compute_loads(network, pattern, owner_placement(network, pattern))
    replicated = compute_loads(
        network, pattern, full_replication_placement(network, pattern)
    )

    rows = [
        ["lower bound (nibble, Theorem 3.1)", lower_bound, "-"],
        ["extended-nibble (Theorem 4.3)", ext_congestion, ext_congestion / lower_bound],
        ["owner placement", owner.congestion, owner.congestion / lower_bound],
        ["full replication", replicated.congestion, replicated.congestion / lower_bound],
    ]
    print()
    print(format_table(rows, headers=["strategy", "congestion", "ratio vs bound"]))
    print()
    print(
        f"extended-nibble stays within the paper's factor-7 guarantee: "
        f"{ext_congestion <= 7 * lower_bound}"
    )
    print(
        f"copies placed: {result.placement.total_copies()} "
        f"(objects needing the mapping step: {len(result.mapping.affected_objects)})"
    )
    print(
        "step timings [s]: "
        f"nibble={result.timings.nibble:.4f} "
        f"deletion={result.timings.deletion:.4f} "
        f"mapping={result.timings.mapping:.4f}"
    )


if __name__ == "__main__":
    main()
