#!/usr/bin/env python3
"""Distributed execution demo: computing the placement on the network itself.

The paper notes that the extended-nibble strategy can be computed by the
processors of the tree in a distributed fashion.  This example runs the
message-passing implementation on increasingly deep bus hierarchies and on
growing object counts, and prints the round and message counts, illustrating
the pipelined O(|X| + height) behaviour of the aggregation phases.

Run with:  python examples/distributed_rounds.py
"""

from repro.analysis.report import format_table
from repro.distributed.protocols import distributed_extended_nibble
from repro.network.builders import balanced_tree, path_of_buses
from repro.workload.generators import uniform_pattern


def main() -> None:
    rows = []
    print("sweep 1: growing object count on a fixed hierarchy")
    net = balanced_tree(arity=2, depth=3, leaves_per_bus=2)
    for n_objects in (4, 8, 16, 32):
        pattern = uniform_pattern(net, n_objects, requests_per_processor=8, seed=0)
        report = distributed_extended_nibble(net, pattern)
        rows.append(
            [
                f"balanced (h={net.height()})",
                n_objects,
                report.nibble_rounds,
                report.deletion_rounds,
                report.mapping_rounds,
                report.total_rounds,
                report.total_messages,
            ]
        )

    print("sweep 2: growing height with a fixed object count")
    for n_buses in (2, 4, 8, 16):
        deep = path_of_buses(n_buses, leaves_per_bus=2)
        pattern = uniform_pattern(deep, 8, requests_per_processor=8, seed=0)
        report = distributed_extended_nibble(deep, pattern)
        rows.append(
            [
                f"path (h={deep.height()})",
                8,
                report.nibble_rounds,
                report.deletion_rounds,
                report.mapping_rounds,
                report.total_rounds,
                report.total_messages,
            ]
        )

    print()
    print(
        format_table(
            rows,
            headers=[
                "topology",
                "|X|",
                "nibble rounds",
                "deletion rounds",
                "mapping rounds",
                "total rounds",
                "messages",
            ],
        )
    )
    print(
        "\nThe nibble phase dominates and grows additively in |X| and height "
        "thanks to pipelining, matching the paper's distributed time bound."
    )


if __name__ == "__main__":
    main()
