#!/usr/bin/env python3
"""Online adaptation demo: serving a request stream without knowing the future.

The paper solves the static problem (frequencies known in advance).  This
example uses the :mod:`repro.dynamic` extension to serve a request stream
online with an adaptive replication/invalidation strategy and compares it
with (a) the hindsight-static extended-nibble placement and (b) a
first-touch placement that never adapts.  A phase change in the middle of
the stream (producers and consumers swap roles) shows where adaptation pays.

Run with:  python examples/online_adaptation.py
"""

from repro.analysis.report import format_table
from repro.dynamic.evaluate import evaluate_strategies
from repro.dynamic.sequence import phase_change_sequence, sequence_from_pattern
from repro.network.builders import balanced_tree
from repro.workload.generators import uniform_pattern
from repro.workload.traces import producer_consumer_trace


def show(title, records) -> None:
    print(f"\n{title}")
    rows = [
        [r.strategy, r.congestion, r.total_load, r.service_load, r.management_load]
        for r in records
    ]
    print(
        format_table(
            rows,
            headers=["strategy", "congestion", "total load", "service", "management"],
        )
    )


def main() -> None:
    network = balanced_tree(arity=2, depth=3, leaves_per_bus=2)
    print(
        f"network: {network.n_processors} processors, {network.n_buses} buses, "
        f"height {network.height()}"
    )

    # Scenario 1: stationary mixed workload.
    pattern = uniform_pattern(network, 32, requests_per_processor=32, seed=0)
    stationary = sequence_from_pattern(network, pattern, seed=1)
    show(
        f"stationary workload ({len(stationary)} requests)",
        evaluate_strategies(network, stationary, object_size=4),
    )

    # Scenario 2: the sharing pattern flips halfway through.
    phase_a = producer_consumer_trace(network, n_channels=24, items_per_channel=16, seed=2)
    phase_b = producer_consumer_trace(network, n_channels=24, items_per_channel=16, seed=9)
    changing = phase_change_sequence(network, [phase_a, phase_b], seed=3)
    show(
        f"phase-changing workload ({len(changing)} requests)",
        evaluate_strategies(network, changing, object_size=3),
    )

    print(
        "\nThe adaptive edge-counter strategy tracks the hindsight-static "
        "extended-nibble placement on stationary workloads and limits the "
        "damage when the access pattern changes, at the price of some "
        "management (replication/migration) traffic."
    )


if __name__ == "__main__":
    main()
