#!/usr/bin/env python3
"""NP-hardness demo (Theorem 2.1): PARTITION encoded as a placement problem.

Encodes two PARTITION instances -- one solvable, one not -- as placement
instances on the 4-processor gadget and shows that a congestion of at most
``4k`` is achievable exactly when the PARTITION instance is solvable, as the
paper's reduction proves.

Run with:  python examples/hardness_demo.py
"""

from repro.analysis.report import format_table
from repro.core.congestion import compute_loads
from repro.hardness.partition import PartitionInstance, solve_partition_dp
from repro.hardness.reduction import (
    build_reduction_instance,
    placement_from_subset,
    verify_reduction,
)


def describe(sizes) -> list:
    partition = PartitionInstance(sizes)
    report = verify_reduction(partition)
    inst = report.instance
    row = [
        str(sizes),
        inst.threshold,
        "yes" if report.partition_solvable else "no",
        report.optimal_congestion,
        "yes" if report.decision_at_threshold else "no",
        "yes" if report.equivalence_holds else "no",
    ]

    print(f"\nPARTITION instance {sizes}  (2k = {partition.total}, threshold 4k = {inst.threshold})")
    witness = solve_partition_dp(partition)
    if witness is not None:
        chosen = [sizes[i] for i in witness]
        print(f"  balanced subset found: indices {witness} with values {chosen}")
        placement = placement_from_subset(inst, witness)
        profile = compute_loads(inst.network, inst.pattern, placement)
        a, b, s, sbar = inst.anchors
        bus = inst.network.buses[0]
        print("  witness placement loads per switch edge:")
        for name, node in (("a", a), ("b", b), ("s", s), ("sbar", sbar)):
            print(f"    edge to {name:<4}: {profile.edge_load(node, bus):.0f}")
        print(f"  witness congestion = {profile.congestion:.0f} (= 4k)")
    else:
        print("  no balanced subset exists")
        print(
            f"  exact optimal congestion = {report.optimal_congestion:.0f} "
            f"> 4k = {inst.threshold}"
        )
    return row


def main() -> None:
    rows = []
    rows.append(describe((3, 1, 2, 2)))   # YES instance: {3,1} vs {2,2}
    rows.append(describe((5, 1, 1, 1)))   # NO instance: 5 > 1+1+1
    rows.append(describe((4, 3, 2, 2, 1)))  # YES: {4,2} vs {3,2,1}

    print()
    print(
        format_table(
            rows,
            headers=[
                "k_i",
                "threshold 4k",
                "PARTITION solvable",
                "optimal congestion",
                "congestion <= 4k",
                "equivalence holds",
            ],
        )
    )
    print(
        "\nTheorem 2.1: the placement decision problem answers the PARTITION "
        "question, so static placement on hierarchical bus networks is NP-hard."
    )


if __name__ == "__main__":
    main()
