"""Setuptools entry point.

Kept alongside ``pyproject.toml`` so that editable installs work in offline
environments whose setuptools predates PEP 660 wheel-less editable support
(``pip install -e .`` then falls back to the classic ``setup.py develop``
path).
"""

from setuptools import setup

setup()
