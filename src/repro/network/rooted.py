"""Rooted views of hierarchical bus networks.

The algorithms in the paper repeatedly root the tree at some node (the
center of gravity for the nibble strategy, an arbitrary node for the mapping
algorithm) and then reason about parents, children, levels and subtrees.
:class:`RootedTree` provides these derived quantities for a fixed root,
computed once in ``O(n)`` and shared via the cache in
:meth:`repro.network.tree.HierarchicalBusNetwork.rooted`.

Level convention (Section 3.3 of the paper): the root is on level
``height(T)`` and the children of a level ``i+1`` node are on level ``i``;
equivalently ``level(v) = height(T) - depth(v)``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.errors import InvalidNodeError

__all__ = ["RootedTree"]


class RootedTree:
    """Parent/children/depth/level structure of a network for a fixed root.

    Parameters
    ----------
    network:
        The underlying :class:`~repro.network.tree.HierarchicalBusNetwork`.
    root:
        The node to use as root.
    """

    __slots__ = (
        "network",
        "root",
        "_parent",
        "_parent_edge",
        "_depth",
        "_order",
        "_children",
        "_height",
        "_subtree_size",
        "_path_matrix",
    )

    def __init__(self, network, root: int) -> None:
        n = network.n_nodes
        if not 0 <= root < n:
            raise InvalidNodeError(f"invalid root {root!r}")
        self.network = network
        self.root = int(root)

        parent = np.full(n, -1, dtype=np.int64)
        parent_edge = np.full(n, -1, dtype=np.int64)
        depth = np.full(n, -1, dtype=np.int64)
        order: List[int] = []
        children: List[List[int]] = [[] for _ in range(n)]

        depth[root] = 0
        stack = [root]
        while stack:
            u = stack.pop()
            order.append(u)
            for v in network.neighbors(u):
                if v != parent[u]:
                    parent[v] = u
                    parent_edge[v] = network.edge_id(u, v)
                    depth[v] = depth[u] + 1
                    children[u].append(v)
                    stack.append(v)
        if len(order) != n:
            raise InvalidNodeError(
                "rooted traversal did not reach all nodes; network is not a tree"
            )

        self._parent = parent
        self._parent_edge = parent_edge
        self._depth = depth
        self._order = np.asarray(order, dtype=np.int64)
        self._children = [tuple(sorted(c)) for c in children]
        self._height = int(depth.max())
        sizes = np.ones(n, dtype=np.int64)
        for u in reversed(order):
            p = parent[u]
            if p >= 0:
                sizes[p] += sizes[u]
        self._subtree_size = sizes
        self._path_matrix = None

    def path_matrix(self):
        """Cached :class:`~repro.core.pathmatrix.PathMatrix` for this root."""
        if self._path_matrix is None:
            from repro.core.pathmatrix import PathMatrix

            self._path_matrix = PathMatrix(self)
        return self._path_matrix

    # ------------------------------------------------------------------ #
    # structural accessors
    # ------------------------------------------------------------------ #
    @property
    def height(self) -> int:
        """Height of the tree for this root (max depth)."""
        return self._height

    def parent(self, node: int) -> int:
        """Parent of ``node`` (``-1`` for the root)."""
        return int(self._parent[node])

    def parent_edge_id(self, node: int) -> int:
        """Id of the edge connecting ``node`` to its parent (``-1`` for root)."""
        return int(self._parent_edge[node])

    def children(self, node: int) -> Tuple[int, ...]:
        """Children of ``node`` in ascending id order."""
        return self._children[node]

    def depth(self, node: int) -> int:
        """Depth of ``node`` (root has depth 0)."""
        return int(self._depth[node])

    def level(self, node: int) -> int:
        """Paper level of ``node``: ``height(T) - depth(node)``."""
        return self._height - int(self._depth[node])

    def subtree_size(self, node: int) -> int:
        """Number of nodes in the maximal subtree ``T(node)``."""
        return int(self._subtree_size[node])

    @property
    def preorder(self) -> Sequence[int]:
        """Nodes in a preorder (parents before children)."""
        return tuple(int(v) for v in self._order)

    @property
    def postorder(self) -> Sequence[int]:
        """Nodes in a postorder (children before parents)."""
        return tuple(int(v) for v in self._order[::-1])

    def nodes_by_level(self) -> Dict[int, List[int]]:
        """Group node ids by paper level, ``{level: [nodes...]}``."""
        groups: Dict[int, List[int]] = {}
        for v in range(self.network.n_nodes):
            groups.setdefault(self.level(v), []).append(v)
        for lst in groups.values():
            lst.sort()
        return groups

    def is_ancestor(self, anc: int, node: int) -> bool:
        """``True`` iff ``anc`` lies on the path from ``node`` to the root.

        A node is considered an ancestor of itself.
        """
        # Walk up from node; depth difference bounds the walk length.
        while self._depth[node] > self._depth[anc]:
            node = int(self._parent[node])
        return node == anc

    # ------------------------------------------------------------------ #
    # paths
    # ------------------------------------------------------------------ #
    def lca(self, u: int, v: int) -> int:
        """Lowest common ancestor of ``u`` and ``v``."""
        du, dv = int(self._depth[u]), int(self._depth[v])
        while du > dv:
            u = int(self._parent[u])
            du -= 1
        while dv > du:
            v = int(self._parent[v])
            dv -= 1
        while u != v:
            u = int(self._parent[u])
            v = int(self._parent[v])
        return u

    def path_nodes(self, u: int, v: int) -> List[int]:
        """The unique path from ``u`` to ``v`` as a node sequence."""
        a = self.lca(u, v)
        up: List[int] = []
        x = u
        while x != a:
            up.append(x)
            x = int(self._parent[x])
        down: List[int] = []
        x = v
        while x != a:
            down.append(x)
            x = int(self._parent[x])
        return up + [a] + down[::-1]

    def path_edge_ids(self, u: int, v: int) -> List[int]:
        """Edge ids of the unique path from ``u`` to ``v`` (may be empty)."""
        a = self.lca(u, v)
        edges: List[int] = []
        x = u
        while x != a:
            edges.append(int(self._parent_edge[x]))
            x = int(self._parent[x])
        tail: List[int] = []
        x = v
        while x != a:
            tail.append(int(self._parent_edge[x]))
            x = int(self._parent[x])
        return edges + tail[::-1]

    def distance(self, u: int, v: int) -> int:
        """Number of edges on the path from ``u`` to ``v``."""
        a = self.lca(u, v)
        return int(self._depth[u] + self._depth[v] - 2 * self._depth[a])

    # ------------------------------------------------------------------ #
    # subtree aggregation and Steiner trees
    # ------------------------------------------------------------------ #
    def subtree_sums(self, values: np.ndarray) -> np.ndarray:
        """Sum the per-node ``values`` over every maximal subtree ``T(v)``.

        Returns an array ``s`` with ``s[v] = sum(values[u] for u in T(v))``
        where ``T(v)`` is the maximal subtree containing ``v`` but not its
        parent (the paper's definition in Section 3.1).
        """
        values = np.asarray(values)
        if values.shape[0] != self.network.n_nodes:
            raise ValueError("values must have one entry per node")
        sums = values.astype(np.float64 if values.dtype.kind == "f" else np.int64).copy()
        for u in self._order[::-1]:
            p = self._parent[u]
            if p >= 0:
                sums[p] += sums[u]
        return sums

    def steiner_edge_ids(self, terminals: Iterable[int]) -> List[int]:
        """Edges of the minimal subtree connecting ``terminals``.

        Used for the write-broadcast cost: a write to object ``x`` loads every
        edge of the Steiner tree connecting the holder set ``P_x``.
        Returns an empty list when fewer than two terminals are given.
        """
        term = sorted(set(int(t) for t in terminals))
        for t in term:
            if not 0 <= t < self.network.n_nodes:
                raise InvalidNodeError(f"invalid terminal {t}")
        if len(term) <= 1:
            return []
        marks = np.zeros(self.network.n_nodes, dtype=np.int64)
        marks[term] = 1
        counts = self.subtree_sums(marks)
        total = len(term)
        edges: List[int] = []
        for v in range(self.network.n_nodes):
            p = self._parent[v]
            if p < 0:
                continue
            below = counts[v]
            if 0 < below < total:
                edges.append(int(self._parent_edge[v]))
        return edges

    def steiner_node_ids(self, terminals: Iterable[int]) -> List[int]:
        """Nodes of the minimal subtree connecting ``terminals``.

        For a single terminal this is the terminal itself; for an empty set
        the result is empty.
        """
        term = sorted(set(int(t) for t in terminals))
        if not term:
            return []
        if len(term) == 1:
            return term
        nodes = set(term)
        for eid in self.steiner_edge_ids(term):
            e = self.network.edge_endpoints(eid)
            nodes.add(e.u)
            nodes.add(e.v)
        return sorted(nodes)

    def nearest_in_set(self, node: int, candidates: Iterable[int]) -> int:
        """Return the candidate closest to ``node`` (ties: smallest id).

        Used to pick the reference copy ``c(P, x)`` as the copy of ``x``
        stored on the node closest to ``P`` (Section 3.2).
        """
        cands = sorted(set(int(c) for c in candidates))
        if not cands:
            raise InvalidNodeError("candidate set must not be empty")
        best = cands[0]
        best_dist = self.distance(node, best)
        for c in cands[1:]:
            d = self.distance(node, c)
            if d < best_dist:
                best, best_dist = c, d
        return best
