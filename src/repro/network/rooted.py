"""Rooted views of hierarchical bus networks.

The algorithms in the paper repeatedly root the tree at some node (the
center of gravity for the nibble strategy, an arbitrary node for the mapping
algorithm) and then reason about parents, children, levels and subtrees.
:class:`RootedTree` provides these derived quantities for a fixed root,
computed once in ``O(n)`` and shared via the cache in
:meth:`repro.network.tree.HierarchicalBusNetwork.rooted`.

Level convention (Section 3.3 of the paper): the root is on level
``height(T)`` and the children of a level ``i+1`` node are on level ``i``;
equivalently ``level(v) = height(T) - depth(v)``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import InvalidNodeError, MutationError

__all__ = ["RootedTree"]


class RootedTree:
    """Parent/children/depth/level structure of a network for a fixed root.

    Parameters
    ----------
    network:
        The underlying :class:`~repro.network.tree.HierarchicalBusNetwork`.
    root:
        The node to use as root.
    """

    __slots__ = (
        "network",
        "root",
        "_parent",
        "_parent_edge",
        "_depth",
        "_order",
        "_children",
        "_height",
        "_subtree_size",
        "_path_matrix",
    )

    def __init__(self, network, root: int) -> None:
        n = network.n_nodes
        if not 0 <= root < n:
            raise InvalidNodeError(f"invalid root {root!r}")
        self.network = network
        self.root = int(root)

        parent = np.full(n, -1, dtype=np.int64)
        parent_edge = np.full(n, -1, dtype=np.int64)
        depth = np.full(n, -1, dtype=np.int64)
        order: List[int] = []
        children: List[List[int]] = [[] for _ in range(n)]

        depth[root] = 0
        stack = [root]
        while stack:
            u = stack.pop()
            order.append(u)
            for v in network.neighbors(u):
                if v != parent[u]:
                    parent[v] = u
                    parent_edge[v] = network.edge_id(u, v)
                    depth[v] = depth[u] + 1
                    children[u].append(v)
                    stack.append(v)
        if len(order) != n:
            raise InvalidNodeError(
                "rooted traversal did not reach all nodes; network is not a tree"
            )

        self._parent = parent
        self._parent_edge = parent_edge
        self._depth = depth
        self._order = np.asarray(order, dtype=np.int64)
        self._children = [tuple(sorted(c)) for c in children]
        self._height = int(depth.max())
        sizes = np.ones(n, dtype=np.int64)
        for u in reversed(order):
            p = parent[u]
            if p >= 0:
                sizes[p] += sizes[u]
        self._subtree_size = sizes
        self._path_matrix = None

    def path_matrix(self):
        """Cached :class:`~repro.core.pathmatrix.PathMatrix` for this root."""
        if self._path_matrix is None:
            from repro.core.pathmatrix import PathMatrix

            self._path_matrix = PathMatrix(self)
        return self._path_matrix

    # ------------------------------------------------------------------ #
    # incremental repair after topology mutations
    # ------------------------------------------------------------------ #
    @classmethod
    def _from_parts(
        cls,
        network,
        root: int,
        parent: np.ndarray,
        parent_edge: np.ndarray,
        depth: np.ndarray,
        order: np.ndarray,
        children: Optional[List[Tuple[int, ...]]],
        height: int,
        subtree_size: np.ndarray,
    ) -> "RootedTree":
        """Assemble a view from repaired arrays, bypassing the O(n) traversal.

        ``children`` may be ``None``; it is then rebuilt lazily from the
        parent array on first access (see :meth:`_ensure_children`).
        """
        view = object.__new__(cls)
        view.network = network
        view.root = int(root)
        view._parent = parent
        view._parent_edge = parent_edge
        view._depth = depth
        view._order = order
        view._children = children
        view._height = int(height)
        view._subtree_size = subtree_size
        view._path_matrix = None
        return view

    def _ensure_children(self) -> None:
        """Build the per-node children tuples lazily (repair skips them)."""
        if self._children is None:
            n = self.network.n_nodes
            kids: List[List[int]] = [[] for _ in range(n)]
            parent = self._parent
            for v in range(n):
                p = int(parent[v])
                if p >= 0:
                    kids[p].append(v)  # ascending v keeps each tuple sorted
            self._children = [tuple(c) for c in kids]

    def repaired(self, outcome) -> "RootedTree":
        """Rooted view of ``outcome.network``, repaired from this view.

        The repaired view is observationally identical to a freshly-built
        ``RootedTree(outcome.network, node_map[root])`` -- parents, depths,
        levels, subtree sizes, paths and Steiner trees all agree -- but is
        derived in O(touched region) array surgery instead of an O(n)
        Python traversal.  The result is installed in the new network's
        rooted-view cache, so repeated repairs (e.g. one per substrate
        object) share one view.
        """
        from repro.network.mutation import AttachLeaf, DetachLeaf, SplitBus

        if outcome.old_network is not self.network:
            raise MutationError(
                "mutation outcome does not apply to this view's network"
            )
        new_net = outcome.network
        new_root = int(outcome.node_map[self.root])
        if new_root < 0:
            raise MutationError(f"the root {self.root} was removed by the mutation")
        cached = new_net._rooted_cache.get(new_root)
        if cached is not None:
            return cached

        mutation = outcome.mutation
        if not outcome.structural:
            view = self._from_parts(
                new_net,
                new_root,
                self._parent,
                self._parent_edge,
                self._depth,
                self._order,
                self._children,
                self._height,
                self._subtree_size,
            )
        elif isinstance(mutation, AttachLeaf):
            view = self._repaired_attach(new_net, outcome)
        elif isinstance(mutation, DetachLeaf):
            view = self._repaired_detach(new_net, outcome)
        elif isinstance(mutation, SplitBus):
            view = self._repaired_split(new_net, new_root, outcome)
        else:  # future mutation kinds: fall back to a fresh traversal
            view = RootedTree(new_net, new_root)
        new_net._rooted_cache[new_root] = view
        return view

    def _repaired_attach(self, new_net, outcome) -> "RootedTree":
        bus = int(outcome.touched_bus)
        w = int(outcome.new_node)
        parent = np.append(self._parent, bus)
        parent_edge = np.append(self._parent_edge, int(outcome.new_edge))
        depth = np.append(self._depth, self._depth[bus] + 1)
        order = np.append(self._order, w)
        children = None
        if self._children is not None:
            children = list(self._children)
            children[bus] = children[bus] + (w,)  # w is the largest id
            children.append(())
        sizes = self._subtree_size.copy()
        x = bus
        while x >= 0:
            sizes[x] += 1
            x = int(self._parent[x])
        sizes = np.append(sizes, 1)
        height = max(self._height, int(depth[w]))
        return self._from_parts(
            new_net, self.root, parent, parent_edge, depth, order, children,
            height, sizes,
        )

    def _repaired_detach(self, new_net, outcome) -> "RootedTree":
        p = int(outcome.removed_node)
        if p == self.root:
            raise MutationError("cannot repair a view whose root was detached")
        nm = outcome.node_map
        em = outcome.edge_map
        keep = np.ones(self._parent.shape[0], dtype=bool)
        keep[p] = False
        par = self._parent[keep]
        parent = np.where(par >= 0, nm[par], -1)
        pe = self._parent_edge[keep]
        parent_edge = np.where(pe >= 0, em[pe], -1)
        depth = self._depth[keep]
        order = nm[self._order[self._order != p]]
        sizes = self._subtree_size.copy()
        x = int(self._parent[p])
        while x >= 0:
            sizes[x] -= 1
            x = int(self._parent[x])
        sizes = sizes[keep]
        return self._from_parts(
            new_net, int(nm[self.root]), parent, parent_edge, depth, order,
            None, int(depth.max()), sizes,
        )

    def _repaired_split(self, new_net, new_root: int, outcome) -> "RootedTree":
        b = int(outcome.touched_bus)
        w = int(outcome.new_node)
        moved = tuple(int(m) for m in outcome.moved_nodes)
        if int(self._parent[b]) in moved:
            # The split was validated against the canonical rooting; for a
            # view rooted elsewhere the moved set may contain this view's
            # parent of b, which changes the structure above b.  Rare and
            # root-specific: rebuild this view from scratch.
            return RootedTree(new_net, new_root)
        self._ensure_children()
        affected: List[int] = []
        stack = list(moved)
        while stack:
            u = stack.pop()
            affected.append(u)
            stack.extend(self._children[u])
        aff = np.asarray(affected, dtype=np.int64)

        parent = np.append(self._parent, b)
        parent[list(moved)] = w
        parent_edge = np.append(self._parent_edge, int(outcome.new_edge))
        depth = np.append(self._depth, self._depth[b] + 1)
        depth[aff] += 1
        pos = int(np.nonzero(self._order == b)[0][0])
        order = np.insert(self._order, pos + 1, w)
        moved_set = set(moved)
        children = list(self._children)
        children[b] = tuple([c for c in children[b] if c not in moved_set] + [w])
        children.append(moved)
        sizes = self._subtree_size.copy()
        w_size = 1 + int(sum(self._subtree_size[m] for m in moved))
        x = b
        while x >= 0:
            sizes[x] += 1
            x = int(self._parent[x])
        sizes = np.append(sizes, w_size)
        return self._from_parts(
            new_net, new_root, parent, parent_edge, depth, order, children,
            int(depth.max()), sizes,
        )

    # ------------------------------------------------------------------ #
    # structural accessors
    # ------------------------------------------------------------------ #
    @property
    def height(self) -> int:
        """Height of the tree for this root (max depth)."""
        return self._height

    def parent(self, node: int) -> int:
        """Parent of ``node`` (``-1`` for the root)."""
        return int(self._parent[node])

    def parent_edge_id(self, node: int) -> int:
        """Id of the edge connecting ``node`` to its parent (``-1`` for root)."""
        return int(self._parent_edge[node])

    def children(self, node: int) -> Tuple[int, ...]:
        """Children of ``node`` in ascending id order."""
        self._ensure_children()
        return self._children[node]

    def depth(self, node: int) -> int:
        """Depth of ``node`` (root has depth 0)."""
        return int(self._depth[node])

    def level(self, node: int) -> int:
        """Paper level of ``node``: ``height(T) - depth(node)``."""
        return self._height - int(self._depth[node])

    def subtree_size(self, node: int) -> int:
        """Number of nodes in the maximal subtree ``T(node)``."""
        return int(self._subtree_size[node])

    @property
    def preorder(self) -> Sequence[int]:
        """Nodes in a topological order (every parent before its children).

        On a freshly-built view this is a DFS preorder; on a view produced
        by :meth:`repaired` it is only guaranteed to be *topological* --
        subtrees need not occupy contiguous slices.  All in-repo consumers
        (subtree aggregation, CSR construction) rely only on the
        parents-first property.
        """
        return tuple(int(v) for v in self._order)

    @property
    def postorder(self) -> Sequence[int]:
        """Nodes in a topological order reversed (children before parents).

        Same caveat as :attr:`preorder`: contiguous-subtree DFS structure
        is only guaranteed on freshly-built views.
        """
        return tuple(int(v) for v in self._order[::-1])

    def nodes_by_level(self) -> Dict[int, List[int]]:
        """Group node ids by paper level, ``{level: [nodes...]}``."""
        groups: Dict[int, List[int]] = {}
        for v in range(self.network.n_nodes):
            groups.setdefault(self.level(v), []).append(v)
        for lst in groups.values():
            lst.sort()
        return groups

    def is_ancestor(self, anc: int, node: int) -> bool:
        """``True`` iff ``anc`` lies on the path from ``node`` to the root.

        A node is considered an ancestor of itself.
        """
        # Walk up from node; depth difference bounds the walk length.
        while self._depth[node] > self._depth[anc]:
            node = int(self._parent[node])
        return node == anc

    # ------------------------------------------------------------------ #
    # paths
    # ------------------------------------------------------------------ #
    def lca(self, u: int, v: int) -> int:
        """Lowest common ancestor of ``u`` and ``v``."""
        du, dv = int(self._depth[u]), int(self._depth[v])
        while du > dv:
            u = int(self._parent[u])
            du -= 1
        while dv > du:
            v = int(self._parent[v])
            dv -= 1
        while u != v:
            u = int(self._parent[u])
            v = int(self._parent[v])
        return u

    def path_nodes(self, u: int, v: int) -> List[int]:
        """The unique path from ``u`` to ``v`` as a node sequence."""
        a = self.lca(u, v)
        up: List[int] = []
        x = u
        while x != a:
            up.append(x)
            x = int(self._parent[x])
        down: List[int] = []
        x = v
        while x != a:
            down.append(x)
            x = int(self._parent[x])
        return up + [a] + down[::-1]

    def path_edge_ids(self, u: int, v: int) -> List[int]:
        """Edge ids of the unique path from ``u`` to ``v`` (may be empty)."""
        a = self.lca(u, v)
        edges: List[int] = []
        x = u
        while x != a:
            edges.append(int(self._parent_edge[x]))
            x = int(self._parent[x])
        tail: List[int] = []
        x = v
        while x != a:
            tail.append(int(self._parent_edge[x]))
            x = int(self._parent[x])
        return edges + tail[::-1]

    def distance(self, u: int, v: int) -> int:
        """Number of edges on the path from ``u`` to ``v``."""
        a = self.lca(u, v)
        return int(self._depth[u] + self._depth[v] - 2 * self._depth[a])

    # ------------------------------------------------------------------ #
    # subtree aggregation and Steiner trees
    # ------------------------------------------------------------------ #
    def subtree_sums(self, values: np.ndarray) -> np.ndarray:
        """Sum the per-node ``values`` over every maximal subtree ``T(v)``.

        Returns an array ``s`` with ``s[v] = sum(values[u] for u in T(v))``
        where ``T(v)`` is the maximal subtree containing ``v`` but not its
        parent (the paper's definition in Section 3.1).
        """
        values = np.asarray(values)
        if values.shape[0] != self.network.n_nodes:
            raise ValueError("values must have one entry per node")
        sums = values.astype(np.float64 if values.dtype.kind == "f" else np.int64).copy()
        for u in self._order[::-1]:
            p = self._parent[u]
            if p >= 0:
                sums[p] += sums[u]
        return sums

    def steiner_edge_ids(self, terminals: Iterable[int]) -> List[int]:
        """Edges of the minimal subtree connecting ``terminals``.

        Used for the write-broadcast cost: a write to object ``x`` loads every
        edge of the Steiner tree connecting the holder set ``P_x``.
        Returns an empty list when fewer than two terminals are given.
        """
        term = sorted(set(int(t) for t in terminals))
        for t in term:
            if not 0 <= t < self.network.n_nodes:
                raise InvalidNodeError(f"invalid terminal {t}")
        if len(term) <= 1:
            return []
        marks = np.zeros(self.network.n_nodes, dtype=np.int64)
        marks[term] = 1
        counts = self.subtree_sums(marks)
        total = len(term)
        edges: List[int] = []
        for v in range(self.network.n_nodes):
            p = self._parent[v]
            if p < 0:
                continue
            below = counts[v]
            if 0 < below < total:
                edges.append(int(self._parent_edge[v]))
        return edges

    def steiner_node_ids(self, terminals: Iterable[int]) -> List[int]:
        """Nodes of the minimal subtree connecting ``terminals``.

        For a single terminal this is the terminal itself; for an empty set
        the result is empty.
        """
        term = sorted(set(int(t) for t in terminals))
        if not term:
            return []
        if len(term) == 1:
            return term
        nodes = set(term)
        for eid in self.steiner_edge_ids(term):
            e = self.network.edge_endpoints(eid)
            nodes.add(e.u)
            nodes.add(e.v)
        return sorted(nodes)

    def nearest_in_set(self, node: int, candidates: Iterable[int]) -> int:
        """Return the candidate closest to ``node`` (ties: smallest id).

        Used to pick the reference copy ``c(P, x)`` as the copy of ``x``
        stored on the node closest to ``P`` (Section 3.2).
        """
        cands = sorted(set(int(c) for c in candidates))
        if not cands:
            raise InvalidNodeError("candidate set must not be empty")
        best = cands[0]
        best_dist = self.distance(node, best)
        for c in cands[1:]:
            d = self.distance(node, c)
            if d < best_dist:
                best, best_dist = c, d
        return best
