"""Ready-made hierarchical bus network topologies.

All builders return a validated
:class:`~repro.network.tree.HierarchicalBusNetwork` whose leaves are
processors and whose inner nodes are buses.  The paper's model assumes that
processor switch edges have bandwidth one and that all other bandwidths are
at least one; the builders follow that convention but allow overriding the
bus and trunk bandwidths to explore other regimes.

The builders cover the topology families used by the benchmark harness:

* :func:`single_bus` -- one bus with ``n`` processors (a single SCI ringlet).
* :func:`balanced_tree` -- complete ``arity``-ary bus tree of given depth
  with processors at the lowest bus level.
* :func:`random_tree` -- random bus tree with processors attached.
* :func:`path_of_buses` / :func:`caterpillar` -- deep, thin topologies.
* :func:`star_of_buses` -- one root bus with child buses (hierarchical
  switch, Figure 2 of the paper).
* :func:`fat_tree` -- balanced tree whose bus/trunk bandwidths grow towards
  the root (a common NOW/MPP configuration).
* :func:`hardness_gadget` -- the 4-ary height-1 tree of Theorem 2.1.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import TopologyError
from repro.network.tree import HierarchicalBusNetwork, NetworkBuilder

__all__ = [
    "single_bus",
    "balanced_tree",
    "random_tree",
    "path_of_buses",
    "caterpillar",
    "star_of_buses",
    "fat_tree",
    "hardness_gadget",
]


def single_bus(
    n_processors: int,
    bus_bandwidth: float = 1.0,
    name: str = "bus",
) -> HierarchicalBusNetwork:
    """One bus with ``n_processors`` processor leaves.

    Models a single SCI ringlet (Section 1 of the paper): all processors
    share the bandwidth of one bus.
    """
    if n_processors < 2:
        raise TopologyError("single_bus requires at least two processors")
    b = NetworkBuilder()
    bus = b.add_bus(name, bandwidth=bus_bandwidth)
    for i in range(n_processors):
        p = b.add_processor(f"p{i}")
        b.connect(p, bus, bandwidth=1.0)
    return b.build()


def balanced_tree(
    arity: int,
    depth: int,
    leaves_per_bus: int = 2,
    bus_bandwidth: float = 1.0,
    trunk_bandwidth: float = 1.0,
) -> HierarchicalBusNetwork:
    """Complete ``arity``-ary tree of buses with processors at the bottom.

    Parameters
    ----------
    arity:
        Number of child buses of each non-leaf-level bus.
    depth:
        Number of bus levels (``depth == 1`` gives a single bus).
    leaves_per_bus:
        Number of processors attached to each lowest-level bus.
    bus_bandwidth:
        Bandwidth of every bus.
    trunk_bandwidth:
        Bandwidth of bus-to-bus edges (processor switches keep bandwidth 1).
    """
    if arity < 1 or depth < 1 or leaves_per_bus < 1:
        raise TopologyError("arity, depth and leaves_per_bus must be >= 1")
    b = NetworkBuilder()
    root = b.add_bus("b0", bandwidth=bus_bandwidth)
    frontier = [root]
    for level in range(1, depth):
        new_frontier = []
        for parent in frontier:
            for _ in range(arity):
                bus = b.add_bus(f"b{b.n_nodes}", bandwidth=bus_bandwidth)
                b.connect(bus, parent, bandwidth=trunk_bandwidth)
                new_frontier.append(bus)
        frontier = new_frontier
    for bus in frontier:
        for _ in range(max(leaves_per_bus, 1)):
            p = b.add_processor(f"p{b.n_nodes}")
            b.connect(p, bus, bandwidth=1.0)
    # A depth-1 tree with a single leaf per bus would make the bus a degree-1
    # node; the validation below catches that, but give a clearer error.
    net = b.build(validate=False)
    if depth == 1 and leaves_per_bus < 2:
        raise TopologyError("a single bus needs at least two processors")
    net.validate()
    return net


def random_tree(
    n_buses: int,
    n_processors: int,
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = None,
    bus_bandwidth: float = 1.0,
    trunk_bandwidth: float = 1.0,
) -> HierarchicalBusNetwork:
    """Random bus tree with processors attached to random buses.

    The bus tree is drawn by attaching bus ``i`` to a uniformly random
    earlier bus (a random recursive tree); each processor is attached to a
    uniformly random bus.  Buses that would end up as leaves receive an
    extra processor so the result is a valid hierarchical bus network.
    """
    if n_buses < 1:
        raise TopologyError("need at least one bus")
    if n_processors < 2:
        raise TopologyError("need at least two processors")
    if rng is None:
        rng = np.random.default_rng(seed)
    b = NetworkBuilder()
    buses = [b.add_bus("b0", bandwidth=bus_bandwidth)]
    for i in range(1, n_buses):
        parent = buses[int(rng.integers(0, len(buses)))]
        bus = b.add_bus(f"b{i}", bandwidth=bus_bandwidth)
        b.connect(bus, parent, bandwidth=trunk_bandwidth)
        buses.append(bus)
    attach_counts = [0] * n_buses
    for i in range(n_processors):
        idx = int(rng.integers(0, n_buses))
        p = b.add_processor(f"p{i}")
        b.connect(p, buses[idx], bandwidth=1.0)
        attach_counts[idx] += 1
    net = b.build(validate=False)
    # Fix up buses that are still leaves (degree 1): attach one processor.
    extra = 0
    builder2 = NetworkBuilder()
    # Rebuild only if needed, to keep ids stable in the common case.
    needs_fix = any(
        net.degree(bus) < 2 for bus in net.buses
    )
    if not needs_fix:
        net.validate()
        return net
    # Rebuild with extra processors appended at the end.
    id_map = {}
    for node in net.nodes():
        if net.is_bus(node):
            id_map[node] = builder2.add_bus(net.name(node), net.bus_bandwidth(node))
        else:
            id_map[node] = builder2.add_processor(net.name(node))
    for e in net.edges:
        builder2.connect(id_map[e.u], id_map[e.v], net.edge_bandwidth(e.u, e.v))
    for bus in net.buses:
        if net.degree(bus) < 2:
            p = builder2.add_processor(f"pfix{extra}")
            builder2.connect(p, id_map[bus], bandwidth=1.0)
            extra += 1
    return builder2.build()


def path_of_buses(
    n_buses: int,
    leaves_per_bus: int = 1,
    bus_bandwidth: float = 1.0,
    trunk_bandwidth: float = 1.0,
) -> HierarchicalBusNetwork:
    """A path of ``n_buses`` buses, each with ``leaves_per_bus`` processors.

    Produces the deepest possible bus hierarchy for a given number of buses
    (height ``n_buses + 1``); useful for runtime-scaling experiments in
    ``height(T)``.
    """
    if n_buses < 1:
        raise TopologyError("need at least one bus")
    if leaves_per_bus < 1:
        raise TopologyError("need at least one processor per bus")
    b = NetworkBuilder()
    prev = None
    buses = []
    for i in range(n_buses):
        bus = b.add_bus(f"b{i}", bandwidth=bus_bandwidth)
        if prev is not None:
            b.connect(bus, prev, bandwidth=trunk_bandwidth)
        buses.append(bus)
        prev = bus
    for i, bus in enumerate(buses):
        count = leaves_per_bus
        # End buses need enough leaves to not be degree-1 nodes.
        if n_buses == 1:
            count = max(count, 2)
        elif (i == 0 or i == n_buses - 1) and leaves_per_bus < 1:
            count = 1
        for j in range(count):
            p = b.add_processor(f"p{i}_{j}")
            b.connect(p, bus, bandwidth=1.0)
    return b.build()


def caterpillar(
    spine_length: int,
    legs: int = 2,
    bus_bandwidth: float = 1.0,
    trunk_bandwidth: float = 1.0,
) -> HierarchicalBusNetwork:
    """Caterpillar topology: a spine of buses, ``legs`` processors per bus."""
    if legs < 1:
        raise TopologyError("need at least one leg per spine bus")
    return path_of_buses(
        spine_length,
        leaves_per_bus=legs,
        bus_bandwidth=bus_bandwidth,
        trunk_bandwidth=trunk_bandwidth,
    )


def star_of_buses(
    n_child_buses: int,
    leaves_per_bus: int,
    root_bandwidth: float = 1.0,
    bus_bandwidth: float = 1.0,
    trunk_bandwidth: float = 1.0,
) -> HierarchicalBusNetwork:
    """A root bus connected to ``n_child_buses`` buses with processor leaves.

    This is the shape of Figure 2 in the paper: two leaf-level buses joined
    by a higher-level bus via switches.
    """
    if n_child_buses < 1 or leaves_per_bus < 1:
        raise TopologyError("need at least one child bus and one leaf per bus")
    b = NetworkBuilder()
    root = b.add_bus("root", bandwidth=root_bandwidth)
    if n_child_buses == 1 and leaves_per_bus < 2:
        raise TopologyError("degenerate star: child bus would be a leaf")
    for i in range(n_child_buses):
        bus = b.add_bus(f"b{i}", bandwidth=bus_bandwidth)
        b.connect(bus, root, bandwidth=trunk_bandwidth)
        for j in range(leaves_per_bus):
            p = b.add_processor(f"p{i}_{j}")
            b.connect(p, bus, bandwidth=1.0)
    if n_child_buses == 1:
        # Root would be degree 1; attach a processor directly to the root.
        p = b.add_processor("p_root")
        b.connect(p, root, bandwidth=1.0)
    return b.build()


def fat_tree(
    arity: int,
    depth: int,
    leaves_per_bus: int = 2,
    base_bandwidth: float = 1.0,
    fatness: float = 2.0,
) -> HierarchicalBusNetwork:
    """Balanced bus tree whose bandwidths grow geometrically towards the root.

    Level-``l`` buses (counting the leaf-level buses as level 0) have
    bandwidth ``base_bandwidth * fatness**l`` and the trunk edge to their
    parent has the same bandwidth, reflecting fat-tree style provisioning.
    """
    if arity < 1 or depth < 1 or leaves_per_bus < 1:
        raise TopologyError("arity, depth and leaves_per_bus must be >= 1")
    if fatness <= 0:
        raise TopologyError("fatness must be positive")
    b = NetworkBuilder()
    # level of the root (leaf-level buses are level 0)
    root_level = depth - 1
    root = b.add_bus("b0", bandwidth=base_bandwidth * fatness**root_level)
    frontier = [(root, root_level)]
    for _ in range(1, depth):
        new_frontier = []
        for parent, plevel in frontier:
            for _ in range(arity):
                level = plevel - 1
                bw = base_bandwidth * fatness**level
                bus = b.add_bus(f"b{b.n_nodes}", bandwidth=bw)
                b.connect(bus, parent, bandwidth=base_bandwidth * fatness ** (level + 1))
                new_frontier.append((bus, level))
        frontier = new_frontier
    for bus, _level in frontier:
        count = max(leaves_per_bus, 2 if depth == 1 else 1)
        for _ in range(count):
            p = b.add_processor(f"p{b.n_nodes}")
            b.connect(p, bus, bandwidth=1.0)
    return b.build()


def hardness_gadget(bus_bandwidth: float = 1.0e9) -> HierarchicalBusNetwork:
    """The 4-ary height-1 tree used in the NP-hardness proof (Theorem 2.1).

    Four processors named ``a``, ``b``, ``s`` and ``sbar`` attached to a
    single bus.  The bus bandwidth is "sufficiently large such that the load
    on the edges is dominating" (the proof's assumption); the default makes
    it effectively unconstrained.
    """
    b = NetworkBuilder()
    bus = b.add_bus("bus", bandwidth=bus_bandwidth)
    for name in ("a", "b", "s", "sbar"):
        p = b.add_processor(name)
        b.connect(p, bus, bandwidth=1.0)
    return b.build()
