"""Structural metrics of hierarchical bus networks.

These helpers report the quantities that appear in the paper's runtime
bounds -- ``|P ∪ B|``, ``height(T)`` and ``degree(T)`` -- plus a few extra
statistics used by the scaling experiments (diameter, processor/bus counts,
bandwidth summaries).
"""

from __future__ import annotations

from dataclasses import dataclass, asdict
from typing import Dict, Optional

import numpy as np

from repro.network.tree import HierarchicalBusNetwork

__all__ = ["NetworkMetrics", "compute_metrics", "diameter", "eccentricity"]


@dataclass(frozen=True)
class NetworkMetrics:
    """Summary statistics of a network topology."""

    n_nodes: int
    n_processors: int
    n_buses: int
    n_edges: int
    height: int
    max_degree: int
    diameter: int
    mean_bus_degree: float
    min_edge_bandwidth: float
    max_edge_bandwidth: float
    min_bus_bandwidth: float
    max_bus_bandwidth: float

    def as_dict(self) -> Dict[str, float]:
        """Return the metrics as a plain dictionary (for reports/JSON)."""
        return asdict(self)


def eccentricity(network: HierarchicalBusNetwork, node: int) -> int:
    """Maximum distance from ``node`` to any other node."""
    rooted = network.rooted(node)
    return rooted.height


def diameter(network: HierarchicalBusNetwork) -> int:
    """Diameter of the tree (longest path, in edges).

    Computed with the classical double-BFS trick: the farthest node from an
    arbitrary start is one end of a diameter.
    """
    if network.n_nodes == 1:
        return 0
    r0 = network.rooted(0)
    far = max(network.nodes(), key=lambda v: (r0.depth(v), -v))
    r1 = network.rooted(far)
    return r1.height


def compute_metrics(
    network: HierarchicalBusNetwork, root: Optional[int] = None
) -> NetworkMetrics:
    """Compute a :class:`NetworkMetrics` summary for ``network``."""
    bus_degrees = [network.degree(b) for b in network.buses]
    edge_bw = np.asarray(network.edge_bandwidths, dtype=np.float64)
    if network.buses:
        bus_bw = np.asarray(
            [network.bus_bandwidth(b) for b in network.buses], dtype=np.float64
        )
    else:
        bus_bw = np.asarray([1.0])
    return NetworkMetrics(
        n_nodes=network.n_nodes,
        n_processors=network.n_processors,
        n_buses=network.n_buses,
        n_edges=network.n_edges,
        height=network.height(root),
        max_degree=network.max_degree(),
        diameter=diameter(network),
        mean_bus_degree=float(np.mean(bus_degrees)) if bus_degrees else 0.0,
        min_edge_bandwidth=float(edge_bw.min()) if edge_bw.size else 1.0,
        max_edge_bandwidth=float(edge_bw.max()) if edge_bw.size else 1.0,
        min_bus_bandwidth=float(bus_bw.min()),
        max_bus_bandwidth=float(bus_bw.max()),
    )
