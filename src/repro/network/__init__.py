"""Network model for hierarchical bus networks.

The subpackage provides the tree data structure (:mod:`repro.network.tree`),
rooted views with paths, levels and Steiner trees
(:mod:`repro.network.rooted`), ready-made topologies
(:mod:`repro.network.builders`), the SCI ring-of-rings substrate and its
conversion to a bus network (:mod:`repro.network.sci`), structural metrics
(:mod:`repro.network.metrics`) and JSON serialization
(:mod:`repro.network.serialization`).
"""

from repro.network.node import BusSpec, NodeKind, NodeSpec, ProcessorSpec
from repro.network.tree import Edge, HierarchicalBusNetwork, NetworkBuilder
from repro.network.rooted import RootedTree
from repro.network.builders import (
    balanced_tree,
    caterpillar,
    fat_tree,
    hardness_gadget,
    path_of_buses,
    random_tree,
    single_bus,
    star_of_buses,
)
from repro.network.metrics import NetworkMetrics, compute_metrics, diameter
from repro.network.mutation import (
    AttachLeaf,
    ChurnTrace,
    DetachLeaf,
    Mutation,
    MutationOutcome,
    SetBusBandwidth,
    SetEdgeBandwidth,
    SplitBus,
    TimedMutation,
    apply_mutation,
    apply_mutations,
)
from repro.network.sci import BusConversion, SCIFabric, ring_of_rings, transaction_ring_load
from repro.network.serialization import (
    load_network,
    network_from_dict,
    network_to_dict,
    save_network,
)

__all__ = [
    "NodeKind",
    "NodeSpec",
    "ProcessorSpec",
    "BusSpec",
    "Edge",
    "HierarchicalBusNetwork",
    "NetworkBuilder",
    "RootedTree",
    "single_bus",
    "balanced_tree",
    "random_tree",
    "path_of_buses",
    "caterpillar",
    "star_of_buses",
    "fat_tree",
    "hardness_gadget",
    "NetworkMetrics",
    "compute_metrics",
    "diameter",
    "Mutation",
    "SetEdgeBandwidth",
    "SetBusBandwidth",
    "AttachLeaf",
    "DetachLeaf",
    "SplitBus",
    "MutationOutcome",
    "apply_mutation",
    "apply_mutations",
    "TimedMutation",
    "ChurnTrace",
    "SCIFabric",
    "BusConversion",
    "ring_of_rings",
    "transaction_ring_load",
    "network_to_dict",
    "network_from_dict",
    "save_network",
    "load_network",
]
