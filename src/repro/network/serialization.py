"""JSON (de)serialization of hierarchical bus networks.

The on-disk format is a small, stable dictionary::

    {
      "format": "repro.network/v1",
      "nodes": [
        {"id": 0, "kind": "bus", "name": "root", "bandwidth": 4.0},
        {"id": 1, "kind": "processor", "name": "p0"},
        ...
      ],
      "edges": [
        {"u": 0, "v": 1, "bandwidth": 1.0},
        ...
      ]
    }

Node ids must be dense ``0..n-1``; the decoder validates the topology via
the normal :class:`~repro.network.tree.HierarchicalBusNetwork` constructor.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

from repro.errors import SerializationError
from repro.network.node import BusSpec, NodeSpec, ProcessorSpec
from repro.network.tree import HierarchicalBusNetwork

__all__ = [
    "network_to_dict",
    "network_from_dict",
    "save_network",
    "load_network",
    "FORMAT_TAG",
]

FORMAT_TAG = "repro.network/v1"


def network_to_dict(network: HierarchicalBusNetwork) -> Dict[str, Any]:
    """Encode ``network`` into a JSON-serialisable dictionary."""
    nodes = []
    for node in network.nodes():
        entry: Dict[str, Any] = {
            "id": int(node),
            "kind": "bus" if network.is_bus(node) else "processor",
            "name": network.name(node),
        }
        if network.is_bus(node):
            entry["bandwidth"] = float(network.bus_bandwidth(node))
        nodes.append(entry)
    edges = []
    for eid, e in enumerate(network.edges):
        edges.append(
            {
                "u": int(e.u),
                "v": int(e.v),
                "bandwidth": float(network.edge_bandwidth(eid)),
            }
        )
    return {"format": FORMAT_TAG, "nodes": nodes, "edges": edges}


def network_from_dict(data: Dict[str, Any]) -> HierarchicalBusNetwork:
    """Decode a dictionary produced by :func:`network_to_dict`."""
    if not isinstance(data, dict):
        raise SerializationError("network document must be a mapping")
    if data.get("format") != FORMAT_TAG:
        raise SerializationError(
            f"unsupported network format {data.get('format')!r}; "
            f"expected {FORMAT_TAG!r}"
        )
    try:
        raw_nodes = list(data["nodes"])
        raw_edges = list(data["edges"])
    except KeyError as exc:
        raise SerializationError(f"missing key {exc} in network document") from None

    n = len(raw_nodes)
    specs: list[NodeSpec] = [ProcessorSpec()] * n
    seen = [False] * n
    for entry in raw_nodes:
        try:
            node_id = int(entry["id"])
            kind = str(entry["kind"])
        except (KeyError, TypeError, ValueError) as exc:
            raise SerializationError(f"malformed node entry {entry!r}") from exc
        if not 0 <= node_id < n or seen[node_id]:
            raise SerializationError(f"node ids must be dense and unique, got {node_id}")
        seen[node_id] = True
        name = entry.get("name")
        if kind == "bus":
            specs[node_id] = BusSpec(name, float(entry.get("bandwidth", 1.0)))
        elif kind == "processor":
            specs[node_id] = ProcessorSpec(name)
        else:
            raise SerializationError(f"unknown node kind {kind!r}")

    edges = []
    bandwidths = {}
    for entry in raw_edges:
        try:
            u, v = int(entry["u"]), int(entry["v"])
        except (KeyError, TypeError, ValueError) as exc:
            raise SerializationError(f"malformed edge entry {entry!r}") from exc
        edges.append((u, v))
        bandwidths[(min(u, v), max(u, v))] = float(entry.get("bandwidth", 1.0))

    try:
        return HierarchicalBusNetwork(specs, edges, edge_bandwidths=bandwidths)
    except Exception as exc:  # re-wrap topology errors for callers of the loader
        raise SerializationError(f"decoded network is invalid: {exc}") from exc


def save_network(network: HierarchicalBusNetwork, path: Union[str, Path]) -> None:
    """Write ``network`` to ``path`` as pretty-printed JSON."""
    Path(path).write_text(json.dumps(network_to_dict(network), indent=2))


def load_network(path: Union[str, Path]) -> HierarchicalBusNetwork:
    """Load a network previously written by :func:`save_network`."""
    try:
        data = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise SerializationError(f"invalid JSON in {path}: {exc}") from exc
    return network_from_dict(data)
