"""SCI (Scalable Coherent Interface) ring-of-rings substrate.

The paper motivates hierarchical bus networks with SCI clusters: large SCI
installations are composed of small unidirectional *ringlets* linked by
*switches* (Figure 1).  Because SCI uses request--response transactions, a
message between two stations of a ringlet effectively travels once around
the whole ring, so -- as far as load accounting is concerned -- a ringlet
behaves exactly like a bus shared by all its stations, and a tree-like
connected ring network behaves like a hierarchical bus network (Figure 2).

This module implements that substrate:

* :class:`SCIFabric` describes processors, ringlets and switches and checks
  that the ringlets are tree-like connected;
* :meth:`SCIFabric.to_bus_network` performs the Figure 1 → Figure 2
  conversion, returning a :class:`~repro.network.tree.HierarchicalBusNetwork`
  together with the node-id mapping;
* :func:`transaction_ring_load` computes the per-ringlet / per-switch load of
  a set of end-to-end transactions in the ring model, which experiment E1
  compares against the bus-model load of the converted network.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.errors import InvalidNodeError, TopologyError
from repro.network.tree import HierarchicalBusNetwork, NetworkBuilder

__all__ = [
    "SCIFabric",
    "BusConversion",
    "transaction_ring_load",
    "ring_of_rings",
]


@dataclass(frozen=True)
class _Ringlet:
    """Internal description of one SCI ringlet."""

    ringlet_id: int
    name: str
    bandwidth: float


@dataclass(frozen=True)
class _Switch:
    """Internal description of one SCI switch linking two ringlets."""

    switch_id: int
    ringlet_a: int
    ringlet_b: int
    bandwidth: float


@dataclass(frozen=True)
class BusConversion:
    """Result of converting an :class:`SCIFabric` to a bus network.

    Attributes
    ----------
    network:
        The equivalent hierarchical bus network.
    processor_node:
        Maps fabric processor ids to node ids in ``network``.
    ringlet_node:
        Maps ringlet ids to the bus node representing them.
    switch_edge:
        Maps switch ids to the edge id representing them.
    """

    network: HierarchicalBusNetwork
    processor_node: Mapping[int, int]
    ringlet_node: Mapping[int, int]
    switch_edge: Mapping[int, int]


class SCIFabric:
    """A tree-like connected collection of SCI ringlets.

    Example
    -------
    >>> fab = SCIFabric()
    >>> top = fab.add_ringlet("top", bandwidth=2.0)
    >>> left = fab.add_ringlet("left")
    >>> right = fab.add_ringlet("right")
    >>> _ = fab.add_switch(left, top)
    >>> _ = fab.add_switch(right, top)
    >>> ps = [fab.add_processor(left) for _ in range(3)]
    >>> ps += [fab.add_processor(right) for _ in range(3)]
    >>> conv = fab.to_bus_network()
    >>> conv.network.n_buses, conv.network.n_processors
    (3, 6)
    """

    def __init__(self) -> None:
        self._ringlets: List[_Ringlet] = []
        self._switches: List[_Switch] = []
        self._processors: List[Tuple[int, str]] = []  # (ringlet_id, name)

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @property
    def n_ringlets(self) -> int:
        """Number of ringlets added so far."""
        return len(self._ringlets)

    @property
    def n_switches(self) -> int:
        """Number of switches added so far."""
        return len(self._switches)

    @property
    def n_processors(self) -> int:
        """Number of processors added so far."""
        return len(self._processors)

    def add_ringlet(self, name: Optional[str] = None, bandwidth: float = 1.0) -> int:
        """Add a ringlet and return its id."""
        if bandwidth <= 0:
            raise TopologyError("ringlet bandwidth must be positive")
        rid = len(self._ringlets)
        self._ringlets.append(
            _Ringlet(rid, name if name is not None else f"ring{rid}", bandwidth)
        )
        return rid

    def add_switch(self, ringlet_a: int, ringlet_b: int, bandwidth: float = 1.0) -> int:
        """Connect two ringlets with an SCI switch and return the switch id."""
        for r in (ringlet_a, ringlet_b):
            if not 0 <= r < self.n_ringlets:
                raise InvalidNodeError(f"unknown ringlet {r}")
        if ringlet_a == ringlet_b:
            raise TopologyError("a switch must connect two distinct ringlets")
        if bandwidth <= 0:
            raise TopologyError("switch bandwidth must be positive")
        sid = len(self._switches)
        self._switches.append(_Switch(sid, ringlet_a, ringlet_b, bandwidth))
        return sid

    def add_processor(self, ringlet: int, name: Optional[str] = None) -> int:
        """Attach a processor station to ``ringlet`` and return its id."""
        if not 0 <= ringlet < self.n_ringlets:
            raise InvalidNodeError(f"unknown ringlet {ringlet}")
        pid = len(self._processors)
        self._processors.append(
            (ringlet, name if name is not None else f"p{pid}")
        )
        return pid

    def processor_ringlet(self, processor: int) -> int:
        """Return the ringlet a processor station belongs to."""
        if not 0 <= processor < self.n_processors:
            raise InvalidNodeError(f"unknown processor {processor}")
        return self._processors[processor][0]

    def ringlet_processors(self, ringlet: int) -> List[int]:
        """All processor ids attached to ``ringlet``."""
        if not 0 <= ringlet < self.n_ringlets:
            raise InvalidNodeError(f"unknown ringlet {ringlet}")
        return [pid for pid, (rid, _name) in enumerate(self._processors) if rid == ringlet]

    # ------------------------------------------------------------------ #
    # validation / ring routing
    # ------------------------------------------------------------------ #
    def _ringlet_adjacency(self) -> List[List[Tuple[int, int]]]:
        """Adjacency of the ringlet graph: per ringlet, (neighbour, switch id)."""
        adj: List[List[Tuple[int, int]]] = [[] for _ in range(self.n_ringlets)]
        for sw in self._switches:
            adj[sw.ringlet_a].append((sw.ringlet_b, sw.switch_id))
            adj[sw.ringlet_b].append((sw.ringlet_a, sw.switch_id))
        return adj

    def validate(self) -> None:
        """Check that the ringlet graph is a tree and every ringlet is used."""
        n = self.n_ringlets
        if n == 0:
            raise TopologyError("the fabric has no ringlets")
        if len(self._switches) != n - 1:
            raise TopologyError(
                f"tree-like connected ringlets need exactly {n - 1} switches, "
                f"got {len(self._switches)}"
            )
        adj = self._ringlet_adjacency()
        seen = [False] * n
        stack = [0]
        seen[0] = True
        count = 1
        while stack:
            u = stack.pop()
            for v, _sid in adj[u]:
                if not seen[v]:
                    seen[v] = True
                    count += 1
                    stack.append(v)
        if count != n:
            raise TopologyError("the ringlet graph is not connected")
        if self.n_processors < 2:
            raise TopologyError("the fabric needs at least two processors")

    def ringlet_path(self, src_ringlet: int, dst_ringlet: int) -> Tuple[List[int], List[int]]:
        """Return ``(ringlets, switches)`` on the unique ringlet-tree path."""
        self.validate()
        adj = self._ringlet_adjacency()
        parent = {src_ringlet: (-1, -1)}
        stack = [src_ringlet]
        while stack:
            u = stack.pop()
            if u == dst_ringlet:
                break
            for v, sid in adj[u]:
                if v not in parent:
                    parent[v] = (u, sid)
                    stack.append(v)
        if dst_ringlet not in parent:
            raise TopologyError("ringlet graph is not connected")
        ringlets: List[int] = []
        switches: List[int] = []
        cur = dst_ringlet
        while cur != -1:
            ringlets.append(cur)
            prev, sid = parent[cur]
            if sid >= 0:
                switches.append(sid)
            cur = prev
        ringlets.reverse()
        switches.reverse()
        return ringlets, switches

    # ------------------------------------------------------------------ #
    # conversion (Figure 1 -> Figure 2)
    # ------------------------------------------------------------------ #
    def to_bus_network(self) -> BusConversion:
        """Convert the fabric into the equivalent hierarchical bus network.

        Every ringlet becomes a bus with the ringlet's bandwidth, every switch
        becomes a bus--bus edge with the switch's bandwidth, and every
        processor station becomes a processor leaf attached to its ringlet's
        bus with a bandwidth-1 switch edge (the paper's "slowest part of the
        system" assumption).
        """
        self.validate()
        builder = NetworkBuilder()
        ringlet_node: Dict[int, int] = {}
        for ring in self._ringlets:
            ringlet_node[ring.ringlet_id] = builder.add_bus(ring.name, ring.bandwidth)
        processor_node: Dict[int, int] = {}
        for pid, (rid, name) in enumerate(self._processors):
            node = builder.add_processor(name)
            builder.connect(node, ringlet_node[rid], bandwidth=1.0)
            processor_node[pid] = node
        switch_pairs: Dict[int, Tuple[int, int]] = {}
        for sw in self._switches:
            u = ringlet_node[sw.ringlet_a]
            v = ringlet_node[sw.ringlet_b]
            builder.connect(u, v, bandwidth=sw.bandwidth)
            switch_pairs[sw.switch_id] = (u, v)
        network = builder.build()
        switch_edge = {
            sid: network.edge_id(u, v) for sid, (u, v) in switch_pairs.items()
        }
        return BusConversion(
            network=network,
            processor_node=dict(processor_node),
            ringlet_node=dict(ringlet_node),
            switch_edge=dict(switch_edge),
        )


def transaction_ring_load(
    fabric: SCIFabric,
    transactions: Iterable[Tuple[int, int, int]],
) -> Tuple[Dict[int, int], Dict[int, int]]:
    """Per-ringlet and per-switch load of end-to-end transactions.

    Parameters
    ----------
    fabric:
        The SCI fabric.
    transactions:
        Iterable of ``(src_processor, dst_processor, count)`` triples.  Each
        transaction is a request--response pair: it loads every ringlet on
        the ringlet-tree path between the two stations by ``count`` (the
        packet travels once around each ringlet) and every traversed switch
        by ``count``.

    Returns
    -------
    (ringlet_load, switch_load):
        Dictionaries mapping ringlet / switch ids to integer loads.
    """
    ringlet_load: Dict[int, int] = {r: 0 for r in range(fabric.n_ringlets)}
    switch_load: Dict[int, int] = {s: 0 for s in range(fabric.n_switches)}
    for src, dst, count in transactions:
        if count < 0:
            raise ValueError("transaction count must be non-negative")
        if count == 0:
            continue
        r_src = fabric.processor_ringlet(src)
        r_dst = fabric.processor_ringlet(dst)
        if src == dst:
            # A local access does not use the interconnect at all.
            continue
        ringlets, switches = fabric.ringlet_path(r_src, r_dst)
        for r in ringlets:
            ringlet_load[r] += count
        for s in switches:
            switch_load[s] += count
    return ringlet_load, switch_load


def ring_of_rings(
    n_leaf_rings: int,
    processors_per_ring: int,
    top_bandwidth: float = 1.0,
    leaf_bandwidth: float = 1.0,
    switch_bandwidth: float = 1.0,
) -> SCIFabric:
    """Build the Figure-1 topology: a top ringlet joining leaf ringlets.

    Parameters
    ----------
    n_leaf_rings:
        Number of leaf ringlets (each holding processors).
    processors_per_ring:
        Number of processor stations per leaf ringlet.
    top_bandwidth, leaf_bandwidth, switch_bandwidth:
        Bandwidths of the top ring, the leaf rings and the switches.
    """
    if n_leaf_rings < 1 or processors_per_ring < 1:
        raise TopologyError("need at least one leaf ring and one processor per ring")
    fab = SCIFabric()
    top = fab.add_ringlet("top", bandwidth=top_bandwidth)
    for i in range(n_leaf_rings):
        ring = fab.add_ringlet(f"ring{i}", bandwidth=leaf_bandwidth)
        fab.add_switch(ring, top, bandwidth=switch_bandwidth)
        for _j in range(processors_per_ring):
            fab.add_processor(ring)
    return fab
