"""The hierarchical bus network data structure.

A hierarchical bus network (Section 1.1 of the paper) is a weighted tree
``T = (P ∪ B, E, b)``:

* the leaves ``P`` are processors and are the only nodes that may store
  copies of shared data objects and that issue read/write requests,
* the inner nodes ``B`` are buses and can neither store copies nor issue
  requests,
* edges model switches; the function ``b`` assigns bandwidths to edges and
  buses.  The paper assumes processor switches (edges incident to a leaf)
  are the slowest part of the system and have bandwidth one, all other
  bandwidths are at least one.

:class:`HierarchicalBusNetwork` is an immutable, array-backed representation
of such a tree with dense integer node ids.  Use :class:`NetworkBuilder` to
construct instances incrementally, or the ready-made topologies in
:mod:`repro.network.builders`.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import (
    BandwidthError,
    InvalidEdgeError,
    InvalidNodeError,
    NotATreeError,
    TopologyError,
)
from repro.network.node import BusSpec, NodeKind, NodeSpec, ProcessorSpec

__all__ = ["Edge", "HierarchicalBusNetwork", "NetworkBuilder"]


class Edge(Tuple[int, int]):
    """Canonical (sorted) undirected edge ``(u, v)`` with ``u < v``."""

    __slots__ = ()

    def __new__(cls, u: int, v: int) -> "Edge":
        if u == v:
            raise InvalidEdgeError(f"self-loop edge ({u}, {v}) is not allowed")
        if u > v:
            u, v = v, u
        return super().__new__(cls, (u, v))

    @property
    def u(self) -> int:
        """Smaller endpoint."""
        return self[0]

    @property
    def v(self) -> int:
        """Larger endpoint."""
        return self[1]

    def other(self, node: int) -> int:
        """Return the endpoint different from ``node``."""
        if node == self[0]:
            return self[1]
        if node == self[1]:
            return self[0]
        raise InvalidEdgeError(f"node {node} is not an endpoint of {self}")


class HierarchicalBusNetwork:
    """Immutable weighted tree with processor leaves and bus inner nodes.

    Instances should normally be created through :class:`NetworkBuilder` or
    the topology factories in :mod:`repro.network.builders`; the constructor
    performs full validation of the hierarchical-bus-network model.

    Parameters
    ----------
    specs:
        One :class:`~repro.network.node.NodeSpec` per node; the position in
        the sequence is the node id.
    edges:
        Iterable of ``(u, v)`` pairs (order irrelevant).
    edge_bandwidths:
        Optional mapping or sequence giving the bandwidth of each edge.  If a
        sequence is given it must be parallel to ``edges``.  Edges without an
        explicit bandwidth default to 1 (processor switch edges) for edges
        incident to a processor and to 1 for bus-bus edges as well.
    validate:
        If true (default), check that the graph is a tree, that leaves are
        exactly the processors, and that bandwidths are positive.
    """

    __slots__ = (
        "_kinds",
        "_names",
        "_bus_bandwidth",
        "_edges",
        "_edge_index",
        "_edge_bandwidth",
        "_adjacency",
        "_incident_edges",
        "_processors",
        "_buses",
        "_rooted_cache",
    )

    def __init__(
        self,
        specs: Sequence[NodeSpec],
        edges: Iterable[Tuple[int, int]],
        edge_bandwidths: Optional[object] = None,
        validate: bool = True,
    ) -> None:
        n = len(specs)
        if n == 0:
            raise TopologyError("a network must contain at least one node")

        self._kinds = np.array([int(s.kind) for s in specs], dtype=np.int8)
        self._names: List[str] = []
        self._bus_bandwidth = np.ones(n, dtype=np.float64)
        for i, spec in enumerate(specs):
            default = ("p" if spec.is_processor else "b") + str(i)
            self._names.append(spec.name if spec.name is not None else default)
            if spec.is_bus:
                self._bus_bandwidth[i] = float(spec.bandwidth)

        edge_list = [Edge(u, v) for (u, v) in edges]
        self._edges: Tuple[Edge, ...] = tuple(edge_list)
        self._edge_index: Dict[Edge, int] = {}
        for idx, e in enumerate(self._edges):
            if e in self._edge_index:
                raise InvalidEdgeError(f"duplicate edge {e}")
            if not (0 <= e.u < n and 0 <= e.v < n):
                raise InvalidNodeError(f"edge {e} references an unknown node")
            self._edge_index[e] = idx

        m = len(self._edges)
        self._edge_bandwidth = np.ones(m, dtype=np.float64)
        if edge_bandwidths is not None:
            if isinstance(edge_bandwidths, dict):
                for key, bw in edge_bandwidths.items():
                    e = Edge(*key)
                    if e not in self._edge_index:
                        raise InvalidEdgeError(f"bandwidth given for unknown edge {e}")
                    self._edge_bandwidth[self._edge_index[e]] = float(bw)
            else:
                values = list(edge_bandwidths)
                if len(values) != m:
                    raise BandwidthError(
                        "edge_bandwidths sequence must be parallel to edges: "
                        f"expected {m} values, got {len(values)}"
                    )
                self._edge_bandwidth = np.asarray(values, dtype=np.float64).copy()

        self._adjacency: List[List[int]] = [[] for _ in range(n)]
        self._incident_edges: List[List[int]] = [[] for _ in range(n)]
        for idx, e in enumerate(self._edges):
            self._adjacency[e.u].append(e.v)
            self._adjacency[e.v].append(e.u)
            self._incident_edges[e.u].append(idx)
            self._incident_edges[e.v].append(idx)
        for lst in self._adjacency:
            lst.sort()

        self._processors: Tuple[int, ...] = tuple(
            int(i) for i in np.flatnonzero(self._kinds == int(NodeKind.PROCESSOR))
        )
        self._buses: Tuple[int, ...] = tuple(
            int(i) for i in np.flatnonzero(self._kinds == int(NodeKind.BUS))
        )
        self._rooted_cache: Dict[int, object] = {}

        if validate:
            self.validate()

    # ------------------------------------------------------------------ #
    # validation
    # ------------------------------------------------------------------ #
    def validate(self) -> None:
        """Check the hierarchical-bus-network invariants.

        Raises
        ------
        NotATreeError
            If the graph is disconnected or contains a cycle.
        TopologyError
            If a bus is a leaf or a processor is an inner node (except for
            the degenerate single-processor network), or the single node is
            a bus.
        BandwidthError
            If any bandwidth is not positive.
        """
        n = self.n_nodes
        if len(self._edges) != n - 1:
            raise NotATreeError(
                f"a tree on {n} nodes has {n - 1} edges, got {len(self._edges)}"
            )
        # connectivity check by BFS from node 0
        seen = np.zeros(n, dtype=bool)
        stack = [0]
        seen[0] = True
        count = 1
        while stack:
            u = stack.pop()
            for v in self._adjacency[u]:
                if not seen[v]:
                    seen[v] = True
                    count += 1
                    stack.append(v)
        if count != n:
            raise NotATreeError("the network graph is not connected")

        if n == 1:
            if not self.is_processor(0):
                raise TopologyError("a single-node network must be a processor")
        else:
            for v in range(n):
                deg = len(self._adjacency[v])
                if self.is_processor(v) and deg != 1:
                    raise TopologyError(
                        f"processor {v} must be a leaf, has degree {deg}"
                    )
                if self.is_bus(v) and deg < 2:
                    raise TopologyError(
                        f"bus {v} must be an inner node, has degree {deg}"
                    )
        if np.any(self._edge_bandwidth <= 0):
            raise BandwidthError("all edge bandwidths must be positive")
        if np.any(self._bus_bandwidth <= 0):
            raise BandwidthError("all bus bandwidths must be positive")

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #
    @property
    def n_nodes(self) -> int:
        """Total number of nodes ``|P ∪ B|``."""
        return int(self._kinds.shape[0])

    @property
    def n_edges(self) -> int:
        """Number of edges ``|E|`` (equals ``n_nodes - 1``)."""
        return len(self._edges)

    @property
    def n_processors(self) -> int:
        """Number of processors ``|P|``."""
        return len(self._processors)

    @property
    def n_buses(self) -> int:
        """Number of buses ``|B|``."""
        return len(self._buses)

    @property
    def processors(self) -> Tuple[int, ...]:
        """Node ids of all processors (leaves), ascending."""
        return self._processors

    @property
    def buses(self) -> Tuple[int, ...]:
        """Node ids of all buses (inner nodes), ascending."""
        return self._buses

    @property
    def edges(self) -> Tuple[Edge, ...]:
        """All edges in id order (the order used by edge-indexed arrays)."""
        return self._edges

    def nodes(self) -> range:
        """Iterate over all node ids."""
        return range(self.n_nodes)

    def is_processor(self, node: int) -> bool:
        """``True`` iff ``node`` is a processor (leaf)."""
        self._check_node(node)
        return self._kinds[node] == int(NodeKind.PROCESSOR)

    def is_bus(self, node: int) -> bool:
        """``True`` iff ``node`` is a bus (inner node)."""
        self._check_node(node)
        return self._kinds[node] == int(NodeKind.BUS)

    def kind(self, node: int) -> NodeKind:
        """Return the :class:`~repro.network.node.NodeKind` of ``node``."""
        self._check_node(node)
        return NodeKind(int(self._kinds[node]))

    def name(self, node: int) -> str:
        """Human readable name of ``node``."""
        self._check_node(node)
        return self._names[node]

    def node_by_name(self, name: str) -> int:
        """Return the id of the node with the given name.

        Raises :class:`~repro.errors.InvalidNodeError` if no node has that
        name.  Names are not required to be unique; the smallest matching id
        is returned.
        """
        for i, n in enumerate(self._names):
            if n == name:
                return i
        raise InvalidNodeError(f"no node named {name!r}")

    def neighbors(self, node: int) -> Sequence[int]:
        """Neighbours of ``node`` in ascending id order."""
        self._check_node(node)
        return tuple(self._adjacency[node])

    def degree(self, node: int) -> int:
        """Degree of ``node``."""
        self._check_node(node)
        return len(self._adjacency[node])

    def incident_edge_ids(self, node: int) -> Sequence[int]:
        """Ids of the edges incident to ``node``."""
        self._check_node(node)
        return tuple(self._incident_edges[node])

    # ------------------------------------------------------------------ #
    # edges and bandwidths
    # ------------------------------------------------------------------ #
    def edge_id(self, u: int, v: int) -> int:
        """Return the id of edge ``{u, v}``.

        Raises :class:`~repro.errors.InvalidEdgeError` if the edge does not
        exist.
        """
        e = Edge(u, v)
        try:
            return self._edge_index[e]
        except KeyError:
            raise InvalidEdgeError(f"edge {e} does not exist") from None

    def has_edge(self, u: int, v: int) -> bool:
        """``True`` iff ``{u, v}`` is an edge of the network."""
        if u == v:
            return False
        return Edge(u, v) in self._edge_index

    def edge_endpoints(self, edge_id: int) -> Edge:
        """Return the canonical ``(u, v)`` endpoints of an edge id."""
        try:
            return self._edges[edge_id]
        except IndexError:
            raise InvalidEdgeError(f"edge id {edge_id} out of range") from None

    def edge_bandwidth(self, u: int, v: Optional[int] = None) -> float:
        """Bandwidth ``b(e)`` of an edge, by id or by endpoints."""
        if v is None:
            eid = int(u)
            if not 0 <= eid < self.n_edges:
                raise InvalidEdgeError(f"edge id {eid} out of range")
        else:
            eid = self.edge_id(u, v)
        return float(self._edge_bandwidth[eid])

    def bus_bandwidth(self, node: int) -> float:
        """Bandwidth ``b(B)`` of a bus node."""
        self._check_node(node)
        if not self.is_bus(node):
            raise InvalidNodeError(f"node {node} is not a bus")
        return float(self._bus_bandwidth[node])

    @property
    def edge_bandwidths(self) -> np.ndarray:
        """Read-only array of edge bandwidths indexed by edge id."""
        arr = self._edge_bandwidth.view()
        arr.flags.writeable = False
        return arr

    @property
    def bus_bandwidths(self) -> np.ndarray:
        """Read-only array of per-node bus bandwidths (1.0 for processors)."""
        arr = self._bus_bandwidth.view()
        arr.flags.writeable = False
        return arr

    # ------------------------------------------------------------------ #
    # rooted views
    # ------------------------------------------------------------------ #
    def rooted(self, root: Optional[int] = None) -> "RootedTree":
        """Return a (cached) :class:`~repro.network.rooted.RootedTree` view.

        Parameters
        ----------
        root:
            Node to use as root.  Defaults to the canonical root: the bus
            with the smallest id, or node 0 for a bus-less (single node)
            network.
        """
        if root is None:
            root = self.canonical_root()
        self._check_node(root)
        view = self._rooted_cache.get(root)
        if view is None:
            from repro.network.rooted import RootedTree

            view = RootedTree(self, root)
            self._rooted_cache[root] = view
        return view  # type: ignore[return-value]

    def canonical_root(self) -> int:
        """The default root: smallest-id bus, or node 0 if there is no bus."""
        return self._buses[0] if self._buses else 0

    def height(self, root: Optional[int] = None) -> int:
        """Height of the tree rooted at ``root`` (canonical root by default)."""
        return self.rooted(root).height

    def max_degree(self) -> int:
        """Maximum node degree ``degree(T)``."""
        return max(len(adj) for adj in self._adjacency)

    # ------------------------------------------------------------------ #
    # dunder / misc
    # ------------------------------------------------------------------ #
    def _check_node(self, node: int) -> None:
        if not isinstance(node, (int, np.integer)) or not 0 <= node < self.n_nodes:
            raise InvalidNodeError(f"invalid node id {node!r}")

    def __contains__(self, node: object) -> bool:
        return isinstance(node, (int, np.integer)) and 0 <= int(node) < self.n_nodes

    def __len__(self) -> int:
        return self.n_nodes

    def __iter__(self) -> Iterator[int]:
        return iter(range(self.n_nodes))

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"HierarchicalBusNetwork(n_processors={self.n_processors}, "
            f"n_buses={self.n_buses}, height={self.height()})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HierarchicalBusNetwork):
            return NotImplemented
        return (
            np.array_equal(self._kinds, other._kinds)
            and self._edges == other._edges
            and np.allclose(self._edge_bandwidth, other._edge_bandwidth)
            and np.allclose(self._bus_bandwidth, other._bus_bandwidth)
        )

    def __hash__(self) -> int:
        return hash((self._edges, self._kinds.tobytes()))


class NetworkBuilder:
    """Incrementally build a :class:`HierarchicalBusNetwork`.

    Example
    -------
    >>> builder = NetworkBuilder()
    >>> root = builder.add_bus("root", bandwidth=4)
    >>> for i in range(3):
    ...     p = builder.add_processor(f"p{i}")
    ...     _ = builder.connect(p, root)
    >>> net = builder.build()
    >>> net.n_processors, net.n_buses
    (3, 1)
    """

    def __init__(self) -> None:
        self._specs: List[NodeSpec] = []
        self._edges: List[Tuple[int, int]] = []
        self._edge_bandwidths: Dict[Tuple[int, int], float] = {}

    @property
    def n_nodes(self) -> int:
        """Number of nodes added so far."""
        return len(self._specs)

    def add_processor(self, name: Optional[str] = None) -> int:
        """Add a processor (leaf) node and return its id."""
        self._specs.append(ProcessorSpec(name))
        return len(self._specs) - 1

    def add_bus(self, name: Optional[str] = None, bandwidth: float = 1.0) -> int:
        """Add a bus (inner) node with bandwidth ``b(B)`` and return its id."""
        self._specs.append(BusSpec(name, bandwidth))
        return len(self._specs) - 1

    def connect(self, u: int, v: int, bandwidth: float = 1.0) -> Tuple[int, int]:
        """Add the switch edge ``{u, v}`` with bandwidth ``b(e)``.

        Returns the canonical ``(min, max)`` edge tuple.
        """
        if not (0 <= u < self.n_nodes and 0 <= v < self.n_nodes):
            raise InvalidNodeError(f"cannot connect unknown nodes ({u}, {v})")
        if bandwidth <= 0:
            raise BandwidthError(f"edge bandwidth must be positive, got {bandwidth}")
        e = (min(u, v), max(u, v))
        self._edges.append(e)
        self._edge_bandwidths[e] = float(bandwidth)
        return e

    def build(self, validate: bool = True) -> HierarchicalBusNetwork:
        """Freeze the builder into a validated network."""
        return HierarchicalBusNetwork(
            self._specs,
            self._edges,
            edge_bandwidths=dict(self._edge_bandwidths),
            validate=validate,
        )
