"""Node model for hierarchical bus networks.

A hierarchical bus network is a tree ``T = (P ∪ B, E, b)`` whose leaves are
*processors* and whose inner nodes are *buses* (Section 1.1 of the paper).
This module defines the light-weight node descriptions used by
:class:`repro.network.tree.HierarchicalBusNetwork`.

Nodes are identified by dense integer ids ``0 .. n-1``; the descriptor
objects defined here carry the *kind* (processor or bus), an optional
human-readable name and, for buses, the bus bandwidth ``b(B)``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.errors import BandwidthError

__all__ = ["NodeKind", "NodeSpec", "ProcessorSpec", "BusSpec"]


class NodeKind(enum.IntEnum):
    """Kind of a node in a hierarchical bus network.

    The integer values are stable and used in serialized form and in numpy
    arrays (``PROCESSOR == 0``, ``BUS == 1``).
    """

    PROCESSOR = 0
    BUS = 1

    @property
    def is_processor(self) -> bool:
        """``True`` iff the kind is :attr:`PROCESSOR`."""
        return self is NodeKind.PROCESSOR

    @property
    def is_bus(self) -> bool:
        """``True`` iff the kind is :attr:`BUS`."""
        return self is NodeKind.BUS


@dataclass(frozen=True)
class NodeSpec:
    """Description of one node before it is frozen into a network.

    Parameters
    ----------
    kind:
        Whether the node is a processor (leaf) or a bus (inner node).
    name:
        Optional human readable name.  Defaults to ``"p<i>"`` / ``"b<i>"``
        when the network is built.
    bandwidth:
        Bus bandwidth ``b(B)`` for buses.  Ignored for processors (processors
        have no own bandwidth in the model -- only their switch edge, which
        carries bandwidth 1 by assumption).
    """

    kind: NodeKind
    name: Optional[str] = None
    bandwidth: float = 1.0

    def __post_init__(self) -> None:
        if self.kind is NodeKind.BUS and not self.bandwidth > 0:
            raise BandwidthError(
                f"bus bandwidth must be positive, got {self.bandwidth!r}"
            )

    @property
    def is_processor(self) -> bool:
        """``True`` iff this node is a processor."""
        return self.kind is NodeKind.PROCESSOR

    @property
    def is_bus(self) -> bool:
        """``True`` iff this node is a bus."""
        return self.kind is NodeKind.BUS


def ProcessorSpec(name: Optional[str] = None) -> NodeSpec:
    """Convenience constructor for a processor node description."""
    return NodeSpec(kind=NodeKind.PROCESSOR, name=name)


def BusSpec(name: Optional[str] = None, bandwidth: float = 1.0) -> NodeSpec:
    """Convenience constructor for a bus node description.

    Parameters
    ----------
    name:
        Optional human readable name.
    bandwidth:
        Bus bandwidth ``b(B) >= 1`` (the paper assumes all bandwidths other
        than processor switches are at least one; this is not enforced here
        beyond positivity so that experiments may explore other regimes).
    """
    return NodeSpec(kind=NodeKind.BUS, name=name, bandwidth=bandwidth)
