"""Topology mutations on hierarchical bus networks.

The paper (and PRs 1-2) treat the bus network as fixed: every evaluation
structure -- rooted views, the path-incidence matrix, the incremental load
state -- is derived once per network object.  Production bus fabrics churn:
switches get reprovisioned, processors join and leave, overloaded buses are
split.  This module defines the *closed set* of mutations the rest of the
system understands, so the substrate layers can repair themselves
incrementally instead of being rebuilt from scratch:

* :class:`SetEdgeBandwidth` / :class:`SetBusBandwidth` -- bandwidth
  reconfiguration; no structural change, substrate repair is a pure
  relative-load denominator update.
* :class:`AttachLeaf` -- a new processor joins a bus (node and switch edge
  ids are *appended*, so existing ids are stable).
* :class:`DetachLeaf` -- a processor leaves; the remaining node and edge
  ids shift down by one past the removed ids (the same dense numbering a
  from-scratch construction would produce).  :attr:`MutationOutcome.node_map`
  / :attr:`MutationOutcome.edge_map` record the renumbering.
* :class:`SplitBus` -- a new bus is inserted below an existing one and a
  subset of its non-parent neighbours move under it.  The moved switch
  edges keep their ids and bandwidths (they are re-targeted, not
  recreated); one new trunk edge is appended.

:func:`apply_mutation` is *functional*: it returns a new validated
:class:`~repro.network.tree.HierarchicalBusNetwork` plus a
:class:`MutationOutcome` describing exactly what moved, which is what the
``repair`` paths of :class:`~repro.network.rooted.RootedTree`,
:class:`~repro.core.pathmatrix.PathMatrix` and
:class:`~repro.core.loadstate.LoadState` consume.  :class:`ChurnTrace`
packages a seeded sequence of timed mutations so request replay and
topology churn can be interleaved deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Tuple, Union

import numpy as np

from repro.errors import BandwidthError, MutationError
from repro.network.node import BusSpec, NodeSpec, ProcessorSpec
from repro.network.tree import HierarchicalBusNetwork

__all__ = [
    "Mutation",
    "SetEdgeBandwidth",
    "SetBusBandwidth",
    "AttachLeaf",
    "DetachLeaf",
    "SplitBus",
    "MutationOutcome",
    "apply_mutation",
    "apply_mutations",
    "TimedMutation",
    "ChurnTrace",
]


# --------------------------------------------------------------------------- #
# the closed mutation set
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class Mutation:
    """Base class of the closed set of topology mutations."""

    @property
    def structural(self) -> bool:
        """True iff the mutation changes nodes or edges (not just bandwidths)."""
        return True


@dataclass(frozen=True)
class SetEdgeBandwidth(Mutation):
    """Set the bandwidth of the switch edge ``{u, v}``."""

    u: int
    v: int
    bandwidth: float

    @property
    def structural(self) -> bool:
        return False


@dataclass(frozen=True)
class SetBusBandwidth(Mutation):
    """Set the bandwidth of bus ``bus``."""

    bus: int
    bandwidth: float

    @property
    def structural(self) -> bool:
        return False


@dataclass(frozen=True)
class AttachLeaf(Mutation):
    """Attach a new processor to ``bus`` (switch edge bandwidth defaults to 1)."""

    bus: int
    name: Optional[str] = None
    bandwidth: float = 1.0


@dataclass(frozen=True)
class DetachLeaf(Mutation):
    """Detach the processor ``processor`` (and its switch edge)."""

    processor: int


@dataclass(frozen=True)
class SplitBus(Mutation):
    """Insert a new bus below ``bus`` and move ``moved`` neighbours under it.

    ``moved`` must be a non-empty subset of ``bus``'s neighbours that does
    not contain the canonical-rooted parent of ``bus`` (the hierarchy above
    the split point is preserved) and must leave ``bus`` with degree at
    least two.  Moved switch edges keep their edge ids and bandwidths; one
    new trunk edge ``{bus, new_bus}`` is appended.
    """

    bus: int
    moved: Tuple[int, ...]
    name: Optional[str] = None
    bus_bandwidth: float = 1.0
    trunk_bandwidth: float = 1.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "moved", tuple(sorted(int(m) for m in self.moved)))


# --------------------------------------------------------------------------- #
# outcomes
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class MutationOutcome:
    """What one applied mutation did, in substrate-repair terms.

    ``node_map`` / ``edge_map`` map every *old* node/edge id to its id in
    :attr:`network` (``-1`` for removed ids).  For non-structural mutations
    both maps are identities.  The remaining fields describe the touched
    region; repair paths read them instead of diffing the networks.
    """

    mutation: Mutation
    old_network: HierarchicalBusNetwork
    network: HierarchicalBusNetwork
    node_map: np.ndarray
    edge_map: np.ndarray
    new_node: Optional[int] = None
    new_edge: Optional[int] = None
    removed_node: Optional[int] = None
    removed_edge: Optional[int] = None
    touched_bus: Optional[int] = None
    moved_edge_ids: Tuple[int, ...] = field(default_factory=tuple)
    moved_nodes: Tuple[int, ...] = field(default_factory=tuple)
    changed_edge: Optional[int] = None
    changed_bus: Optional[int] = None

    @property
    def structural(self) -> bool:
        """True iff nodes/edges changed (bandwidth-only mutations are False)."""
        return self.mutation.structural

    def map_nodes(self, nodes: np.ndarray) -> np.ndarray:
        """Map an array of old node ids to new ids (``-1`` for removed)."""
        return self.node_map[np.asarray(nodes, dtype=np.int64)]

    def map_edges(self, edges: np.ndarray) -> np.ndarray:
        """Map an array of old edge ids to new ids (``-1`` for removed)."""
        return self.edge_map[np.asarray(edges, dtype=np.int64)]

    def mapped_edge_loads(self, old_edge_loads: np.ndarray) -> np.ndarray:
        """Carry a per-edge load vector over to the new edge numbering.

        Loads of removed edges are dropped, new edges start at zero.  This
        is the canonical "rebuild" input: a fresh
        :class:`~repro.core.loadstate.LoadState` charged with this vector
        must equal the incrementally repaired one bit-for-bit.
        """
        old = np.asarray(old_edge_loads, dtype=np.float64)
        if old.shape != (self.old_network.n_edges,):
            raise MutationError("edge-load vector does not match the old network")
        out = np.zeros(self.network.n_edges, dtype=np.float64)
        keep = self.edge_map >= 0
        out[self.edge_map[keep]] = old[keep]
        return out


def _node_specs(network: HierarchicalBusNetwork) -> List[NodeSpec]:
    """Reconstruct the per-node spec list of an existing network."""
    specs: List[NodeSpec] = []
    for v in range(network.n_nodes):
        if network.is_bus(v):
            specs.append(BusSpec(network.name(v), network.bus_bandwidth(v)))
        else:
            specs.append(ProcessorSpec(network.name(v)))
    return specs


def _edge_lists(
    network: HierarchicalBusNetwork,
) -> Tuple[List[Tuple[int, int]], List[float]]:
    """Edges and parallel bandwidths of an existing network, in id order."""
    edges = [(e.u, e.v) for e in network.edges]
    bandwidths = [float(b) for b in network.edge_bandwidths]
    return edges, bandwidths


def _identity_maps(network: HierarchicalBusNetwork) -> Tuple[np.ndarray, np.ndarray]:
    return (
        np.arange(network.n_nodes, dtype=np.int64),
        np.arange(network.n_edges, dtype=np.int64),
    )


# --------------------------------------------------------------------------- #
# application
# --------------------------------------------------------------------------- #
def apply_mutation(
    network: HierarchicalBusNetwork, mutation: Mutation
) -> MutationOutcome:
    """Apply one mutation functionally; returns the outcome with the new network.

    Raises :class:`~repro.errors.MutationError` when the mutation is invalid
    for the network (unknown ids, wrong node kinds, or a result that would
    violate the hierarchical-bus-network model).
    """
    if isinstance(mutation, SetEdgeBandwidth):
        return _apply_set_edge_bandwidth(network, mutation)
    if isinstance(mutation, SetBusBandwidth):
        return _apply_set_bus_bandwidth(network, mutation)
    if isinstance(mutation, AttachLeaf):
        return _apply_attach_leaf(network, mutation)
    if isinstance(mutation, DetachLeaf):
        return _apply_detach_leaf(network, mutation)
    if isinstance(mutation, SplitBus):
        return _apply_split_bus(network, mutation)
    raise MutationError(f"unknown mutation type {type(mutation).__name__}")


def apply_mutations(
    network: HierarchicalBusNetwork, mutations: Iterable[Mutation]
) -> Tuple[HierarchicalBusNetwork, List[MutationOutcome]]:
    """Apply a sequence of mutations; returns the final network and outcomes."""
    outcomes: List[MutationOutcome] = []
    for mutation in mutations:
        outcome = apply_mutation(network, mutation)
        outcomes.append(outcome)
        network = outcome.network
    return network, outcomes


def _apply_set_edge_bandwidth(
    network: HierarchicalBusNetwork, mutation: SetEdgeBandwidth
) -> MutationOutcome:
    if mutation.bandwidth <= 0:
        raise BandwidthError(
            f"edge bandwidth must be positive, got {mutation.bandwidth}"
        )
    eid = network.edge_id(mutation.u, mutation.v)  # raises for unknown edges
    edges, bandwidths = _edge_lists(network)
    bandwidths[eid] = float(mutation.bandwidth)
    new = HierarchicalBusNetwork(_node_specs(network), edges, bandwidths)
    node_map, edge_map = _identity_maps(network)
    return MutationOutcome(
        mutation=mutation,
        old_network=network,
        network=new,
        node_map=node_map,
        edge_map=edge_map,
        changed_edge=eid,
    )


def _apply_set_bus_bandwidth(
    network: HierarchicalBusNetwork, mutation: SetBusBandwidth
) -> MutationOutcome:
    if mutation.bandwidth <= 0:
        raise BandwidthError(
            f"bus bandwidth must be positive, got {mutation.bandwidth}"
        )
    bus = int(mutation.bus)
    if bus not in network or not network.is_bus(bus):
        raise MutationError(f"node {bus} is not a bus of the network")
    specs = _node_specs(network)
    specs[bus] = BusSpec(network.name(bus), float(mutation.bandwidth))
    edges, bandwidths = _edge_lists(network)
    new = HierarchicalBusNetwork(specs, edges, bandwidths)
    node_map, edge_map = _identity_maps(network)
    return MutationOutcome(
        mutation=mutation,
        old_network=network,
        network=new,
        node_map=node_map,
        edge_map=edge_map,
        changed_bus=bus,
    )


def _apply_attach_leaf(
    network: HierarchicalBusNetwork, mutation: AttachLeaf
) -> MutationOutcome:
    if mutation.bandwidth <= 0:
        raise BandwidthError(
            f"edge bandwidth must be positive, got {mutation.bandwidth}"
        )
    bus = int(mutation.bus)
    if bus not in network or not network.is_bus(bus):
        raise MutationError(f"cannot attach a leaf to non-bus node {bus}")
    specs = _node_specs(network)
    new_node = len(specs)
    specs.append(ProcessorSpec(mutation.name or f"p{new_node}"))
    edges, bandwidths = _edge_lists(network)
    new_edge = len(edges)
    edges.append((bus, new_node))
    bandwidths.append(float(mutation.bandwidth))
    new = HierarchicalBusNetwork(specs, edges, bandwidths)
    node_map = np.arange(network.n_nodes, dtype=np.int64)
    edge_map = np.arange(network.n_edges, dtype=np.int64)
    return MutationOutcome(
        mutation=mutation,
        old_network=network,
        network=new,
        node_map=node_map,
        edge_map=edge_map,
        new_node=new_node,
        new_edge=new_edge,
        touched_bus=bus,
    )


def _apply_detach_leaf(
    network: HierarchicalBusNetwork, mutation: DetachLeaf
) -> MutationOutcome:
    proc = int(mutation.processor)
    if proc not in network or not network.is_processor(proc):
        raise MutationError(f"node {proc} is not a processor of the network")
    if network.n_processors <= 2:
        raise MutationError("cannot detach: a network needs at least two processors")
    (bus,) = network.neighbors(proc)
    if network.degree(bus) <= 2:
        raise MutationError(
            f"cannot detach processor {proc}: bus {bus} would become a leaf"
        )
    removed_edge = network.edge_id(proc, bus)

    node_map = np.arange(network.n_nodes, dtype=np.int64)
    node_map[proc] = -1
    node_map[proc + 1 :] -= 1
    edge_map = np.arange(network.n_edges, dtype=np.int64)
    edge_map[removed_edge] = -1
    edge_map[removed_edge + 1 :] -= 1

    specs = _node_specs(network)
    del specs[proc]
    old_edges, old_bandwidths = _edge_lists(network)
    edges = []
    bandwidths = []
    for eid, (u, v) in enumerate(old_edges):
        if eid == removed_edge:
            continue
        edges.append((int(node_map[u]), int(node_map[v])))
        bandwidths.append(old_bandwidths[eid])
    new = HierarchicalBusNetwork(specs, edges, bandwidths)
    return MutationOutcome(
        mutation=mutation,
        old_network=network,
        network=new,
        node_map=node_map,
        edge_map=edge_map,
        removed_node=proc,
        removed_edge=removed_edge,
        touched_bus=bus,
    )


def _apply_split_bus(
    network: HierarchicalBusNetwork, mutation: SplitBus
) -> MutationOutcome:
    if mutation.bus_bandwidth <= 0 or mutation.trunk_bandwidth <= 0:
        raise BandwidthError("split bandwidths must be positive")
    bus = int(mutation.bus)
    if bus not in network or not network.is_bus(bus):
        raise MutationError(f"cannot split non-bus node {bus}")
    moved = mutation.moved
    if not moved:
        raise MutationError("split_bus needs at least one moved neighbour")
    neighbours = set(network.neighbors(bus))
    bad = [m for m in moved if m not in neighbours]
    if bad:
        raise MutationError(f"moved nodes {bad} are not neighbours of bus {bus}")
    if len(set(moved)) != len(moved):
        raise MutationError("moved neighbours must be distinct")
    rooted = network.rooted()
    parent = rooted.parent(bus)
    if parent in moved:
        raise MutationError(
            f"cannot move the parent {parent} of bus {bus} under the new bus"
        )
    if network.degree(bus) - len(moved) + 1 < 2:
        raise MutationError(f"split would leave bus {bus} with degree < 2")

    specs = _node_specs(network)
    new_node = len(specs)
    specs.append(BusSpec(mutation.name or f"b{new_node}", float(mutation.bus_bandwidth)))
    old_edges, bandwidths = _edge_lists(network)
    moved_edge_ids = tuple(network.edge_id(bus, m) for m in moved)
    edges = list(old_edges)
    for m, eid in zip(moved, moved_edge_ids):
        edges[eid] = (m, new_node)
    new_edge = len(edges)
    edges.append((bus, new_node))
    bandwidths.append(float(mutation.trunk_bandwidth))
    new = HierarchicalBusNetwork(specs, edges, bandwidths)
    node_map = np.arange(network.n_nodes, dtype=np.int64)
    edge_map = np.arange(network.n_edges, dtype=np.int64)
    return MutationOutcome(
        mutation=mutation,
        old_network=network,
        network=new,
        node_map=node_map,
        edge_map=edge_map,
        new_node=new_node,
        new_edge=new_edge,
        touched_bus=bus,
        moved_edge_ids=moved_edge_ids,
        moved_nodes=moved,
    )


# --------------------------------------------------------------------------- #
# churn traces
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class TimedMutation:
    """A mutation scheduled before serving request-event index ``time``."""

    time: int
    mutation: Mutation

    def __post_init__(self) -> None:
        if self.time < 0:
            raise MutationError(f"mutation time must be >= 0, got {self.time}")


class ChurnTrace:
    """An ordered sequence of timed mutations, interleavable with requests.

    ``time`` is an index into a request sequence: all mutations with
    ``time == t`` are applied *before* the request event at position ``t``
    is served (ties keep the given order).  Traces are value objects; the
    churn generators in :mod:`repro.workload.churn` build them
    deterministically from a seed.
    """

    __slots__ = ("_events",)

    def __init__(self, events: Iterable[Union[TimedMutation, Tuple[int, Mutation]]]):
        normalized: List[TimedMutation] = []
        for ev in events:
            if isinstance(ev, TimedMutation):
                normalized.append(ev)
            else:
                time, mutation = ev
                normalized.append(TimedMutation(int(time), mutation))
        normalized.sort(key=lambda ev: ev.time)  # stable: preserves tie order
        self._events: Tuple[TimedMutation, ...] = tuple(normalized)

    @property
    def events(self) -> Tuple[TimedMutation, ...]:
        """All timed mutations, sorted by time (stable)."""
        return self._events

    @property
    def mutations(self) -> Tuple[Mutation, ...]:
        """The bare mutations in application order."""
        return tuple(ev.mutation for ev in self._events)

    @property
    def max_time(self) -> int:
        """Largest scheduled time (``-1`` for an empty trace)."""
        return self._events[-1].time if self._events else -1

    def attach_count(self) -> int:
        """Number of :class:`AttachLeaf` mutations in the trace."""
        return sum(1 for ev in self._events if isinstance(ev.mutation, AttachLeaf))

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(self._events)

    def __getitem__(self, index: int) -> TimedMutation:
        return self._events[index]

    def concatenated_with(self, other: "ChurnTrace") -> "ChurnTrace":
        """Merge two traces (events re-sorted by time, stable)."""
        return ChurnTrace(self._events + other.events)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"ChurnTrace(n_mutations={len(self._events)}, max_time={self.max_time})"
