"""Persistent worker pools shared by the sweep layers.

Both sweep entry points -- the experiment runner of
:mod:`repro.analysis.runner` and the scenario sweeps of
:mod:`repro.sim.scenario` -- fan independent jobs out over worker
processes.  Spinning a fresh :class:`~concurrent.futures.ProcessPoolExecutor`
up per call throws the workers' warm state away: imports, and (for
scenario sweeps) the per-worker substrate caches that let one worker
build a network size's substrate once and replay every strategy/spec job
against it.  This module keeps one pool alive per worker count instead;
repeated sweeps in one process (experiment batteries, test suites, the
CLI called from a driver loop) reuse the same workers and their caches.

Pools are shut down at interpreter exit.  Determinism is unaffected:
jobs carry their own seeds and the callers collect futures in submission
order, so results are independent of which worker runs what.

A pool whose workers died (OOM kill, segfault) enters the executor's
broken state permanently.  :func:`run_jobs` and :func:`iter_jobs` handle
that through the public :class:`~concurrent.futures.process.BrokenProcessPool`
exception: the dead pool is discarded, a fresh one replaces it, and the
affected jobs are resubmitted **once** (sweep jobs are pure functions of
their arguments, so a rerun is safe).  A second break in the same call
propagates -- a workload that reliably kills its workers is a real
failure, not a pool-lifecycle hiccup.

One pool lives per distinct worker count, so a driver alternating
between, say, ``--parallel 2`` and ``--parallel 8`` keeps two pools (10
resident workers) warm; call :func:`shutdown_pools` to release them
early when that matters.
"""

from __future__ import annotations

import atexit
import os
import signal
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from typing import Dict

from repro import faults

__all__ = [
    "persistent_pool",
    "run_jobs",
    "iter_jobs",
    "shutdown_pools",
    "BrokenProcessPool",
]

_POOLS: Dict[int, ProcessPoolExecutor] = {}


def _call_with_faults(fn, *args):
    """Worker-side shim: hit the ``parallel.worker`` fault point, then run.

    Only submitted when a fault plan is active in the parent (the
    non-chaos path keeps submitting ``fn`` directly -- zero overhead).
    Workers inherit ``REPRO_FAULT_PLAN`` through the environment, so the
    plan resolves lazily in each worker; a ``kill`` fault dies hard with
    SIGKILL -- the genuine :class:`BrokenProcessPool` scenario, not an
    exception the executor could catch.  Cross-process ``once`` sentinels
    keep a kill rule from taking out every worker.
    """
    fault = faults.fault_point("parallel.worker")
    if fault is not None:
        if fault.kind == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
        faults.raise_fault(fault)
    return fn(*args)


def _submit(pool: ProcessPoolExecutor, fn, args):
    if faults.plan_active():
        return pool.submit(_call_with_faults, fn, *args)
    return pool.submit(fn, *args)


def persistent_pool(max_workers: int) -> ProcessPoolExecutor:
    """The shared process pool for ``max_workers`` workers (created lazily).

    The pool stays alive across calls so worker-side caches persist; it is
    shut down automatically at interpreter exit (or explicitly via
    :func:`shutdown_pools`).  Submitting to a pool whose workers died
    raises :class:`BrokenProcessPool`; callers that want the
    replace-and-retry behaviour should go through :func:`run_jobs` /
    :func:`iter_jobs` rather than submitting directly.
    """
    if max_workers < 1:
        raise ValueError(f"max_workers must be >= 1, got {max_workers}")
    pool = _POOLS.get(max_workers)
    if pool is None:
        pool = ProcessPoolExecutor(max_workers=max_workers)
        _POOLS[max_workers] = pool
    return pool


def _discard_pool(max_workers: int) -> None:
    """Drop (and best-effort shut down) the pool for one worker count."""
    pool = _POOLS.pop(max_workers, None)
    if pool is not None:
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass  # a broken pool may be torn down already


def run_jobs(max_workers: int, fn, jobs):
    """Run ``fn(*args)`` for every ``args`` in ``jobs`` on the shared pool.

    Results come back in submission order (determinism does not depend on
    worker scheduling).  If collecting a result raises, the not-yet-started
    jobs are cancelled so no orphaned work keeps running in the persistent
    pool, and the exception propagates.  A pool broken by dying workers
    (:class:`BrokenProcessPool`) is replaced and the whole job list is
    resubmitted once; jobs must therefore be pure functions of their
    arguments (the sweep jobs are).
    """
    jobs = list(jobs)
    try:
        return _collect_jobs(persistent_pool(max_workers), fn, jobs)
    except BrokenProcessPool:
        _discard_pool(max_workers)
        return _collect_jobs(persistent_pool(max_workers), fn, jobs)


def _collect_jobs(pool: ProcessPoolExecutor, fn, jobs):
    """Submit all jobs and collect results in submission order."""
    futures = [_submit(pool, fn, args) for args in jobs]
    try:
        return [future.result() for future in futures]
    finally:
        for future in futures:
            future.cancel()


def iter_jobs(max_workers: int, fn, jobs):
    """Yield ``(index, fn(*jobs[index]))`` pairs in *completion* order.

    The streaming counterpart of :func:`run_jobs` for callers that persist
    each result as soon as it exists (the lab registry's ``run-missing``
    writes every finished artifact immediately, so a killed sweep keeps
    all completed work).  ``index`` is the job's position in ``jobs``;
    callers that need submission order can reassemble it.  If a job
    raises, or the consumer abandons the generator, the not-yet-started
    jobs are cancelled so no orphaned work keeps running in the
    persistent pool.  A pool broken by dying workers is replaced and only
    the not-yet-yielded jobs are resubmitted once, so already-delivered
    results are never recomputed.
    """
    pending = {index: args for index, args in enumerate(jobs)}
    for attempt in (0, 1):
        futures = {}
        try:
            pool = persistent_pool(max_workers)
            for index, args in pending.items():
                futures[_submit(pool, fn, args)] = index
            for future in as_completed(futures):
                index = futures[future]
                result = future.result()
                del pending[index]
                yield index, result
            return
        except BrokenProcessPool:
            if attempt:
                raise
            _discard_pool(max_workers)
        finally:
            for future in futures:
                future.cancel()


def shutdown_pools() -> None:
    """Shut every persistent pool down and drop the registry.

    Registered at interpreter exit, so it must tolerate pools that broke
    earlier (their worker processes are already gone and ``shutdown`` on
    some Python versions can trip over the half-torn-down state).
    """
    for pool in list(_POOLS.values()):
        try:
            pool.shutdown(wait=True, cancel_futures=True)
        except Exception:
            pass  # already-broken pools must not wedge interpreter exit
    _POOLS.clear()


atexit.register(shutdown_pools)
