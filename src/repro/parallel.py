"""Persistent worker pools shared by the sweep layers.

Both sweep entry points -- the experiment runner of
:mod:`repro.analysis.runner` and the scenario sweeps of
:mod:`repro.sim.scenario` -- fan independent jobs out over worker
processes.  Spinning a fresh :class:`~concurrent.futures.ProcessPoolExecutor`
up per call throws the workers' warm state away: imports, and (for
scenario sweeps) the per-worker substrate caches that let one worker
build a network size's substrate once and replay every strategy/spec job
against it.  This module keeps one pool alive per worker count instead;
repeated sweeps in one process (experiment batteries, test suites, the
CLI called from a driver loop) reuse the same workers and their caches.

Pools are shut down at interpreter exit.  Determinism is unaffected:
jobs carry their own seeds and the callers collect futures in submission
order, so results are independent of which worker runs what.

One pool lives per distinct worker count, so a driver alternating
between, say, ``--parallel 2`` and ``--parallel 8`` keeps two pools (10
resident workers) warm; call :func:`shutdown_pools` to release them
early when that matters.
"""

from __future__ import annotations

import atexit
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Dict

__all__ = ["persistent_pool", "run_jobs", "iter_jobs", "shutdown_pools"]

_POOLS: Dict[int, ProcessPoolExecutor] = {}


def persistent_pool(max_workers: int) -> ProcessPoolExecutor:
    """The shared process pool for ``max_workers`` workers (created lazily).

    The pool stays alive across calls so worker-side caches persist; it is
    shut down automatically at interpreter exit (or explicitly via
    :func:`shutdown_pools`).  A pool whose workers died (OOM kill,
    segfault) enters the executor's broken state permanently -- that one
    is discarded and replaced with a fresh pool instead of poisoning
    every later sweep in the process.
    """
    if max_workers < 1:
        raise ValueError(f"max_workers must be >= 1, got {max_workers}")
    pool = _POOLS.get(max_workers)
    if pool is not None and getattr(pool, "_broken", False):
        pool.shutdown(wait=False)
        pool = None
    if pool is None:
        pool = ProcessPoolExecutor(max_workers=max_workers)
        _POOLS[max_workers] = pool
    return pool


def run_jobs(max_workers: int, fn, jobs):
    """Run ``fn(*args)`` for every ``args`` in ``jobs`` on the shared pool.

    Results come back in submission order (determinism does not depend on
    worker scheduling).  If collecting a result raises, the not-yet-started
    jobs are cancelled so no orphaned work keeps running in the persistent
    pool, and the exception propagates.
    """
    pool = persistent_pool(max_workers)
    futures = [pool.submit(fn, *args) for args in jobs]
    try:
        return [future.result() for future in futures]
    except BaseException:
        for future in futures:
            future.cancel()
        raise


def iter_jobs(max_workers: int, fn, jobs):
    """Yield ``(index, fn(*jobs[index]))`` pairs in *completion* order.

    The streaming counterpart of :func:`run_jobs` for callers that persist
    each result as soon as it exists (the lab registry's ``run-missing``
    writes every finished artifact immediately, so a killed sweep keeps
    all completed work).  ``index`` is the job's position in ``jobs``;
    callers that need submission order can reassemble it.  If a job
    raises, or the consumer abandons the generator, the not-yet-started
    jobs are cancelled so no orphaned work keeps running in the
    persistent pool.
    """
    pool = persistent_pool(max_workers)
    futures = {pool.submit(fn, *args): index for index, args in enumerate(jobs)}
    try:
        for future in as_completed(futures):
            yield futures[future], future.result()
    except BaseException:
        for future in futures:
            future.cancel()
        raise
    finally:
        for future in futures:
            future.cancel()


def shutdown_pools() -> None:
    """Shut every persistent pool down and drop the registry."""
    for pool in _POOLS.values():
        pool.shutdown()
    _POOLS.clear()


atexit.register(shutdown_pools)
