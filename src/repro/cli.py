"""Command-line interface.

Installed as the ``repro`` console script.  The CLI covers the common
workflows without writing Python:

* ``repro generate-network`` -- build a topology and save it as JSON;
* ``repro info`` -- print the structural metrics of a saved network;
* ``repro generate-workload`` -- build a synthetic workload for a network;
* ``repro place`` -- run a placement strategy and report congestion against
  the lower bound (optionally saving the placement);
* ``repro experiment`` -- run one of the experiment runners E1..E11 and print
  its result table (the same rows recorded in EXPERIMENTS.md);
* ``repro run-experiments`` -- fan a whole experiment sweep out across
  worker processes (``--parallel N``) with per-experiment seeds and JSON
  result artifacts;
* ``repro churn`` -- replay one topology-churn scenario (requests
  interleaved with seeded mutations, substrate repaired incrementally) and
  report the congestion trajectory through the storm;
* ``repro simulate`` -- run a scenario from the declarative registry (or a
  ``ScenarioSpec`` JSON file) through the unified simulation kernel and
  write a JSON result artifact; ``--list`` shows the registered scenario
  families, ``--fleet`` replays all strategies in one stacked pass over
  the timeline and ``--parallel N`` fans sweep/strategy jobs over a
  persistent worker pool -- both produce byte-identical artifacts to the
  serial default;
* ``repro serve`` -- the streaming placement service (docs/SERVING.md):
  request/churn events in over a socket, placement acks and live sink
  metrics out, every session optionally recorded for offline replay;
* ``repro loadgen`` -- replay a scenario workload against a running
  server at a target events/sec and report achieved throughput plus
  ack-latency percentiles;
* ``repro replay-stream`` -- re-run a recorded served stream through the
  offline engine; ``--check`` asserts served equals replayed bit-for-bit
  (ARCHITECTURE invariant 10);
* ``repro lab`` -- the experiment lab (see docs/LAB.md): a persistent run
  registry keyed by ``(spec_hash, seed, engine_version)``.
  ``run-missing`` executes only the suite entries without stored
  artifacts (a killed sweep resumes), ``status`` shows what is stored,
  ``report`` regenerates RESULTS.md purely from artifacts (``--check``
  fails on drift) and ``gc`` reclaims runs no longer keyed by the suite;
* ``repro tournament`` -- race the pinned strategy set
  (:data:`repro.lab.tournament.TOURNAMENT_STRATEGIES`) across every
  scenario family through the lab registry (resumable, ``--fleet`` /
  ``--parallel`` byte-identical to serial) and print the leaderboard.

Every subcommand is a thin wrapper around the library API, so the CLI is
also a usage example.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Callable, Dict, Optional, Sequence

from repro.analysis.report import format_table, records_to_table
from repro.analysis.runner import EXPERIMENT_IDS, EXPERIMENT_RUNNERS, run_experiments
from repro.core.baselines import (
    full_replication_placement,
    greedy_congestion_placement,
    median_leaf_placement,
    owner_placement,
    random_placement,
)
from repro.core.bounds import nibble_lower_bound
from repro.core.congestion import compute_loads
from repro.core.deletion import copies_to_placement, refine_copies
from repro.core.extended_nibble import extended_nibble
from repro.network.builders import (
    balanced_tree,
    fat_tree,
    path_of_buses,
    random_tree,
    single_bus,
    star_of_buses,
)
from repro.network.metrics import compute_metrics
from repro.network.serialization import load_network, save_network
from repro.workload.access import AccessPattern
from repro.workload.generators import (
    hotspot_pattern,
    subtree_local_pattern,
    uniform_pattern,
    zipf_pattern,
)
from repro.workload.traces import shared_counter_trace, web_cache_trace

__all__ = ["main", "build_parser"]


# --------------------------------------------------------------------------- #
# registries
# --------------------------------------------------------------------------- #
_STRATEGIES: Dict[str, Callable] = {
    "extended-nibble": None,  # handled specially
    "owner": owner_placement,
    "median-leaf": median_leaf_placement,
    "greedy": greedy_congestion_placement,
    "random": lambda net, pat: random_placement(net, pat, seed=0),
    "full-replication": full_replication_placement,
}

_EXPERIMENTS: Dict[str, Callable] = dict(EXPERIMENT_RUNNERS)


def _print_records(records, stream) -> None:
    rows, headers = records_to_table(records)
    if rows:
        print(format_table(rows, headers), file=stream)
    else:
        print("(no rows)", file=stream)


# --------------------------------------------------------------------------- #
# subcommand implementations
# --------------------------------------------------------------------------- #
def _cmd_generate_network(args: argparse.Namespace, stream) -> int:
    topology = args.topology
    if topology == "single-bus":
        net = single_bus(args.processors, bus_bandwidth=args.bus_bandwidth)
    elif topology == "balanced":
        net = balanced_tree(
            args.arity, args.depth, args.leaves_per_bus, bus_bandwidth=args.bus_bandwidth
        )
    elif topology == "star":
        net = star_of_buses(args.arity, args.leaves_per_bus, bus_bandwidth=args.bus_bandwidth)
    elif topology == "path":
        net = path_of_buses(args.depth, leaves_per_bus=args.leaves_per_bus)
    elif topology == "fat-tree":
        net = fat_tree(args.arity, args.depth, args.leaves_per_bus)
    elif topology == "random":
        net = random_tree(args.depth, args.processors, seed=args.seed)
    else:  # pragma: no cover - argparse restricts choices
        raise ValueError(f"unknown topology {topology}")
    save_network(net, args.output)
    print(
        f"wrote {topology} network with {net.n_processors} processors and "
        f"{net.n_buses} buses to {args.output}",
        file=stream,
    )
    return 0


def _cmd_info(args: argparse.Namespace, stream) -> int:
    net = load_network(args.network)
    metrics = compute_metrics(net)
    rows = [[key, value] for key, value in metrics.as_dict().items()]
    print(format_table(rows, headers=["metric", "value"]), file=stream)
    return 0


def _cmd_generate_workload(args: argparse.Namespace, stream) -> int:
    net = load_network(args.network)
    kind = args.kind
    if kind == "uniform":
        pattern = uniform_pattern(
            net, args.objects, requests_per_processor=args.requests, seed=args.seed
        )
    elif kind == "zipf":
        pattern = zipf_pattern(
            net, args.objects, requests_per_processor=args.requests, seed=args.seed
        )
    elif kind == "hotspot":
        pattern = hotspot_pattern(net, args.objects, seed=args.seed)
    elif kind == "local":
        pattern = subtree_local_pattern(
            net, args.objects, requests_per_processor=args.requests, seed=args.seed
        )
    elif kind == "counter":
        pattern = shared_counter_trace(net, n_counters=args.objects)
    elif kind == "web":
        pattern = web_cache_trace(
            net, n_pages=args.objects, requests_per_processor=args.requests, seed=args.seed
        )
    else:  # pragma: no cover - argparse restricts choices
        raise ValueError(f"unknown workload kind {kind}")
    Path(args.output).write_text(json.dumps(pattern.to_dict(), indent=2))
    print(
        f"wrote {kind} workload with {pattern.n_objects} objects "
        f"({int(pattern.reads.sum())} reads, {int(pattern.writes.sum())} writes) "
        f"to {args.output}",
        file=stream,
    )
    return 0


def _cmd_place(args: argparse.Namespace, stream) -> int:
    net = load_network(args.network)
    pattern = AccessPattern.from_dict(json.loads(Path(args.workload).read_text()))
    pattern.validate_for(net)

    refinement = None
    if args.strategy == "extended-nibble":
        result = extended_nibble(net, pattern)
        placement, assignment = result.placement, result.assignment
        if args.refine:
            refinement = refine_copies(net, pattern, result.modified_copies)
            fallback = [
                sorted(placement.holders(x))[0] for x in range(pattern.n_objects)
            ]
            placement, assignment = copies_to_placement(
                refinement.copies, pattern, fallback_holders=fallback
            )
    else:
        if args.refine:
            print(
                "note: --refine only applies to the extended-nibble strategy",
                file=stream,
            )
        placement = _STRATEGIES[args.strategy](net, pattern)
        assignment = None
    profile = compute_loads(net, pattern, placement, assignment=assignment)
    bound = nibble_lower_bound(net, pattern)

    rows = [
        ["strategy", args.strategy],
        ["congestion", profile.congestion],
        ["lower bound", bound],
        ["ratio", profile.congestion / bound if bound > 0 else 1.0],
        ["total load", profile.total_load],
        ["copies", placement.total_copies()],
    ]
    if refinement is not None:
        rows.append(["local-search moves", refinement.moves_accepted])
        rows.append(["congestion before refine", refinement.congestion_before])
    print(format_table(rows, headers=["quantity", "value"]), file=stream)

    if args.output:
        document = {
            "strategy": args.strategy,
            "congestion": profile.congestion,
            "lower_bound": bound,
            "holders": {
                pattern.object_names[x]: sorted(placement.holders(x))
                for x in range(pattern.n_objects)
            },
        }
        Path(args.output).write_text(json.dumps(document, indent=2))
        print(f"wrote placement to {args.output}", file=stream)
    return 0


def _cmd_run_experiments(args: argparse.Namespace, stream) -> int:
    outcomes = run_experiments(
        ids=args.ids,
        parallel=args.parallel,
        seed=args.seed,
        small=args.small,
        large=args.large,
        output_dir=args.output_dir,
        stable_artifacts=args.stable_artifacts,
        registry=args.registry,
    )
    _print_records([o.summary_row() for o in outcomes], stream)
    failed = [o for o in outcomes if not o.ok]
    for outcome in failed:
        print(f"{outcome.experiment} failed: {outcome.error}", file=stream)
    if args.output_dir:
        print(f"wrote artifacts to {args.output_dir}", file=stream)
    return 1 if failed else 0


def _cmd_experiment(args: argparse.Namespace, stream) -> int:
    import inspect

    runner = _EXPERIMENTS[args.id]
    kwargs = {}
    if "small" in inspect.signature(runner).parameters:
        kwargs["small"] = args.small
    records = runner(**kwargs)
    print(f"experiment {args.id}: {len(records)} rows", file=stream)
    _print_records(records, stream)
    return 0


_CHURN_SCENARIOS = ("flash-crowd", "maintenance", "degradation", "storm")


def _cmd_churn(args: argparse.Namespace, stream) -> int:
    from repro.analysis.experiments import churn_scenario_suite, replay_churn_scenario

    ((_name, net, seq, trace),) = churn_scenario_suite(
        seed=args.seed, small=args.small, large=args.large,
        names=[args.scenario],
    )
    records = replay_churn_scenario(
        net, seq, trace, trajectory_samples=args.samples
    )
    print(
        f"churn scenario {args.scenario}: {len(seq)} events, "
        f"{len(trace)} mutations",
        file=stream,
    )
    _print_records(
        [{k: v for k, v in rec.items() if k != "trajectory"} for rec in records],
        stream,
    )
    if args.output:
        document = {
            "format": "repro.churn-result/v1",
            "scenario": args.scenario,
            "seed": args.seed,
            "n_events": len(seq),
            "n_mutations": len(trace),
            "records": records,
        }
        Path(args.output).write_text(json.dumps(document, indent=2))
        print(f"wrote churn report to {args.output}", file=stream)
    return 0


def _cmd_simulate(args: argparse.Namespace, stream) -> int:
    from repro.sim.scenario import (
        SCENARIO_FAMILIES,
        ScenarioSpec,
        list_scenarios,
        run_scenario,
        scenario_spec,
    )

    if args.list:
        rows = [
            [name, SCENARIO_FAMILIES[name](seed=0).description]
            for name in list_scenarios()
        ]
        print(format_table(rows, headers=["scenario", "description"]), file=stream)
        return 0
    if args.spec:
        spec = ScenarioSpec.from_json(Path(args.spec).read_text())
        seed = None  # a spec file carries its seeds inside the document
    elif args.scenario:
        spec = scenario_spec(
            args.scenario, seed=args.seed, small=args.small, large=args.large
        )
        seed = args.seed
    else:
        print("simulate: pass --scenario, --spec or --list", file=stream)
        return 2
    records = run_scenario(spec, fleet=args.fleet, parallel=args.parallel)
    print(
        f"scenario {spec.name}: {len(records)} strategy runs",
        file=stream,
    )
    _print_records(
        [{k: v for k, v in rec.items() if k != "trajectory"} for rec in records],
        stream,
    )
    if args.output:
        from repro.core.kernels import active_backend

        document = {
            "format": "repro.sim-result/v1",
            "scenario": spec.name,
            "seed": seed,
            "backend": active_backend(),
            "spec": spec.to_dict(),
            "records": records,
        }
        Path(args.output).write_text(json.dumps(document, indent=2))
        print(f"wrote simulation report to {args.output}", file=stream)
    return 0


def _resolve_spec(args: argparse.Namespace, stream):
    """Spec-source resolution shared by serve/loadgen (name or JSON file)."""
    from repro.sim.scenario import ScenarioSpec, scenario_spec

    if args.spec:
        return ScenarioSpec.from_json(Path(args.spec).read_text())
    if args.scenario:
        return scenario_spec(
            args.scenario, seed=args.seed, small=args.small, large=args.large
        )
    print(f"{args.command}: pass --scenario or --spec", file=stream)
    return None


def _install_fault_plan(args: argparse.Namespace) -> None:
    """Activate a seeded chaos plan for this process (and its pool workers)."""
    plan_spec = getattr(args, "fault_plan", None)
    if plan_spec:
        from repro import faults

        faults.install(faults.FaultPlan.from_spec(plan_spec))


def _cmd_serve(args: argparse.Namespace, stream) -> int:
    import asyncio

    from repro.serve import PlacementServer

    spec = _resolve_spec(args, stream)
    if spec is None:
        return 2
    _install_fault_plan(args)
    server = PlacementServer(
        spec,
        strategy=args.strategy,
        chunk_size=args.chunk_size,
        batch_size=args.batch_size,
        queue_size=args.queue_size,
        record_dir=args.record_dir,
        max_sessions=args.sessions,
        journal_sync=args.sync_journal,
        watchdog=args.watchdog,
        max_active=args.max_active,
    )

    def ready(bound) -> None:
        host, port = bound
        print(f"serving scenario {spec.name} on {host}:{port}", file=stream)
        stream.flush()

    try:
        asyncio.run(server.serve(args.host, args.port, ready=ready))
    except KeyboardInterrupt:
        pass
    print(f"served {server.sessions_served} sessions", file=stream)
    for path in server.recordings:
        print(f"recorded {path}", file=stream)
    return 0


def _cmd_loadgen(args: argparse.Namespace, stream) -> int:
    from repro.serve.loadgen import loadgen, workload_from_spec

    spec = _resolve_spec(args, stream)
    if spec is None:
        return 2
    _install_fault_plan(args)
    events, mutations = workload_from_spec(spec)
    if args.no_churn:
        mutations = []
    stats = loadgen(
        args.host,
        args.port,
        events,
        mutations,
        rate=args.rate,
        batch=args.batch,
        repeat=args.repeat,
        connect_timeout=args.connect_timeout,
        timeout=args.timeout,
        retries=args.retries,
    )
    latency = stats["latency_ms"]
    rows = [
        ["events", stats["n_events"]],
        ["mutations", stats["n_mutations"]],
        ["target rate (ev/s)", stats["target_rate"] or "max"],
        ["achieved (ev/s)", round(stats["events_per_sec"], 1)],
        ["wall seconds", round(stats["wall_seconds"], 3)],
        ["reconnects", stats["reconnects"]],
        ["resumed", stats["resumed"]],
        ["latency p50 (ms)", round(latency["p50"], 3)],
        ["latency p90 (ms)", round(latency["p90"], 3)],
        ["latency p99 (ms)", round(latency["p99"], 3)],
        ["served", stats["summary"]["served"]],
        ["dropped", stats["summary"]["dropped"]],
        ["congestion", stats["summary"]["congestion"]],
    ]
    print(format_table(rows, headers=["quantity", "value"]), file=stream)
    if args.report:
        Path(args.report).write_text(json.dumps(stats, indent=2))
        print(f"wrote loadgen report to {args.report}", file=stream)
    return 0


def _cmd_replay_stream(args: argparse.Namespace, stream) -> int:
    from repro.serve import replay_recording

    replayed, served = replay_recording(args.recording)
    rows = [[key, value] for key, value in replayed.items()
            if not isinstance(value, (list, dict))]
    print(format_table(rows, headers=["quantity", "replayed"]), file=stream)
    if args.output:
        Path(args.output).write_text(json.dumps(replayed, indent=2))
        print(f"wrote replay record to {args.output}", file=stream)
    if args.check:
        if served is None:
            print("recording has no served summary (partial stream)", file=stream)
            return 1
        if replayed != served:
            print("MISMATCH: served summary differs from offline replay:", file=stream)
            for key in sorted(set(replayed) | set(served)):
                if replayed.get(key) != served.get(key):
                    print(
                        f"  {key}: served={served.get(key)!r} "
                        f"replayed={replayed.get(key)!r}",
                        file=stream,
                    )
            return 1
        print("served summary matches offline replay bit-for-bit", file=stream)
    return 0


def _lab_suite_entries(args: argparse.Namespace):
    from repro.lab.registry import LabRegistry, suite_entries

    registry = LabRegistry(args.registry)
    entries = suite_entries(
        args.suite, seed=args.seed, small=args.small, large=args.large
    )
    return registry, entries


def _cmd_lab_run_missing(args: argparse.Namespace, stream) -> int:
    from repro.lab.registry import run_missing

    registry, entries = _lab_suite_entries(args)
    result = run_missing(
        registry,
        entries,
        parallel=args.parallel,
        fleet=args.fleet,
        progress=lambda line: print(f"ran {line}", file=stream),
    )
    print(
        f"suite {args.suite}: {result.total} entries, "
        f"{result.already_stored} already stored, "
        f"{result.n_executed} executed",
        file=stream,
    )
    return 0


def _cmd_tournament(args: argparse.Namespace, stream) -> int:
    from repro.lab.registry import LabRegistry, run_missing, suite_entries
    from repro.lab.tournament import leaderboard_rows

    registry = LabRegistry(args.registry)
    entries = suite_entries(
        "tournament", seed=args.seed, small=args.small, large=args.large
    )
    result = run_missing(
        registry,
        entries,
        parallel=args.parallel,
        fleet=args.fleet,
        progress=lambda line: print(f"ran {line}", file=stream),
    )
    print(
        f"tournament: {result.total} entries, "
        f"{result.already_stored} already stored, "
        f"{result.n_executed} executed",
        file=stream,
    )
    payloads = [registry.get(entry.key) for entry in entries]
    _print_records(leaderboard_rows(payloads), stream)
    print(
        "(standings derive purely from the stored artifacts; "
        "`repro lab report --write` surfaces them in RESULTS.md)",
        file=stream,
    )
    return 0


def _cmd_lab_status(args: argparse.Namespace, stream) -> int:
    from repro.core.kernels import active_backend

    registry, entries = _lab_suite_entries(args)
    rows = registry.status_rows(entries)
    _print_records(rows, stream)
    stored = sum(1 for row in rows if row["stored"])
    print(
        f"{stored} of {len(rows)} suite entries stored in {args.registry} "
        f"(kernel backend: {active_backend()})",
        file=stream,
    )
    return 0


def _cmd_lab_report(args: argparse.Namespace, stream) -> int:
    from repro.lab.reports import check_results, generate_results

    registry, entries = _lab_suite_entries(args)
    if args.check:
        drift = check_results(
            registry, entries, args.output, bench_history=args.bench_history
        )
        if drift:
            print(f"{args.output} is out of date:", file=stream)
            for line in drift:
                print(line, file=stream)
            return 1
        print(f"{args.output} matches the registry artifacts", file=stream)
        return 0
    text = generate_results(registry, entries, bench_history=args.bench_history)
    if args.write:
        Path(args.output).write_text(text)
        print(f"wrote {args.output}", file=stream)
    else:
        print(text, file=stream)
    return 0


def _cmd_lab_heal(args: argparse.Namespace, stream) -> int:
    from repro.lab.registry import LabRegistry

    registry = LabRegistry(args.registry)
    report = registry.heal()
    for item in report["quarantined"]:
        print(f"quarantined {item}", file=stream)
    print(
        f"rebuilt index from artifacts: {report['entries']} entries, "
        f"{len(report['quarantined'])} quarantined",
        file=stream,
    )
    return 0


def _cmd_lab_gc(args: argparse.Namespace, stream) -> int:
    registry, entries = _lab_suite_entries(args)
    removed = registry.gc(entries, dry_run=args.dry_run)
    verb = "would remove" if args.dry_run else "removed"
    for item in removed:
        print(f"{verb} {item}", file=stream)
    print(f"{verb} {len(removed)} stored runs not keyed by suite "
          f"{args.suite}", file=stream)
    return 0


# --------------------------------------------------------------------------- #
# parser
# --------------------------------------------------------------------------- #
def _positive_int(value: str) -> int:
    number = int(value)
    if number < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return number


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Data management in hierarchical bus networks (SPAA 2000) -- "
            "reproduction toolkit"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen_net = sub.add_parser("generate-network", help="build a topology and save it as JSON")
    gen_net.add_argument(
        "--topology",
        choices=["single-bus", "balanced", "star", "path", "fat-tree", "random"],
        default="balanced",
    )
    gen_net.add_argument("--processors", type=int, default=8)
    gen_net.add_argument("--arity", type=int, default=2)
    gen_net.add_argument("--depth", type=int, default=3)
    gen_net.add_argument("--leaves-per-bus", type=int, default=2)
    gen_net.add_argument("--bus-bandwidth", type=float, default=1.0)
    gen_net.add_argument("--seed", type=int, default=0)
    gen_net.add_argument("--output", "-o", required=True)
    gen_net.set_defaults(func=_cmd_generate_network)

    info = sub.add_parser("info", help="print structural metrics of a saved network")
    info.add_argument("network")
    info.set_defaults(func=_cmd_info)

    gen_wl = sub.add_parser("generate-workload", help="build a synthetic workload")
    gen_wl.add_argument("--network", required=True)
    gen_wl.add_argument(
        "--kind",
        choices=["uniform", "zipf", "hotspot", "local", "counter", "web"],
        default="zipf",
    )
    gen_wl.add_argument("--objects", type=int, default=32)
    gen_wl.add_argument("--requests", type=int, default=32)
    gen_wl.add_argument("--seed", type=int, default=0)
    gen_wl.add_argument("--output", "-o", required=True)
    gen_wl.set_defaults(func=_cmd_generate_workload)

    place = sub.add_parser("place", help="run a placement strategy on an instance")
    place.add_argument("--network", required=True)
    place.add_argument("--workload", required=True)
    place.add_argument(
        "--strategy", choices=sorted(_STRATEGIES), default="extended-nibble"
    )
    place.add_argument(
        "--refine",
        action="store_true",
        help=(
            "run the congestion local search (snapshot/rollback tentative "
            "moves) after the extended-nibble pipeline"
        ),
    )
    place.add_argument("--output", "-o", default=None)
    place.set_defaults(func=_cmd_place)

    exp = sub.add_parser("experiment", help="run an experiment runner (E1..E11)")
    exp.add_argument("id", choices=sorted(_EXPERIMENTS))
    exp.add_argument("--small", action="store_true", help="use reduced instance sizes")
    exp.set_defaults(func=_cmd_experiment)

    run = sub.add_parser(
        "run-experiments",
        help="run an experiment sweep across worker processes",
    )
    run.add_argument(
        "--ids",
        nargs="+",
        choices=list(EXPERIMENT_IDS),
        default=None,
        help="experiments to run (default: all)",
    )
    run.add_argument(
        "--parallel",
        type=_positive_int,
        default=1,
        help="number of worker processes (1 = run inline)",
    )
    run.add_argument("--seed", type=int, default=0, help="base seed for the sweep")
    size = run.add_mutually_exclusive_group()
    size.add_argument(
        "--small", action="store_true", help="use reduced instance sizes"
    )
    size.add_argument(
        "--large",
        action="store_true",
        help="use the 10-50x larger instance suite (E5/E8/E9)",
    )
    run.add_argument(
        "--output-dir",
        "-o",
        default=None,
        help="write per-experiment JSON artifacts (and summary.json) here",
    )
    run.add_argument(
        "--stable-artifacts",
        action="store_true",
        help=(
            "zero wall-clock fields in the artifacts -- exactly "
            "elapsed_seconds, the summary's per-row seconds/artifact "
            "basenames and total_seconds -- so the files are "
            "byte-identical for any --parallel value"
        ),
    )
    run.add_argument(
        "--registry",
        default=None,
        help=(
            "also record every successful run into the lab registry "
            "rooted here (see `repro lab`)"
        ),
    )
    run.set_defaults(func=_cmd_run_experiments)

    churn = sub.add_parser(
        "churn",
        help="replay a topology-churn scenario (experiment E10 building block)",
    )
    churn.add_argument(
        "--scenario", choices=list(_CHURN_SCENARIOS), default="storm"
    )
    churn.add_argument("--seed", type=int, default=0)
    size = churn.add_mutually_exclusive_group()
    size.add_argument("--small", action="store_true", help="use reduced instance sizes")
    size.add_argument("--large", action="store_true", help="use the larger instance suite")
    churn.add_argument(
        "--samples",
        type=_positive_int,
        default=8,
        help="number of congestion trajectory samples",
    )
    churn.add_argument("--output", "-o", default=None)
    churn.set_defaults(func=_cmd_churn)

    simulate = sub.add_parser(
        "simulate",
        help=(
            "run a declarative scenario (registry name or ScenarioSpec JSON "
            "file) through the unified simulation kernel"
        ),
    )
    source = simulate.add_mutually_exclusive_group()
    source.add_argument(
        "--scenario",
        default=None,
        help="name of a registered scenario family (see --list)",
    )
    source.add_argument(
        "--spec",
        default=None,
        help="path to a ScenarioSpec JSON document to run instead",
    )
    source.add_argument(
        "--list", action="store_true", help="list the registered scenario families"
    )
    simulate.add_argument("--seed", type=int, default=0)
    size = simulate.add_mutually_exclusive_group()
    size.add_argument("--small", action="store_true", help="use reduced instance sizes")
    size.add_argument("--large", action="store_true", help="use the larger instance suite")
    simulate.add_argument(
        "--parallel",
        type=_positive_int,
        default=1,
        help=(
            "fan sweep/strategy jobs over a persistent worker pool; "
            "artifacts are byte-identical to a serial run"
        ),
    )
    simulate.add_argument(
        "--fleet",
        action="store_true",
        help=(
            "replay all strategies of a scenario in one stacked pass over "
            "the timeline (bit-for-bit equal to the sequential default)"
        ),
    )
    simulate.add_argument("--output", "-o", default=None)
    simulate.set_defaults(func=_cmd_simulate)

    def _spec_source(p, with_list: bool = False) -> None:
        source = p.add_mutually_exclusive_group()
        source.add_argument(
            "--scenario",
            default=None,
            help="name of a registered scenario family",
        )
        source.add_argument(
            "--spec",
            default=None,
            help="path to a ScenarioSpec JSON document",
        )
        p.add_argument("--seed", type=int, default=0)
        size = p.add_mutually_exclusive_group()
        size.add_argument(
            "--small", action="store_true", help="use reduced instance sizes"
        )
        size.add_argument(
            "--large", action="store_true", help="use the larger instance suite"
        )
        p.add_argument("--host", default="127.0.0.1")
        p.add_argument("--port", type=int, default=7753)

    serve = sub.add_parser(
        "serve",
        help=(
            "run the streaming placement service: request/churn events in "
            "over a socket, placement acks and live metrics out "
            "(docs/SERVING.md)"
        ),
    )
    _spec_source(serve)
    serve.add_argument(
        "--strategy",
        default=None,
        help="strategy label from the spec to serve (default: first)",
    )
    serve.add_argument(
        "--chunk-size",
        type=_positive_int,
        default=None,
        help="engine chunk bound (default: unbounded spans)",
    )
    serve.add_argument(
        "--batch-size",
        type=_positive_int,
        default=1024,
        help="max events per engine micro-batch",
    )
    serve.add_argument(
        "--queue-size",
        type=_positive_int,
        default=1024,
        help="inbound message queue bound (the backpressure knob)",
    )
    serve.add_argument(
        "--record-dir",
        default=None,
        help="write one stream recording per session here",
    )
    serve.add_argument(
        "--sessions",
        type=_positive_int,
        default=None,
        help="exit after this many completed sessions (CI smoke mode)",
    )
    serve.add_argument(
        "--sync-journal",
        action="store_true",
        help="fsync every recorded journal line before serving it "
        "(write-ahead durability: acks only cover durable bytes)",
    )
    serve.add_argument(
        "--watchdog",
        type=float,
        default=None,
        help="engine-pass deadline in seconds (a stalled engine aborts "
        "the session with a structured error instead of hanging)",
    )
    serve.add_argument(
        "--max-active",
        type=_positive_int,
        default=None,
        help="shed connections beyond this many active sessions with a "
        "structured retry-after error",
    )
    serve.add_argument(
        "--fault-plan",
        default=None,
        help="seeded chaos plan (JSON file or inline JSON; "
        "docs/ROBUSTNESS.md) -- also via REPRO_FAULT_PLAN",
    )
    serve.set_defaults(func=_cmd_serve)

    lg = sub.add_parser(
        "loadgen",
        help=(
            "replay a scenario workload against a running `repro serve` "
            "at a target events/sec; reports achieved throughput and "
            "ack-latency percentiles"
        ),
    )
    _spec_source(lg)
    lg.add_argument(
        "--rate",
        type=float,
        default=None,
        help="target events/sec (default: as fast as the server accepts)",
    )
    lg.add_argument(
        "--batch",
        type=_positive_int,
        default=64,
        help="events per request message",
    )
    lg.add_argument(
        "--repeat",
        type=_positive_int,
        default=1,
        help="replay the event sequence this many times back to back",
    )
    lg.add_argument(
        "--no-churn",
        action="store_true",
        help="send only request events (skip the spec's churn trace)",
    )
    lg.add_argument(
        "--connect-timeout",
        type=float,
        default=10.0,
        help="seconds to keep retrying the initial connection",
    )
    lg.add_argument(
        "--timeout",
        type=float,
        default=60.0,
        help="per-read socket timeout in seconds (a silent server raises "
        "instead of hanging forever)",
    )
    lg.add_argument(
        "--retries",
        type=int,
        default=0,
        help="reconnect attempts after a lost connection (sessions resume "
        "at the journal watermark when the server records)",
    )
    lg.add_argument(
        "--fault-plan",
        default=None,
        help="seeded chaos plan (JSON file or inline JSON; "
        "docs/ROBUSTNESS.md) -- also via REPRO_FAULT_PLAN",
    )
    lg.add_argument(
        "--report", default=None, help="write the stats document here (JSON)"
    )
    lg.set_defaults(func=_cmd_loadgen)

    replay = sub.add_parser(
        "replay-stream",
        help=(
            "re-run a recorded served stream through the offline engine; "
            "--check asserts the served summary matches bit-for-bit "
            "(ARCHITECTURE invariant 10)"
        ),
    )
    replay.add_argument("recording", help="a repro.stream-recording/v1 file")
    replay.add_argument(
        "--check",
        action="store_true",
        help="exit 1 unless served equals replayed",
    )
    replay.add_argument("--output", "-o", default=None)
    replay.set_defaults(func=_cmd_replay_stream)

    lab = sub.add_parser(
        "lab",
        help=(
            "experiment lab: persistent run registry, resumable sweeps and "
            "artifact-generated reports (docs/LAB.md)"
        ),
    )
    lab_sub = lab.add_subparsers(dest="lab_command", required=True)

    def _lab_common(p):
        p.add_argument(
            "--registry",
            default="lab/registry",
            help="registry root directory (default: lab/registry)",
        )
        p.add_argument(
            "--suite",
            choices=["ci", "scenarios", "tournament", "experiments", "full"],
            default="ci",
            help=(
                "which suite keys the registry; `ci` is pinned to "
                "(seed 0, small) so the committed registry is reproducible"
            ),
        )
        p.add_argument("--seed", type=int, default=0, help="suite base seed")
        size = p.add_mutually_exclusive_group()
        size.add_argument(
            "--small", action="store_true", help="use reduced instance sizes"
        )
        size.add_argument(
            "--large", action="store_true", help="use the larger instance suite"
        )

    lab_run = lab_sub.add_parser(
        "run-missing",
        help=(
            "execute exactly the suite entries without stored artifacts; "
            "each finished run registers immediately, so a killed sweep "
            "resumes without redoing completed work"
        ),
    )
    _lab_common(lab_run)
    lab_run.add_argument(
        "--parallel",
        type=_positive_int,
        default=1,
        help="fan missing entries over the persistent worker pool",
    )
    lab_run.add_argument(
        "--fleet",
        action="store_true",
        help=(
            "replay scenario entries through the stacked fleet engine "
            "(pure accelerator: artifacts are bit-for-bit unchanged)"
        ),
    )
    lab_run.set_defaults(func=_cmd_lab_run_missing)

    lab_status = lab_sub.add_parser(
        "status", help="show which suite entries have stored runs"
    )
    _lab_common(lab_status)
    lab_status.set_defaults(func=_cmd_lab_status)

    lab_report = lab_sub.add_parser(
        "report",
        help=(
            "regenerate RESULTS.md purely from registry artifacts "
            "(--write saves it, --check fails on drift, default prints)"
        ),
    )
    _lab_common(lab_report)
    lab_report.add_argument(
        "--output", "-o", default="RESULTS.md", help="report path"
    )
    lab_report.add_argument(
        "--bench-history",
        default="benchmarks/BENCH_history.json",
        help="committed bench trajectory for the derived speedup section",
    )
    mode = lab_report.add_mutually_exclusive_group()
    mode.add_argument(
        "--write", action="store_true", help="write the report to --output"
    )
    mode.add_argument(
        "--check",
        action="store_true",
        help="exit 1 if --output differs from a regeneration",
    )
    lab_report.set_defaults(func=_cmd_lab_report)

    lab_heal = lab_sub.add_parser(
        "heal",
        help=(
            "quarantine a torn index.json (and any corrupt artifacts) and "
            "rebuild the index byte-identically from artifact payloads"
        ),
    )
    lab_heal.add_argument(
        "--registry",
        default="lab/registry",
        help="registry root directory (default: lab/registry)",
    )
    lab_heal.set_defaults(func=_cmd_lab_heal)

    lab_gc = lab_sub.add_parser(
        "gc",
        help=(
            "remove stored runs not keyed by the suite (old engine "
            "versions, stale specs, orphaned artifacts)"
        ),
    )
    _lab_common(lab_gc)
    lab_gc.add_argument(
        "--dry-run", action="store_true", help="only print what would be removed"
    )
    lab_gc.set_defaults(func=_cmd_lab_gc)

    tournament = sub.add_parser(
        "tournament",
        help=(
            "race the pinned strategy set across every scenario family "
            "through the lab registry and print the leaderboard"
        ),
    )
    tournament.add_argument(
        "--registry",
        default="lab/registry",
        help="registry root directory (default: lab/registry)",
    )
    tournament.add_argument("--seed", type=int, default=0, help="suite base seed")
    t_size = tournament.add_mutually_exclusive_group()
    t_size.add_argument(
        "--small", action="store_true", help="use reduced instance sizes"
    )
    t_size.add_argument(
        "--large", action="store_true", help="use the larger instance suite"
    )
    tournament.add_argument(
        "--parallel",
        type=_positive_int,
        default=1,
        help="fan missing entries over the persistent worker pool",
    )
    tournament.add_argument(
        "--fleet",
        action="store_true",
        help=(
            "replay each entry's strategies through the stacked fleet "
            "engine (pure accelerator: artifacts are bit-for-bit unchanged)"
        ),
    )
    tournament.set_defaults(func=_cmd_tournament)

    return parser


def main(argv: Optional[Sequence[str]] = None, stream=None) -> int:
    """CLI entry point; returns the process exit code."""
    stream = stream if stream is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args, stream)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
