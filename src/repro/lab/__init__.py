"""Experiment lab: persistent run registry and artifact-generated reports.

``repro.lab`` makes sweeps resumable and reported numbers reproducible:

* :mod:`repro.lab.registry` -- a content-addressed run registry keyed by
  ``(spec_hash, seed, engine_version)`` with a resumable ``run_missing``
  sweep driver over the persistent worker pool;
* :mod:`repro.lab.reports` -- ``RESULTS.md`` generated purely from stored
  artifacts (plus the committed benchmark trajectory), checked against
  drift in CI;
* :mod:`repro.lab.tournament` -- the pinned strategy-tournament set and
  the leaderboard derived from stored tournament artifacts.

The ``repro lab`` CLI (``run-missing`` / ``status`` / ``report`` / ``gc``)
and ``repro tournament`` expose them; see ``docs/LAB.md`` for the
workflow.
"""

from repro.lab.registry import (
    ENGINE_VERSION,
    LAB_SUITES,
    LabEntry,
    LabRegistry,
    RunKey,
    RunMissingResult,
    canonical_hash,
    canonical_json,
    experiment_entry,
    run_missing,
    scenario_entry,
    suite_entries,
    tournament_entry,
)
from repro.lab.reports import check_results, generate_results
from repro.lab.tournament import (
    TOURNAMENT_STRATEGIES,
    leaderboard_rows,
    tournament_spec,
)

__all__ = [
    "ENGINE_VERSION",
    "LAB_SUITES",
    "LabEntry",
    "LabRegistry",
    "RunKey",
    "RunMissingResult",
    "TOURNAMENT_STRATEGIES",
    "canonical_hash",
    "canonical_json",
    "check_results",
    "experiment_entry",
    "generate_results",
    "leaderboard_rows",
    "run_missing",
    "scenario_entry",
    "suite_entries",
    "tournament_entry",
    "tournament_spec",
]
