"""Experiment lab: persistent run registry and artifact-generated reports.

``repro.lab`` makes sweeps resumable and reported numbers reproducible:

* :mod:`repro.lab.registry` -- a content-addressed run registry keyed by
  ``(spec_hash, seed, engine_version)`` with a resumable ``run_missing``
  sweep driver over the persistent worker pool;
* :mod:`repro.lab.reports` -- ``RESULTS.md`` generated purely from stored
  artifacts (plus the committed benchmark trajectory), checked against
  drift in CI.

The ``repro lab`` CLI (``run-missing`` / ``status`` / ``report`` / ``gc``)
exposes both; see ``docs/LAB.md`` for the workflow.
"""

from repro.lab.registry import (
    ENGINE_VERSION,
    LAB_SUITES,
    LabEntry,
    LabRegistry,
    RunKey,
    RunMissingResult,
    canonical_hash,
    canonical_json,
    experiment_entry,
    run_missing,
    scenario_entry,
    suite_entries,
)
from repro.lab.reports import check_results, generate_results

__all__ = [
    "ENGINE_VERSION",
    "LAB_SUITES",
    "LabEntry",
    "LabRegistry",
    "RunKey",
    "RunMissingResult",
    "canonical_hash",
    "canonical_json",
    "check_results",
    "experiment_entry",
    "generate_results",
    "run_missing",
    "scenario_entry",
    "suite_entries",
]
