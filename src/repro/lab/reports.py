"""Artifact-generated reports: ``RESULTS.md`` as a pure function of data.

Every number in the generated report comes from a stored registry
artifact (scenario/experiment records) or from the committed benchmark
trajectory (``benchmarks/BENCH_history.json``) -- never from hand
transcription (ARCHITECTURE.md invariant 8).  Given the same registry and
bench history the output is byte-identical, which is what lets CI fail on
drift between the committed ``RESULTS.md`` and a regeneration
(``repro lab report --check``).

Sections:

* **Scenario results** -- one row per (scenario, sweep label, strategy)
  run: congestion, served/dropped split, drop rate, cost breakdown.
* **Competitive ratios** -- per scenario, each strategy's congestion
  relative to the hindsight-static baseline of the same run.
* **Strategy tournament** -- the leaderboard of the pinned tournament
  strategy set raced across every scenario family
  (:mod:`repro.lab.tournament`): wins, entries and mean congestion ratio
  per strategy, plus the per-group detail table.
* **Experiments** -- a summary row per experiment artifact plus each
  experiment's record table (truncated with an explicit marker).
* **Benchmark trajectory** -- the machine-independent speedup ratios
  (fleet stacked-vs-sequential, churn repair-vs-rebuild, online
  incremental-vs-scalar, kernel overhead) derived from the committed
  bench-history medians, one row per recorded run.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence

from repro.analysis.report import format_value, markdown_section
from repro.errors import LabError
from repro.lab.registry import ENGINE_VERSION, LabEntry, LabRegistry

__all__ = ["generate_results", "check_results", "GENERATED_MARKER"]

GENERATED_MARKER = (
    "<!-- GENERATED FILE -- do not edit by hand.  Regenerate with\n"
    "     `repro lab report --write` from the committed lab registry\n"
    "     (see docs/LAB.md); CI fails on drift via `repro lab report --check`. -->"
)

#: Columns of the scenario results table (record keys of
#: :func:`repro.sim.scenario.run_scenario`).
_SCENARIO_COLUMNS = (
    "scenario",
    "label",
    "strategy",
    "congestion",
    "served",
    "dropped",
    "drop_rate",
    "service_load",
    "management_load",
)

_EXPERIMENT_MAX_ROWS = 16

#: (numerator, denominator) bench-history median keys per derived ratio.
_BENCH_RATIOS = (
    (
        "fleet speedup (stacked vs sequential)",
        "benchmarks/bench_fleet.py::test_sequential_fleet_small",
        "benchmarks/bench_fleet.py::test_fleet_replay_small",
    ),
    (
        "churn repair speedup (repair vs rebuild)",
        "benchmarks/bench_churn.py::test_churn_rebuild_small",
        "benchmarks/bench_churn.py::test_churn_repair_small",
    ),
    (
        "online incremental speedup (scalar event loop vs incremental)",
        "benchmarks/bench_online.py::test_replay_event_reference_small",
        "benchmarks/bench_online.py::test_replay_event_incremental_small",
    ),
    (
        "adaptive fleet speedup (batched vs lane-by-lane)",
        "benchmarks/bench_fleet.py::test_adaptive_lane_by_lane_small",
        "benchmarks/bench_fleet.py::test_adaptive_fleet_small",
    ),
    (
        "kernel overhead (engine vs direct chunk path)",
        "benchmarks/bench_sim.py::test_engine_batch_small",
        "benchmarks/bench_sim.py::test_direct_batch_small",
    ),
    (
        "huge replay speedup (compiled vs numpy reference)",
        "benchmarks/bench_huge.py::test_huge_replay_numpy_reference",
        "benchmarks/bench_huge.py::test_huge_replay_compiled",
    ),
)


def _scenario_rows(payloads: Sequence[Mapping]) -> List[Dict[str, object]]:
    rows: List[Dict[str, object]] = []
    for payload in payloads:
        for record in payload["records"]:
            n_events = int(record.get("n_events", 0)) or 1
            rows.append(
                {
                    **{k: record.get(k, "") for k in _SCENARIO_COLUMNS},
                    "drop_rate": float(record.get("dropped", 0)) / n_events,
                }
            )
    return rows


def _ratio_rows(payloads: Sequence[Mapping]) -> List[Dict[str, object]]:
    """Per (scenario, label): strategy congestion / hindsight-static congestion."""
    rows: List[Dict[str, object]] = []
    for payload in payloads:
        by_label: Dict[str, List[Mapping]] = {}
        for record in payload["records"]:
            by_label.setdefault(str(record.get("label", "")), []).append(record)
        for label, records in by_label.items():
            baseline = next(
                (
                    float(r["congestion"])
                    for r in records
                    if r.get("strategy") == "hindsight-static"
                ),
                None,
            )
            for record in records:
                congestion = float(record["congestion"])
                rows.append(
                    {
                        "scenario": record.get("scenario", ""),
                        "label": label,
                        "strategy": record.get("strategy", ""),
                        "congestion": congestion,
                        "vs hindsight-static": (
                            congestion / baseline
                            if baseline
                            else "n/a"
                        ),
                    }
                )
    return rows


def _bench_rows(bench_history: Optional[Path]) -> List[Dict[str, object]]:
    if bench_history is None or not Path(bench_history).exists():
        return []
    document = json.loads(Path(bench_history).read_text())
    rows: List[Dict[str, object]] = []
    for run in document.get("runs", []):
        medians = run.get("medians", {})
        row: Dict[str, object] = {"run": run.get("label", "?")}
        for title, numerator, denominator in _BENCH_RATIOS:
            num, den = medians.get(numerator), medians.get(denominator)
            row[title] = (
                f"{float(num) / float(den):.2f}x" if num and den else "n/a"
            )
        rows.append(row)
    return rows


def generate_results(
    registry: LabRegistry,
    entries: Sequence[LabEntry],
    bench_history: "str | Path | None" = None,
) -> str:
    """Render the full results report from stored artifacts.

    Raises :class:`~repro.errors.LabError` when any suite entry has no
    stored run -- a report must never be generated from partial data;
    run ``repro lab run-missing`` first.
    """
    missing = registry.missing(entries)
    if missing:
        names = ", ".join(f"{e.kind}:{e.name}" for e in missing[:8])
        more = f" (+{len(missing) - 8} more)" if len(missing) > 8 else ""
        raise LabError(
            f"cannot generate a report from a partial registry; "
            f"{len(missing)} of {len(entries)} entries missing: {names}{more} "
            f"-- run `repro lab run-missing` first"
        )

    scenario_payloads = [
        registry.get(e.key) for e in entries if e.kind == "scenario"
    ]
    tournament_payloads = [
        registry.get(e.key) for e in entries if e.kind == "tournament"
    ]
    experiment_payloads = [
        registry.get(e.key) for e in entries if e.kind == "experiment"
    ]

    parts: List[str] = [
        "# Results",
        "",
        GENERATED_MARKER,
        "",
        (
            f"Generated from {len(entries)} registry artifacts "
            f"({len(scenario_payloads)} scenario runs, "
            f"{len(tournament_payloads)} tournament runs, "
            f"{len(experiment_payloads)} experiments) at engine version "
            f"{ENGINE_VERSION}.  Every value below is read from a stored "
            f"artifact keyed by `(spec_hash, seed, engine_version)`; see "
            f"docs/LAB.md for the provenance contract."
        ),
        "",
    ]

    scenario_rows = _scenario_rows(scenario_payloads)
    parts.append(
        markdown_section(
            "Scenario results", scenario_rows, columns=list(_SCENARIO_COLUMNS)
        )
    )
    parts.append("")
    parts.append(
        markdown_section(
            "Competitive ratios vs hindsight-static",
            _ratio_rows(scenario_payloads),
        )
    )
    parts.append("")

    if tournament_payloads:
        from repro.lab.tournament import leaderboard_rows

        parts.append(
            markdown_section(
                "Strategy tournament leaderboard",
                leaderboard_rows(tournament_payloads),
            )
        )
        parts.append(
            "\n*A strategy wins a (scenario, sweep label) group when no "
            "competitor reached lower final congestion (ties share the "
            "win); the ratio column is its mean congestion relative to "
            "the hindsight-static baseline of the same group.  Rerun "
            "with `repro tournament`.*"
        )
        parts.append("")
        parts.append(
            markdown_section(
                "Tournament detail (per scenario and strategy)",
                _ratio_rows(tournament_payloads),
                level=3,
            )
        )
        parts.append("")

    summary_rows = [
        {
            "experiment": p["name"],
            "seed": p["seed"],
            "records": p["n_records"],
            "spec_hash": str(p["spec_hash"])[:12],
        }
        for p in experiment_payloads
    ]
    parts.append(markdown_section("Experiments", summary_rows))
    parts.append("")
    for payload in experiment_payloads:
        parts.append(
            markdown_section(
                f"{payload['name']} (seed {format_value(payload['seed'])})",
                payload["records"],
                max_rows=_EXPERIMENT_MAX_ROWS,
                level=3,
            )
        )
        parts.append("")

    bench_rows = _bench_rows(Path(bench_history) if bench_history else None)
    if bench_rows:
        parts.append(
            markdown_section(
                "Benchmark trajectory (derived speedup ratios)", bench_rows
            )
        )
        parts.append(
            "\n*Ratios are derived from the committed "
            "`benchmarks/BENCH_history.json` medians (one row per recorded "
            "bench run); absolute timings are machine-dependent and live "
            "only in the history file.*"
        )
        parts.append("")

    return "\n".join(parts).rstrip() + "\n"


def check_results(
    registry: LabRegistry,
    entries: Sequence[LabEntry],
    results_path: "str | Path",
    bench_history: "str | Path | None" = None,
) -> List[str]:
    """Compare the committed report against a regeneration.

    Returns a list of human-readable drift lines (empty = in sync).
    """
    expected = generate_results(registry, entries, bench_history=bench_history)
    path = Path(results_path)
    if not path.exists():
        return [f"{path} does not exist (run `repro lab report --write`)"]
    actual = path.read_text()
    if actual == expected:
        return []
    import difflib

    diff = list(
        difflib.unified_diff(
            actual.splitlines(),
            expected.splitlines(),
            fromfile=str(path),
            tofile="regenerated",
            lineterm="",
            n=1,
        )
    )
    head = diff[:40]
    if len(diff) > 40:
        head.append(f"... (+{len(diff) - 40} more diff lines)")
    return head
