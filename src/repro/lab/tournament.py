"""Strategy tournaments: one strategy set raced across the scenario registry.

A tournament entry is an ordinary :class:`~repro.sim.scenario.ScenarioSpec`
of a registered scenario family with its strategy tuple replaced by the
pinned :data:`TOURNAMENT_STRATEGIES` set -- the paper's reference
strategies (hindsight-static, first-touch) against the adaptive
counter family (the default rent-or-buy :class:`EdgeCounterManager`, an
eager low-threshold tuning, migration hysteresis, and a hand-tuned
rent-or-buy threshold split).  Because the spec document embeds the
strategy set, tournament runs are content-addressed in the lab registry
exactly like scenario runs: resumable via ``run-missing``, byte-identical
across serial / ``--parallel`` / ``--fleet`` execution, and consumed by
the generated RESULTS.md leaderboard without hand transcription.

The fleet engine makes this shape cheap: all six lanes of one tournament
entry replay in a single timeline pass over a shared
:class:`~repro.core.loadstate.StackedLoadState`, with the adaptive lanes
sharing one chunk decode and nearest-table build through
``EdgeCounterManager.serve_chunk_fleet``.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Mapping, Sequence, Tuple

__all__ = [
    "TOURNAMENT_STRATEGIES",
    "tournament_spec",
    "leaderboard_rows",
]

#: The pinned tournament strategy set.  Labels name the runs in records
#: and on the leaderboard; ``hindsight-static`` doubles as the ratio
#: baseline.  Changing this tuple changes every tournament spec hash, so
#: stored runs of the old set are invalidated (``repro lab gc`` reclaims
#: them).
TOURNAMENT_STRATEGIES: Tuple[Mapping, ...] = (
    {"kind": "hindsight-static", "label": "hindsight-static"},
    {"kind": "first-touch", "label": "first-touch"},
    {"kind": "edge-counter", "label": "edge-counter"},
    {
        "kind": "edge-counter",
        "label": "edge-counter-eager",
        "args": {"object_size": 2, "invalidation_patience": 1},
    },
    {
        "kind": "hysteresis",
        "label": "hysteresis",
        "args": {"migration_factor": 3},
    },
    {
        "kind": "rent-or-buy",
        "label": "rent-or-buy-tuned",
        "args": {
            "replicate_threshold": 6,
            "migrate_threshold": 3,
            "invalidation_patience": 3,
        },
    },
)


def tournament_spec(name: str, seed: int = 0, small: bool = False,
                    large: bool = False):
    """The tournament variant of one registered scenario family.

    The base spec of the family is built for ``(seed, size)`` and its
    strategy tuple swapped for :data:`TOURNAMENT_STRATEGIES`; network,
    workload, churn, sinks and sweep stay untouched, so the tournament
    replays exactly the timeline the plain scenario entry replays.
    """
    from repro.sim.scenario import scenario_spec

    base = scenario_spec(name, seed=seed, small=small, large=large)
    return replace(base, strategies=TOURNAMENT_STRATEGIES)


def leaderboard_rows(
    payloads: Sequence[Mapping],
) -> List[Dict[str, object]]:
    """The tournament standings, one row per strategy.

    A strategy *wins* a ``(scenario, sweep label)`` group when no
    strategy in that group reached lower final congestion (ties share
    the win).  ``mean ratio`` is the arithmetic mean over all groups of
    the strategy's congestion relative to the group's hindsight-static
    baseline -- the offline reference every online strategy in the paper
    is measured against.  Rows sort by wins (descending), then mean
    ratio (ascending), then label; the records come straight from stored
    registry artifacts, so the standings are deterministic and
    machine-independent.
    """
    groups: Dict[Tuple[str, str], List[Mapping]] = {}
    for payload in payloads:
        for record in payload["records"]:
            key = (str(record.get("scenario", "")), str(record.get("label", "")))
            groups.setdefault(key, []).append(record)

    wins: Dict[str, int] = {}
    ratios: Dict[str, List[float]] = {}
    entered: Dict[str, int] = {}
    for records in groups.values():
        best = min(float(r["congestion"]) for r in records)
        baseline = next(
            (
                float(r["congestion"])
                for r in records
                if r.get("strategy") == "hindsight-static"
            ),
            None,
        )
        for record in records:
            strategy = str(record.get("strategy", ""))
            congestion = float(record["congestion"])
            entered[strategy] = entered.get(strategy, 0) + 1
            if congestion == best:
                wins[strategy] = wins.get(strategy, 0) + 1
            if baseline:
                ratios.setdefault(strategy, []).append(congestion / baseline)

    rows = [
        {
            "strategy": strategy,
            "wins": wins.get(strategy, 0),
            "entries": entered[strategy],
            "mean ratio vs hindsight-static": (
                sum(ratios[strategy]) / len(ratios[strategy])
                if ratios.get(strategy)
                else "n/a"
            ),
        }
        for strategy in entered
    ]
    rows.sort(
        key=lambda row: (
            -int(row["wins"]),
            (
                float(row["mean ratio vs hindsight-static"])
                if isinstance(row["mean ratio vs hindsight-static"], float)
                else float("inf")
            ),
            str(row["strategy"]),
        )
    )
    return rows
