"""Persistent run registry: every reported number traces back to an artifact.

The registry is a directory (``lab/registry`` in the repo by convention)
holding one JSON artifact per completed run plus a single ``index.json``.
Runs are keyed by ``(spec_hash, seed, engine_version)``:

* ``spec_hash`` -- SHA-256 of the canonical JSON form of what ran: a
  :class:`~repro.sim.scenario.ScenarioSpec` round-trip document for
  scenario entries (:meth:`ScenarioSpec.spec_hash`), or the
  ``{"kind": "experiment", "experiment": ..., "small": ..., "large": ...}``
  document for the E1--E11 experiment runners.  Content-addressed: any
  change to the network, workload, churn, strategies or embedded seeds
  changes the hash.
* ``seed`` -- the entry's own seed (for experiments: the per-experiment
  seed derived by :func:`repro.analysis.runner.experiment_seeds`).
* ``engine_version`` -- :data:`repro.version.__version__`; bumping the
  package version invalidates every stored run (``gc`` reclaims the old
  ones).

Artifacts live under ``artifacts/<hash[:2]>/<hash>-s<seed>-v<version>.json``
and contain only deterministic data (result records and the spec document
-- never wall-clock fields or absolute paths), so the whole registry is a
pure function of the registered suite and byte-identical across machines,
worker counts and interrupted/resumed sweeps.  The one declared exception
is the ``backend`` provenance field naming the kernel backend that ran the
entry; the *records* themselves are pinned bit-for-bit backend-independent
(ARCHITECTURE.md invariant 9), so keys, reports and the index never vary
with it.  ``index.json`` is rewritten
sorted on every update and carries no timestamps for the same reason.

:func:`run_missing` is the resumable sweep driver: it diffs a suite of
:class:`LabEntry` definitions against the stored keys and executes *only*
the missing ones, fanning them over the persistent worker pool
(:func:`repro.parallel.iter_jobs`) and registering each artifact the
moment its job completes -- a killed sweep re-run with the same arguments
redoes only the unfinished entries.  Failed runs are never registered, so
they are retried on the next pass.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from repro import faults
from repro.errors import LabError
from repro.version import __version__ as ENGINE_VERSION

logger = logging.getLogger("repro.lab")

__all__ = [
    "ENGINE_VERSION",
    "INDEX_FORMAT",
    "ARTIFACT_FORMAT",
    "LAB_SUITES",
    "RunKey",
    "LabEntry",
    "LabRegistry",
    "RunMissingResult",
    "canonical_json",
    "canonical_hash",
    "experiment_entry",
    "scenario_entry",
    "tournament_entry",
    "suite_entries",
    "run_missing",
]

INDEX_FORMAT = "repro.lab-index/v1"
ARTIFACT_FORMAT = "repro.lab-artifact/v1"

#: Experiments whose *records* are wall-clock measurements (E6 is the
#: runtime-scaling experiment) cannot be content-addressed -- their payload
#: is not a function of the seed -- so the suites exclude them.
NONDETERMINISTIC_EXPERIMENTS = ("E6",)


# --------------------------------------------------------------------------- #
# hashing
# --------------------------------------------------------------------------- #
def canonical_json(document: Mapping) -> str:
    """Canonical JSON of a plain document: sorted keys, fixed separators.

    The encoding is invariant under dict key order and JSON round-trips,
    so it is a stable basis for content addressing.
    """
    return json.dumps(
        document, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    )


def canonical_hash(document: Mapping) -> str:
    """SHA-256 hex digest of :func:`canonical_json`."""
    return hashlib.sha256(canonical_json(document).encode("ascii")).hexdigest()


# --------------------------------------------------------------------------- #
# keys and entries
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class RunKey:
    """The registry key of one run: ``(spec_hash, seed, engine_version)``."""

    spec_hash: str
    seed: int
    engine_version: str = ENGINE_VERSION

    def as_string(self) -> str:
        """The index key string ``<spec_hash>:<seed>:<engine_version>``."""
        return f"{self.spec_hash}:{self.seed}:{self.engine_version}"


@dataclass(frozen=True)
class LabEntry:
    """One registered unit of work: what to run and how it is keyed.

    ``document`` is the canonical spec document that gets hashed -- the
    :meth:`ScenarioSpec.to_dict` round-trip form for scenarios (so
    ``entry.spec_hash == spec.spec_hash()``) or
    ``{"kind": "experiment", "experiment": id, "small": ..., "large": ...}``
    for experiments -- and is stored verbatim inside the artifact for
    provenance.
    """

    name: str
    kind: str  # "scenario" | "tournament" | "experiment"
    seed: int
    document: Mapping = field(hash=False)

    @property
    def spec_hash(self) -> str:
        return canonical_hash(self.document)

    @property
    def key(self) -> RunKey:
        return RunKey(spec_hash=self.spec_hash, seed=self.seed)

    def to_job_json(self) -> str:
        """Self-contained JSON of the entry (what worker processes get)."""
        return json.dumps(
            {
                "name": self.name,
                "kind": self.kind,
                "seed": self.seed,
                "document": dict(self.document),
            }
        )

    @classmethod
    def from_job_json(cls, text: str) -> "LabEntry":
        doc = json.loads(text)
        return cls(
            name=doc["name"],
            kind=doc["kind"],
            seed=int(doc["seed"]),
            document=doc["document"],
        )


def scenario_entry(spec, seed: int) -> LabEntry:
    """Registry entry for one :class:`~repro.sim.scenario.ScenarioSpec`.

    ``seed`` is the base seed the spec was instantiated with; the spec's
    own embedded seeds are part of the hashed document, so the key is
    content-addressed either way.
    """
    return LabEntry(
        name=spec.name,
        kind="scenario",
        seed=int(seed),
        document=spec.to_dict(),
    )


def tournament_entry(spec, seed: int) -> LabEntry:
    """Registry entry for one strategy-tournament scenario spec.

    Tournament entries are scenario specs whose strategy tuple is the
    pinned set of :data:`repro.lab.tournament.TOURNAMENT_STRATEGIES`
    (build them with :func:`repro.lab.tournament.tournament_spec`); the
    strategy set is part of the hashed document, so tournament and plain
    scenario runs of the same family never collide.  The ``tournament/``
    name prefix keeps the two apart in status tables and reports.
    """
    return LabEntry(
        name=f"tournament/{spec.name}",
        kind="tournament",
        seed=int(seed),
        document=spec.to_dict(),
    )


def experiment_entry(
    exp_id: str, seed: int, small: bool = False, large: bool = False
) -> LabEntry:
    """Registry entry for one experiment runner (E1--E11, minus E6).

    ``seed`` is the *per-experiment* seed (derive it with
    :func:`repro.analysis.runner.experiment_seeds` for sweep-independent
    keys).
    """
    if exp_id in NONDETERMINISTIC_EXPERIMENTS:
        raise LabError(
            f"experiment {exp_id} has wall-clock records and cannot be "
            "content-addressed in the registry"
        )
    return LabEntry(
        name=exp_id,
        kind="experiment",
        seed=int(seed),
        document={
            "kind": "experiment",
            "experiment": exp_id,
            "small": bool(small),
            "large": bool(large),
        },
    )


# --------------------------------------------------------------------------- #
# suites
# --------------------------------------------------------------------------- #
def _scenario_suite(seed: int, small: bool, large: bool) -> List[LabEntry]:
    from repro.sim.scenario import list_scenarios, scenario_spec

    return [
        scenario_entry(scenario_spec(name, seed=seed, small=small, large=large), seed)
        for name in list_scenarios()
    ]


def _tournament_suite(seed: int, small: bool, large: bool) -> List[LabEntry]:
    from repro.lab.tournament import tournament_spec
    from repro.sim.scenario import list_scenarios

    return [
        tournament_entry(
            tournament_spec(name, seed=seed, small=small, large=large), seed
        )
        for name in list_scenarios()
    ]


def _experiment_suite(seed: int, small: bool, large: bool) -> List[LabEntry]:
    from repro.analysis.runner import EXPERIMENT_IDS, experiment_seeds

    ids = [i for i in EXPERIMENT_IDS if i not in NONDETERMINISTIC_EXPERIMENTS]
    seeds = experiment_seeds(seed, ids)
    return [
        experiment_entry(exp_id, seeds[exp_id], small=small, large=large)
        for exp_id in ids
    ]


def _full_suite(seed: int, small: bool, large: bool) -> List[LabEntry]:
    return (
        _scenario_suite(seed, small, large)
        + _tournament_suite(seed, small, large)
        + _experiment_suite(seed, small, large)
    )


def _ci_suite(seed: int, small: bool, large: bool) -> List[LabEntry]:
    # pinned: the committed registry and RESULTS.md are regenerated from
    # exactly this suite in CI, so it ignores the size/seed knobs
    return _full_suite(seed=0, small=True, large=False)


LAB_SUITES: Dict[str, Callable[[int, bool, bool], List[LabEntry]]] = {
    "ci": _ci_suite,
    "scenarios": _scenario_suite,
    "tournament": _tournament_suite,
    "experiments": _experiment_suite,
    "full": _full_suite,
}


def suite_entries(
    suite: str = "ci", seed: int = 0, small: bool = False, large: bool = False
) -> List[LabEntry]:
    """The entries of a named suite.

    ``scenarios`` is every registered scenario family, ``tournament`` is
    every family under the pinned tournament strategy set
    (:mod:`repro.lab.tournament`), ``experiments`` is every deterministic
    experiment runner (E1--E11 minus E6), ``full`` is all three, and
    ``ci`` is the *pinned* full suite at ``seed=0, small=True``
    regardless of the knobs -- the committed registry is regenerated from
    it, so it must mean the same thing on every machine.
    """
    factory = LAB_SUITES.get(suite)
    if factory is None:
        raise LabError(f"unknown lab suite {suite!r} (have: {sorted(LAB_SUITES)})")
    return factory(seed, small, large)


# --------------------------------------------------------------------------- #
# the registry
# --------------------------------------------------------------------------- #
def _json_default(value):
    """Match the experiment artifact encoder (numpy scalars/arrays)."""
    from repro.analysis.runner import _json_default as runner_default

    return runner_default(value)


def _durable_write(path: Path, text: str) -> None:
    """Atomic temp-fsync-rename write: readers see old or new, never torn.

    The payload is written to a sibling temp file, fsynced, and renamed
    over the target (``os.replace`` is atomic on POSIX and Windows); the
    directory entry is fsynced best-effort so the rename itself is
    durable.  The ``registry.write`` fault point simulates the failure
    modes this exists to rule out: ``torn-write`` leaves a half-written
    *target* (the legacy in-place write a crash could tear --
    :meth:`LabRegistry.heal` recovers it), ``disk-error`` raises
    :class:`OSError` before anything is touched.
    """
    fault = faults.fault_point("registry.write")
    if fault is not None:
        if fault.kind == "torn-write":
            path.write_text(text[: max(1, len(text) // 2)], encoding="utf-8")
        faults.raise_fault(fault)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(text)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    try:
        dir_fd = os.open(path.parent, os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)
    except OSError:
        pass  # platforms without directory fsync: rename is still atomic


class LabRegistry:
    """A content-addressed run registry rooted at one directory.

    Layout::

        <root>/index.json                          sorted key -> entry map
        <root>/artifacts/<h[:2]>/<h>-s<seed>-v<version>.json

    Every write keeps the invariant that the directory is a pure function
    of the set of registered runs: the index is rewritten fully sorted,
    artifacts are canonical JSON, and nothing machine- or time-dependent
    is ever stored.
    """

    def __init__(self, root: "str | Path"):
        self.root = Path(root)

    # -- index ------------------------------------------------------------- #
    @property
    def index_path(self) -> Path:
        return self.root / "index.json"

    def load_index(self) -> Dict[str, Dict[str, object]]:
        """The key -> entry-record map (empty for a fresh registry).

        An *unparseable* index is a torn write (a crash mid-rewrite under
        the legacy in-place writer, or disk corruption): it is
        quarantined and rebuilt from the artifact payloads via
        :meth:`heal` -- artifacts are the source of truth, the index is a
        cache.  An index with an *unknown format* string still raises: it
        parses fine, so it is a version mismatch, not corruption, and
        healing would silently destroy a future-format registry.
        """
        if not self.index_path.exists():
            return {}
        try:
            document = json.loads(self.index_path.read_text())
        except json.JSONDecodeError:
            logger.warning(
                "registry index %s is torn/corrupt; quarantining and "
                "rebuilding from artifacts",
                self.index_path,
            )
            self.heal()
            if not self.index_path.exists():
                return {}
            document = json.loads(self.index_path.read_text())
        if document.get("format") != INDEX_FORMAT:
            raise LabError(
                f"unknown registry index format {document.get('format')!r} "
                f"in {self.index_path}"
            )
        return dict(document.get("entries", {}))

    def _write_index(self, entries: Mapping[str, Mapping]) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        document = {
            "format": INDEX_FORMAT,
            "entries": {key: entries[key] for key in sorted(entries)},
        }
        _durable_write(
            self.index_path, json.dumps(document, indent=2, sort_keys=True)
        )

    def heal(self) -> Dict[str, object]:
        """Rebuild ``index.json`` from artifact payloads; quarantine rot.

        Artifacts carry every field the index derives (name, kind, seed,
        spec hash, engine version, record count), so a lost or torn index
        is rebuilt *byte-identically* to the one an uninterrupted sweep
        would have written.  An unparseable index or artifact is moved
        aside to ``<name>.corrupt`` (never deleted -- forensics over
        convenience); a quarantined artifact's runs simply count as
        missing, which ``run-missing`` heals by re-executing them.
        Returns a report: quarantined paths and the rebuilt entry count.
        """
        quarantined: List[str] = []
        if self.index_path.exists():
            parseable = True
            try:
                json.loads(self.index_path.read_text())
            except json.JSONDecodeError:
                parseable = False
            if not parseable:
                target = self.index_path.with_name(self.index_path.name + ".corrupt")
                os.replace(self.index_path, target)
                quarantined.append(target.relative_to(self.root).as_posix())
        entries: Dict[str, Dict[str, object]] = {}
        for path in sorted((self.root / "artifacts").glob("*/*.json")):
            try:
                payload = json.loads(path.read_text())
                if payload.get("format") != ARTIFACT_FORMAT:
                    raise ValueError(f"format {payload.get('format')!r}")
                key = (
                    f"{payload['spec_hash']}:{payload['seed']}:"
                    f"{payload['engine_version']}"
                )
                record = {
                    "name": payload["name"],
                    "kind": payload["kind"],
                    "seed": payload["seed"],
                    "spec_hash": payload["spec_hash"],
                    "engine_version": payload["engine_version"],
                    "artifact": path.relative_to(self.root).as_posix(),
                    "n_records": payload["n_records"],
                }
            except (ValueError, KeyError) as exc:
                logger.warning("quarantining corrupt artifact %s: %s", path, exc)
                target = path.with_name(path.name + ".corrupt")
                os.replace(path, target)
                quarantined.append(target.relative_to(self.root).as_posix())
                continue
            entries[key] = record
        if entries or quarantined or self.index_path.exists() or self.root.exists():
            self._write_index(entries)
        return {"entries": len(entries), "quarantined": quarantined}

    # -- artifacts --------------------------------------------------------- #
    def artifact_path(self, key: RunKey) -> Path:
        """The content-addressed artifact location of a key."""
        name = f"{key.spec_hash}-s{key.seed}-v{key.engine_version}.json"
        return self.root / "artifacts" / key.spec_hash[:2] / name

    def has(self, key: RunKey) -> bool:
        """True iff the key is indexed *and* its artifact file exists.

        A dangling index entry (artifact deleted by hand or by a killed
        write) counts as missing, so ``run-missing`` heals it.
        """
        return key.as_string() in self.load_index() and self.artifact_path(key).exists()

    def get(self, key: RunKey) -> Dict[str, object]:
        """Load the artifact payload of a key."""
        path = self.artifact_path(key)
        if not path.exists():
            raise LabError(f"no artifact for {key.as_string()} in {self.root}")
        payload = json.loads(path.read_text())
        if payload.get("format") != ARTIFACT_FORMAT:
            raise LabError(f"unknown artifact format {payload.get('format')!r} in {path}")
        return payload

    def record(self, entry: LabEntry, records: Sequence[Mapping]) -> Path:
        """Register one completed run: write its artifact, update the index.

        Both writes are atomic temp-fsync-rename (:func:`_durable_write`),
        and the artifact is written before the index entry, so a crash at
        any point leaves either a complete (artifact, index) pair or a
        harmless orphan artifact that the next ``record`` overwrites with
        identical bytes -- never a torn file.

        ``backend`` names the kernel backend that executed the run.  It is
        the one declared provenance field: the run *key* and the
        ``records`` payload never depend on it (compiled kernels are
        pinned bit-for-bit against the numpy reference, ARCHITECTURE.md
        invariant 9), so everything derived from the registry -- reports,
        hashes, the index -- is backend-independent.
        """
        from repro.core.kernels import active_backend

        key = entry.key
        payload = {
            "format": ARTIFACT_FORMAT,
            "backend": active_backend(),
            "kind": entry.kind,
            "name": entry.name,
            "seed": entry.seed,
            "spec_hash": entry.spec_hash,
            "engine_version": key.engine_version,
            "spec": dict(entry.document),
            "n_records": len(records),
            "records": list(records),
        }
        path = self.artifact_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        _durable_write(
            path,
            json.dumps(payload, indent=2, sort_keys=True, default=_json_default),
        )
        entries = self.load_index()
        entries[key.as_string()] = {
            "name": entry.name,
            "kind": entry.kind,
            "seed": entry.seed,
            "spec_hash": entry.spec_hash,
            "engine_version": key.engine_version,
            "artifact": path.relative_to(self.root).as_posix(),
            "n_records": len(records),
        }
        self._write_index(entries)
        return path

    # -- suite queries ------------------------------------------------------ #
    def missing(self, entries: Sequence[LabEntry]) -> List[LabEntry]:
        """The suite entries with no stored run, in suite order."""
        index = self.load_index()
        return [
            entry
            for entry in entries
            if not (
                entry.key.as_string() in index
                and self.artifact_path(entry.key).exists()
            )
        ]

    def status_rows(self, entries: Sequence[LabEntry]) -> List[Dict[str, object]]:
        """One status record per suite entry (for the ``status`` table)."""
        missing = {e.key.as_string() for e in self.missing(entries)}
        return [
            {
                "name": entry.name,
                "kind": entry.kind,
                "seed": entry.seed,
                "spec_hash": entry.spec_hash[:12],
                "version": entry.key.engine_version,
                "stored": entry.key.as_string() not in missing,
            }
            for entry in entries
        ]

    def gc(
        self, entries: Sequence[LabEntry], dry_run: bool = False
    ) -> List[str]:
        """Drop every stored run not keyed by the given suite.

        Reclaims runs of old engine versions, stale spec contents and
        entries removed from the suite.  Orphaned artifact files (present
        on disk but absent from the index) are removed too.  Returns the
        removed key strings / artifact paths; with ``dry_run`` nothing is
        touched.
        """
        keep_keys = {entry.key.as_string() for entry in entries}
        index = self.load_index()
        removed: List[str] = []
        survivors: Dict[str, Dict[str, object]] = {}
        for key_string, record in index.items():
            if key_string in keep_keys:
                survivors[key_string] = record
            else:
                removed.append(key_string)
                if not dry_run:
                    (self.root / str(record["artifact"])).unlink(missing_ok=True)
        accounted = {self.root / str(r["artifact"]) for r in index.values()}
        for path in sorted((self.root / "artifacts").glob("*/*.json")):
            if path not in accounted:  # orphan: on disk but never indexed
                removed.append(path.relative_to(self.root).as_posix())
                if not dry_run:
                    path.unlink(missing_ok=True)
        if not dry_run:
            if self.index_path.exists() or survivors:
                self._write_index(survivors)
            for bucket in sorted((self.root / "artifacts").glob("*")):
                if bucket.is_dir() and not any(bucket.iterdir()):
                    bucket.rmdir()
        return removed


# --------------------------------------------------------------------------- #
# run-missing: the resumable sweep
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class RunMissingResult:
    """What one ``run-missing`` pass did."""

    total: int
    already_stored: int
    executed: List[str]  # key strings, in completion order

    @property
    def n_executed(self) -> int:
        return len(self.executed)


def _execute_entry(job_json: str, fleet: bool = False) -> List[Dict[str, object]]:
    """Run one entry and return its records (module-level: pickles to workers)."""
    entry = LabEntry.from_job_json(job_json)
    if entry.kind in ("scenario", "tournament"):
        from repro.sim.scenario import ScenarioSpec, run_scenario

        spec = ScenarioSpec.from_dict(entry.document)
        return run_scenario(spec, fleet=fleet)
    if entry.kind == "experiment":
        from repro.analysis.runner import _run_single

        document = entry.document
        outcome = _run_single(
            document["experiment"],
            entry.seed,
            bool(document.get("small", False)),
            bool(document.get("large", False)),
        )
        if outcome.error is not None:
            raise LabError(
                f"experiment {entry.name} (seed {entry.seed}) failed: "
                f"{outcome.error}"
            )
        return list(outcome.records)
    raise LabError(f"unknown lab entry kind {entry.kind!r}")


def run_missing(
    registry: LabRegistry,
    entries: Sequence[LabEntry],
    parallel: int = 1,
    fleet: bool = False,
    progress: Optional[Callable[[str], None]] = None,
) -> RunMissingResult:
    """Execute exactly the suite entries the registry does not hold yet.

    Each finished run is registered immediately (artifact written, index
    updated), so interrupting the sweep at any point loses only the jobs
    in flight: the next ``run_missing`` with the same suite executes the
    remainder and the final registry is byte-identical to an
    uninterrupted sweep.  ``fleet`` replays scenario entries through the
    stacked fleet engine -- a pure accelerator, records (and therefore
    artifacts) are bit-for-bit unchanged.
    """
    if parallel < 1:
        raise ValueError(f"parallel must be >= 1, got {parallel}")
    missing = registry.missing(entries)
    executed: List[str] = []

    def note(entry: LabEntry) -> None:
        executed.append(entry.key.as_string())
        if progress is not None:
            progress(f"{entry.kind} {entry.name} (seed {entry.seed})")

    if parallel == 1 or len(missing) <= 1:
        for entry in missing:
            registry.record(entry, _execute_entry(entry.to_job_json(), fleet))
            note(entry)
    else:
        from repro.parallel import iter_jobs

        jobs = [(entry.to_job_json(), fleet) for entry in missing]
        for index, records in iter_jobs(min(parallel, len(jobs)), _execute_entry, jobs):
            registry.record(missing[index], records)
            note(missing[index])
    return RunMissingResult(
        total=len(entries),
        already_stored=len(entries) - len(missing),
        executed=executed,
    )
