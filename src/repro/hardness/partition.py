"""The PARTITION problem, source of the NP-hardness reduction (Section 2).

PARTITION: given positive integers ``k_1, ..., k_n`` with
``Σ k_i = 2k``, decide whether a subset ``S ⊆ {1, ..., n}`` exists with
``Σ_{i∈S} k_i = k``.

Two exact solvers are provided:

* :func:`solve_partition_dp` -- the classical pseudo-polynomial dynamic
  program in ``O(n · k)``; returns a witness subset.
* :func:`solve_partition_bruteforce` -- exhaustive ``O(2^n)`` search, used
  by tests as an independent oracle for small inputs.

:func:`random_partition_instance` generates yes/no instances for the
benchmark sweep of experiment E2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ReproError

__all__ = [
    "PartitionInstance",
    "solve_partition_dp",
    "solve_partition_bruteforce",
    "random_partition_instance",
]


@dataclass(frozen=True)
class PartitionInstance:
    """An instance of PARTITION.

    Attributes
    ----------
    sizes:
        The integers ``k_1, ..., k_n`` (positive).
    """

    sizes: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.sizes:
            raise ReproError("a PARTITION instance needs at least one integer")
        if any(int(k) <= 0 or int(k) != k for k in self.sizes):
            raise ReproError("PARTITION integers must be positive integers")
        object.__setattr__(self, "sizes", tuple(int(k) for k in self.sizes))

    @property
    def total(self) -> int:
        """The total ``Σ k_i = 2k``."""
        return sum(self.sizes)

    @property
    def half(self) -> int:
        """``k = total / 2`` (rounded down for odd totals, which are NO instances)."""
        return self.total // 2

    @property
    def n(self) -> int:
        """Number of integers."""
        return len(self.sizes)

    def is_balanced_subset(self, subset: Sequence[int]) -> bool:
        """Check whether ``subset`` (indices) sums to exactly half the total."""
        if self.total % 2 != 0:
            return False
        return sum(self.sizes[i] for i in subset) == self.half


def solve_partition_dp(instance: PartitionInstance) -> Optional[List[int]]:
    """Solve PARTITION with the subset-sum dynamic program.

    Returns a witness subset of indices summing to ``total/2``, or ``None``
    when no such subset exists (including when the total is odd).
    """
    total = instance.total
    if total % 2 != 0:
        return None
    target = total // 2
    sizes = instance.sizes
    # reachable[s] = index of the last item used to first reach sum s (-1 for 0)
    reachable = np.full(target + 1, -2, dtype=np.int64)
    reachable[0] = -1
    for idx, value in enumerate(sizes):
        if value > target:
            continue
        # iterate sums downwards so each item is used at most once
        hit = np.flatnonzero(reachable[: target - value + 1] != -2)
        new_sums = hit + value
        fresh = new_sums[reachable[new_sums] == -2]
        reachable[fresh] = idx
        if reachable[target] != -2:
            break
    if reachable[target] == -2:
        return None
    # Reconstruct the witness.  ``reachable[s]`` stores the item that first
    # reached ``s``; walking backwards yields a valid subset because an item
    # never "first reaches" two sums in the same reconstruction chain.
    subset: List[int] = []
    s = target
    while s > 0:
        idx = int(reachable[s])
        subset.append(idx)
        s -= sizes[idx]
        if idx in subset[:-1]:  # pragma: no cover - defensive
            raise ReproError("dynamic program produced an invalid witness")
    subset.reverse()
    if not instance.is_balanced_subset(subset):  # pragma: no cover - defensive
        raise ReproError("dynamic program produced an unbalanced witness")
    return subset


def solve_partition_bruteforce(instance: PartitionInstance) -> Optional[List[int]]:
    """Exhaustive search over all subsets (for small ``n`` only)."""
    total = instance.total
    if total % 2 != 0:
        return None
    target = total // 2
    n = instance.n
    if n > 26:
        raise ReproError("brute force limited to 26 items; use solve_partition_dp")
    sizes = instance.sizes
    for mask in range(1 << n):
        s = 0
        for i in range(n):
            if mask & (1 << i):
                s += sizes[i]
        if s == target:
            return [i for i in range(n) if mask & (1 << i)]
    return None


def random_partition_instance(
    n: int,
    max_value: int = 20,
    force_yes: Optional[bool] = None,
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = None,
) -> PartitionInstance:
    """Generate a random PARTITION instance.

    Parameters
    ----------
    n:
        Number of integers.
    max_value:
        Values are drawn uniformly from ``1..max_value``.
    force_yes:
        If True, the instance is made solvable by duplicating a random
        subset (the two halves are identical); if False, the generator
        re-draws until the DP reports unsolvable; if None, no adjustment is
        made.
    """
    gen = rng if rng is not None else np.random.default_rng(seed)
    if n < 1:
        raise ReproError("need at least one integer")
    if force_yes is True:
        half = [int(gen.integers(1, max_value + 1)) for _ in range((n + 1) // 2)]
        sizes = (half + half)[:n] if n % 2 == 0 else half + half[: n - len(half)]
        # For odd n the duplication trick cannot guarantee solvability, so
        # pad with the missing difference.
        inst = PartitionInstance(tuple(sizes))
        if solve_partition_dp(inst) is None:
            diff = abs(sum(half) * 2 - inst.total)
            sizes = list(inst.sizes) + [max(diff, 1)]
            inst = PartitionInstance(tuple(sizes))
            if solve_partition_dp(inst) is None:
                # final fallback: an explicitly balanced instance
                inst = PartitionInstance(tuple([1] * (2 * ((n + 1) // 2))))
        return inst
    for _ in range(1000):
        sizes = tuple(int(gen.integers(1, max_value + 1)) for _ in range(n))
        inst = PartitionInstance(sizes)
        if force_yes is None:
            return inst
        if solve_partition_dp(inst) is None:
            return inst
    raise ReproError("failed to generate a NO instance; raise max_value")
