"""The NP-hardness reduction of Theorem 2.1.

Section 2 of the paper reduces PARTITION to the static placement decision
problem on a 4-ary tree of height 1 whose inner node (bus) may not store
copies:

* the network has four processors ``a, b, s, sbar`` attached to one bus of
  effectively unlimited bandwidth (so edge loads dominate);
* the objects are ``x_1 .. x_n`` and ``y`` with write frequencies
  ``h_w(v, x_i) = k_i`` for every processor ``v`` and
  ``h_w(a, y) = 4k + 1``, ``h_w(b, y) = 2k`` where ``2k = Σ k_i``;
* a placement of congestion at most ``4k`` exists **iff** the PARTITION
  instance is solvable, and the witness placement puts ``y`` on ``a`` and
  ``x_i`` on ``s`` for ``i ∈ S`` and on ``sbar`` otherwise.

This module constructs the reduction instance, builds witness placements
from PARTITION solutions, and verifies the equivalence with the exact
solver -- the machine-checkable version of the theorem used by experiment
E2 and the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.congestion import compute_loads
from repro.core.optimal import optimal_nonredundant
from repro.core.placement import Placement
from repro.errors import ReproError
from repro.hardness.partition import (
    PartitionInstance,
    solve_partition_dp,
)
from repro.network.builders import hardness_gadget
from repro.network.tree import HierarchicalBusNetwork
from repro.workload.access import AccessPattern
from repro.workload.adversarial import partition_like_pattern

__all__ = [
    "ReductionInstance",
    "ReductionReport",
    "build_reduction_instance",
    "placement_from_subset",
    "verify_reduction",
]


@dataclass(frozen=True)
class ReductionInstance:
    """A placement instance encoding a PARTITION instance.

    Attributes
    ----------
    partition:
        The source PARTITION instance.
    network, pattern:
        The 4-leaf gadget network and the encoded access pattern.
    threshold:
        The congestion threshold ``4k`` of the decision question.
    anchors:
        The node ids of the processors ``(a, b, s, sbar)``.
    """

    partition: PartitionInstance
    network: HierarchicalBusNetwork
    pattern: AccessPattern
    threshold: int
    anchors: Tuple[int, int, int, int]

    @property
    def n_items(self) -> int:
        """Number of PARTITION integers (number of ``x_i`` objects)."""
        return self.partition.n


@dataclass(frozen=True)
class ReductionReport:
    """Outcome of verifying the reduction on one PARTITION instance."""

    instance: ReductionInstance
    partition_solvable: bool
    witness_subset: Optional[Tuple[int, ...]]
    witness_congestion: Optional[float]
    optimal_congestion: float
    decision_at_threshold: bool

    @property
    def equivalence_holds(self) -> bool:
        """True iff (congestion ≤ 4k achievable) == (PARTITION solvable)."""
        return self.decision_at_threshold == self.partition_solvable


def build_reduction_instance(
    partition: PartitionInstance,
    bus_bandwidth: float = 1.0e9,
) -> ReductionInstance:
    """Encode a PARTITION instance as a placement instance (Theorem 2.1)."""
    if partition.total % 2 != 0:
        raise ReproError(
            "the reduction requires an even total (Σ k_i = 2k); odd totals are "
            "trivial NO instances of PARTITION"
        )
    network = hardness_gadget(bus_bandwidth=bus_bandwidth)
    anchors = (
        network.node_by_name("a"),
        network.node_by_name("b"),
        network.node_by_name("s"),
        network.node_by_name("sbar"),
    )
    pattern = partition_like_pattern(network, partition.sizes, anchor_processors=anchors)
    threshold = 4 * partition.half
    return ReductionInstance(
        partition=partition,
        network=network,
        pattern=pattern,
        threshold=threshold,
        anchors=anchors,
    )


def placement_from_subset(
    instance: ReductionInstance, subset: Sequence[int]
) -> Placement:
    """The witness placement for a PARTITION solution.

    Object ``x_i`` is placed on ``s`` when ``i`` is in the subset and on
    ``sbar`` otherwise; object ``y`` is placed on ``a`` (the proof's
    construction).
    """
    a, _b, s, sbar = instance.anchors
    chosen = set(int(i) for i in subset)
    holders: List[int] = []
    for i in range(instance.n_items):
        holders.append(s if i in chosen else sbar)
    holders.append(a)  # object y is the last object of the pattern
    return Placement.single_holder(holders)


def verify_reduction(
    partition: PartitionInstance,
    bus_bandwidth: float = 1.0e9,
    max_nodes: int = 4_000_000,
) -> ReductionReport:
    """Machine-check Theorem 2.1 on one PARTITION instance.

    Solves PARTITION exactly, builds the reduction instance, evaluates the
    witness placement (when one exists) and compares the exact optimal
    congestion against the ``4k`` threshold.
    """
    instance = build_reduction_instance(partition, bus_bandwidth=bus_bandwidth)
    subset = solve_partition_dp(partition)
    solvable = subset is not None

    witness_congestion: Optional[float] = None
    if solvable:
        witness = placement_from_subset(instance, subset)
        witness_congestion = compute_loads(
            instance.network, instance.pattern, witness
        ).congestion

    result = optimal_nonredundant(
        instance.network, instance.pattern, max_nodes=max_nodes
    )
    decision = result.congestion <= instance.threshold + 1e-9
    return ReductionReport(
        instance=instance,
        partition_solvable=solvable,
        witness_subset=tuple(subset) if subset is not None else None,
        witness_congestion=witness_congestion,
        optimal_congestion=result.congestion,
        decision_at_threshold=decision,
    )
