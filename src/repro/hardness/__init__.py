"""NP-hardness machinery: PARTITION and the Theorem 2.1 reduction."""

from repro.hardness.partition import (
    PartitionInstance,
    random_partition_instance,
    solve_partition_bruteforce,
    solve_partition_dp,
)
from repro.hardness.reduction import (
    ReductionInstance,
    ReductionReport,
    build_reduction_instance,
    placement_from_subset,
    verify_reduction,
)

__all__ = [
    "PartitionInstance",
    "solve_partition_dp",
    "solve_partition_bruteforce",
    "random_partition_instance",
    "ReductionInstance",
    "ReductionReport",
    "build_reduction_instance",
    "placement_from_subset",
    "verify_reduction",
]
