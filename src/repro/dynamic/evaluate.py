"""Evaluation harness for online strategies: empirical competitive ratios.

The dynamic data management literature the paper builds on ([MMVW97],
[MVW99]) measures an online strategy by its *competitive ratio*: the worst
case, over request sequences, of the online cost divided by the optimal
offline cost.  The offline optimum is not computable for interesting sizes
(Theorem 2.1 again), so the harness uses the strongest available reference:
the **hindsight-static** placement -- the extended-nibble placement computed
from the aggregate frequencies of the whole sequence -- evaluated with the
same cost accounting.

:func:`evaluate_strategies` runs a set of strategies over a sequence and
returns comparable records; :func:`empirical_competitive_ratio` is the
scalar summary used by the tests and the benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.extended_nibble import extended_nibble
from repro.dynamic.online import (
    EdgeCounterManager,
    OnlineCostAccount,
    OnlineStrategy,
    StaticPlacementManager,
)
from repro.dynamic.sequence import RequestSequence
from repro.network.tree import HierarchicalBusNetwork

__all__ = [
    "OnlineRunRecord",
    "hindsight_static_manager",
    "evaluate_strategies",
    "empirical_competitive_ratio",
]


@dataclass(frozen=True)
class OnlineRunRecord:
    """Cost summary of one strategy over one request sequence."""

    strategy: str
    congestion: float
    total_load: float
    service_load: float
    management_load: float

    def as_dict(self) -> Dict[str, object]:
        """Flatten for table output."""
        return {
            "strategy": self.strategy,
            "congestion": self.congestion,
            "total_load": self.total_load,
            "service_load": self.service_load,
            "management_load": self.management_load,
        }


def hindsight_static_manager(
    network: HierarchicalBusNetwork, sequence: RequestSequence
) -> StaticPlacementManager:
    """The hindsight-static reference: extended-nibble on the aggregate."""
    pattern = sequence.to_pattern(network)
    placement = extended_nibble(network, pattern).placement
    return StaticPlacementManager(network, placement)


def _record(name: str, account: OnlineCostAccount) -> OnlineRunRecord:
    return OnlineRunRecord(
        strategy=name,
        congestion=account.congestion,
        total_load=account.total_load,
        service_load=account.service_units,
        management_load=account.management_units,
    )


def evaluate_strategies(
    network: HierarchicalBusNetwork,
    sequence: RequestSequence,
    extra_strategies: Optional[Dict[str, Callable[[], OnlineStrategy]]] = None,
    object_size: int = 4,
) -> List[OnlineRunRecord]:
    """Run the standard strategy set (plus any extras) over a sequence.

    The standard set is: the hindsight-static reference, the adaptive
    edge-counter strategy, and a naive "first-touch, never adapt" strategy
    (an :class:`EdgeCounterManager` with an effectively infinite replication
    threshold).
    """
    sequence.validate_for(network)
    runs: List[Tuple[str, OnlineStrategy]] = [
        ("hindsight-static", hindsight_static_manager(network, sequence)),
        (
            "edge-counter",
            EdgeCounterManager(network, sequence.n_objects, object_size=object_size),
        ),
        (
            "first-touch",
            EdgeCounterManager(
                network,
                sequence.n_objects,
                object_size=max(10 * len(sequence), 1),
            ),
        ),
    ]
    if extra_strategies:
        for name, factory in extra_strategies.items():
            runs.append((name, factory()))

    records = []
    for name, strategy in runs:
        account = strategy.run(sequence)
        records.append(_record(name, account))
    return records


def empirical_competitive_ratio(
    network: HierarchicalBusNetwork,
    sequence: RequestSequence,
    object_size: int = 4,
    objective: str = "congestion",
) -> float:
    """Online (edge-counter) cost divided by the hindsight-static cost.

    ``objective`` selects the measure: ``"congestion"`` (the paper's
    objective) or ``"total_load"`` (the classical objective of the earlier
    dynamic literature).
    """
    records = {
        rec.strategy: rec
        for rec in evaluate_strategies(network, sequence, object_size=object_size)
    }
    online = records["edge-counter"]
    reference = records["hindsight-static"]
    if objective == "congestion":
        num, den = online.congestion, reference.congestion
    elif objective == "total_load":
        num, den = online.total_load, reference.total_load
    else:
        raise ValueError(f"unknown objective {objective!r}")
    if den <= 0:
        return 1.0 if num <= 0 else float("inf")
    return num / den
