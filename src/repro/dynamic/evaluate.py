"""Evaluation harness for online strategies: empirical competitive ratios.

The dynamic data management literature the paper builds on ([MMVW97],
[MVW99]) measures an online strategy by its *competitive ratio*: the worst
case, over request sequences, of the online cost divided by the optimal
offline cost.  The offline optimum is not computable for interesting sizes
(Theorem 2.1 again), so the harness uses the strongest available reference:
the **hindsight-static** placement -- the extended-nibble placement computed
from the aggregate frequencies of the whole sequence -- evaluated with the
same cost accounting.

:func:`evaluate_strategies` runs a set of strategies over a sequence and
returns comparable records; :func:`empirical_competitive_ratio` is the
scalar summary used by the tests and the benchmark, and
:func:`congestion_trajectory` samples the (incrementally maintained)
congestion while a strategy streams through a sequence.

Since the load-state refactor all cost accounts sit on the incremental
:class:`~repro.core.loadstate.LoadState` engine, so reading the congestion
after every event costs O(touched entries) instead of a full edge/bus
rescan, and the non-adaptive hindsight-static reference is replayed in
vectorized chunks (``chunk_size``) with bit-for-bit identical results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.extended_nibble import extended_nibble
from repro.dynamic.online import (
    EdgeCounterManager,
    OnlineCostAccount,
    OnlineStrategy,
    StaticPlacementManager,
)
from repro.dynamic.sequence import RequestSequence
from repro.network.tree import HierarchicalBusNetwork

__all__ = [
    "OnlineRunRecord",
    "hindsight_static_manager",
    "first_touch_manager",
    "evaluate_strategies",
    "empirical_competitive_ratio",
    "congestion_trajectory",
]


@dataclass(frozen=True)
class OnlineRunRecord:
    """Cost summary of one strategy over one request sequence."""

    strategy: str
    congestion: float
    total_load: float
    service_load: float
    management_load: float

    def as_dict(self) -> Dict[str, object]:
        """Flatten for table output."""
        return {
            "strategy": self.strategy,
            "congestion": self.congestion,
            "total_load": self.total_load,
            "service_load": self.service_load,
            "management_load": self.management_load,
        }


def hindsight_static_manager(
    network: HierarchicalBusNetwork, sequence: RequestSequence
) -> StaticPlacementManager:
    """The hindsight-static reference: extended-nibble on the aggregate.

    This is the one canonical construction of the reference strategy (the
    scenario registry and the churn experiments use it too).  Events
    addressed beyond the network's node universe -- churn reference ids of
    processors that have not attached yet -- are excluded from the
    aggregate; for churn-free sequences every event survives the filter.
    """
    base_events = [
        ev for ev in sequence.events if ev.processor < network.n_nodes
    ]
    pattern = RequestSequence(base_events, sequence.n_objects).to_pattern(network)
    placement = extended_nibble(network, pattern).placement
    return StaticPlacementManager(network, placement)


def first_touch_manager(
    network: HierarchicalBusNetwork, sequence: RequestSequence, **kwargs
) -> EdgeCounterManager:
    """The naive "first-touch, never adapt" baseline.

    An :class:`EdgeCounterManager` whose replication threshold can never
    be reached within the sequence (the canonical construction shared by
    the standard strategy set and the scenario registry).
    """
    return EdgeCounterManager(
        network,
        sequence.n_objects,
        object_size=max(10 * len(sequence), 1),
        **kwargs,
    )


def _record(name: str, account: OnlineCostAccount) -> OnlineRunRecord:
    return OnlineRunRecord(
        strategy=name,
        congestion=account.congestion,
        total_load=account.total_load,
        service_load=account.service_units,
        management_load=account.management_units,
    )


def evaluate_strategies(
    network: HierarchicalBusNetwork,
    sequence: RequestSequence,
    extra_strategies: Optional[Dict[str, Callable[[], OnlineStrategy]]] = None,
    object_size: int = 4,
    chunk_size: Optional[int] = 1024,
) -> List[OnlineRunRecord]:
    """Run the standard strategy set (plus any extras) over a sequence.

    The standard set is: the hindsight-static reference, the adaptive
    edge-counter strategy, and a naive "first-touch, never adapt" strategy
    (an :class:`EdgeCounterManager` with an effectively infinite replication
    threshold).

    ``chunk_size`` drives the batch replay mode: static strategies serve
    whole chunks through one vectorized scatter and the adaptive counter
    strategies through their exact two-phase batched replay, so the
    records are identical for any value.
    """
    sequence.validate_for(network)
    runs: List[Tuple[str, OnlineStrategy]] = [
        ("hindsight-static", hindsight_static_manager(network, sequence)),
        (
            "edge-counter",
            EdgeCounterManager(network, sequence.n_objects, object_size=object_size),
        ),
        ("first-touch", first_touch_manager(network, sequence)),
    ]
    if extra_strategies:
        for name, factory in extra_strategies.items():
            runs.append((name, factory()))

    records = []
    for name, strategy in runs:
        account = strategy.run(sequence, chunk_size=chunk_size)
        records.append(_record(name, account))
    return records


def congestion_trajectory(
    strategy: OnlineStrategy,
    sequence: RequestSequence,
    sample_every: int = 1,
) -> np.ndarray:
    """Serve a sequence while sampling the congestion every ``sample_every``
    events.

    Thin adapter over the unified simulation kernel: a
    :class:`~repro.sim.sinks.TrajectorySink` breaks the replay at the
    sample positions and reads the (incrementally maintained) congestion
    there, while the spans in between stay on the chunk fast path.  Each
    sample is a lazily-repaired running max (O(touched entries) per
    event) rather than a full edge/bus rescan.  Returns the sampled
    congestion values in order (the last entry is the final congestion).
    """
    from repro.sim.engine import SimulationEngine
    from repro.sim.sinks import TrajectorySink

    if sample_every < 1:
        raise ValueError("sample_every must be a positive integer")
    sink = TrajectorySink(sample_every)
    SimulationEngine(strategy, sinks=(sink,)).run(sequence)
    return sink.trajectory


def empirical_competitive_ratio(
    network: HierarchicalBusNetwork,
    sequence: RequestSequence,
    object_size: int = 4,
    objective: str = "congestion",
) -> float:
    """Online (edge-counter) cost divided by the hindsight-static cost.

    ``objective`` selects the measure: ``"congestion"`` (the paper's
    objective) or ``"total_load"`` (the classical objective of the earlier
    dynamic literature).
    """
    records = {
        rec.strategy: rec
        for rec in evaluate_strategies(network, sequence, object_size=object_size)
    }
    online = records["edge-counter"]
    reference = records["hindsight-static"]
    if objective == "congestion":
        num, den = online.congestion, reference.congestion
    elif objective == "total_load":
        num, den = online.total_load, reference.total_load
    else:
        raise ValueError(f"unknown objective {objective!r}")
    if den <= 0:
        return 1.0 if num <= 0 else float("inf")
    return num / den
