"""Request sequences for the dynamic (online) data management model.

The paper studies the *static* problem (frequencies known in advance) and
discusses, in its related-work section, the *dynamic* model of [MMVW97] /
[MVW99] in which requests arrive online and the strategy may replicate,
migrate and invalidate copies while serving them.  This subpackage provides
the substrate to study that model on hierarchical bus networks:

* :class:`RequestEvent` / :class:`RequestSequence` -- an ordered sequence of
  read/write requests issued by processors;
* generators that interleave an :class:`~repro.workload.access.AccessPattern`
  into a sequence (stationary workloads) or switch between patterns
  (phase-changing workloads, where online adaptation pays off);
* :meth:`RequestSequence.to_pattern` -- the aggregate frequencies, used to
  compute the hindsight-static reference placement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import WorkloadError
from repro.network.tree import HierarchicalBusNetwork
from repro.workload.access import AccessPattern

__all__ = [
    "RequestEvent",
    "RequestSequence",
    "sequence_from_pattern",
    "phase_change_sequence",
]

READ = "read"
WRITE = "write"


@dataclass(frozen=True)
class RequestEvent:
    """One read or write request issued by a processor."""

    processor: int
    obj: int
    kind: str  # "read" or "write"

    def __post_init__(self) -> None:
        if self.kind not in (READ, WRITE):
            raise WorkloadError(f"unknown request kind {self.kind!r}")

    @property
    def is_write(self) -> bool:
        """True for write requests."""
        return self.kind == WRITE

    @property
    def is_read(self) -> bool:
        """True for read requests."""
        return self.kind == READ


class RequestSequence:
    """An ordered sequence of requests over a fixed object universe."""

    __slots__ = ("_events", "_n_objects", "_arrays")

    def __init__(self, events: Sequence[RequestEvent], n_objects: int) -> None:
        self._events: Tuple[RequestEvent, ...] = tuple(events)
        if n_objects < 0:
            raise WorkloadError("n_objects must be non-negative")
        for ev in self._events:
            if not 0 <= ev.obj < n_objects:
                raise WorkloadError(f"event object {ev.obj} out of range")
        self._n_objects = int(n_objects)
        self._arrays: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None

    def as_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Columnar view ``(processors, objects, is_write)`` of the events.

        Built once and cached; the batch replay mode of the online layer
        slices whole chunks out of these arrays instead of iterating the
        event objects.
        """
        if self._arrays is None:
            n = len(self._events)
            procs = np.empty(n, dtype=np.int64)
            objs = np.empty(n, dtype=np.int64)
            writes = np.zeros(n, dtype=bool)
            for i, ev in enumerate(self._events):
                procs[i] = ev.processor
                objs[i] = ev.obj
                writes[i] = ev.kind == WRITE
            self._arrays = (procs, objs, writes)
        return self._arrays

    @property
    def n_objects(self) -> int:
        """Number of shared objects referenced by the sequence."""
        return self._n_objects

    @property
    def events(self) -> Tuple[RequestEvent, ...]:
        """The events in order."""
        return self._events

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[RequestEvent]:
        return iter(self._events)

    def __getitem__(self, index: int) -> RequestEvent:
        return self._events[index]

    def validate_for(self, network: HierarchicalBusNetwork) -> None:
        """Check that every request is issued by a processor of ``network``."""
        for ev in self._events:
            if ev.processor not in network or not network.is_processor(ev.processor):
                raise WorkloadError(
                    f"event issued by node {ev.processor}, which is not a processor"
                )

    def to_pattern(self, network: HierarchicalBusNetwork) -> AccessPattern:
        """Aggregate frequencies of the whole sequence (hindsight workload)."""
        reads = np.zeros((network.n_nodes, self._n_objects), dtype=np.int64)
        writes = np.zeros((network.n_nodes, self._n_objects), dtype=np.int64)
        for ev in self._events:
            if ev.is_write:
                writes[ev.processor, ev.obj] += 1
            else:
                reads[ev.processor, ev.obj] += 1
        pattern = AccessPattern(reads, writes)
        pattern.validate_for(network)
        return pattern

    def prefix(self, length: int) -> "RequestSequence":
        """The first ``length`` events as a new sequence."""
        return RequestSequence(self._events[: max(0, length)], self._n_objects)

    def concatenated_with(self, other: "RequestSequence") -> "RequestSequence":
        """Concatenate two sequences over the same object universe."""
        if other.n_objects != self._n_objects:
            raise WorkloadError("sequences must share the object universe")
        return RequestSequence(self._events + other.events, self._n_objects)


def sequence_from_pattern(
    network: HierarchicalBusNetwork,
    pattern: AccessPattern,
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = None,
) -> RequestSequence:
    """Interleave an access pattern into a uniformly shuffled request sequence.

    Every (processor, object) read/write frequency becomes that many
    individual events; the order is a uniformly random permutation, so the
    sequence is stationary and its aggregate equals the original pattern.
    """
    gen = rng if rng is not None else np.random.default_rng(seed)
    pattern.validate_for(network)
    events: List[RequestEvent] = []
    for obj in range(pattern.n_objects):
        for proc in pattern.requesters(obj):
            events.extend(
                RequestEvent(proc, obj, READ) for _ in range(pattern.reads_of(proc, obj))
            )
            events.extend(
                RequestEvent(proc, obj, WRITE)
                for _ in range(pattern.writes_of(proc, obj))
            )
    order = gen.permutation(len(events))
    shuffled = [events[i] for i in order]
    return RequestSequence(shuffled, pattern.n_objects)


def phase_change_sequence(
    network: HierarchicalBusNetwork,
    patterns: Sequence[AccessPattern],
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = None,
) -> RequestSequence:
    """Concatenate several workload phases into one sequence.

    Each phase is shuffled internally but phases follow each other in order,
    modelling an application whose sharing behaviour changes over time -- the
    situation in which an adaptive online strategy can beat any single static
    placement.
    """
    if not patterns:
        raise WorkloadError("need at least one phase")
    n_objects = patterns[0].n_objects
    gen = rng if rng is not None else np.random.default_rng(seed)
    combined: Optional[RequestSequence] = None
    for pattern in patterns:
        if pattern.n_objects != n_objects:
            raise WorkloadError("all phases must share the object universe")
        phase = sequence_from_pattern(network, pattern, rng=gen)
        combined = phase if combined is None else combined.concatenated_with(phase)
    assert combined is not None
    return combined
