"""Array-backed counter substrate for adaptive placement strategies.

The adaptive strategies of :mod:`repro.dynamic.online` track, per shared
object, which processors hold a copy plus two saturating counters per
``(object, processor)`` pair: the *read credit* a non-holder has
accumulated towards earning a replica, and the *unread writes* a replica
has survived since it was last read.  The original implementation kept a
``dict``/``set`` triple per touched object; this module replaces it with
three flat arrays over the full ``(n_objects, n_nodes)`` grid plus a
per-object holder count:

* ``holder_mask`` -- boolean holder membership,
* ``read_credit`` / ``unread_writes`` -- int64 counters,
* ``n_holders`` -- per-object holder population (``0`` means the object
  has never been requested -- it materialises on first touch).

The array form is what makes the vectorized chunk path of
:class:`~repro.dynamic.online.EdgeCounterManager` possible: counters for
an ``(object, processor)`` pair only advance on requests to exactly that
pair, so scanning a chunk's counter evolution is cheap row arithmetic and
the next threshold crossing per object is computable up front.  It also
bounds memory by construction -- the footprint is a function of the
universe sizes, never of the stream length -- and :meth:`memory_bytes`
makes that auditable, matching the substrate-wide audit hooks of
``repro.core``.

**Exact-semantics contract.**  Every transition mirrors the historical
dict/set behaviour bit for bit (the differential suites pin this):

* a processor *becoming* a holder has both its counters reset
  (:meth:`add_holder`, :meth:`set_sole_holder`);
* a processor *losing* its replica has its unread-write counter purged
  (:meth:`drop_holder`) -- its read credit survives, exactly as the dict
  implementation kept ``read_credit`` entries across invalidations;
* migration (:meth:`set_sole_holder`) wholesale-resets the unread-write
  row, matching the historical ``unread_writes = {proc: 0}``.

Those reset rules double as the hygiene invariant the soak tests pin:
``unread_writes`` is zero everywhere outside the holder mask, so the
counter state can never accumulate stale entries the way long-lived
per-object dicts could.
"""

from __future__ import annotations

from typing import List, Set

import numpy as np

from repro.errors import WorkloadError

__all__ = ["AdaptiveState"]


class AdaptiveState:
    """Flat counter state of one adaptive strategy instance.

    Parameters
    ----------
    n_objects:
        Size of the shared-object universe.
    n_nodes:
        Node-id range of the current network (holders are always
        processors, but rows are indexed by node id so lookups need no
        translation).
    """

    __slots__ = ("n_objects", "n_nodes", "holder_mask", "read_credit",
                 "unread_writes", "n_holders")

    def __init__(self, n_objects: int, n_nodes: int) -> None:
        if n_objects < 0 or n_nodes < 1:
            raise WorkloadError(
                f"invalid adaptive-state shape ({n_objects} objects, "
                f"{n_nodes} nodes)"
            )
        self.n_objects = int(n_objects)
        self.n_nodes = int(n_nodes)
        self.holder_mask = np.zeros((n_objects, n_nodes), dtype=bool)
        self.read_credit = np.zeros((n_objects, n_nodes), dtype=np.int64)
        self.unread_writes = np.zeros((n_objects, n_nodes), dtype=np.int64)
        self.n_holders = np.zeros(n_objects, dtype=np.int64)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def touched(self, obj: int) -> bool:
        """True once the object has materialised (holds at least one copy)."""
        return bool(self.n_holders[obj])

    def holders_list(self, obj: int) -> List[int]:
        """Holder node ids of one object, ascending (= sorted)."""
        return np.flatnonzero(self.holder_mask[obj]).tolist()

    def holders_set(self, obj: int) -> Set[int]:
        """Holder node ids of one object as a set (inspection surface)."""
        return set(self.holders_list(obj))

    def memory_bytes(self) -> int:
        """Bytes held by the counter arrays (a function of the universe
        sizes only -- never of how many events have been served)."""
        return (
            self.holder_mask.nbytes
            + self.read_credit.nbytes
            + self.unread_writes.nbytes
            + self.n_holders.nbytes
        )

    # ------------------------------------------------------------------ #
    # transitions (each mirrors one dict/set transition bit for bit)
    # ------------------------------------------------------------------ #
    def materialise(self, obj: int, proc: int) -> None:
        """First touch: the object appears on its first requester."""
        self.holder_mask[obj, proc] = True
        self.n_holders[obj] = 1

    def add_holder(self, obj: int, proc: int) -> None:
        """Replication: ``proc`` earns a replica; both counters reset."""
        self.holder_mask[obj, proc] = True
        self.n_holders[obj] += 1
        self.read_credit[obj, proc] = 0
        self.unread_writes[obj, proc] = 0

    def drop_holder(self, obj: int, proc: int) -> None:
        """Invalidation: the stale replica is dropped, its unread-write
        counter purged (read credit survives, as historically)."""
        self.holder_mask[obj, proc] = False
        self.n_holders[obj] -= 1
        self.unread_writes[obj, proc] = 0

    def set_sole_holder(self, obj: int, proc: int) -> None:
        """Migration: the copy moves to ``proc``, which becomes the only
        holder; the unread-write row is wholesale reset."""
        row = self.holder_mask[obj]
        current = np.flatnonzero(row)
        self.unread_writes[obj, current] = 0
        row[current] = False
        row[proc] = True
        self.unread_writes[obj, proc] = 0
        self.read_credit[obj, proc] = 0
        self.n_holders[obj] = 1

    # ------------------------------------------------------------------ #
    # topology churn
    # ------------------------------------------------------------------ #
    def grow(self, n_nodes: int) -> None:
        """Widen the node axis after attach/split churn (new ids append).

        The dict implementation absorbed new node ids implicitly; the
        dense arrays must widen explicitly, with zero columns for the new
        nodes (no copies, no credit).
        """
        if n_nodes < self.n_nodes:
            raise WorkloadError(
                f"cannot shrink adaptive state from {self.n_nodes} to "
                f"{n_nodes} nodes via grow(); use remap_detach()"
            )
        if n_nodes == self.n_nodes:
            return
        pad = n_nodes - self.n_nodes
        self.holder_mask = np.pad(self.holder_mask, ((0, 0), (0, pad)))
        self.read_credit = np.pad(self.read_credit, ((0, 0), (0, pad)))
        self.unread_writes = np.pad(self.unread_writes, ((0, 0), (0, pad)))
        self.n_nodes = int(n_nodes)

    def remap_detach(self, node_map, n_nodes: int) -> np.ndarray:
        """Renumber the node axis after a detach (``node_map[old] -> new``,
        ``-1`` for the removed node).

        Columns of surviving nodes are gathered into their new positions;
        the removed node's holder bit and counters are dropped, exactly as
        the dict remap discarded its entries.  Returns the (ascending)
        object ids that were materialised before the detach but lost
        their last copy with it -- the caller re-homes those via the
        nearest-copy rule.
        """
        nm = np.asarray(node_map, dtype=np.int64)
        keep = np.flatnonzero(nm >= 0)
        new_cols = nm[keep]

        mask = np.zeros((self.n_objects, n_nodes), dtype=bool)
        mask[:, new_cols] = self.holder_mask[:, keep]
        credit = np.zeros((self.n_objects, n_nodes), dtype=np.int64)
        credit[:, new_cols] = self.read_credit[:, keep]
        unread = np.zeros((self.n_objects, n_nodes), dtype=np.int64)
        unread[:, new_cols] = self.unread_writes[:, keep]

        was_touched = self.n_holders > 0
        self.holder_mask = mask
        self.read_credit = credit
        self.unread_writes = unread
        self.n_holders = mask.sum(axis=1, dtype=np.int64)
        self.n_nodes = int(n_nodes)
        return np.flatnonzero(was_touched & (self.n_holders == 0))

    def rehome(self, obj: int, home: int) -> None:
        """Re-home an orphaned object onto the survivor ``home``.

        Mirrors the historical detach path: the survivor simply becomes
        the holder -- its read credit is *not* purged (the dict code kept
        the entry), and its unread-write counter is already zero by the
        hygiene invariant.
        """
        self.holder_mask[obj, home] = True
        self.n_holders[obj] = 1
