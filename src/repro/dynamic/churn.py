"""Interleaved replay of request traces and topology churn.

:func:`replay_with_churn` drives an online strategy through a
:class:`~repro.dynamic.sequence.RequestSequence` while applying the timed
mutations of a :class:`~repro.network.mutation.ChurnTrace`: every mutation
scheduled at time ``t`` is applied (and the strategy's substrate repaired
incrementally) *before* the request at position ``t`` is served.

Because detaching a leaf renumbers node ids, request events address
processors by **reference ids**: ids of the original network, plus one
fresh id per :class:`~repro.network.mutation.AttachLeaf` in trace order
(the ``k``-th attach overall gets reference id ``original_n_nodes + k``,
which is also the id the new leaf receives at attach time if no detach
preceded it).  The replay maintains the reference-to-current mapping across
renumbering; requests from processors that have departed -- or have not
arrived yet -- are counted as *dropped* instead of being served.

Since the simulation-kernel refactor this module is a thin adapter over
:class:`repro.sim.engine.SimulationEngine`: the timeline merge, the
reference-id mapping, the dropped-request accounting and the trajectory
sampling all live in the kernel (shared with every other replay loop);
this function only packages the result as :class:`ChurnReplayResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.dynamic.online import OnlineCostAccount, OnlineStrategy
from repro.dynamic.sequence import RequestSequence
from repro.errors import WorkloadError
from repro.network.mutation import ChurnTrace, MutationOutcome
from repro.network.tree import HierarchicalBusNetwork

__all__ = ["ChurnReplayResult", "replay_with_churn"]


@dataclass
class ChurnReplayResult:
    """Outcome of one interleaved request + churn replay."""

    account: OnlineCostAccount
    network: HierarchicalBusNetwork
    outcomes: List[MutationOutcome] = field(default_factory=list)
    served: int = 0
    dropped: int = 0
    trajectory: Optional[np.ndarray] = None
    sample_times: Optional[np.ndarray] = None

    @property
    def congestion(self) -> float:
        """Final congestion of the replayed account."""
        return self.account.congestion

    @property
    def n_mutations(self) -> int:
        """Number of mutations applied during the replay."""
        return len(self.outcomes)


def replay_with_churn(
    strategy: OnlineStrategy,
    sequence: RequestSequence,
    trace: ChurnTrace,
    sample_every: Optional[int] = None,
) -> ChurnReplayResult:
    """Serve ``sequence`` through ``strategy`` while applying ``trace``.

    Parameters
    ----------
    strategy:
        Any :class:`~repro.dynamic.online.OnlineStrategy`; its substrate is
        repaired in place at every mutation via
        :meth:`~repro.dynamic.online.OnlineStrategy.apply_mutation`.
    sequence:
        Request events addressed by reference ids (see module docstring).
    trace:
        Timed mutations; mutations scheduled at or after ``len(sequence)``
        are applied after the last request.
    sample_every:
        If given, the congestion is sampled every that many served-or-
        dropped events (plus a forced final sample) and returned as
        ``trajectory`` / ``sample_times``.

    Returns
    -------
    ChurnReplayResult
        The strategy's account, the final network, the applied mutation
        outcomes and the served/dropped event counts.
    """
    from repro.sim.engine import SimulationEngine
    from repro.sim.sinks import TrajectorySink

    if sample_every is not None and sample_every < 1:
        raise WorkloadError("sample_every must be a positive integer")
    sink = TrajectorySink(sample_every) if sample_every is not None else None
    engine = SimulationEngine(strategy, sinks=(sink,) if sink else ())
    result = engine.run(sequence, trace)

    return ChurnReplayResult(
        account=strategy.account,
        network=strategy.network,
        outcomes=result.outcomes,
        served=result.served,
        dropped=result.dropped,
        trajectory=sink.trajectory if sink is not None else None,
        sample_times=sink.sample_times if sink is not None else None,
    )
