"""Interleaved replay of request traces and topology churn.

:func:`replay_with_churn` drives an online strategy through a
:class:`~repro.dynamic.sequence.RequestSequence` while applying the timed
mutations of a :class:`~repro.network.mutation.ChurnTrace`: every mutation
scheduled at time ``t`` is applied (and the strategy's substrate repaired
incrementally) *before* the request at position ``t`` is served.

Because detaching a leaf renumbers node ids, request events address
processors by **reference ids**: ids of the original network, plus one
fresh id per :class:`~repro.network.mutation.AttachLeaf` in trace order
(the ``k``-th attach overall gets reference id ``original_n_nodes + k``,
which is also the id the new leaf receives at attach time if no detach
preceded it).  The replay maintains the reference-to-current mapping across
renumbering; requests from processors that have departed -- or have not
arrived yet -- are counted as *dropped* instead of being served.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.dynamic.online import OnlineCostAccount, OnlineStrategy
from repro.dynamic.sequence import RequestEvent, RequestSequence
from repro.errors import WorkloadError
from repro.network.mutation import (
    AttachLeaf,
    ChurnTrace,
    MutationOutcome,
    apply_mutation,
)
from repro.network.tree import HierarchicalBusNetwork

__all__ = ["ChurnReplayResult", "replay_with_churn"]


@dataclass
class ChurnReplayResult:
    """Outcome of one interleaved request + churn replay."""

    account: OnlineCostAccount
    network: HierarchicalBusNetwork
    outcomes: List[MutationOutcome] = field(default_factory=list)
    served: int = 0
    dropped: int = 0
    trajectory: Optional[np.ndarray] = None
    sample_times: Optional[np.ndarray] = None

    @property
    def congestion(self) -> float:
        """Final congestion of the replayed account."""
        return self.account.congestion

    @property
    def n_mutations(self) -> int:
        """Number of mutations applied during the replay."""
        return len(self.outcomes)


def replay_with_churn(
    strategy: OnlineStrategy,
    sequence: RequestSequence,
    trace: ChurnTrace,
    sample_every: Optional[int] = None,
) -> ChurnReplayResult:
    """Serve ``sequence`` through ``strategy`` while applying ``trace``.

    Parameters
    ----------
    strategy:
        Any :class:`~repro.dynamic.online.OnlineStrategy`; its substrate is
        repaired in place at every mutation via
        :meth:`~repro.dynamic.online.OnlineStrategy.apply_mutation`.
    sequence:
        Request events addressed by reference ids (see module docstring).
    trace:
        Timed mutations; mutations scheduled at or after ``len(sequence)``
        are applied after the last request.
    sample_every:
        If given, the congestion is sampled every that many served-or-
        dropped events (plus a forced final sample) and returned as
        ``trajectory`` / ``sample_times``.

    Returns
    -------
    ChurnReplayResult
        The strategy's account, the final network, the applied mutation
        outcomes and the served/dropped event counts.
    """
    if sample_every is not None and sample_every < 1:
        raise WorkloadError("sample_every must be a positive integer")
    base_n = strategy.network.n_nodes
    n_refs = base_n + trace.attach_count()
    current_of_ref = np.full(n_refs, -1, dtype=np.int64)
    current_of_ref[:base_n] = np.arange(base_n, dtype=np.int64)
    next_attach_ref = base_n

    outcomes: List[MutationOutcome] = []
    served = 0
    dropped = 0
    samples: List[float] = []
    sample_times: List[int] = []
    timed = trace.events
    ti = 0

    def apply_pending(now: int) -> None:
        nonlocal ti, next_attach_ref
        while ti < len(timed) and timed[ti].time <= now:
            mutation = timed[ti].mutation
            outcome = apply_mutation(strategy.network, mutation)
            strategy.apply_mutation(outcome)
            outcomes.append(outcome)
            alive = current_of_ref >= 0
            current_of_ref[alive] = outcome.node_map[current_of_ref[alive]]
            if isinstance(mutation, AttachLeaf):
                current_of_ref[next_attach_ref] = int(outcome.new_node)
                next_attach_ref += 1
            ti += 1

    for i, event in enumerate(sequence):
        apply_pending(i)
        if not 0 <= event.processor < n_refs:
            raise WorkloadError(
                f"event references processor id {event.processor}, but the "
                f"replay universe has {n_refs} reference ids"
            )
        proc = int(current_of_ref[event.processor])
        if proc < 0:
            dropped += 1
        else:
            if proc == event.processor:
                strategy.serve(event)
            else:
                strategy.serve(RequestEvent(proc, event.obj, event.kind))
            served += 1
        if sample_every is not None and (
            (i + 1) % sample_every == 0 or i + 1 == len(sequence)
        ):
            samples.append(strategy.account.congestion)
            sample_times.append(i + 1)

    apply_pending(max(len(sequence), trace.max_time))

    return ChurnReplayResult(
        account=strategy.account,
        network=strategy.network,
        outcomes=outcomes,
        served=served,
        dropped=dropped,
        trajectory=np.asarray(samples, dtype=np.float64) if sample_every else None,
        sample_times=np.asarray(sample_times, dtype=np.int64) if sample_every else None,
    )
