"""Online data management strategies on hierarchical bus networks.

The dynamic model (discussed in Section 1.3 of the paper, following
[MMVW97] and [MVW99]) serves requests one by one without knowledge of the
future and may replicate, migrate and invalidate copies while doing so.
Copies may only reside on processors (the hierarchical bus network
restriction studied in this paper).

This module provides:

* :class:`OnlineCostAccount` -- the per-edge/bus load bookkeeping shared by
  all strategies; serving and management traffic are charged to the same
  congestion measure used in the static model.
* :class:`StaticPlacementManager` -- serves the whole sequence from a fixed
  placement (no adaptation); used as the hindsight-static reference when the
  placement comes from the extended-nibble on the aggregate frequencies.
* :class:`EdgeCounterManager` -- an adaptive strategy in the spirit of the
  dynamic strategies of [MMVW97]: per-object read counters trigger
  replication towards frequent readers once they have paid the equivalent of
  a copy migration (``object_size`` requests), and writes invalidate replicas
  that have not been read since the previous write burst.  We make no
  competitive-ratio claim for this exact variant; the evaluation harness
  (:mod:`repro.dynamic.evaluate`) measures its empirical ratio against the
  hindsight-static reference.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.placement import Placement
from repro.dynamic.sequence import RequestEvent, RequestSequence
from repro.errors import PlacementError, WorkloadError
from repro.network.rooted import RootedTree
from repro.network.tree import HierarchicalBusNetwork

__all__ = [
    "OnlineCostAccount",
    "OnlineStrategy",
    "StaticPlacementManager",
    "EdgeCounterManager",
]


class OnlineCostAccount:
    """Accumulates per-edge loads (service + management traffic)."""

    __slots__ = ("network", "edge_loads", "service_units", "management_units")

    def __init__(self, network: HierarchicalBusNetwork) -> None:
        self.network = network
        self.edge_loads = np.zeros(network.n_edges, dtype=np.float64)
        self.service_units = 0.0
        self.management_units = 0.0

    def charge_path(self, rooted: RootedTree, src: int, dst: int, amount: float = 1.0,
                    management: bool = False) -> None:
        """Charge ``amount`` on every edge of the path ``src -> dst``."""
        if amount <= 0 or src == dst:
            return
        for eid in rooted.path_edge_ids(src, dst):
            self.edge_loads[eid] += amount
        cost = amount * len(rooted.path_edge_ids(src, dst))
        if management:
            self.management_units += cost
        else:
            self.service_units += cost

    def charge_steiner(self, rooted: RootedTree, terminals: Sequence[int],
                       amount: float = 1.0, management: bool = False) -> None:
        """Charge ``amount`` on every edge of the Steiner tree of ``terminals``."""
        terminals = list(terminals)
        if amount <= 0 or len(terminals) < 2:
            return
        edges = rooted.steiner_edge_ids(terminals)
        for eid in edges:
            self.edge_loads[eid] += amount
        cost = amount * len(edges)
        if management:
            self.management_units += cost
        else:
            self.service_units += cost

    @property
    def bus_loads(self) -> np.ndarray:
        """Per-node bus loads derived from the edge loads."""
        loads = np.zeros(self.network.n_nodes, dtype=np.float64)
        for bus in self.network.buses:
            incident = list(self.network.incident_edge_ids(bus))
            loads[bus] = self.edge_loads[incident].sum() / 2.0
        return loads

    @property
    def congestion(self) -> float:
        """Maximum relative load over edges and buses."""
        value = 0.0
        if self.edge_loads.size:
            value = float(
                (self.edge_loads / np.asarray(self.network.edge_bandwidths)).max()
            )
        bus_bw = np.asarray(self.network.bus_bandwidths)
        bus_loads = self.bus_loads
        for bus in self.network.buses:
            value = max(value, bus_loads[bus] / bus_bw[bus])
        return value

    @property
    def total_load(self) -> float:
        """Total communication load over all edges."""
        return float(self.edge_loads.sum())


class OnlineStrategy:
    """Interface of an online data management strategy."""

    def __init__(self, network: HierarchicalBusNetwork, n_objects: int) -> None:
        self.network = network
        self.rooted = network.rooted()
        self.n_objects = int(n_objects)
        self.account = OnlineCostAccount(network)

    def serve(self, event: RequestEvent) -> None:
        """Serve one request, charging its cost to :attr:`account`."""
        raise NotImplementedError

    def run(self, sequence: RequestSequence) -> OnlineCostAccount:
        """Serve a whole sequence and return the cost account."""
        if sequence.n_objects > self.n_objects:
            raise WorkloadError(
                "sequence references more objects than the strategy was built for"
            )
        for event in sequence:
            self.serve(event)
        return self.account

    def holders(self, obj: int) -> Set[int]:
        """Current holder set of an object (for inspection and tests)."""
        raise NotImplementedError


class StaticPlacementManager(OnlineStrategy):
    """Serve every request from a fixed placement (no adaptation).

    With the extended-nibble placement computed from the aggregate
    frequencies of the sequence, this is the hindsight-static reference the
    dynamic strategies are compared against.
    """

    def __init__(
        self,
        network: HierarchicalBusNetwork,
        placement: Placement,
    ) -> None:
        super().__init__(network, placement.n_objects)
        placement.validate_for(network, require_leaf_only=True)
        self._placement = placement
        self._nearest_cache: Dict[Tuple[int, int], int] = {}

    def holders(self, obj: int) -> Set[int]:
        return set(self._placement.holders(obj))

    def _nearest(self, proc: int, obj: int) -> int:
        key = (proc, obj)
        if key not in self._nearest_cache:
            self._nearest_cache[key] = self.rooted.nearest_in_set(
                proc, self._placement.holders(obj)
            )
        return self._nearest_cache[key]

    def serve(self, event: RequestEvent) -> None:
        target = self._nearest(event.processor, event.obj)
        self.account.charge_path(self.rooted, event.processor, target)
        if event.is_write:
            self.account.charge_steiner(
                self.rooted, sorted(self._placement.holders(event.obj))
            )


@dataclass
class _ObjectState:
    """Adaptive per-object state of the edge-counter strategy."""

    holders: Set[int]
    read_credit: Dict[int, int] = field(default_factory=dict)  # processor -> credit
    unread_writes: Dict[int, int] = field(default_factory=dict)  # holder -> count


class EdgeCounterManager(OnlineStrategy):
    """Adaptive replication / invalidation driven by per-processor counters.

    Parameters
    ----------
    network:
        The hierarchical bus network.
    n_objects:
        Number of shared objects.
    object_size:
        Cost (in load units per edge) of copying an object across an edge;
        also the number of remote reads a processor must issue before it
        earns a local replica (rent-or-buy threshold).
    invalidation_patience:
        Number of consecutive writes an unused replica survives before it is
        dropped.
    initial_placement:
        Optional starting placement; defaults to the first requester
        ("first touch").
    """

    def __init__(
        self,
        network: HierarchicalBusNetwork,
        n_objects: int,
        object_size: int = 4,
        invalidation_patience: int = 2,
        initial_placement: Optional[Placement] = None,
    ) -> None:
        super().__init__(network, n_objects)
        if object_size < 1:
            raise WorkloadError("object_size must be at least 1")
        if invalidation_patience < 1:
            raise WorkloadError("invalidation_patience must be at least 1")
        self.object_size = int(object_size)
        self.invalidation_patience = int(invalidation_patience)
        self._states: Dict[int, _ObjectState] = {}
        if initial_placement is not None:
            initial_placement.validate_for(network, require_leaf_only=True)
            if initial_placement.n_objects != n_objects:
                raise PlacementError("initial placement has the wrong object count")
            for obj in range(n_objects):
                self._states[obj] = _ObjectState(set(initial_placement.holders(obj)))

    # ------------------------------------------------------------------ #
    def holders(self, obj: int) -> Set[int]:
        state = self._states.get(obj)
        return set(state.holders) if state is not None else set()

    def _state_for(self, event: RequestEvent) -> _ObjectState:
        state = self._states.get(event.obj)
        if state is None:
            # first touch: the object materialises on the first requester
            state = _ObjectState({event.processor})
            self._states[event.obj] = state
        return state

    # ------------------------------------------------------------------ #
    def serve(self, event: RequestEvent) -> None:
        state = self._state_for(event)
        proc = event.processor
        nearest = self.rooted.nearest_in_set(proc, state.holders)

        if event.is_read:
            self.account.charge_path(self.rooted, proc, nearest)
            if proc not in state.holders:
                credit = state.read_credit.get(proc, 0) + 1
                if credit >= self.object_size:
                    # replicate: ship the object from the nearest copy
                    self.account.charge_path(
                        self.rooted, nearest, proc, amount=self.object_size,
                        management=True,
                    )
                    state.holders.add(proc)
                    state.unread_writes[proc] = 0
                    state.read_credit[proc] = 0
                else:
                    state.read_credit[proc] = credit
            else:
                state.unread_writes[proc] = 0
            return

        # write request: update the reference copy and broadcast to replicas
        self.account.charge_path(self.rooted, proc, nearest)
        self.account.charge_steiner(self.rooted, sorted(state.holders))
        # age replicas; drop the ones nobody read for a while (no traffic)
        writer_holder = proc if proc in state.holders else nearest
        stale: List[int] = []
        for holder in state.holders:
            if holder == writer_holder:
                state.unread_writes[holder] = 0
                continue
            count = state.unread_writes.get(holder, 0) + 1
            state.unread_writes[holder] = count
            if count >= self.invalidation_patience and len(state.holders) > 1:
                stale.append(holder)
        for holder in stale:
            if len(state.holders) > 1:
                state.holders.discard(holder)
                state.unread_writes.pop(holder, None)
        # migration: a lonely copy follows a persistent remote writer
        if len(state.holders) == 1 and proc not in state.holders:
            credit = state.read_credit.get(proc, 0) + 1
            if credit >= self.object_size:
                old = next(iter(state.holders))
                self.account.charge_path(
                    self.rooted, old, proc, amount=self.object_size, management=True
                )
                state.holders = {proc}
                state.unread_writes = {proc: 0}
                state.read_credit[proc] = 0
            else:
                state.read_credit[proc] = credit
