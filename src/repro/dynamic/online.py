"""Online data management strategies on hierarchical bus networks.

The dynamic model (discussed in Section 1.3 of the paper, following
[MMVW97] and [MVW99]) serves requests one by one without knowledge of the
future and may replicate, migrate and invalidate copies while doing so.
Copies may only reside on processors (the hierarchical bus network
restriction studied in this paper).

This module provides:

* :class:`OnlineCostAccount` -- the per-edge/bus load bookkeeping shared by
  all strategies; serving and management traffic are charged to the same
  congestion measure used in the static model.  Since the load-state
  refactor it is a thin facade over the incremental
  :class:`~repro.core.loadstate.LoadState` engine: every charge is an
  O(path) scatter and ``bus_loads`` / ``congestion`` are maintained
  incrementally instead of being recomputed from scratch on every read.
  The pre-refactor scalar implementation is retained bit-for-bit as
  :class:`_ReferenceOnlineCostAccount` for the parity property tests and
  the replay benchmarks.
* :class:`StaticPlacementManager` -- serves the whole sequence from a fixed
  placement (no adaptation); used as the hindsight-static reference when the
  placement comes from the extended-nibble on the aggregate frequencies.
  Because it never adapts, it also supports *batch replay*: whole sequence
  chunks collapse into one path-incidence scatter with exactly the same
  resulting loads as event-by-event replay.
* :class:`EdgeCounterManager` -- an adaptive strategy in the spirit of the
  dynamic strategies of [MMVW97]: per-object read counters trigger
  replication towards frequent readers once they have paid the equivalent of
  a copy migration (``object_size`` requests), and writes invalidate replicas
  that have not been read since the previous write burst.  We make no
  competitive-ratio claim for this exact variant; the evaluation harness
  (:mod:`repro.dynamic.evaluate`) measures its empirical ratio against the
  hindsight-static reference.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

import numpy as np

from repro.core import kernels
from repro.core.loadstate import LoadState
from repro.core.placement import Placement
from repro.dynamic.sequence import RequestEvent, RequestSequence
from repro.errors import PlacementError, WorkloadError
from repro.network.rooted import RootedTree
from repro.network.tree import HierarchicalBusNetwork

__all__ = [
    "OnlineCostAccount",
    "OnlineStrategy",
    "StaticPlacementManager",
    "EdgeCounterManager",
]


def _integer_amount(amount) -> int:
    """Validate one charge amount against the integer-load invariant.

    The exactness guarantees of the whole substrate (bit-for-bit parity,
    rollback journals, repair-equals-rebuild; ARCHITECTURE.md invariant 2)
    rely on charges being integer counts.  This enforces the invariant at
    the cost-account API boundary instead of by convention: integer-valued
    floats are accepted and normalised, fractional amounts are rejected.

    A genuinely-integer amount (the event-loop hot path charges plain
    Python ints on every request) short-circuits without the float
    round-trip; the ``float``/``is_integer`` check only runs for float
    inputs, so per-event validation costs one ``isinstance``.
    """
    if isinstance(amount, (int, np.integer)):
        return int(amount)
    value = float(amount)
    if not value.is_integer():
        raise WorkloadError(
            "charge amounts must be integer-valued request counts "
            f"(ARCHITECTURE.md invariant 2), got {amount!r}"
        )
    return int(value)


def _integer_weights(w: np.ndarray) -> np.ndarray:
    """Validate a batch weight vector the same way, once per chunk.

    Whole chunk arrays are validated in one vectorized pass at the batch
    boundary (never per event inside the chunk loop); integer-dtype
    arrays -- the shape every chunk aggregation produces -- skip the
    modulo scan entirely, and only float-dtype input pays for the check.
    Fractional entries raise :class:`~repro.errors.WorkloadError` exactly
    as before.
    """
    arr = np.asarray(w)
    if arr.dtype.kind in "iub":
        return arr.astype(np.float64)
    arr = arr.astype(np.float64)
    if arr.size and not np.all(np.equal(np.mod(arr, 1.0), 0.0)):
        raise WorkloadError(
            "batch charge weights must be integer-valued request counts "
            "(ARCHITECTURE.md invariant 2)"
        )
    return arr


class OnlineCostAccount:
    """Accumulates per-edge loads (service + management traffic).

    Thin facade over :class:`~repro.core.loadstate.LoadState`: charges are
    incremental scatter updates and ``bus_loads`` / ``congestion`` reads are
    O(1)-amortised instead of full rescans, which is what makes streaming
    congestion trajectories over long request sequences affordable.
    """

    __slots__ = ("network", "state", "service_units", "management_units")

    def __init__(
        self, network: HierarchicalBusNetwork, state: Optional[LoadState] = None
    ) -> None:
        self.network = network
        self.state = state if state is not None else LoadState(network)
        self.service_units = 0
        self.management_units = 0

    @property
    def edge_loads(self) -> np.ndarray:
        """Per-edge accumulated loads (live view of the engine state)."""
        return self.state.edge_loads

    def _book(self, cost: int, management: bool) -> None:
        if management:
            self.management_units += cost
        else:
            self.service_units += cost

    def charge_path(self, rooted: RootedTree, src: int, dst: int, amount: int = 1,
                    management: bool = False) -> None:
        """Charge ``amount`` (an integer request count) on every edge of the
        path ``src -> dst``."""
        amount = _integer_amount(amount)
        if amount <= 0 or src == dst:
            return
        length = self.state.apply_path(src, dst, amount)
        self._book(amount * length, management)

    def charge_steiner(self, rooted: RootedTree, terminals: Sequence[int],
                       amount: int = 1, management: bool = False) -> None:
        """Charge ``amount`` (an integer request count) on every edge of the
        Steiner tree of ``terminals``."""
        amount = _integer_amount(amount)
        terminals = list(terminals)
        if amount <= 0 or len(terminals) < 2:
            return
        n_edges = self.state.apply_steiner(terminals, amount)
        self._book(amount * n_edges, management)

    def charge_pairs(self, u, v, w, management: bool = False) -> None:
        """Charge weighted request pairs ``u[i] -> v[i]`` in one batch.

        Produces exactly the loads and cost units of the equivalent
        ``charge_path`` loop (``w`` must be integer-valued request counts,
        enforced like the scalar ``amount`` arguments), evaluated through
        one path-incidence scatter.
        """
        u = np.asarray(u, dtype=np.int64)
        v = np.asarray(v, dtype=np.int64)
        w = _integer_weights(w)
        if u.size == 0:
            return
        self.state.apply_pairs(u, v, w)
        self._book(int(round(float(self.state.pair_costs(u, v) @ w))), management)

    @property
    def bus_loads(self) -> np.ndarray:
        """Per-node bus loads derived from the edge loads."""
        return self.state.bus_loads

    @property
    def congestion(self) -> float:
        """Maximum relative load over edges and buses."""
        return self.state.congestion

    @property
    def total_load(self) -> float:
        """Total communication load over all edges."""
        return self.state.total_load


class _ReferenceOnlineCostAccount:
    """Pre-refactor scalar cost account, retained verbatim as the reference.

    Charges walk edge ids in Python loops (including the original double
    ``path_edge_ids`` evaluation) and ``bus_loads`` / ``congestion`` are
    recomputed from scratch -- incident lists included -- on every read:
    exactly the behaviour the incremental engine replaced.  The property
    tests assert bit-for-bit agreement between this class and
    :class:`OnlineCostAccount`; the replay benchmark measures the speedup
    against it.
    """

    __slots__ = ("network", "edge_loads", "service_units", "management_units")

    def __init__(self, network: HierarchicalBusNetwork) -> None:
        self.network = network
        self.edge_loads = np.zeros(network.n_edges, dtype=np.float64)
        self.service_units = 0.0
        self.management_units = 0.0

    def charge_path(self, rooted: RootedTree, src: int, dst: int, amount: float = 1.0,
                    management: bool = False) -> None:
        """Charge ``amount`` on every edge of the path ``src -> dst``."""
        if amount <= 0 or src == dst:
            return
        for eid in rooted.path_edge_ids(src, dst):
            self.edge_loads[eid] += amount
        cost = amount * len(rooted.path_edge_ids(src, dst))
        if management:
            self.management_units += cost
        else:
            self.service_units += cost

    def charge_steiner(self, rooted: RootedTree, terminals: Sequence[int],
                       amount: float = 1.0, management: bool = False) -> None:
        """Charge ``amount`` on every edge of the Steiner tree of ``terminals``."""
        terminals = list(terminals)
        if amount <= 0 or len(terminals) < 2:
            return
        edges = rooted.steiner_edge_ids(terminals)
        for eid in edges:
            self.edge_loads[eid] += amount
        cost = amount * len(edges)
        if management:
            self.management_units += cost
        else:
            self.service_units += cost

    def charge_pairs(self, u, v, w, management: bool = False) -> None:
        """Scalar equivalent of :meth:`OnlineCostAccount.charge_pairs`."""
        rooted = self.network.rooted()
        for src, dst, amount in zip(u, v, w):
            self.charge_path(rooted, int(src), int(dst), float(amount),
                             management=management)

    @property
    def bus_loads(self) -> np.ndarray:
        """Per-node bus loads recomputed from the edge loads."""
        loads = np.zeros(self.network.n_nodes, dtype=np.float64)
        for bus in self.network.buses:
            incident = list(self.network.incident_edge_ids(bus))
            loads[bus] = self.edge_loads[incident].sum() / 2.0
        return loads

    @property
    def congestion(self) -> float:
        """Maximum relative load over edges and buses (full rescan)."""
        value = 0.0
        if self.edge_loads.size:
            value = float(
                (self.edge_loads / np.asarray(self.network.edge_bandwidths)).max()
            )
        bus_bw = np.asarray(self.network.bus_bandwidths)
        bus_loads = self.bus_loads
        for bus in self.network.buses:
            value = max(value, bus_loads[bus] / bus_bw[bus])
        return value

    @property
    def total_load(self) -> float:
        """Total communication load over all edges."""
        return float(self.edge_loads.sum())


def _rehome_target(outcome) -> int:
    """New-network id of the survivor closest to a detached leaf.

    When a detached processor held the only copy of an object, the copy is
    re-homed via the nearest-copy rule: it moves to the surviving processor
    closest to the departed leaf in the *old* topology (ties to the smallest
    id, matching every other nearest-copy resolution in the codebase).
    """
    old_net = outcome.old_network
    detached = int(outcome.removed_node)
    survivors = [p for p in old_net.processors if p != detached]
    home = old_net.rooted().nearest_in_set(detached, survivors)
    return int(outcome.node_map[home])


class OnlineStrategy:
    """Interface of an online data management strategy."""

    def __init__(
        self,
        network: HierarchicalBusNetwork,
        n_objects: int,
        account: Optional[OnlineCostAccount] = None,
    ) -> None:
        self.network = network
        self.rooted = network.rooted()
        self.n_objects = int(n_objects)
        self.account = account if account is not None else OnlineCostAccount(network)

    def serve(self, event: RequestEvent) -> None:
        """Serve one request, charging its cost to :attr:`account`."""
        raise NotImplementedError

    def apply_mutation(self, outcome) -> None:
        """Carry the strategy and its cost account over a topology mutation.

        The shared :class:`~repro.core.loadstate.LoadState` is repaired in
        place (bit-for-bit equal to a from-scratch rebuild), then the
        strategy-specific holder state is remapped via
        :meth:`_repair_strategy_state`; copies stranded on a detached leaf
        are re-homed via the nearest-copy rule.  Accumulated service and
        management cost units are preserved.
        """
        self.account.state.repair(outcome)
        self.network = outcome.network
        self.account.network = outcome.network
        self.rooted = self.account.state.rooted
        self._repair_strategy_state(outcome)

    def _repair_strategy_state(self, outcome) -> None:
        """Hook for subclasses: remap holder ids after a mutation."""

    def serve_chunk(self, sequence: RequestSequence, start: int, stop: int) -> None:
        """Serve the events ``sequence[start:stop]``.

        The default implementation replays event by event, which is exact
        for every strategy.  Strategies that do not adapt mid-chunk (the
        static reference) override this with a vectorized batch charge that
        produces bit-for-bit identical loads.
        """
        for event in sequence.events[start:stop]:
            self.serve(event)

    def run(
        self, sequence: RequestSequence, chunk_size: Optional[int] = None
    ) -> OnlineCostAccount:
        """Serve a whole sequence and return the cost account.

        Thin adapter over the unified simulation kernel
        (:class:`repro.sim.engine.SimulationEngine`): the sequence becomes
        a churn-free timeline served through :meth:`serve_chunk`.
        ``chunk_size`` bounds the span length of the batch replay grid;
        strategies whose decisions cannot change mid-chunk turn each span
        into one vectorized scatter, while the default :meth:`serve_chunk`
        falls back to the event loop, so adaptive strategies remain exact
        under any chunk size.
        """
        from repro.sim.engine import SimulationEngine

        SimulationEngine(self, chunk_size=chunk_size).run(sequence)
        return self.account

    def holders(self, obj: int) -> Set[int]:
        """Current holder set of an object (for inspection and tests)."""
        raise NotImplementedError


class StaticPlacementManager(OnlineStrategy):
    """Serve every request from a fixed placement (no adaptation).

    With the extended-nibble placement computed from the aggregate
    frequencies of the sequence, this is the hindsight-static reference the
    dynamic strategies are compared against.
    """

    def __init__(
        self,
        network: HierarchicalBusNetwork,
        placement: Placement,
        account: Optional[OnlineCostAccount] = None,
    ) -> None:
        super().__init__(network, placement.n_objects, account=account)
        placement.validate_for(network, require_leaf_only=True)
        self._placement = placement
        # nearest-copy table per object, resolved for all processors in one
        # batched distance evaluation on first touch
        self._nearest_cache: Dict[int, np.ndarray] = {}
        # per-object Steiner edge ids of the holder sets (write broadcasts)
        self._steiner_ids_cache: Dict[int, np.ndarray] = {}
        self._procs = np.asarray(network.processors, dtype=np.int64)

    def holders(self, obj: int) -> Set[int]:
        return set(self._placement.holders(obj))

    def _nearest_table(self, obj: int) -> np.ndarray:
        """Per-node nearest-copy table of one object (cached, batch-built)."""
        table = self._nearest_cache.get(obj)
        if table is None:
            table = np.full(self.network.n_nodes, -1, dtype=np.int64)
            table[self._procs] = self.rooted.path_matrix().nearest_in_set(
                self._procs, self._placement.holders(obj)
            )
            self._nearest_cache[obj] = table
        return table

    def _nearest_tables_bulk(self, objs) -> None:
        """Build the nearest-copy tables of many objects in one LCA pass.

        One distance evaluation against the union of all missing objects'
        holder sets replaces one :meth:`PathMatrix.nearest_in_set` call per
        object; each per-object table is then a gather + argmin over the
        shared distance block.  Holder columns stay sorted ascending, so
        ties resolve to the smallest id exactly like ``nearest_in_set``.
        """
        missing = [int(obj) for obj in objs if obj not in self._nearest_cache]
        if not missing:
            return
        holders = {
            obj: sorted({int(h) for h in self._placement.holders(obj)})
            for obj in missing
        }
        union = sorted({h for hs in holders.values() for h in hs})
        column = {h: j for j, h in enumerate(union)}
        pm = self.rooted.path_matrix()
        # One blocked distance evaluation over (processors × holder union):
        # PathMatrix.distances bounds its LCA scratch space internally, so
        # this stays sub-quadratic in memory on huge networks -- no
        # all-pairs matrix is ever materialised (the old ≤2048-node
        # all_distances() cache silently degraded past its node cap).
        dist = pm.distances(
            self._procs[:, None], np.asarray(union, dtype=np.int64)[None, :]
        )
        n_nodes = self.network.n_nodes
        for obj in missing:
            hs = np.asarray(holders[obj], dtype=np.int64)
            sub = dist[:, [column[h] for h in hs]]
            table = np.full(n_nodes, -1, dtype=np.int64)
            table[self._procs] = hs[np.argmin(sub, axis=1)]
            self._nearest_cache[obj] = table

    def _nearest(self, proc: int, obj: int) -> int:
        return int(self._nearest_table(obj)[proc])

    def _steiner_edge_ids_for(self, obj: int, entry_source) -> np.ndarray:
        """Edge ids of one object's write-broadcast Steiner tree (cached).

        ``entry_source`` is any substrate exposing ``_steiner_entry`` (the
        manager's own state, or the shared stacked state in fleet mode);
        the ids only depend on the topology and the holder set, so the
        per-object cache survives substrate swaps and bandwidth mutations
        and is cleared with the other holder-derived caches on structural
        repair.
        """
        edge_ids = self._steiner_ids_cache.get(obj)
        if edge_ids is None:
            terminals = self._placement.holders(obj)
            if len(terminals) < 2:
                edge_ids = np.empty(0, dtype=np.int64)
            else:
                key = frozenset(int(t) for t in terminals)
                edge_ids = entry_source._steiner_entry(key)[0]
            self._steiner_ids_cache[obj] = edge_ids
        return edge_ids

    def _repair_strategy_state(self, outcome) -> None:
        if not outcome.structural:
            return
        self._nearest_cache.clear()  # tables are sized to the old node count
        self._steiner_ids_cache.clear()  # edge ids renumber under mutations
        self._procs = np.asarray(outcome.network.processors, dtype=np.int64)
        if outcome.removed_node is None:
            return  # attach/split keep node ids stable
        nm = outcome.node_map
        home = None  # one detach has one re-home target; resolve it lazily once
        new_holders = []
        for obj in range(self._placement.n_objects):
            mapped = sorted(int(nm[h]) for h in self._placement.holders(obj) if nm[h] >= 0)
            if not mapped:
                if home is None:
                    home = _rehome_target(outcome)
                mapped = [home]
            new_holders.append(mapped)
        self._placement = Placement(new_holders)

    def serve(self, event: RequestEvent) -> None:
        target = self._nearest(event.processor, event.obj)
        self.account.charge_path(self.rooted, event.processor, target)
        if event.is_write:
            self.account.charge_steiner(
                self.rooted, sorted(self._placement.holders(event.obj))
            )

    @staticmethod
    def _aggregate_chunk(sequence: RequestSequence, start: int, stop: int):
        """Shared chunk aggregation of the sequential and fleet paths.

        Collapses ``sequence[start:stop]`` into unique ``(processor,
        object)`` request pairs with multiplicities, the pair rows grouped
        per object, and the written objects with write counts.  Both
        :meth:`serve_chunk` and :meth:`serve_chunk_fleet` feed off this one
        function, so the two paths cannot drift apart in how they
        aggregate -- the bit-for-bit fleet parity contract depends on
        that.  Returns ``None`` for an empty chunk.

        The unique-pair pass runs through
        :func:`repro.core.kernels.aggregate_pairs` (one int64-key sort
        instead of numpy's void-dtype column comparison); the historical
        implementation is retained verbatim as
        :meth:`_reference_aggregate_chunk` and the differential tests pin
        the two to identical output.
        """
        procs, objs, writes = sequence.as_arrays()
        procs = procs[start:stop]
        objs = objs[start:stop]
        writes = writes[start:stop]
        if procs.size == 0:
            return None
        uprocs, uobjs, counts = kernels.aggregate_pairs(procs, objs)
        # group the pair rows per object in one sort pass (pairs sort by
        # processor first, so the object row is not globally sorted); the
        # stable order keeps each group's row indices ascending
        order = np.argsort(uobjs, kind="stable")
        uniq_objs, starts = np.unique(uobjs[order], return_index=True)
        bounds = np.append(starts[1:], order.size)
        by_object = [
            (int(obj), order[lo:hi])
            for obj, lo, hi in zip(uniq_objs, starts, bounds)
        ]
        written, write_counts = np.unique(objs[writes], return_counts=True)
        return uprocs, counts, by_object, written, write_counts

    @staticmethod
    def _reference_aggregate_chunk(sequence: RequestSequence, start: int, stop: int):
        """Pre-kernel chunk aggregation, retained verbatim as the reference.

        Uses ``np.unique(..., axis=1)`` over the stacked pair rows; the
        differential tests assert that :meth:`_aggregate_chunk` produces
        identical pairs, counts, per-object groups and write counts.
        """
        procs, objs, writes = sequence.as_arrays()
        procs = procs[start:stop]
        objs = objs[start:stop]
        writes = writes[start:stop]
        if procs.size == 0:
            return None
        pairs, counts = np.unique(
            np.stack([procs, objs]), axis=1, return_counts=True
        )
        order = np.argsort(pairs[1], kind="stable")
        uniq_objs, starts = np.unique(pairs[1][order], return_index=True)
        bounds = np.append(starts[1:], order.size)
        by_object = [
            (int(obj), order[lo:hi])
            for obj, lo, hi in zip(uniq_objs, starts, bounds)
        ]
        written, write_counts = np.unique(objs[writes], return_counts=True)
        return pairs[0], counts, by_object, written, write_counts

    def serve_chunk(self, sequence: RequestSequence, start: int, stop: int) -> None:
        """Vectorized batch replay of one chunk (exact event-loop parity).

        The placement is fixed, so a chunk of events collapses into
        aggregated request pairs (one column through the path-incidence
        operator) plus one Steiner charge per written object.  All charged
        quantities are integer-valued, so the resulting loads and cost units
        are bit-for-bit equal to serving the same events one by one.
        """
        aggregated = self._aggregate_chunk(sequence, start, stop)
        if aggregated is None:
            return
        u, counts, by_object, written, write_counts = aggregated
        # resolve each unique pair's reference copy via the per-object
        # tables (built in one bulk LCA pass, gathered per object)
        self._nearest_tables_bulk([obj for obj, _ in by_object])
        targets = np.empty(u.size, dtype=np.int64)
        for obj, rows in by_object:
            targets[rows] = self._nearest_table(obj)[u[rows]]
        self.account.charge_pairs(u, targets, counts)
        for obj, count in zip(written, write_counts):
            self.account.charge_steiner(
                self.rooted,
                sorted(self._placement.holders(int(obj))),
                amount=int(count),
            )

    def run_batch(self, sequence: RequestSequence) -> OnlineCostAccount:
        """Replay the whole sequence as one batch (see :meth:`serve_chunk`)."""
        return self.run(sequence, chunk_size=max(1, len(sequence)))

    @classmethod
    def serve_chunk_fleet(
        cls, managers: Sequence["StaticPlacementManager"], sequence, start, stop
    ) -> None:
        """Serve one chunk for a whole fleet of static managers at once.

        The fleet-replay group hook (see
        :func:`~repro.sim.protocol.fleet_groups`): all managers replay the
        same events, so the chunk aggregation (unique ``(processor,
        object)`` pairs and write counts) is computed **once**, nearest-copy
        targets are gathered per lane from the cached per-object tables,
        the LCA/distance pass runs batched over all lanes and the resulting
        per-lane edge-load columns go into the shared
        :class:`~repro.core.loadstate.StackedLoadState` as one
        lane-broadcast scatter.  Per-lane write broadcasts reuse the shared
        Steiner scatter-entry cache.

        All charged quantities are integer request counts, so every lane's
        loads and cost units are bit-for-bit those of calling the member's
        :meth:`serve_chunk` on its own.  Falls back to exactly that when
        the managers' accounts do not sit on lanes of one stacked state.
        """
        from repro.core.loadstate import LaneState

        states = [getattr(m.account, "state", None) for m in managers]
        stacked = (
            all(isinstance(s, LaneState) for s in states)
            and len({id(s.parent) for s in states}) == 1
        )
        if not stacked:
            for manager in managers:
                manager.serve_chunk(sequence, start, stop)
            return

        aggregated = cls._aggregate_chunk(sequence, start, stop)
        if aggregated is None:
            return
        u, counts, by_object, written, write_counts = aggregated
        targets = np.empty((u.size, len(managers)), dtype=np.int64)
        for k, manager in enumerate(managers):
            manager._nearest_tables_bulk([obj for obj, _ in by_object])
            for obj, rows in by_object:
                targets[rows, k] = manager._nearest_table(obj)[u[rows]]

        parent = states[0].parent
        lanes = [s.lane_index for s in states]
        w = counts.astype(np.float64)
        # one batched LCA pass feeds both the distance booking and the
        # pair scatters (same depth arithmetic as pm.distances)
        pm = parent.pm
        anc = pm.lca(u[:, None], targets)
        depth = pm.depths
        dists = depth[u][:, None] + depth[targets] - 2 * depth[anc]
        columns = pm.pair_edge_loads_lanes(u, targets, w, anc)
        parent.apply_edge_loads_lanes(lanes, columns)
        for k, manager in enumerate(managers):
            manager.account._book(int(round(float(dists[:, k] @ w))), False)

        # write broadcasts: one per-lane Steiner column through the shared
        # entry cache, applied as a second lane-broadcast scatter.  All
        # charges in a span are non-negative, so the end-of-span congestion
        # (the only observation point) equals the per-charge running max of
        # the sequential path bit-for-bit.
        if written.size:
            steiner_cols = np.zeros((parent.n_edges, len(managers)))
            for k, manager in enumerate(managers):
                column = steiner_cols[:, k]
                booked = 0
                for obj, count in zip(written, write_counts):
                    edge_ids = manager._steiner_edge_ids_for(int(obj), parent)
                    if edge_ids.size:
                        column[edge_ids] += count
                        booked += int(count) * int(edge_ids.size)
                manager.account._book(booked, False)
            parent.apply_edge_loads_lanes(lanes, steiner_cols)


@dataclass
class _ObjectState:
    """Adaptive per-object state of the edge-counter strategy."""

    holders: Set[int]
    read_credit: Dict[int, int] = field(default_factory=dict)  # processor -> credit
    unread_writes: Dict[int, int] = field(default_factory=dict)  # holder -> count


class EdgeCounterManager(OnlineStrategy):
    """Adaptive replication / invalidation driven by per-processor counters.

    Parameters
    ----------
    network:
        The hierarchical bus network.
    n_objects:
        Number of shared objects.
    object_size:
        Cost (in load units per edge) of copying an object across an edge;
        also the number of remote reads a processor must issue before it
        earns a local replica (rent-or-buy threshold).
    invalidation_patience:
        Number of consecutive writes an unused replica survives before it is
        dropped.
    initial_placement:
        Optional starting placement; defaults to the first requester
        ("first touch").
    """

    def __init__(
        self,
        network: HierarchicalBusNetwork,
        n_objects: int,
        object_size: int = 4,
        invalidation_patience: int = 2,
        initial_placement: Optional[Placement] = None,
        account: Optional[OnlineCostAccount] = None,
    ) -> None:
        super().__init__(network, n_objects, account=account)
        if object_size < 1:
            raise WorkloadError("object_size must be at least 1")
        if invalidation_patience < 1:
            raise WorkloadError("invalidation_patience must be at least 1")
        self.object_size = int(object_size)
        self.invalidation_patience = int(invalidation_patience)
        self._states: Dict[int, _ObjectState] = {}
        if initial_placement is not None:
            initial_placement.validate_for(network, require_leaf_only=True)
            if initial_placement.n_objects != n_objects:
                raise PlacementError("initial placement has the wrong object count")
            for obj in range(n_objects):
                self._states[obj] = _ObjectState(set(initial_placement.holders(obj)))

    # ------------------------------------------------------------------ #
    def holders(self, obj: int) -> Set[int]:
        state = self._states.get(obj)
        return set(state.holders) if state is not None else set()

    def _repair_strategy_state(self, outcome) -> None:
        if outcome.removed_node is None:
            return  # bandwidth/attach/split mutations keep node ids stable
        nm = outcome.node_map
        home = None  # one detach has one re-home target; resolve it lazily once
        for state in self._states.values():
            holders = {int(nm[h]) for h in state.holders if nm[h] >= 0}
            if not holders:
                if home is None:
                    home = _rehome_target(outcome)
                holders = {home}
            state.holders = holders
            state.read_credit = {
                int(nm[p]): c for p, c in state.read_credit.items() if nm[p] >= 0
            }
            state.unread_writes = {
                int(nm[h]): c for h, c in state.unread_writes.items() if nm[h] >= 0
            }

    def _state_for(self, event: RequestEvent) -> _ObjectState:
        state = self._states.get(event.obj)
        if state is None:
            # first touch: the object materialises on the first requester
            state = _ObjectState({event.processor})
            self._states[event.obj] = state
        return state

    # ------------------------------------------------------------------ #
    def serve(self, event: RequestEvent) -> None:
        state = self._state_for(event)
        proc = event.processor
        nearest = self.rooted.nearest_in_set(proc, state.holders)

        if event.is_read:
            self.account.charge_path(self.rooted, proc, nearest)
            if proc not in state.holders:
                credit = state.read_credit.get(proc, 0) + 1
                if credit >= self.object_size:
                    # replicate: ship the object from the nearest copy
                    self.account.charge_path(
                        self.rooted, nearest, proc, amount=self.object_size,
                        management=True,
                    )
                    state.holders.add(proc)
                    state.unread_writes[proc] = 0
                    state.read_credit[proc] = 0
                else:
                    state.read_credit[proc] = credit
            else:
                state.unread_writes[proc] = 0
            return

        # write request: update the reference copy and broadcast to replicas
        self.account.charge_path(self.rooted, proc, nearest)
        self.account.charge_steiner(self.rooted, sorted(state.holders))
        # age replicas; drop the ones nobody read for a while (no traffic)
        writer_holder = proc if proc in state.holders else nearest
        stale: List[int] = []
        for holder in state.holders:
            if holder == writer_holder:
                state.unread_writes[holder] = 0
                continue
            count = state.unread_writes.get(holder, 0) + 1
            state.unread_writes[holder] = count
            if count >= self.invalidation_patience and len(state.holders) > 1:
                stale.append(holder)
        for holder in stale:
            if len(state.holders) > 1:
                state.holders.discard(holder)
                state.unread_writes.pop(holder, None)
        # migration: a lonely copy follows a persistent remote writer
        if len(state.holders) == 1 and proc not in state.holders:
            credit = state.read_credit.get(proc, 0) + 1
            if credit >= self.object_size:
                old = next(iter(state.holders))
                self.account.charge_path(
                    self.rooted, old, proc, amount=self.object_size, management=True
                )
                state.holders = {proc}
                state.unread_writes = {proc: 0}
                state.read_credit[proc] = 0
            else:
                state.read_credit[proc] = credit
