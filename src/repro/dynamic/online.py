"""Online data management strategies on hierarchical bus networks.

The dynamic model (discussed in Section 1.3 of the paper, following
[MMVW97] and [MVW99]) serves requests one by one without knowledge of the
future and may replicate, migrate and invalidate copies while doing so.
Copies may only reside on processors (the hierarchical bus network
restriction studied in this paper).

This module provides:

* :class:`OnlineCostAccount` -- the per-edge/bus load bookkeeping shared by
  all strategies; serving and management traffic are charged to the same
  congestion measure used in the static model.  Since the load-state
  refactor it is a thin facade over the incremental
  :class:`~repro.core.loadstate.LoadState` engine: every charge is an
  O(path) scatter and ``bus_loads`` / ``congestion`` are maintained
  incrementally instead of being recomputed from scratch on every read.
  The pre-refactor scalar implementation is retained bit-for-bit as
  :class:`_ReferenceOnlineCostAccount` for the parity property tests and
  the replay benchmarks.
* :class:`StaticPlacementManager` -- serves the whole sequence from a fixed
  placement (no adaptation); used as the hindsight-static reference when the
  placement comes from the extended-nibble on the aggregate frequencies.
  Because it never adapts, it also supports *batch replay*: whole sequence
  chunks collapse into one path-incidence scatter with exactly the same
  resulting loads as event-by-event replay.
* :class:`EdgeCounterManager` -- an adaptive strategy in the spirit of the
  dynamic strategies of [MMVW97]: per-object read counters trigger
  replication towards frequent readers once they have paid the equivalent of
  a copy migration (``object_size`` requests), and writes invalidate replicas
  that have not been read since the previous write burst.  We make no
  competitive-ratio claim for this exact variant; the evaluation harness
  (:mod:`repro.dynamic.evaluate`) measures its empirical ratio against the
  hindsight-static reference.
"""

from __future__ import annotations

from bisect import insort
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core import kernels
from repro.core.loadstate import LoadState
from repro.core.placement import Placement
from repro.dynamic.adaptive_state import AdaptiveState
from repro.dynamic.sequence import RequestEvent, RequestSequence
from repro.errors import PlacementError, WorkloadError
from repro.network.rooted import RootedTree
from repro.network.tree import HierarchicalBusNetwork

__all__ = [
    "OnlineCostAccount",
    "OnlineStrategy",
    "StaticPlacementManager",
    "EdgeCounterManager",
    "HysteresisCounterManager",
    "RentOrBuyManager",
]


def _integer_amount(amount) -> int:
    """Validate one charge amount against the integer-load invariant.

    The exactness guarantees of the whole substrate (bit-for-bit parity,
    rollback journals, repair-equals-rebuild; ARCHITECTURE.md invariant 2)
    rely on charges being integer counts.  This enforces the invariant at
    the cost-account API boundary instead of by convention: integer-valued
    floats are accepted and normalised, fractional amounts are rejected.

    A genuinely-integer amount (the event-loop hot path charges plain
    Python ints on every request) short-circuits without the float
    round-trip; the ``float``/``is_integer`` check only runs for float
    inputs, so per-event validation costs one ``isinstance``.
    """
    if isinstance(amount, (int, np.integer)):
        return int(amount)
    value = float(amount)
    if not value.is_integer():
        raise WorkloadError(
            "charge amounts must be integer-valued request counts "
            f"(ARCHITECTURE.md invariant 2), got {amount!r}"
        )
    return int(value)


def _integer_weights(w: np.ndarray) -> np.ndarray:
    """Validate a batch weight vector the same way, once per chunk.

    Whole chunk arrays are validated in one vectorized pass at the batch
    boundary (never per event inside the chunk loop); integer-dtype
    arrays -- the shape every chunk aggregation produces -- skip the
    modulo scan entirely, and only float-dtype input pays for the check.
    Fractional entries raise :class:`~repro.errors.WorkloadError` exactly
    as before.
    """
    arr = np.asarray(w)
    if arr.dtype.kind in "iub":
        return arr.astype(np.float64)
    arr = arr.astype(np.float64)
    if arr.size and not np.all(np.equal(np.mod(arr, 1.0), 0.0)):
        raise WorkloadError(
            "batch charge weights must be integer-valued request counts "
            "(ARCHITECTURE.md invariant 2)"
        )
    return arr


class OnlineCostAccount:
    """Accumulates per-edge loads (service + management traffic).

    Thin facade over :class:`~repro.core.loadstate.LoadState`: charges are
    incremental scatter updates and ``bus_loads`` / ``congestion`` reads are
    O(1)-amortised instead of full rescans, which is what makes streaming
    congestion trajectories over long request sequences affordable.
    """

    __slots__ = ("network", "state", "service_units", "management_units")

    def __init__(
        self, network: HierarchicalBusNetwork, state: Optional[LoadState] = None
    ) -> None:
        self.network = network
        self.state = state if state is not None else LoadState(network)
        self.service_units = 0
        self.management_units = 0

    @property
    def edge_loads(self) -> np.ndarray:
        """Per-edge accumulated loads (live view of the engine state)."""
        return self.state.edge_loads

    def _book(self, cost: int, management: bool) -> None:
        if management:
            self.management_units += cost
        else:
            self.service_units += cost

    def charge_path(self, rooted: RootedTree, src: int, dst: int, amount: int = 1,
                    management: bool = False) -> None:
        """Charge ``amount`` (an integer request count) on every edge of the
        path ``src -> dst``."""
        amount = _integer_amount(amount)
        if amount <= 0 or src == dst:
            return
        length = self.state.apply_path(src, dst, amount)
        self._book(amount * length, management)

    def charge_steiner(self, rooted: RootedTree, terminals: Sequence[int],
                       amount: int = 1, management: bool = False) -> None:
        """Charge ``amount`` (an integer request count) on every edge of the
        Steiner tree of ``terminals``."""
        amount = _integer_amount(amount)
        terminals = list(terminals)
        if amount <= 0 or len(terminals) < 2:
            return
        n_edges = self.state.apply_steiner(terminals, amount)
        self._book(amount * n_edges, management)

    def charge_pairs(self, u, v, w, management: bool = False) -> None:
        """Charge weighted request pairs ``u[i] -> v[i]`` in one batch.

        Produces exactly the loads and cost units of the equivalent
        ``charge_path`` loop (``w`` must be integer-valued request counts,
        enforced like the scalar ``amount`` arguments), evaluated through
        one path-incidence scatter.
        """
        u = np.asarray(u, dtype=np.int64)
        v = np.asarray(v, dtype=np.int64)
        w = _integer_weights(w)
        if u.size == 0:
            return
        self.state.apply_pairs(u, v, w)
        self._book(int(round(float(self.state.pair_costs(u, v) @ w))), management)

    @property
    def bus_loads(self) -> np.ndarray:
        """Per-node bus loads derived from the edge loads."""
        return self.state.bus_loads

    @property
    def congestion(self) -> float:
        """Maximum relative load over edges and buses."""
        return self.state.congestion

    @property
    def total_load(self) -> float:
        """Total communication load over all edges."""
        return self.state.total_load


class _ReferenceOnlineCostAccount:
    """Pre-refactor scalar cost account, retained verbatim as the reference.

    Charges walk edge ids in Python loops (including the original double
    ``path_edge_ids`` evaluation) and ``bus_loads`` / ``congestion`` are
    recomputed from scratch -- incident lists included -- on every read:
    exactly the behaviour the incremental engine replaced.  The property
    tests assert bit-for-bit agreement between this class and
    :class:`OnlineCostAccount`; the replay benchmark measures the speedup
    against it.
    """

    __slots__ = ("network", "edge_loads", "service_units", "management_units")

    def __init__(self, network: HierarchicalBusNetwork) -> None:
        self.network = network
        self.edge_loads = np.zeros(network.n_edges, dtype=np.float64)
        self.service_units = 0.0
        self.management_units = 0.0

    def charge_path(self, rooted: RootedTree, src: int, dst: int, amount: float = 1.0,
                    management: bool = False) -> None:
        """Charge ``amount`` on every edge of the path ``src -> dst``."""
        if amount <= 0 or src == dst:
            return
        for eid in rooted.path_edge_ids(src, dst):
            self.edge_loads[eid] += amount
        cost = amount * len(rooted.path_edge_ids(src, dst))
        if management:
            self.management_units += cost
        else:
            self.service_units += cost

    def charge_steiner(self, rooted: RootedTree, terminals: Sequence[int],
                       amount: float = 1.0, management: bool = False) -> None:
        """Charge ``amount`` on every edge of the Steiner tree of ``terminals``."""
        terminals = list(terminals)
        if amount <= 0 or len(terminals) < 2:
            return
        edges = rooted.steiner_edge_ids(terminals)
        for eid in edges:
            self.edge_loads[eid] += amount
        cost = amount * len(edges)
        if management:
            self.management_units += cost
        else:
            self.service_units += cost

    def charge_pairs(self, u, v, w, management: bool = False) -> None:
        """Scalar equivalent of :meth:`OnlineCostAccount.charge_pairs`."""
        rooted = self.network.rooted()
        for src, dst, amount in zip(u, v, w):
            self.charge_path(rooted, int(src), int(dst), float(amount),
                             management=management)

    @property
    def bus_loads(self) -> np.ndarray:
        """Per-node bus loads recomputed from the edge loads."""
        loads = np.zeros(self.network.n_nodes, dtype=np.float64)
        for bus in self.network.buses:
            incident = list(self.network.incident_edge_ids(bus))
            loads[bus] = self.edge_loads[incident].sum() / 2.0
        return loads

    @property
    def congestion(self) -> float:
        """Maximum relative load over edges and buses (full rescan)."""
        value = 0.0
        if self.edge_loads.size:
            value = float(
                (self.edge_loads / np.asarray(self.network.edge_bandwidths)).max()
            )
        bus_bw = np.asarray(self.network.bus_bandwidths)
        bus_loads = self.bus_loads
        for bus in self.network.buses:
            value = max(value, bus_loads[bus] / bus_bw[bus])
        return value

    @property
    def total_load(self) -> float:
        """Total communication load over all edges."""
        return float(self.edge_loads.sum())


def _rehome_target(outcome) -> int:
    """New-network id of the survivor closest to a detached leaf.

    When a detached processor held the only copy of an object, the copy is
    re-homed via the nearest-copy rule: it moves to the surviving processor
    closest to the departed leaf in the *old* topology (ties to the smallest
    id, matching every other nearest-copy resolution in the codebase).
    """
    old_net = outcome.old_network
    detached = int(outcome.removed_node)
    survivors = [p for p in old_net.processors if p != detached]
    home = old_net.rooted().nearest_in_set(detached, survivors)
    return int(outcome.node_map[home])


def _bulk_nearest_tables(pm, procs: np.ndarray, n_nodes: int, requests) -> None:
    """Build per-object nearest-copy tables in one blocked distance pass.

    ``requests`` is a list of ``(cache, obj, holders)`` sinks: ``cache``
    is a per-strategy table dict to fill, ``holders`` the object's holder
    ids as an ascending tuple.  One distance evaluation against the union
    of all requested holder sets replaces one
    ``PathMatrix.nearest_in_set`` call per (strategy, object); each table
    is then a gather + argmin over the shared distance block.  Holder
    columns stay sorted ascending, so ties resolve to the smallest id
    exactly like ``nearest_in_set``, and identical holder sets (fleet
    lanes that agree on an object's placement) share one table object.

    The blocked evaluation runs over (processors × holder union):
    ``PathMatrix.distances`` bounds its LCA scratch space internally, so
    this stays sub-quadratic in memory on huge networks -- no all-pairs
    matrix is ever materialised (the old ≤2048-node ``all_distances()``
    cache silently degraded past its node cap).
    """
    if not requests:
        return
    by_holders: Dict[tuple, list] = {}
    for cache, obj, holders in requests:
        by_holders.setdefault(holders, []).append((cache, obj))
    union = sorted({h for holders in by_holders for h in holders})
    column = {h: j for j, h in enumerate(union)}
    dist = pm.distances(
        procs[:, None], np.asarray(union, dtype=np.int64)[None, :]
    )
    for holders, sinks in by_holders.items():
        hs = np.asarray(holders, dtype=np.int64)
        sub = dist[:, [column[h] for h in holders]]
        table = np.full(n_nodes, -1, dtype=np.int64)
        table[procs] = hs[np.argmin(sub, axis=1)]
        for cache, obj in sinks:
            cache[obj] = table


class OnlineStrategy:
    """Interface of an online data management strategy."""

    def __init__(
        self,
        network: HierarchicalBusNetwork,
        n_objects: int,
        account: Optional[OnlineCostAccount] = None,
    ) -> None:
        self.network = network
        self.rooted = network.rooted()
        self.n_objects = int(n_objects)
        self.account = account if account is not None else OnlineCostAccount(network)

    def serve(self, event: RequestEvent) -> None:
        """Serve one request, charging its cost to :attr:`account`."""
        raise NotImplementedError

    def apply_mutation(self, outcome) -> None:
        """Carry the strategy and its cost account over a topology mutation.

        The shared :class:`~repro.core.loadstate.LoadState` is repaired in
        place (bit-for-bit equal to a from-scratch rebuild), then the
        strategy-specific holder state is remapped via
        :meth:`_repair_strategy_state`; copies stranded on a detached leaf
        are re-homed via the nearest-copy rule.  Accumulated service and
        management cost units are preserved.
        """
        self.account.state.repair(outcome)
        self.network = outcome.network
        self.account.network = outcome.network
        self.rooted = self.account.state.rooted
        self._repair_strategy_state(outcome)

    def _repair_strategy_state(self, outcome) -> None:
        """Hook for subclasses: remap holder ids after a mutation."""

    def serve_chunk(self, sequence: RequestSequence, start: int, stop: int) -> None:
        """Serve the events ``sequence[start:stop]``.

        The default implementation replays event by event, which is exact
        for every strategy.  Strategies that do not adapt mid-chunk (the
        static reference) override this with a vectorized batch charge that
        produces bit-for-bit identical loads.
        """
        for event in sequence.events[start:stop]:
            self.serve(event)

    def run(
        self, sequence: RequestSequence, chunk_size: Optional[int] = None
    ) -> OnlineCostAccount:
        """Serve a whole sequence and return the cost account.

        Thin adapter over the unified simulation kernel
        (:class:`repro.sim.engine.SimulationEngine`): the sequence becomes
        a churn-free timeline served through :meth:`serve_chunk`.
        ``chunk_size`` bounds the span length of the batch replay grid;
        strategies whose decisions cannot change mid-chunk turn each span
        into one vectorized scatter, while the default :meth:`serve_chunk`
        falls back to the event loop, so adaptive strategies remain exact
        under any chunk size.
        """
        from repro.sim.engine import SimulationEngine

        SimulationEngine(self, chunk_size=chunk_size).run(sequence)
        return self.account

    def holders(self, obj: int) -> Set[int]:
        """Current holder set of an object (for inspection and tests)."""
        raise NotImplementedError


class StaticPlacementManager(OnlineStrategy):
    """Serve every request from a fixed placement (no adaptation).

    With the extended-nibble placement computed from the aggregate
    frequencies of the sequence, this is the hindsight-static reference the
    dynamic strategies are compared against.
    """

    def __init__(
        self,
        network: HierarchicalBusNetwork,
        placement: Placement,
        account: Optional[OnlineCostAccount] = None,
    ) -> None:
        super().__init__(network, placement.n_objects, account=account)
        placement.validate_for(network, require_leaf_only=True)
        self._placement = placement
        # nearest-copy table per object, resolved for all processors in one
        # batched distance evaluation on first touch
        self._nearest_cache: Dict[int, np.ndarray] = {}
        # per-object Steiner edge ids of the holder sets (write broadcasts)
        self._steiner_ids_cache: Dict[int, np.ndarray] = {}
        self._procs = np.asarray(network.processors, dtype=np.int64)

    def holders(self, obj: int) -> Set[int]:
        return set(self._placement.holders(obj))

    def _repair_strategy_state(self, outcome) -> None:
        if not outcome.structural:
            return
        self._nearest_cache.clear()  # tables are sized to the old node count
        self._steiner_ids_cache.clear()  # edge ids renumber under mutations
        self._procs = np.asarray(outcome.network.processors, dtype=np.int64)
        if outcome.removed_node is None:
            return  # attach/split keep node ids stable
        nm = outcome.node_map
        home = None  # one detach has one re-home target; resolve it lazily once
        new_holders = []
        for obj in range(self._placement.n_objects):
            mapped = sorted(int(nm[h]) for h in self._placement.holders(obj) if nm[h] >= 0)
            if not mapped:
                if home is None:
                    home = _rehome_target(outcome)
                mapped = [home]
            new_holders.append(mapped)
        self._placement = Placement(new_holders)

    def _nearest_table(self, obj: int) -> np.ndarray:
        """Per-node nearest-copy table of one object (cached, batch-built)."""
        table = self._nearest_cache.get(obj)
        if table is None:
            table = np.full(self.network.n_nodes, -1, dtype=np.int64)
            table[self._procs] = self.rooted.path_matrix().nearest_in_set(
                self._procs, self._placement.holders(obj)
            )
            self._nearest_cache[obj] = table
        return table

    def _nearest_tables_bulk(self, objs) -> None:
        """Build the nearest-copy tables of many objects in one LCA pass.

        Thin wrapper over the shared :func:`_bulk_nearest_tables` builder:
        one blocked distance evaluation against the union of all missing
        objects' holder sets replaces one
        :meth:`PathMatrix.nearest_in_set` call per object.  Holder columns
        stay sorted ascending, so ties resolve to the smallest id exactly
        like ``nearest_in_set``.
        """
        requests = [
            (self._nearest_cache, int(obj),
             tuple(sorted({int(h) for h in self._placement.holders(int(obj))})))
            for obj in objs
            if int(obj) not in self._nearest_cache
        ]
        _bulk_nearest_tables(
            self.rooted.path_matrix(), self._procs, self.network.n_nodes, requests
        )

    def _nearest(self, proc: int, obj: int) -> int:
        return int(self._nearest_table(obj)[proc])

    def _steiner_edge_ids_for(self, obj: int, entry_source) -> np.ndarray:
        """Edge ids of one object's write-broadcast Steiner tree (cached).

        ``entry_source`` is any substrate exposing ``_steiner_entry`` (the
        manager's own state, or the shared stacked state in fleet mode);
        the ids only depend on the topology and the holder set, so the
        per-object cache survives substrate swaps and bandwidth mutations
        and is cleared with the other holder-derived caches on structural
        repair.
        """
        edge_ids = self._steiner_ids_cache.get(obj)
        if edge_ids is None:
            terminals = self._placement.holders(obj)
            if len(terminals) < 2:
                edge_ids = np.empty(0, dtype=np.int64)
            else:
                key = frozenset(int(t) for t in terminals)
                edge_ids = entry_source._steiner_entry(key)[0]
            self._steiner_ids_cache[obj] = edge_ids
        return edge_ids

    def serve(self, event: RequestEvent) -> None:
        target = self._nearest(event.processor, event.obj)
        self.account.charge_path(self.rooted, event.processor, target)
        if event.is_write:
            self.account.charge_steiner(
                self.rooted, sorted(self._placement.holders(event.obj))
            )

    @staticmethod
    def _aggregate_chunk(sequence: RequestSequence, start: int, stop: int):
        """Shared chunk aggregation of the sequential and fleet paths.

        Collapses ``sequence[start:stop]`` into unique ``(processor,
        object)`` request pairs with multiplicities, the pair rows grouped
        per object, and the written objects with write counts.  Both
        :meth:`serve_chunk` and :meth:`serve_chunk_fleet` feed off this one
        function, so the two paths cannot drift apart in how they
        aggregate -- the bit-for-bit fleet parity contract depends on
        that.  Returns ``None`` for an empty chunk.

        The unique-pair pass runs through
        :func:`repro.core.kernels.aggregate_pairs` (one int64-key sort
        instead of numpy's void-dtype column comparison); the historical
        implementation is retained verbatim as
        :meth:`_reference_aggregate_chunk` and the differential tests pin
        the two to identical output.
        """
        procs, objs, writes = sequence.as_arrays()
        procs = procs[start:stop]
        objs = objs[start:stop]
        writes = writes[start:stop]
        if procs.size == 0:
            return None
        uprocs, uobjs, counts = kernels.aggregate_pairs(procs, objs)
        # group the pair rows per object in one sort pass (pairs sort by
        # processor first, so the object row is not globally sorted); the
        # stable order keeps each group's row indices ascending
        order = np.argsort(uobjs, kind="stable")
        uniq_objs, starts = np.unique(uobjs[order], return_index=True)
        bounds = np.append(starts[1:], order.size)
        by_object = [
            (int(obj), order[lo:hi])
            for obj, lo, hi in zip(uniq_objs, starts, bounds)
        ]
        written, write_counts = np.unique(objs[writes], return_counts=True)
        return uprocs, counts, by_object, written, write_counts

    @staticmethod
    def _reference_aggregate_chunk(sequence: RequestSequence, start: int, stop: int):
        """Pre-kernel chunk aggregation, retained verbatim as the reference.

        Uses ``np.unique(..., axis=1)`` over the stacked pair rows; the
        differential tests assert that :meth:`_aggregate_chunk` produces
        identical pairs, counts, per-object groups and write counts.
        """
        procs, objs, writes = sequence.as_arrays()
        procs = procs[start:stop]
        objs = objs[start:stop]
        writes = writes[start:stop]
        if procs.size == 0:
            return None
        pairs, counts = np.unique(
            np.stack([procs, objs]), axis=1, return_counts=True
        )
        order = np.argsort(pairs[1], kind="stable")
        uniq_objs, starts = np.unique(pairs[1][order], return_index=True)
        bounds = np.append(starts[1:], order.size)
        by_object = [
            (int(obj), order[lo:hi])
            for obj, lo, hi in zip(uniq_objs, starts, bounds)
        ]
        written, write_counts = np.unique(objs[writes], return_counts=True)
        return pairs[0], counts, by_object, written, write_counts

    def serve_chunk(self, sequence: RequestSequence, start: int, stop: int) -> None:
        """Vectorized batch replay of one chunk (exact event-loop parity).

        The placement is fixed, so a chunk of events collapses into
        aggregated request pairs (one column through the path-incidence
        operator) plus one Steiner charge per written object.  All charged
        quantities are integer-valued, so the resulting loads and cost units
        are bit-for-bit equal to serving the same events one by one.
        """
        aggregated = self._aggregate_chunk(sequence, start, stop)
        if aggregated is None:
            return
        u, counts, by_object, written, write_counts = aggregated
        # resolve each unique pair's reference copy via the per-object
        # tables (built in one bulk LCA pass, gathered per object)
        self._nearest_tables_bulk([obj for obj, _ in by_object])
        targets = np.empty(u.size, dtype=np.int64)
        for obj, rows in by_object:
            targets[rows] = self._nearest_table(obj)[u[rows]]
        self.account.charge_pairs(u, targets, counts)
        for obj, count in zip(written, write_counts):
            self.account.charge_steiner(
                self.rooted,
                sorted(self._placement.holders(int(obj))),
                amount=int(count),
            )

    def run_batch(self, sequence: RequestSequence) -> OnlineCostAccount:
        """Replay the whole sequence as one batch (see :meth:`serve_chunk`)."""
        return self.run(sequence, chunk_size=max(1, len(sequence)))

    @classmethod
    def serve_chunk_fleet(
        cls, managers: Sequence["StaticPlacementManager"], sequence, start, stop
    ) -> None:
        """Serve one chunk for a whole fleet of static managers at once.

        The fleet-replay group hook (see
        :func:`~repro.sim.protocol.fleet_groups`): all managers replay the
        same events, so the chunk aggregation (unique ``(processor,
        object)`` pairs and write counts) is computed **once**, nearest-copy
        targets are gathered per lane from the cached per-object tables,
        the LCA/distance pass runs batched over all lanes and the resulting
        per-lane edge-load columns go into the shared
        :class:`~repro.core.loadstate.StackedLoadState` as one
        lane-broadcast scatter.  Per-lane write broadcasts reuse the shared
        Steiner scatter-entry cache.

        All charged quantities are integer request counts, so every lane's
        loads and cost units are bit-for-bit those of calling the member's
        :meth:`serve_chunk` on its own.  Falls back to exactly that when
        the managers' accounts do not sit on lanes of one stacked state.
        """
        from repro.core.loadstate import LaneState

        states = [getattr(m.account, "state", None) for m in managers]
        stacked = (
            all(isinstance(s, LaneState) for s in states)
            and len({id(s.parent) for s in states}) == 1
        )
        if not stacked:
            for manager in managers:
                manager.serve_chunk(sequence, start, stop)
            return

        aggregated = cls._aggregate_chunk(sequence, start, stop)
        if aggregated is None:
            return
        u, counts, by_object, written, write_counts = aggregated
        targets = np.empty((u.size, len(managers)), dtype=np.int64)
        for k, manager in enumerate(managers):
            manager._nearest_tables_bulk([obj for obj, _ in by_object])
            for obj, rows in by_object:
                targets[rows, k] = manager._nearest_table(obj)[u[rows]]

        parent = states[0].parent
        lanes = [s.lane_index for s in states]
        w = counts.astype(np.float64)
        # one batched LCA pass feeds both the distance booking and the
        # pair scatters (same depth arithmetic as pm.distances)
        pm = parent.pm
        anc = pm.lca(u[:, None], targets)
        depth = pm.depths
        dists = depth[u][:, None] + depth[targets] - 2 * depth[anc]
        columns = pm.pair_edge_loads_lanes(u, targets, w, anc)
        parent.apply_edge_loads_lanes(lanes, columns)
        for k, manager in enumerate(managers):
            manager.account._book(int(round(float(dists[:, k] @ w))), False)

        # write broadcasts: one per-lane Steiner column through the shared
        # entry cache, applied as a second lane-broadcast scatter.  All
        # charges in a span are non-negative, so the end-of-span congestion
        # (the only observation point) equals the per-charge running max of
        # the sequential path bit-for-bit.
        if written.size:
            steiner_cols = np.zeros((parent.n_edges, len(managers)))
            for k, manager in enumerate(managers):
                column = steiner_cols[:, k]
                booked = 0
                for obj, count in zip(written, write_counts):
                    edge_ids = manager._steiner_edge_ids_for(int(obj), parent)
                    if edge_ids.size:
                        column[edge_ids] += count
                        booked += int(count) * int(edge_ids.size)
                manager.account._book(booked, False)
            parent.apply_edge_loads_lanes(lanes, steiner_cols)


class EdgeCounterManager(OnlineStrategy):
    """Adaptive replication / invalidation driven by per-processor counters.

    The counter state lives in the array-backed
    :class:`~repro.dynamic.adaptive_state.AdaptiveState` substrate (flat
    holder/credit/unread-write arrays keyed by ``(object, processor)``),
    which is what enables the vectorized :meth:`serve_chunk` and the
    :meth:`serve_chunk_fleet` group hook: within a chunk, counters for a
    pair only advance on requests to exactly that pair, so the next
    threshold crossing per object is computable up front and every maximal
    static run between adaptation events collapses into one batched pair
    scatter -- bit-for-bit equal to the scalar event loop.

    Parameters
    ----------
    network:
        The hierarchical bus network.
    n_objects:
        Number of shared objects.
    object_size:
        Cost (in load units per edge) of copying an object across an edge;
        also the number of remote reads a processor must issue before it
        earns a local replica (rent-or-buy threshold).
    invalidation_patience:
        Number of consecutive writes an unused replica survives before it is
        dropped.
    initial_placement:
        Optional starting placement; defaults to the first requester
        ("first touch").
    """

    def __init__(
        self,
        network: HierarchicalBusNetwork,
        n_objects: int,
        object_size: int = 4,
        invalidation_patience: int = 2,
        initial_placement: Optional[Placement] = None,
        account: Optional[OnlineCostAccount] = None,
    ) -> None:
        super().__init__(network, n_objects, account=account)
        if object_size < 1:
            raise WorkloadError("object_size must be at least 1")
        if invalidation_patience < 1:
            raise WorkloadError("invalidation_patience must be at least 1")
        self.object_size = int(object_size)
        self.invalidation_patience = int(invalidation_patience)
        # adaptation thresholds: the base strategy uses the copy cost for
        # both (rent-or-buy -- buy once you have paid the copy's worth in
        # remote requests).  Subclasses tune them independently; the
        # charged copy amount is always ``object_size``.
        self._replicate_threshold = self.object_size
        self._migrate_threshold = self.object_size
        self._adaptive = AdaptiveState(self.n_objects, network.n_nodes)
        # holder-derived caches, invalidated per object on any holder
        # transition and wholesale on structural repair
        self._holders_cache: Dict[int, List[int]] = {}
        self._nearest_cache: Dict[int, np.ndarray] = {}
        # nearest tables keyed by holder-set *content*: thrash cycles
        # revisit the same holder sets, so tables survive transitions and
        # are shared across lanes with agreeing holder sets
        self._tables_by_holders: Dict[Tuple[int, ...], np.ndarray] = {}
        self._procs = np.asarray(network.processors, dtype=np.int64)
        if initial_placement is not None:
            initial_placement.validate_for(network, require_leaf_only=True)
            if initial_placement.n_objects != n_objects:
                raise PlacementError("initial placement has the wrong object count")
            mask = self._adaptive.holder_mask
            for obj in range(n_objects):
                for holder in initial_placement.holders(obj):
                    mask[obj, int(holder)] = True
            self._adaptive.n_holders = mask.sum(axis=1, dtype=np.int64)

    # ------------------------------------------------------------------ #
    def holders(self, obj: int) -> Set[int]:
        return self._adaptive.holders_set(obj)

    def memory_bytes(self) -> int:
        """Bytes held by the strategy state: the flat counter substrate
        plus the nearest-table caches (per object and per holder set; the
        content-keyed cache is capped at ``_MAX_HOLDER_TABLES`` entries).

        Bounded by the universe sizes alone -- never growing with the
        stream length; the soak-shaped tests pin that.
        """
        arrays = {id(t): t for t in self._nearest_cache.values()}
        arrays.update((id(t), t) for t in self._tables_by_holders.values())
        return self._adaptive.memory_bytes() + sum(
            a.nbytes for a in arrays.values()
        )

    def _holders_changed(self, obj: int) -> None:
        """Invalidate the holder-derived caches of one object."""
        self._holders_cache.pop(obj, None)
        self._nearest_cache.pop(obj, None)

    def _holders_of(self, obj: int) -> List[int]:
        """Current holder ids of one object, ascending (= sorted), cached."""
        holders = self._holders_cache.get(obj)
        if holders is None:
            holders = self._adaptive.holders_list(obj)
            self._holders_cache[obj] = holders
        return holders

    def _nearest_for(self, proc: int, obj: int) -> int:
        """Nearest copy of ``obj`` from ``proc`` (ties to the smallest id).

        Uses the cached per-object table when present; otherwise resolves
        directly (a sole holder needs no lookup at all).  Both resolutions
        tie-break identically, so the scalar and batched paths agree.
        """
        table = self._nearest_cache.get(obj)
        if table is None:
            holders = self._holders_of(obj)
            if len(holders) == 1:
                return holders[0]
            table = self._tables_by_holders.get(tuple(holders))
            if table is None:
                return int(self.rooted.nearest_in_set(proc, holders))
            self._nearest_cache[obj] = table
        return int(table[proc])

    def _repair_strategy_state(self, outcome) -> None:
        if not outcome.structural:
            return  # bandwidth mutations keep node ids and holders intact
        self._holders_cache.clear()
        self._nearest_cache.clear()  # tables are sized to the old node count
        self._tables_by_holders.clear()
        self._procs = np.asarray(outcome.network.processors, dtype=np.int64)
        if outcome.removed_node is None:
            # attach/split keep existing node ids stable; new ids append,
            # so the counter arrays widen with zero columns
            self._adaptive.grow(outcome.network.n_nodes)
            return
        orphans = self._adaptive.remap_detach(
            outcome.node_map, outcome.network.n_nodes
        )
        if orphans.size:
            home = _rehome_target(outcome)
            for obj in orphans.tolist():
                self._adaptive.rehome(obj, home)

    # ------------------------------------------------------------------ #
    def serve(self, event: RequestEvent) -> None:
        adaptive = self._adaptive
        obj = event.obj
        proc = event.processor
        if not adaptive.n_holders[obj]:
            # first touch: the object materialises on the first requester
            adaptive.materialise(obj, proc)
            self._holders_changed(obj)
        nearest = self._nearest_for(proc, obj)
        mask = adaptive.holder_mask[obj]

        if event.is_read:
            self.account.charge_path(self.rooted, proc, nearest)
            if not mask[proc]:
                credit = int(adaptive.read_credit[obj, proc]) + 1
                if credit >= self._replicate_threshold:
                    # replicate: ship the object from the nearest copy
                    self.account.charge_path(
                        self.rooted, nearest, proc, amount=self.object_size,
                        management=True,
                    )
                    adaptive.add_holder(obj, proc)
                    self._holders_changed(obj)
                else:
                    adaptive.read_credit[obj, proc] = credit
            else:
                adaptive.unread_writes[obj, proc] = 0
            return

        # write request: update the reference copy and broadcast to replicas
        holders = self._holders_of(obj)
        self.account.charge_path(self.rooted, proc, nearest)
        self.account.charge_steiner(self.rooted, holders)
        # age replicas; drop the ones nobody read for a while (no traffic)
        writer_holder = proc if mask[proc] else nearest
        n_before = len(holders)
        unread = adaptive.unread_writes[obj]
        stale: List[int] = []
        for holder in holders:
            if holder == writer_holder:
                unread[holder] = 0
                continue
            count = int(unread[holder]) + 1
            unread[holder] = count
            if count >= self.invalidation_patience and n_before > 1:
                stale.append(holder)
        for holder in stale:
            if adaptive.n_holders[obj] > 1:
                adaptive.drop_holder(obj, holder)
        if stale:
            self._holders_changed(obj)
        # migration: a lonely copy follows a persistent remote writer
        if adaptive.n_holders[obj] == 1 and not adaptive.holder_mask[obj, proc]:
            credit = int(adaptive.read_credit[obj, proc]) + 1
            if credit >= self._migrate_threshold:
                old = self._holders_of(obj)[0]
                self.account.charge_path(
                    self.rooted, old, proc, amount=self.object_size, management=True
                )
                adaptive.set_sole_holder(obj, proc)
                self._holders_changed(obj)
            else:
                adaptive.read_credit[obj, proc] = credit

    # ------------------------------------------------------------------ #
    # vectorized chunk replay: per-object scans with deferred batch charges
    # ------------------------------------------------------------------ #
    # Content-keyed nearest tables are regenerated cheaply in bulk, so the
    # cache is simply dropped when too many distinct holder sets accumulate
    # (keeps memory_bytes() bounded by the universe sizes, never the stream).
    _MAX_HOLDER_TABLES = 1024

    def _replay_positions(self, obj: int, pos: List[int], procs: List[int],
                          writes: List[bool], runs: List[tuple],
                          mgmt_direct: List[tuple],
                          mgmt_rep: List[tuple]) -> None:
        """Phase 1 of the batched replay: advance one object\'s counters
        over its chunk positions, applying every adaptation decision.

        Adaptation is a pure function of the per-object counters -- never
        of the accumulated loads -- so one object\'s whole decision cascade
        can run ahead of any charging.  The scan appends one record per
        maximal static run to ``runs`` (``(obj, holders, lo, hi, writes)``
        with ``holders`` the ascending holder tuple in force over
        ``pos[lo:hi]``, the terminal adaptation event included: its own
        service traffic is charged against the pre-transition holders,
        exactly as the scalar :meth:`serve` charges before it adapts) and
        one record per copy movement to ``mgmt_direct`` (migrations --
        source holder known) or ``mgmt_rep`` (replications -- source is
        the nearest pre-crossing copy, resolved against the bulk-built
        tables in phase 2).  Counters are mirrored into plain lists for
        the scan (NumPy scalar indexing would dominate an all-Python loop)
        and written back once.
        """
        adaptive = self._adaptive
        if adaptive.n_holders[obj]:
            holders = list(self._holders_of(obj))
            changed = False
        else:
            # first touch: the object materialises on its first requester;
            # that event never adapts (sole holder, zero-length charges)
            holders = [procs[pos[0]]]
            changed = True
        hset = set(holders)
        credit = adaptive.read_credit[obj].tolist()
        unread = adaptive.unread_writes[obj].tolist()
        replicate_at = self._replicate_threshold
        migrate_at = self._migrate_threshold
        patience = self.invalidation_patience
        nearest_in_set = self.rooted.nearest_in_set
        memo: Dict[int, int] = {}  # non-holder writer -> nearest, per run
        run_start = 0
        wcount = 0
        for t, i in enumerate(pos):
            p = procs[i]
            if writes[i]:
                wcount += 1
                if p in hset:
                    wh = p
                elif len(holders) == 1:
                    wh = holders[0]
                else:
                    wh = memo.get(p)
                    if wh is None:
                        wh = int(nearest_in_set(p, holders))
                        memo[p] = wh
                if len(holders) > 1:
                    # age replicas exactly like the scalar path: the stale
                    # test reads pre-update counters, then every non-writer
                    # replica ages (drops re-zero the stale ones)
                    stale = [h for h in holders
                             if h != wh and unread[h] + 1 >= patience]
                    for h in holders:
                        unread[h] = 0 if h == wh else unread[h] + 1
                    if stale:
                        runs.append((obj, tuple(holders), run_start,
                                     t + 1, wcount))
                        for h in stale:
                            holders.remove(h)
                            hset.discard(h)
                            unread[h] = 0
                        if len(holders) == 1 and p not in hset:
                            c = credit[p] + 1
                            if c >= migrate_at:
                                old = holders[0]
                                mgmt_direct.append((old, p))
                                unread[old] = 0
                                holders = [p]
                                hset = {p}
                                unread[p] = 0
                                credit[p] = 0
                            else:
                                credit[p] = c
                        run_start = t + 1
                        wcount = 0
                        memo.clear()
                        changed = True
                else:
                    unread[wh] = 0
                    if p not in hset:
                        c = credit[p] + 1
                        if c >= migrate_at:
                            # the lonely copy follows the persistent writer
                            runs.append((obj, (wh,), run_start,
                                         t + 1, wcount))
                            mgmt_direct.append((wh, p))
                            holders = [p]
                            hset = {p}
                            unread[p] = 0
                            credit[p] = 0
                            run_start = t + 1
                            wcount = 0
                            memo.clear()
                            changed = True
                        else:
                            credit[p] = c
            else:
                if p in hset:
                    unread[p] = 0
                else:
                    c = credit[p] + 1
                    if c >= replicate_at:
                        pre = tuple(holders)
                        runs.append((obj, pre, run_start, t + 1, wcount))
                        mgmt_rep.append((pre, p))
                        insort(holders, p)
                        hset.add(p)
                        unread[p] = 0
                        credit[p] = 0
                        run_start = t + 1
                        wcount = 0
                        memo.clear()
                        changed = True
                    else:
                        credit[p] = c
        if len(pos) > run_start:
            runs.append((obj, tuple(holders), run_start, len(pos), wcount))
        adaptive.read_credit[obj] = credit
        adaptive.unread_writes[obj] = unread
        if changed:
            row = adaptive.holder_mask[obj]
            row[:] = False
            row[holders] = True
            adaptive.n_holders[obj] = len(holders)
            self._holders_changed(obj)
            self._holders_cache[obj] = holders

    def _table_requests_for_runs(self, runs: List[tuple]) -> List[tuple]:
        """Bulk-build requests for the multi-holder run holder sets that
        have no content-keyed nearest table yet (replication sources in
        ``mgmt_rep`` always share the holder set of their crossing run, so
        the run sets cover every phase-2 lookup)."""
        tables = self._tables_by_holders
        seen = set()
        requests = []
        for _obj, holders, _lo, _hi, _wc in runs:
            if len(holders) > 1 and holders not in tables \
                    and holders not in seen:
                seen.add(holders)
                requests.append((tables, holders, holders))
        return requests

    def _apply_deferred(self, chunk_procs: np.ndarray, pos_arrays,
                        runs: List[tuple], mgmt_direct: List[tuple],
                        mgmt_rep: List[tuple]) -> None:
        """Phase 2 of the batched replay: resolve targets and charge.

        Every charge of a chunk commutes -- integer amounts into float64
        accumulators are exact in any order, and congestion is a monotone
        running max observed only at chunk boundaries, the same argument
        the static chunk path rests on -- so the runs recorded by phase 1
        collapse into three scatters: one aggregated service-pair charge
        (requests against the nearest copy of the run\'s holder set), one
        accumulated write-broadcast Steiner column, and one management
        charge covering all replication/migration copy movements.
        """
        tables = self._tables_by_holders
        state = self.account.state
        entry_source = getattr(state, "parent", state)
        n_nodes = np.int64(self.network.n_nodes)
        u_parts: List[np.ndarray] = []
        v_parts: List[np.ndarray] = []
        steiner_col = None
        booked = 0
        for obj, holders, lo, hi, wc in runs:
            ep = chunk_procs[pos_arrays[obj][lo:hi]]
            u_parts.append(ep)
            if len(holders) == 1:
                v_parts.append(np.full(ep.size, holders[0], dtype=np.int64))
            else:
                v_parts.append(tables[holders][ep])
                if wc:
                    ids = entry_source._steiner_entry(frozenset(holders))[0]
                    if ids.size:
                        if steiner_col is None:
                            steiner_col = np.zeros(entry_source.n_edges)
                        steiner_col[ids] += wc
                        booked += wc * int(ids.size)
        if u_parts:
            u = np.concatenate(u_parts)
            v = np.concatenate(v_parts)
            # aggregate identical (requester, target) pairs before the
            # path-incidence scatter, like the static chunk path does
            keys, counts = np.unique(u * n_nodes + v, return_counts=True)
            self.account.charge_pairs(keys // n_nodes, keys % n_nodes, counts)
        if steiner_col is not None:
            state.apply_edge_loads(steiner_col)
            self.account._book(booked, False)
        if mgmt_direct or mgmt_rep:
            srcs = [src for src, _p in mgmt_direct]
            dsts = [p for _src, p in mgmt_direct]
            for holders, p in mgmt_rep:
                srcs.append(holders[0] if len(holders) == 1
                            else int(tables[holders][p]))
                dsts.append(p)
            self.account.charge_pairs(
                np.asarray(srcs, dtype=np.int64),
                np.asarray(dsts, dtype=np.int64),
                np.full(len(srcs), self.object_size, dtype=np.int64),
                management=True,
            )

    def _decode_chunk(self, sequence: RequestSequence, start: int, stop: int):
        """Chunk decode shared by the sequential and fleet paths: plain
        event-column lists for the Python scan plus per-object position
        lists (insertion order preserves the event order per object)."""
        procs_all, objs_all, writes_all = sequence.as_arrays()
        chunk_procs = np.asarray(procs_all[start:stop], dtype=np.int64)
        procs = chunk_procs.tolist()
        writes = writes_all[start:stop].tolist()
        positions: Dict[int, List[int]] = {}
        for i, obj in enumerate(objs_all[start:stop].tolist()):
            positions.setdefault(obj, []).append(i)
        return chunk_procs, procs, writes, positions

    def serve_chunk(self, sequence: RequestSequence, start: int, stop: int) -> None:
        """Vectorized batch replay of one chunk (exact event-loop parity).

        Within a chunk, the counters of an ``(object, processor)`` pair
        only advance on requests to exactly that pair and an object\'s
        holder set only changes at its own adaptation events -- so each
        object\'s replicate/invalidate/migrate cascade is computed by one
        pure-Python counter scan (:meth:`_replay_positions`), decoupled
        from the charge frontier.  The recorded maximal static runs are
        then charged in bulk (:meth:`_apply_deferred`): one blocked
        distance pass builds every missing nearest table, one aggregated
        pair scatter carries the service traffic, one Steiner column the
        write broadcasts, and one management scatter the copy movements.
        Integer charges commute exactly, so loads, cost units, holder
        sets and end-of-chunk congestion are bit-for-bit those of
        event-by-event serving; the differential suites pin this under
        churn and across chunk grids.
        """
        n = stop - start
        if n <= 0:
            return
        if n == 1 or getattr(self.account, "state", None) is None:
            # Single events and reference accounts (no LoadState to
            # scatter into) go through the scalar path.
            for event in sequence.events[start:stop]:
                self.serve(event)
            return
        chunk_procs, procs, writes, positions = self._decode_chunk(
            sequence, start, stop
        )
        runs: List[tuple] = []
        mgmt_direct: List[tuple] = []
        mgmt_rep: List[tuple] = []
        for obj, pos in positions.items():
            self._replay_positions(obj, pos, procs, writes, runs,
                                   mgmt_direct, mgmt_rep)
        if len(self._tables_by_holders) > self._MAX_HOLDER_TABLES:
            self._tables_by_holders.clear()
        _bulk_nearest_tables(
            self.rooted.path_matrix(), self._procs, self.network.n_nodes,
            self._table_requests_for_runs(runs),
        )
        pos_arrays = {
            obj: np.asarray(pos, dtype=np.int64)
            for obj, pos in positions.items()
        }
        self._apply_deferred(chunk_procs, pos_arrays, runs,
                             mgmt_direct, mgmt_rep)

    # ------------------------------------------------------------------ #
    # fleet group hook: K adaptive lanes share decode and table builds
    # ------------------------------------------------------------------ #
    @classmethod
    def serve_chunk_fleet(
        cls, managers: Sequence["EdgeCounterManager"], sequence, start, stop
    ) -> None:
        """Serve one chunk for a whole fleet of adaptive managers at once.

        K lanes (different ``object_size`` / ``invalidation_patience`` /
        threshold tunings) share one chunk decode, one per-object position
        index, and one blocked distance pass for every nearest table any
        lane is missing -- lanes whose holder sets agree share the very
        table object, lanes that diverge get their own.  Each lane then
        runs its own counter scan and applies its own deferred charges
        (through its lane of the shared
        :class:`~repro.core.loadstate.StackedLoadState` when stacked, with
        the Steiner scatter entries shared substrate-wide), because the
        run grids of differently-tuned lanes genuinely diverge.  Every
        lane\'s loads, cost units and holder sets are bit-for-bit those of
        K sequential scalar runs (ARCHITECTURE.md invariants 6/7);
        ``test_fleet_parity.py`` pins it.
        """
        if len({id(m.rooted) for m in managers}) != 1 or any(
            getattr(m.account, "state", None) is None for m in managers
        ):
            for manager in managers:
                manager.serve_chunk(sequence, start, stop)
            return
        n = stop - start
        if n <= 0:
            return
        if n == 1:
            event = sequence.events[start]
            for manager in managers:
                manager.serve(event)
            return
        lead = managers[0]
        chunk_procs, procs, writes, positions = lead._decode_chunk(
            sequence, start, stop
        )
        per_lane: List[tuple] = []
        requests: List[tuple] = []
        for manager in managers:
            runs: List[tuple] = []
            mgmt_direct: List[tuple] = []
            mgmt_rep: List[tuple] = []
            for obj, pos in positions.items():
                manager._replay_positions(obj, pos, procs, writes, runs,
                                          mgmt_direct, mgmt_rep)
            per_lane.append((runs, mgmt_direct, mgmt_rep))
            if len(manager._tables_by_holders) > cls._MAX_HOLDER_TABLES:
                manager._tables_by_holders.clear()
            requests.extend(manager._table_requests_for_runs(runs))
        _bulk_nearest_tables(
            lead.rooted.path_matrix(), lead._procs, lead.network.n_nodes,
            requests,
        )
        pos_arrays = {
            obj: np.asarray(pos, dtype=np.int64)
            for obj, pos in positions.items()
        }
        for manager, (runs, mgmt_direct, mgmt_rep) in zip(managers, per_lane):
            manager._apply_deferred(chunk_procs, pos_arrays, runs,
                                    mgmt_direct, mgmt_rep)


class HysteresisCounterManager(EdgeCounterManager):
    """Edge-counter adaptation with migration hysteresis.

    Replicas are earned at the base rent-or-buy threshold, but a lonely
    copy only follows a persistent remote writer after
    ``migration_factor`` times as much accumulated credit.  Migrating the
    only copy is the decision that hurts most when it flaps (every
    subsequent reader pays the relocation), so it is held to a stricter
    standard than replication -- classic hysteresis damping for
    alternating-writer workloads.  The copy still costs ``object_size``
    per edge when it does move.
    """

    def __init__(
        self,
        network: HierarchicalBusNetwork,
        n_objects: int,
        object_size: int = 4,
        invalidation_patience: int = 2,
        migration_factor: int = 2,
        initial_placement: Optional[Placement] = None,
        account: Optional[OnlineCostAccount] = None,
    ) -> None:
        super().__init__(
            network, n_objects, object_size=object_size,
            invalidation_patience=invalidation_patience,
            initial_placement=initial_placement, account=account,
        )
        if migration_factor < 1:
            raise WorkloadError("migration_factor must be at least 1")
        self.migration_factor = int(migration_factor)
        self._migrate_threshold = self.object_size * self.migration_factor


class RentOrBuyManager(EdgeCounterManager):
    """Rent-or-buy variant with thresholds decoupled from the copy cost.

    The base strategy replicates/migrates once a processor has paid the
    copy cost in remote requests (both thresholds equal ``object_size``).
    This variant keeps the *charged* copy amount at ``object_size`` but
    exposes the decision thresholds as independent tuning knobs -- the
    classic rent-or-buy trade-off: lower thresholds buy (replicate or
    migrate) earlier and pay more management traffic, higher thresholds
    rent longer and pay more service traffic.  The tournament layer sweeps
    these against the base strategy.
    """

    def __init__(
        self,
        network: HierarchicalBusNetwork,
        n_objects: int,
        object_size: int = 4,
        invalidation_patience: int = 2,
        replicate_threshold: Optional[int] = None,
        migrate_threshold: Optional[int] = None,
        initial_placement: Optional[Placement] = None,
        account: Optional[OnlineCostAccount] = None,
    ) -> None:
        super().__init__(
            network, n_objects, object_size=object_size,
            invalidation_patience=invalidation_patience,
            initial_placement=initial_placement, account=account,
        )
        replicate_at = (
            self.object_size if replicate_threshold is None
            else int(replicate_threshold)
        )
        migrate_at = (
            replicate_at if migrate_threshold is None else int(migrate_threshold)
        )
        if replicate_at < 1 or migrate_at < 1:
            raise WorkloadError("adaptation thresholds must be at least 1")
        self.replicate_threshold = replicate_at
        self.migrate_threshold = migrate_at
        self._replicate_threshold = replicate_at
        self._migrate_threshold = migrate_at
