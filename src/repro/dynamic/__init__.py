"""Dynamic (online) data management substrate.

Extension beyond the paper's static setting, following the dynamic model its
related-work section discusses: request sequences, adaptive online
strategies, and an evaluation harness measuring empirical competitive ratios
against the hindsight-static extended-nibble placement.
"""

from repro.dynamic.sequence import (
    RequestEvent,
    RequestSequence,
    phase_change_sequence,
    sequence_from_pattern,
)
from repro.dynamic.online import (
    EdgeCounterManager,
    OnlineCostAccount,
    OnlineStrategy,
    StaticPlacementManager,
)
from repro.dynamic.churn import ChurnReplayResult, replay_with_churn
from repro.dynamic.evaluate import (
    OnlineRunRecord,
    congestion_trajectory,
    empirical_competitive_ratio,
    evaluate_strategies,
    hindsight_static_manager,
)

__all__ = [
    "RequestEvent",
    "RequestSequence",
    "sequence_from_pattern",
    "phase_change_sequence",
    "OnlineStrategy",
    "OnlineCostAccount",
    "StaticPlacementManager",
    "EdgeCounterManager",
    "ChurnReplayResult",
    "replay_with_churn",
    "OnlineRunRecord",
    "evaluate_strategies",
    "empirical_competitive_ratio",
    "hindsight_static_manager",
    "congestion_trajectory",
]
