"""Parallel experiment orchestration.

The experiment runners in :mod:`repro.analysis.experiments` (E1 -- E11) are
independent of each other, so a full reproduction sweep parallelises
trivially across worker processes.  :func:`run_experiments` fans the
selected runners out over a persistent process pool
(:func:`repro.parallel.persistent_pool`, reused across sweeps in one
process) with deterministic per-experiment seeds and writes one JSON artifact per
experiment (plus a ``summary.json``), so CI jobs and the ``repro
run-experiments`` CLI subcommand share one machine-readable result format.

Seeding: every experiment receives its own child of
``numpy.random.SeedSequence(base_seed)``, so results are reproducible for a
fixed ``(base_seed, experiment id)`` pair no matter how many workers run or
in which order they finish.
"""

from __future__ import annotations

import inspect
import json
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis import experiments as _experiments
from repro.parallel import run_jobs

__all__ = [
    "EXPERIMENT_IDS",
    "EXPERIMENT_RUNNERS",
    "ExperimentOutcome",
    "run_experiments",
    "write_artifacts",
]


EXPERIMENT_RUNNERS: Dict[str, Callable] = {
    "E1": _experiments.experiment_sci_equivalence,
    "E2": _experiments.experiment_hardness_reduction,
    "E3": _experiments.experiment_nibble_optimality,
    "E4": _experiments.experiment_deletion_invariants,
    "E5": _experiments.experiment_approximation_ratio,
    "E6": _experiments.experiment_runtime_scaling,
    "E7": _experiments.experiment_distributed_rounds,
    "E8": _experiments.experiment_baseline_comparison,
    "E9": _experiments.experiment_online_streaming,
    "E10": _experiments.experiment_topology_churn,
    "E11": _experiments.experiment_scenario_registry,
}

# Natural (numeric) order: E10 and E11 sort after E9, so the entropy
# indices of E1..E9 -- and therefore their per-experiment seeds -- are
# stable across the registry growing.
EXPERIMENT_IDS: Tuple[str, ...] = tuple(
    sorted(EXPERIMENT_RUNNERS, key=lambda exp_id: int(exp_id[1:]))
)


@dataclass(frozen=True)
class ExperimentOutcome:
    """Result envelope of one experiment run.

    ``error`` is the formatted exception when the runner failed; ``records``
    is then empty.  ``artifact`` is the JSON file path when artifacts were
    written.
    """

    experiment: str
    seed: int
    small: bool
    elapsed_seconds: float
    large: bool = False
    records: List[Dict[str, object]] = field(default_factory=list)
    error: Optional[str] = None
    artifact: Optional[str] = None

    @property
    def ok(self) -> bool:
        """True iff the experiment ran to completion."""
        return self.error is None

    def summary_row(self) -> Dict[str, object]:
        """Flat record for table output."""
        return {
            "experiment": self.experiment,
            "seed": self.seed,
            "rows": len(self.records),
            "seconds": self.elapsed_seconds,
            "status": "ok" if self.ok else "error",
            "artifact": self.artifact or "-",
        }

    def as_dict(self) -> Dict[str, object]:
        """Full JSON-serialisable document (the artifact payload)."""
        return {
            "format": "repro.experiment-result/v1",
            "experiment": self.experiment,
            "seed": self.seed,
            "small": self.small,
            "large": self.large,
            "elapsed_seconds": self.elapsed_seconds,
            "n_records": len(self.records),
            "error": self.error,
            "records": self.records,
        }


def _experiment_kwargs(
    runner: Callable, seed: int, small: bool, large: bool
) -> Dict[str, object]:
    """Adapt the shared (seed, small, large) knobs to a runner's signature.

    Runners taking a ``seeds`` sequence (E3, E4) get a block of consecutive
    seeds derived from the experiment seed so their instance count is
    preserved.
    """
    params = inspect.signature(runner).parameters
    kwargs: Dict[str, object] = {}
    if "seed" in params:
        kwargs["seed"] = seed
    if "seeds" in params:
        default = params["seeds"].default
        width = len(default) if isinstance(default, (tuple, list)) else 3
        kwargs["seeds"] = tuple(seed + i for i in range(width))
    if "small" in params:
        kwargs["small"] = small
    if "large" in params:
        kwargs["large"] = large
    return kwargs


def _run_single(
    exp_id: str, seed: int, small: bool, large: bool = False
) -> ExperimentOutcome:
    """Run one experiment (module-level so it pickles for worker processes)."""
    runner = EXPERIMENT_RUNNERS[exp_id]
    kwargs = _experiment_kwargs(runner, seed, small, large)
    start = time.perf_counter()
    try:
        records = runner(**kwargs)
        error = None
    except Exception as exc:  # noqa: BLE001 - one failed experiment must not
        records = []  # kill the rest of the sweep
        error = f"{type(exc).__name__}: {exc}"
    elapsed = time.perf_counter() - start
    return ExperimentOutcome(
        experiment=exp_id,
        seed=seed,
        small=small,
        large=large,
        elapsed_seconds=elapsed,
        records=list(records),
        error=error,
    )


def _json_default(value):
    """Encode the numpy scalar/array types that experiment records contain."""
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    raise TypeError(f"not JSON serialisable: {type(value).__name__}")


def write_artifacts(
    outcomes: Sequence[ExperimentOutcome],
    output_dir: "str | Path",
    stable: bool = False,
) -> List[ExperimentOutcome]:
    """Write one ``<id>.json`` per outcome plus ``summary.json``.

    ``stable=True`` makes the written files a pure function of
    ``(experiment id, seed, sizes)``.  Exactly these fields are rewritten
    -- nothing else in the payloads is touched, and the *returned*
    outcomes keep their real values:

    * per-experiment ``<id>.json``: the top-level ``elapsed_seconds``
      becomes ``0.0`` (the ``records`` are never modified);
    * ``summary.json``: every row's ``seconds`` becomes ``0.0``, every
      row's ``artifact`` is reduced to its basename (no absolute paths),
      and ``total_seconds`` becomes ``0.0``.

    This is the contract the determinism tests pin down
    (``tests/analysis/test_runner.py::TestArtifacts``): the same sweep run
    with any ``--parallel`` value produces byte-identical stable
    artifacts, and the lab registry (:mod:`repro.lab.registry`) -- which
    stores only the ``records`` -- hashes identically whether or not the
    sweep was run with ``--stable-artifacts``.  (One inherent exception:
    E6's *records* are themselves wall-clock runtime measurements, so its
    payload varies run to run by design and is excluded from the
    registry suites.)

    Returns new outcomes with their ``artifact`` fields pointing at the
    written files.
    """
    out = Path(output_dir)
    out.mkdir(parents=True, exist_ok=True)
    updated: List[ExperimentOutcome] = []
    for outcome in outcomes:
        path = out / f"{outcome.experiment}.json"
        payload = replace(outcome, elapsed_seconds=0.0) if stable else outcome
        path.write_text(
            json.dumps(payload.as_dict(), indent=2, default=_json_default)
        )
        updated.append(replace(outcome, artifact=str(path)))
    rows = [o.summary_row() for o in updated]
    total = sum(o.elapsed_seconds for o in updated)
    if stable:
        # location- and timing-independent: basenames and zeroed clocks
        for row in rows:
            row["seconds"] = 0.0
            row["artifact"] = Path(str(row["artifact"])).name
        total = 0.0
    summary = {
        "format": "repro.experiment-summary/v1",
        "experiments": rows,
        "total_seconds": total,
        "all_ok": all(o.ok for o in updated),
    }
    (out / "summary.json").write_text(
        json.dumps(summary, indent=2, default=_json_default)
    )
    return updated


def experiment_seeds(base_seed: int, ids: Sequence[str]) -> Dict[str, int]:
    """Deterministic per-experiment seeds derived from one base seed.

    Children of ``SeedSequence(base_seed)`` are assigned in the sorted order
    of the experiment ids, so the seed of an experiment depends only on the
    base seed and its id -- not on which other experiments run alongside it.
    """
    seeds: Dict[str, int] = {}
    for exp_id in set(ids):
        entropy = (int(base_seed), EXPERIMENT_IDS.index(exp_id))
        state = np.random.SeedSequence(entropy).generate_state(1)[0]
        seeds[exp_id] = int(state % 2**31)
    return seeds


def run_experiments(
    ids: Optional[Sequence[str]] = None,
    parallel: int = 1,
    seed: int = 0,
    small: bool = False,
    large: bool = False,
    output_dir: Optional["str | Path"] = None,
    stable_artifacts: bool = False,
    registry: Optional["str | Path"] = None,
) -> List[ExperimentOutcome]:
    """Run a set of experiments, optionally across worker processes.

    Parameters
    ----------
    ids:
        Experiment ids (subset of ``E1`` .. ``E11``); defaults to all.
    parallel:
        Number of worker processes.  Results are deterministic for any
        value: per-experiment seeds depend only on ``(seed, id)``.
    seed:
        Base seed; per-experiment seeds are derived via
        :func:`experiment_seeds`.
    small:
        Use reduced instance sizes for the runners that support it.
    large:
        Use the 10--50× larger instance suite for the runners that support
        it (mutually exclusive with ``small``).
    output_dir:
        If given, JSON artifacts are written there (one per experiment plus
        ``summary.json``).
    stable_artifacts:
        Zero the wall-clock fields in the written artifacts so they are
        byte-identical across runs and ``--parallel`` values (see
        :func:`write_artifacts` for the exact field list).
    registry:
        If given, record every successful run into the persistent lab
        registry rooted there (:class:`repro.lab.registry.LabRegistry`),
        keyed by ``(spec_hash, per-experiment seed, engine version)`` --
        the artifact write path of the experiment lab.  E6 and failed
        runs are skipped (wall-clock records / nothing to register).

    Returns
    -------
    list of ExperimentOutcome
        In the order of ``ids``, regardless of worker completion order.
    """
    if ids is None:
        ids = EXPERIMENT_IDS
    unknown = [i for i in ids if i not in EXPERIMENT_RUNNERS]
    if unknown:
        raise KeyError(f"unknown experiment ids: {unknown}")
    if parallel < 1:
        raise ValueError(f"parallel must be >= 1, got {parallel}")
    if small and large:
        raise ValueError("small and large are mutually exclusive")

    seeds = experiment_seeds(seed, ids)
    jobs = [(exp_id, seeds[exp_id], small, large) for exp_id in ids]

    if parallel == 1 or len(jobs) <= 1:
        outcomes = [_run_single(*job) for job in jobs]
    else:
        # the pool persists across calls, so repeated sweeps in one
        # process reuse warm workers (see repro.parallel)
        outcomes = run_jobs(min(parallel, len(jobs)), _run_single, jobs)

    if output_dir is not None:
        outcomes = write_artifacts(outcomes, output_dir, stable=stable_artifacts)
    if registry is not None:
        from repro.lab.registry import (
            NONDETERMINISTIC_EXPERIMENTS,
            LabRegistry,
            experiment_entry,
        )

        lab = LabRegistry(registry)
        for outcome in outcomes:
            if outcome.ok and outcome.experiment not in NONDETERMINISTIC_EXPERIMENTS:
                entry = experiment_entry(
                    outcome.experiment, outcome.seed, small=small, large=large
                )
                lab.record(entry, outcome.records)
    return outcomes
