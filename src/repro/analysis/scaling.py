"""Runtime- and round-scaling studies (experiments E6 and E7).

Theorem 4.3 bounds the sequential running time of the extended-nibble
strategy by ``O(|X| · |P ∪ B| · height(T) · log(degree(T)))`` and its
distributed execution by ``O(|X| · |P ∪ B| · log(degree(T)) + height(T))``
rounds.  These helpers measure wall-clock time / round counts over sweeps of
``|X|``, ``|V|``, ``height`` and ``degree`` and fit log-log slopes so the
benchmarks can check that the *growth* matches the bound (a slope close to
one for a parameter that appears linearly in the bound, close to zero for a
parameter it does not depend on).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.core.extended_nibble import extended_nibble
from repro.network.builders import balanced_tree, path_of_buses, single_bus
from repro.network.tree import HierarchicalBusNetwork
from repro.workload.access import AccessPattern
from repro.workload.generators import uniform_pattern

__all__ = [
    "ScalingPoint",
    "measure_runtime",
    "sweep_objects",
    "sweep_network_size",
    "sweep_height",
    "sweep_degree",
    "loglog_slope",
]


@dataclass(frozen=True)
class ScalingPoint:
    """One measurement of a scaling sweep."""

    parameter: str
    value: float
    n_nodes: int
    n_objects: int
    height: int
    max_degree: int
    seconds: float

    def as_dict(self) -> Dict[str, object]:
        """Flatten for table output."""
        return {
            "parameter": self.parameter,
            "value": self.value,
            "nodes": self.n_nodes,
            "objects": self.n_objects,
            "height": self.height,
            "degree": self.max_degree,
            "seconds": self.seconds,
        }


def measure_runtime(
    network: HierarchicalBusNetwork,
    pattern: AccessPattern,
    repeats: int = 1,
) -> float:
    """Median wall-clock seconds of running the extended-nibble strategy."""
    times = []
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        extended_nibble(network, pattern, validate=False)
        times.append(time.perf_counter() - start)
    return float(np.median(times))


def sweep_objects(
    object_counts: Sequence[int],
    arity: int = 3,
    depth: int = 3,
    leaves_per_bus: int = 3,
    requests_per_processor: int = 8,
    seed: int = 0,
    repeats: int = 1,
) -> List[ScalingPoint]:
    """Runtime versus the number of shared objects ``|X|`` (fixed network)."""
    network = balanced_tree(arity, depth, leaves_per_bus)
    points = []
    for count in object_counts:
        pattern = uniform_pattern(
            network, count, requests_per_processor=requests_per_processor, seed=seed
        )
        seconds = measure_runtime(network, pattern, repeats=repeats)
        points.append(
            ScalingPoint(
                parameter="objects",
                value=float(count),
                n_nodes=network.n_nodes,
                n_objects=count,
                height=network.height(),
                max_degree=network.max_degree(),
                seconds=seconds,
            )
        )
    return points


def sweep_network_size(
    leaf_counts: Sequence[int],
    n_objects: int = 32,
    requests_per_processor: int = 8,
    seed: int = 0,
    repeats: int = 1,
) -> List[ScalingPoint]:
    """Runtime versus ``|V|`` using wider and wider balanced trees."""
    points = []
    for leaves in leaf_counts:
        network = balanced_tree(arity=2, depth=3, leaves_per_bus=max(1, leaves // 4))
        pattern = uniform_pattern(
            network, n_objects, requests_per_processor=requests_per_processor, seed=seed
        )
        seconds = measure_runtime(network, pattern, repeats=repeats)
        points.append(
            ScalingPoint(
                parameter="nodes",
                value=float(network.n_nodes),
                n_nodes=network.n_nodes,
                n_objects=n_objects,
                height=network.height(),
                max_degree=network.max_degree(),
                seconds=seconds,
            )
        )
    return points


def sweep_height(
    heights: Sequence[int],
    n_objects: int = 32,
    leaves_per_bus: int = 2,
    requests_per_processor: int = 8,
    seed: int = 0,
    repeats: int = 1,
) -> List[ScalingPoint]:
    """Runtime versus ``height(T)`` using deeper and deeper bus paths."""
    points = []
    for n_buses in heights:
        network = path_of_buses(n_buses, leaves_per_bus=leaves_per_bus)
        pattern = uniform_pattern(
            network, n_objects, requests_per_processor=requests_per_processor, seed=seed
        )
        seconds = measure_runtime(network, pattern, repeats=repeats)
        points.append(
            ScalingPoint(
                parameter="height",
                value=float(network.height()),
                n_nodes=network.n_nodes,
                n_objects=n_objects,
                height=network.height(),
                max_degree=network.max_degree(),
                seconds=seconds,
            )
        )
    return points


def sweep_degree(
    degrees: Sequence[int],
    n_objects: int = 32,
    requests_per_processor: int = 8,
    seed: int = 0,
    repeats: int = 1,
) -> List[ScalingPoint]:
    """Runtime versus ``degree(T)`` using wider and wider single buses."""
    points = []
    for degree in degrees:
        network = single_bus(degree)
        pattern = uniform_pattern(
            network, n_objects, requests_per_processor=requests_per_processor, seed=seed
        )
        seconds = measure_runtime(network, pattern, repeats=repeats)
        points.append(
            ScalingPoint(
                parameter="degree",
                value=float(network.max_degree()),
                n_nodes=network.n_nodes,
                n_objects=n_objects,
                height=network.height(),
                max_degree=network.max_degree(),
                seconds=seconds,
            )
        )
    return points


def loglog_slope(points: Sequence[ScalingPoint]) -> float:
    """Least-squares slope of ``log(seconds)`` versus ``log(value)``.

    A slope of about one indicates linear growth in the swept parameter, as
    the runtime bound predicts for ``|X|`` and ``|V|``.
    """
    xs = np.array([p.value for p in points], dtype=np.float64)
    ys = np.array([max(p.seconds, 1e-9) for p in points], dtype=np.float64)
    if len(xs) < 2:
        raise ValueError("need at least two points to fit a slope")
    coeffs = np.polyfit(np.log(xs), np.log(ys), 1)
    return float(coeffs[0])
