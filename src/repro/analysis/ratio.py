"""Approximation-ratio studies (experiment E5).

Theorem 4.3 guarantees ``C_ext ≤ 7 · C_opt``.  These helpers measure the
*actual* ratio on concrete instances, against two reference points:

* the nibble lower bound (always available, Theorem 3.1), giving a certified
  upper estimate of the true ratio, and
* the exact optimum (branch-and-bound) on instances small enough to solve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.bounds import nibble_lower_bound
from repro.core.extended_nibble import extended_nibble
from repro.core.optimal import optimal_nonredundant
from repro.errors import InfeasibleError
from repro.network.tree import HierarchicalBusNetwork
from repro.workload.access import AccessPattern

__all__ = ["RatioRecord", "measure_ratio", "ratio_study", "summarize_ratios"]

APPROXIMATION_FACTOR = 7.0


@dataclass(frozen=True)
class RatioRecord:
    """Approximation-ratio measurement for one instance."""

    label: str
    n_nodes: int
    n_objects: int
    extended_congestion: float
    lower_bound: float
    optimal_congestion: Optional[float]

    @property
    def ratio_vs_lower_bound(self) -> float:
        """Extended-nibble congestion / nibble lower bound (≥ true ratio)."""
        if self.lower_bound <= 0:
            return 1.0 if self.extended_congestion <= 0 else float("inf")
        return self.extended_congestion / self.lower_bound

    @property
    def ratio_vs_optimal(self) -> Optional[float]:
        """Extended-nibble congestion / exact optimum (when available)."""
        if self.optimal_congestion is None:
            return None
        if self.optimal_congestion <= 0:
            return 1.0 if self.extended_congestion <= 0 else float("inf")
        return self.extended_congestion / self.optimal_congestion

    @property
    def within_paper_bound(self) -> bool:
        """True iff the measured ratio respects the factor-7 guarantee."""
        return self.ratio_vs_lower_bound <= APPROXIMATION_FACTOR + 1e-9

    def as_dict(self) -> Dict[str, object]:
        """Flatten the record for table output."""
        return {
            "instance": self.label,
            "nodes": self.n_nodes,
            "objects": self.n_objects,
            "extended": self.extended_congestion,
            "lower_bound": self.lower_bound,
            "optimal": self.optimal_congestion if self.optimal_congestion is not None else "-",
            "ratio_lb": self.ratio_vs_lower_bound,
            "ratio_opt": self.ratio_vs_optimal if self.ratio_vs_optimal is not None else "-",
            "within_7x": self.within_paper_bound,
        }


def measure_ratio(
    network: HierarchicalBusNetwork,
    pattern: AccessPattern,
    label: str = "instance",
    compute_exact: bool = False,
    exact_max_nodes: int = 500_000,
) -> RatioRecord:
    """Measure the approximation ratio of the extended-nibble on one instance.

    The nibble placement computed inside :func:`extended_nibble` is reused
    for the lower bound, so each instance runs the nibble strategy once
    rather than twice.
    """
    result = extended_nibble(network, pattern)
    ext = result.congestion(network, pattern)
    lb = nibble_lower_bound(network, pattern, nibble=result.nibble)
    opt: Optional[float] = None
    if compute_exact:
        try:
            # Note: the exact solver searches the non-redundant class; a
            # redundant extended-nibble placement may legitimately beat it on
            # read-heavy instances, so no upper bound is passed for pruning.
            opt = optimal_nonredundant(
                network, pattern, max_nodes=exact_max_nodes
            ).congestion
        except InfeasibleError:
            opt = None
    return RatioRecord(
        label=label,
        n_nodes=network.n_nodes,
        n_objects=pattern.n_objects,
        extended_congestion=ext,
        lower_bound=lb,
        optimal_congestion=opt,
    )


def ratio_study(
    instances: Iterable[Tuple[str, HierarchicalBusNetwork, AccessPattern]],
    compute_exact: bool = False,
    exact_max_nodes: int = 500_000,
) -> List[RatioRecord]:
    """Measure ratios for a collection of labelled instances."""
    return [
        measure_ratio(
            net, pat, label=label, compute_exact=compute_exact, exact_max_nodes=exact_max_nodes
        )
        for label, net, pat in instances
    ]


def summarize_ratios(records: Sequence[RatioRecord]) -> Dict[str, float]:
    """Aggregate statistics over a ratio study."""
    ratios = [r.ratio_vs_lower_bound for r in records if np.isfinite(r.ratio_vs_lower_bound)]
    exact = [r.ratio_vs_optimal for r in records if r.ratio_vs_optimal is not None]
    summary = {
        "instances": float(len(records)),
        "max_ratio_vs_lower_bound": max(ratios) if ratios else 0.0,
        "mean_ratio_vs_lower_bound": float(np.mean(ratios)) if ratios else 0.0,
        "all_within_7x": float(all(r.within_paper_bound for r in records)),
    }
    if exact:
        summary["max_ratio_vs_optimal"] = max(exact)
        summary["mean_ratio_vs_optimal"] = float(np.mean(exact))
    return summary
