"""Small text/markdown table formatting helpers for experiment reports.

The benchmark harness prints its result tables with these helpers so that
the rows shown in the test/benchmark output can be pasted directly into
``EXPERIMENTS.md``.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Optional, Sequence

__all__ = [
    "format_value",
    "format_table",
    "markdown_table",
    "records_to_table",
    "markdown_section",
]


def format_value(value: Any, precision: int = 3) -> str:
    """Render a cell: floats with fixed precision, everything else via str."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value - round(value)) < 1e-12 and abs(value) < 1e12:
            return str(int(round(value)))
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    rows: Sequence[Sequence[Any]],
    headers: Sequence[str],
    precision: int = 3,
) -> str:
    """Plain-text table with aligned columns."""
    rendered = [[format_value(c, precision) for c in row] for row in rows]
    columns = len(headers)
    widths = [len(str(h)) for h in headers]
    for row in rendered:
        if len(row) != columns:
            raise ValueError("row length does not match the header length")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    header_line = "  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def markdown_table(
    rows: Sequence[Sequence[Any]],
    headers: Sequence[str],
    precision: int = 3,
) -> str:
    """GitHub-flavoured markdown table."""
    rendered = [[format_value(c, precision) for c in row] for row in rows]
    lines = ["| " + " | ".join(str(h) for h in headers) + " |"]
    lines.append("|" + "|".join(["---"] * len(headers)) + "|")
    for row in rendered:
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)


def markdown_section(
    title: str,
    records: Iterable[Dict[str, Any]],
    columns: Optional[Sequence[str]] = None,
    precision: int = 3,
    max_rows: Optional[int] = None,
    level: int = 2,
) -> str:
    """A markdown heading plus the records rendered as a table.

    The assembly unit of the artifact-generated reports
    (:mod:`repro.lab.reports`): deterministic for deterministic records.
    ``max_rows`` truncates long record lists with an explicit
    ``(+k more rows)`` line, so a generated report never silently hides
    how much data backs it.
    """
    rows, headers = records_to_table(records, columns)
    dropped = 0
    if max_rows is not None and len(rows) > max_rows:
        dropped = len(rows) - max_rows
        rows = rows[:max_rows]
    lines = [f"{'#' * level} {title}", ""]
    if rows:
        lines.append(markdown_table(rows, headers, precision))
        if dropped:
            lines.append(f"\n*(+{dropped} more rows in the underlying artifact)*")
    else:
        lines.append("*(no rows)*")
    return "\n".join(lines)


def records_to_table(
    records: Iterable[Dict[str, Any]],
    columns: Optional[Sequence[str]] = None,
) -> tuple:
    """Convert a list of dict records into ``(rows, headers)``.

    Column order follows ``columns`` when given, otherwise the key order of
    the first record.
    """
    records = list(records)
    if not records:
        return [], list(columns or [])
    if columns is None:
        columns = list(records[0].keys())
    rows = [[rec.get(col, "") for col in columns] for rec in records]
    return rows, list(columns)
