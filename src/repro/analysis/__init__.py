"""Analysis harness: ratio and scaling studies, experiment runners, reports."""

from repro.analysis.ratio import (
    APPROXIMATION_FACTOR,
    RatioRecord,
    measure_ratio,
    ratio_study,
    summarize_ratios,
)
from repro.analysis.scaling import (
    ScalingPoint,
    loglog_slope,
    measure_runtime,
    sweep_degree,
    sweep_height,
    sweep_network_size,
    sweep_objects,
)
from repro.analysis.report import format_table, format_value, markdown_table, records_to_table
from repro.analysis.visualize import render_loads, render_placement_summary, render_tree
from repro.analysis.experiments import (
    experiment_approximation_ratio,
    experiment_baseline_comparison,
    experiment_deletion_invariants,
    experiment_distributed_rounds,
    experiment_hardness_reduction,
    experiment_nibble_optimality,
    experiment_runtime_scaling,
    experiment_sci_equivalence,
    standard_instance_suite,
)

__all__ = [
    "APPROXIMATION_FACTOR",
    "RatioRecord",
    "measure_ratio",
    "ratio_study",
    "summarize_ratios",
    "ScalingPoint",
    "measure_runtime",
    "sweep_objects",
    "sweep_network_size",
    "sweep_height",
    "sweep_degree",
    "loglog_slope",
    "format_table",
    "format_value",
    "markdown_table",
    "records_to_table",
    "render_tree",
    "render_loads",
    "render_placement_summary",
    "experiment_sci_equivalence",
    "experiment_hardness_reduction",
    "experiment_nibble_optimality",
    "experiment_deletion_invariants",
    "experiment_approximation_ratio",
    "experiment_runtime_scaling",
    "experiment_distributed_rounds",
    "experiment_baseline_comparison",
    "standard_instance_suite",
]
