"""ASCII visualisation of networks, placements and load profiles.

Terminal-friendly rendering used by the examples and handy when debugging
placements interactively:

* :func:`render_tree` -- indented tree view of a hierarchical bus network,
  optionally annotated with per-node copy counts of a placement;
* :func:`render_loads` -- per-edge load/bandwidth bars for a
  :class:`~repro.core.congestion.LoadProfile`;
* :func:`render_placement_summary` -- one line per object: holder count and
  holder names.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.congestion import LoadProfile
from repro.core.placement import Placement
from repro.network.tree import HierarchicalBusNetwork

__all__ = ["render_tree", "render_loads", "render_placement_summary"]


def _copy_counts(placement: Optional[Placement], n_nodes: int) -> Dict[int, int]:
    counts: Dict[int, int] = {}
    if placement is None:
        return counts
    for obj in range(placement.n_objects):
        for holder in placement.holders(obj):
            if 0 <= holder < n_nodes:
                counts[holder] = counts.get(holder, 0) + 1
    return counts


def render_tree(
    network: HierarchicalBusNetwork,
    placement: Optional[Placement] = None,
    root: Optional[int] = None,
) -> str:
    """Render the tree as an indented ASCII outline.

    Buses are tagged ``[bus]`` with their bandwidth, processors ``(proc)``;
    when a placement is given, nodes holding copies get a ``copies=k``
    annotation.
    """
    rooted = network.rooted(root)
    counts = _copy_counts(placement, network.n_nodes)
    lines: List[str] = []

    def describe(node: int) -> str:
        if network.is_bus(node):
            tag = f"[bus {network.name(node)} bw={network.bus_bandwidth(node):g}]"
        else:
            tag = f"({network.name(node)})"
        if node in counts:
            tag += f" copies={counts[node]}"
        return tag

    def walk(node: int, prefix: str, is_last: bool) -> None:
        connector = "`-- " if is_last else "|-- "
        if rooted.parent(node) < 0:
            lines.append(describe(node))
            child_prefix = ""
        else:
            lines.append(prefix + connector + describe(node))
            child_prefix = prefix + ("    " if is_last else "|   ")
        children = rooted.children(node)
        for i, child in enumerate(children):
            walk(child, child_prefix, i == len(children) - 1)

    walk(rooted.root, "", True)
    return "\n".join(lines)


def render_loads(profile: LoadProfile, width: int = 40) -> str:
    """Render per-edge relative loads as horizontal bars.

    The longest bar corresponds to the congestion (the maximum relative
    load); every line shows ``u--v``, the absolute load, the bandwidth and
    the bar.
    """
    network = profile.network
    relative = profile.edge_relative_loads
    peak = float(relative.max()) if relative.size else 0.0
    lines: List[str] = []
    for eid in range(network.n_edges):
        u, v = network.edge_endpoints(eid)
        rel = float(relative[eid])
        bar_len = int(round(width * rel / peak)) if peak > 0 else 0
        bar = "#" * bar_len
        lines.append(
            f"{network.name(u)}--{network.name(v)}: "
            f"load={profile.edge_loads[eid]:g} bw={network.edge_bandwidth(eid):g} "
            f"|{bar}"
        )
    lines.append(f"congestion = {profile.congestion:g}")
    return "\n".join(lines)


def render_placement_summary(
    network: HierarchicalBusNetwork,
    placement: Placement,
    object_names: Optional[Sequence[str]] = None,
    max_objects: int = 32,
) -> str:
    """One line per object: number of copies and holder names."""
    lines: List[str] = []
    shown = min(placement.n_objects, max_objects)
    for obj in range(shown):
        name = object_names[obj] if object_names is not None else f"x{obj}"
        holders = sorted(placement.holders(obj))
        holder_names = ", ".join(network.name(h) for h in holders)
        lines.append(f"{name}: {len(holders)} copy(ies) on {holder_names}")
    if placement.n_objects > shown:
        lines.append(f"... ({placement.n_objects - shown} more objects)")
    return "\n".join(lines)
