"""High-level experiment runners (E1 -- E11).

The paper has no experimental section; each of its figures and quantitative
theorems is turned into an experiment here (E1 -- E8 of DESIGN.md), plus
the E9/E10/E11 extensions exercising the dynamic model of Section 1.3,
topology churn and the declarative scenario registry.  Every runner
returns a list of plain-dict records (one row of the result table) so the
benchmarks and ``EXPERIMENTS.md`` share the same data.

=====  ==========================================================
 id    paper source / claim
=====  ==========================================================
 E1    Figures 1–2: ring-of-rings ≡ hierarchical bus network
 E2    Theorem 2.1: PARTITION reduction (Fig. 3 gadget)
 E3    Theorem 3.1: nibble per-edge optimality and κ_x bound
 E4    Observation 3.2: deletion keeps every copy in [κ_x, 2κ_x]
 E5    Theorem 4.3: congestion ≤ 7 · C_opt
 E6    Theorem 4.3: sequential runtime scaling
 E7    Theorem 4.3: distributed round counts
 E8    Introduction / [KMRVW99]: congestion vs. baselines & replay
 E9    Section 1.3 / [MMVW97], [MVW99]: online streaming replay
 E10   topology churn: mutable networks, incremental repair
 E11   simulation kernel: declarative scenario registry families
=====  ==========================================================
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.ratio import measure_ratio
from repro.analysis.scaling import (
    loglog_slope,
    sweep_degree,
    sweep_height,
    sweep_objects,
)
from repro.core.baselines import (
    full_replication_placement,
    greedy_congestion_placement,
    median_leaf_placement,
    owner_placement,
    random_placement,
)
from repro.core.bounds import nibble_lower_bound
from repro.core.congestion import compute_loads, object_edge_loads
from repro.core.deletion import apply_deletion
from repro.core.extended_nibble import extended_nibble
from repro.core.nibble import nibble_placement
from repro.distributed.protocols import distributed_extended_nibble
from repro.distributed.request_sim import replay_requests
from repro.dynamic.churn import replay_with_churn
from repro.dynamic.evaluate import (
    congestion_trajectory,
    evaluate_strategies,
    hindsight_static_manager,
)
from repro.dynamic.online import EdgeCounterManager
from repro.hardness.partition import PartitionInstance, random_partition_instance
from repro.hardness.reduction import verify_reduction
from repro.network.builders import balanced_tree, random_tree, single_bus, star_of_buses
from repro.network.sci import ring_of_rings, transaction_ring_load
from repro.network.tree import HierarchicalBusNetwork
from repro.workload.access import AccessPattern
from repro.workload.adversarial import bisection_stress, replication_trap, write_conflict_pattern
from repro.workload.generators import (
    hotspot_pattern,
    subtree_local_pattern,
    uniform_pattern,
    zipf_pattern,
)
from repro.workload.traces import shared_counter_trace, web_cache_trace

__all__ = [
    "experiment_sci_equivalence",
    "experiment_hardness_reduction",
    "experiment_nibble_optimality",
    "experiment_deletion_invariants",
    "experiment_approximation_ratio",
    "experiment_runtime_scaling",
    "experiment_distributed_rounds",
    "experiment_baseline_comparison",
    "experiment_online_streaming",
    "experiment_topology_churn",
    "experiment_scenario_registry",
    "standard_instance_suite",
    "streaming_scenario_suite",
    "churn_scenario_suite",
    "replay_churn_scenario",
]


# --------------------------------------------------------------------------- #
# shared instance suite
# --------------------------------------------------------------------------- #
def standard_instance_suite(
    seed: int = 0,
    small: bool = False,
    large: bool = False,
) -> List[Tuple[str, HierarchicalBusNetwork, AccessPattern]]:
    """The labelled (topology, workload) pairs used by E5 and E8.

    ``large=True`` switches to networks 10--50× the default node counts
    (hundreds of nodes, hundreds of objects); feasible since the congestion
    evaluation is vectorized through the path-incidence structure.
    """
    instances: List[Tuple[str, HierarchicalBusNetwork, AccessPattern]] = []

    def add(label, net, pat):
        instances.append((label, net, pat))

    if large:
        bus = single_bus(120)
        add("single-bus-xl/uniform", bus, uniform_pattern(bus, 256, seed=seed))
        add("single-bus-xl/counter", bus, shared_counter_trace(bus, 16, 8, 8))

        tree = balanced_tree(3, 4, 3)
        add("balanced-xl/zipf", tree, zipf_pattern(tree, 256, seed=seed))
        add("balanced-xl/local", tree, subtree_local_pattern(tree, 256, seed=seed))
        add("balanced-xl/hotspot", tree, hotspot_pattern(tree, 256, seed=seed))
        add("balanced-xl/bisection", tree, bisection_stress(tree, 128, seed=seed))

        star = star_of_buses(10, 10)
        add("star-xl/web-cache", star, web_cache_trace(star, 256, seed=seed))
        add(
            "star-xl/write-conflict",
            star,
            write_conflict_pattern(star, 128, seed=seed),
        )

        rnd = random_tree(50, 200, seed=seed + 1)
        add("random-xl/uniform", rnd, uniform_pattern(rnd, 192, seed=seed))
        add(
            "random-xl/replication-trap",
            rnd,
            replication_trap(rnd, 96, seed=seed),
        )
        return instances

    bus = single_bus(6 if small else 12)
    add("single-bus/uniform", bus, uniform_pattern(bus, 8 if small else 32, seed=seed))
    add("single-bus/counter", bus, shared_counter_trace(bus, 4, 8, 8))

    tree = balanced_tree(2, 3, 2)
    add("balanced/zipf", tree, zipf_pattern(tree, 8 if small else 32, seed=seed))
    add("balanced/local", tree, subtree_local_pattern(tree, 8 if small else 32, seed=seed))
    add("balanced/hotspot", tree, hotspot_pattern(tree, 8 if small else 32, seed=seed))
    add("balanced/bisection", tree, bisection_stress(tree, 8 if small else 24, seed=seed))

    star = star_of_buses(3, 3)
    add("star/web-cache", star, web_cache_trace(star, 16 if small else 48, seed=seed))
    add("star/write-conflict", star, write_conflict_pattern(star, 8 if small else 24, seed=seed))

    rnd = random_tree(6, 10, seed=seed + 1)
    add("random/uniform", rnd, uniform_pattern(rnd, 8 if small else 24, seed=seed))
    add("random/replication-trap", rnd, replication_trap(rnd, 8 if small else 16, seed=seed))
    return instances


# --------------------------------------------------------------------------- #
# E1 -- Figures 1 and 2
# --------------------------------------------------------------------------- #
def experiment_sci_equivalence(
    n_leaf_rings: int = 3,
    processors_per_ring: int = 3,
    n_transactions: int = 200,
    seed: int = 0,
) -> List[Dict[str, object]]:
    """Check that the ring model and the converted bus network agree on loads."""
    rng = np.random.default_rng(seed)
    fabric = ring_of_rings(n_leaf_rings, processors_per_ring)
    conversion = fabric.to_bus_network()
    net = conversion.network

    transactions = []
    for _ in range(n_transactions):
        src = int(rng.integers(0, fabric.n_processors))
        dst = int(rng.integers(0, fabric.n_processors))
        if src == dst:
            continue
        transactions.append((src, dst, 1))

    ring_load, switch_load = transaction_ring_load(fabric, transactions)

    # Evaluate the same transactions as unicast traffic on the bus network.
    rooted = net.rooted()
    edge_load = np.zeros(net.n_edges)
    for src, dst, count in transactions:
        u = conversion.processor_node[src]
        v = conversion.processor_node[dst]
        for eid in rooted.path_edge_ids(u, v):
            edge_load[eid] += count
    bus_load = {}
    for ring_id, bus in conversion.ringlet_node.items():
        incident = list(net.incident_edge_ids(bus))
        bus_load[ring_id] = edge_load[incident].sum() / 2.0

    records = []
    for ring_id in range(fabric.n_ringlets):
        records.append(
            {
                "element": f"ringlet {ring_id}",
                "ring_model_load": ring_load[ring_id],
                "bus_model_load": bus_load[ring_id],
                "match": abs(ring_load[ring_id] - bus_load[ring_id]) < 1e-9,
            }
        )
    for switch_id, eid in conversion.switch_edge.items():
        records.append(
            {
                "element": f"switch {switch_id}",
                "ring_model_load": switch_load[switch_id],
                "bus_model_load": float(edge_load[eid]),
                "match": abs(switch_load[switch_id] - edge_load[eid]) < 1e-9,
            }
        )
    return records


# --------------------------------------------------------------------------- #
# E2 -- Theorem 2.1
# --------------------------------------------------------------------------- #
def experiment_hardness_reduction(
    item_counts: Sequence[int] = (3, 4, 5, 6),
    instances_per_count: int = 2,
    seed: int = 0,
) -> List[Dict[str, object]]:
    """Verify the PARTITION ↔ placement equivalence on random instances."""
    rng = np.random.default_rng(seed)
    records: List[Dict[str, object]] = []
    for n in item_counts:
        for force_yes in (True, False):
            for rep in range(instances_per_count):
                if force_yes:
                    inst = random_partition_instance(
                        n, max_value=9, force_yes=True, rng=rng
                    )
                    if inst.total % 2 != 0:
                        inst = PartitionInstance(tuple(list(inst.sizes) + [1]))
                    if inst.total % 2 != 0:
                        continue
                else:
                    # Deterministic NO instance: one element larger than the
                    # sum of all the others, even total.
                    inst = PartitionInstance(
                        tuple([n + 1 + 2 * rep] + [1] * (n - 1))
                    )
                report = verify_reduction(inst)
                records.append(
                    {
                        "n_items": inst.n,
                        "total": inst.total,
                        "threshold_4k": report.instance.threshold,
                        "partition_solvable": report.partition_solvable,
                        "optimal_congestion": report.optimal_congestion,
                        "witness_congestion": report.witness_congestion
                        if report.witness_congestion is not None
                        else "-",
                        "equivalence": report.equivalence_holds,
                    }
                )
    return records


# --------------------------------------------------------------------------- #
# E3 -- Theorem 3.1
# --------------------------------------------------------------------------- #
def experiment_nibble_optimality(
    seeds: Sequence[int] = (0, 1, 2),
    n_objects: int = 6,
) -> List[Dict[str, object]]:
    """Measure the nibble invariants: connectivity, κ_x bound, edge optimality."""
    records = []
    for seed in seeds:
        net = random_tree(5, 8, seed=seed)
        pat = uniform_pattern(net, n_objects, requests_per_processor=12, seed=seed)
        nib = nibble_placement(net, pat)
        rooted = net.rooted()
        for obj in range(pat.n_objects):
            holders = nib.placement.holders(obj)
            kappa = pat.write_contention(obj)
            loads = object_edge_loads(net, pat, nib.placement, obj)
            steiner = set(rooted.steiner_edge_ids(holders))
            inside = [loads[e] for e in steiner] if steiner else []
            outside_max = max(
                (loads[e] for e in range(net.n_edges) if e not in steiner), default=0.0
            )
            connected = len(rooted.steiner_node_ids(holders)) == len(
                set(rooted.steiner_node_ids(holders)) | set(holders)
            )
            records.append(
                {
                    "seed": seed,
                    "object": obj,
                    "kappa": kappa,
                    "copies": len(holders),
                    "max_edge_load": float(loads.max()) if loads.size else 0.0,
                    "load_inside_Tx": max(inside) if inside else 0.0,
                    "max_load_outside_Tx": float(outside_max),
                    "kappa_bound_holds": bool(loads.max() <= kappa + 1e-9)
                    if kappa > 0 or loads.size == 0
                    else bool(loads.max() <= max(kappa, 0) + 1e-9),
                    "connected": connected,
                }
            )
    return records


# --------------------------------------------------------------------------- #
# E4 -- Observation 3.2
# --------------------------------------------------------------------------- #
def experiment_deletion_invariants(
    seeds: Sequence[int] = (0, 1, 2, 3),
    n_objects: int = 8,
) -> List[Dict[str, object]]:
    """Check the copy-service window [κ_x, 2κ_x] and the 2× load bound."""
    records = []
    for seed in seeds:
        net = random_tree(5, 8, seed=seed)
        pat = uniform_pattern(net, n_objects, requests_per_processor=12, seed=seed)
        nib = nibble_placement(net, pat)
        copies = apply_deletion(net, pat, nib.placement)
        for oc in copies:
            if oc.kappa == 0:
                continue
            served = [c.s for c in oc.copies]
            records.append(
                {
                    "seed": seed,
                    "object": oc.obj,
                    "kappa": oc.kappa,
                    "copies_before": len(nib.placement.holders(oc.obj)),
                    "copies_after": len(oc.copies),
                    "min_served": min(served),
                    "max_served": max(served),
                    "window_holds": all(oc.kappa <= s <= 2 * oc.kappa for s in served),
                }
            )
    return records


# --------------------------------------------------------------------------- #
# E5 -- Theorem 4.3 (approximation factor)
# --------------------------------------------------------------------------- #
def experiment_approximation_ratio(
    seed: int = 0,
    compute_exact: bool = False,
    small: bool = False,
    large: bool = False,
) -> List[Dict[str, object]]:
    """Measure extended-nibble congestion against the lower bound / optimum."""
    records = []
    for label, net, pat in standard_instance_suite(seed=seed, small=small, large=large):
        exact_ok = compute_exact and net.n_processors ** pat.n_objects < 10**7
        rec = measure_ratio(net, pat, label=label, compute_exact=exact_ok)
        records.append(rec.as_dict())
    return records


# --------------------------------------------------------------------------- #
# E6 -- Theorem 4.3 (sequential runtime)
# --------------------------------------------------------------------------- #
def experiment_runtime_scaling(
    object_counts: Sequence[int] = (8, 16, 32, 64),
    heights: Sequence[int] = (2, 4, 8, 16),
    degrees: Sequence[int] = (4, 8, 16, 32),
    repeats: int = 1,
) -> List[Dict[str, object]]:
    """Runtime sweeps in |X|, height(T) and degree(T) with fitted slopes."""
    records: List[Dict[str, object]] = []

    sweeps = {
        "objects": sweep_objects(object_counts, repeats=repeats),
        "height": sweep_height(heights, repeats=repeats),
        "degree": sweep_degree(degrees, repeats=repeats),
    }
    for name, points in sweeps.items():
        slope = loglog_slope(points)
        for p in points:
            rec = p.as_dict()
            rec["loglog_slope_of_sweep"] = slope
            records.append(rec)
    return records


# --------------------------------------------------------------------------- #
# E7 -- Theorem 4.3 (distributed rounds)
# --------------------------------------------------------------------------- #
def experiment_distributed_rounds(
    object_counts: Sequence[int] = (4, 8, 16),
    heights: Sequence[int] = (2, 4, 8),
    seed: int = 0,
) -> List[Dict[str, object]]:
    """Round counts of the distributed strategy vs. |X| and height(T)."""
    from repro.network.builders import path_of_buses

    records = []
    for count in object_counts:
        net = balanced_tree(2, 3, 2)
        pat = uniform_pattern(net, count, requests_per_processor=8, seed=seed)
        rep = distributed_extended_nibble(net, pat)
        records.append(
            {
                "sweep": "objects",
                "value": count,
                "height": net.height(),
                "nibble_rounds": rep.nibble_rounds,
                "deletion_rounds": rep.deletion_rounds,
                "mapping_rounds": rep.mapping_rounds,
                "total_rounds": rep.total_rounds,
                "messages": rep.total_messages,
            }
        )
    for n_buses in heights:
        net = path_of_buses(n_buses, leaves_per_bus=2)
        pat = uniform_pattern(net, 8, requests_per_processor=8, seed=seed)
        rep = distributed_extended_nibble(net, pat)
        records.append(
            {
                "sweep": "height",
                "value": net.height(),
                "height": net.height(),
                "nibble_rounds": rep.nibble_rounds,
                "deletion_rounds": rep.deletion_rounds,
                "mapping_rounds": rep.mapping_rounds,
                "total_rounds": rep.total_rounds,
                "messages": rep.total_messages,
            }
        )
    return records


# --------------------------------------------------------------------------- #
# E8 -- baselines and request replay
# --------------------------------------------------------------------------- #
def experiment_baseline_comparison(
    seed: int = 0,
    small: bool = False,
    large: bool = False,
    with_replay: bool = False,
    replay_batch: int = 4,
) -> List[Dict[str, object]]:
    """Compare congestion (and optionally replay makespan) across strategies."""
    strategies = {
        "extended-nibble": None,  # handled specially to reuse its assignment
        "owner": owner_placement,
        "median-leaf": median_leaf_placement,
        "greedy": greedy_congestion_placement,
        "random": lambda net, pat: random_placement(net, pat, seed=seed),
        "full-replication": full_replication_placement,
    }
    records = []
    for label, net, pat in standard_instance_suite(seed=seed, small=small, large=large):
        lb = nibble_lower_bound(net, pat)
        for name, factory in strategies.items():
            if name == "extended-nibble":
                result = extended_nibble(net, pat)
                placement = result.placement
                assignment = result.assignment
            else:
                placement = factory(net, pat)
                assignment = None
            profile = compute_loads(net, pat, placement, assignment=assignment)
            rec = {
                "instance": label,
                "strategy": name,
                "congestion": profile.congestion,
                "total_load": profile.total_load,
                "lower_bound": lb,
                "ratio_vs_lb": profile.congestion / lb if lb > 0 else 1.0,
            }
            if with_replay:
                replay = replay_requests(
                    net, pat, placement, assignment=assignment, batch=replay_batch
                )
                rec["replay_makespan"] = replay.makespan
                rec["replay_slowdown"] = replay.slowdown
            records.append(rec)
    return records


# --------------------------------------------------------------------------- #
# E9 -- online streaming (dynamic model, Section 1.3 / [MMVW97], [MVW99])
# --------------------------------------------------------------------------- #
def streaming_scenario_suite(
    seed: int = 0,
    small: bool = False,
    large: bool = False,
):
    """Labelled ``(name, network, sequence)`` streaming scenarios for E9.

    Three workload families with qualitatively different online behaviour:

    * ``zipf`` -- stationary skewed popularity (replication pays off);
    * ``adversarial`` -- write-heavy cross-bisection traffic (replication
      never helps, every placement loads the top of the hierarchy);
    * ``phase-shift`` -- producer/consumer channels whose endpoints change
      between phases (the regime where online adaptation can beat any
      single static placement).

    Since the simulation-kernel refactor each scenario is *declared* in
    the :mod:`repro.sim.scenario` registry (network builder + workload as
    plain data); this function materialises the specs and returns the
    same tuples as before, bit-for-bit.

    ``large=True`` switches to networks with hundreds of nodes and request
    sequences with tens of thousands of events, which is only affordable
    because the replay layers sit on the incremental load-state engine.
    """
    from repro.sim.scenario import build_scenario, scenario_spec

    scenarios = []
    for name in ("zipf", "adversarial", "phase-shift"):
        spec = scenario_spec(name, seed=seed, small=small, large=large)
        (built,) = build_scenario(spec)
        scenarios.append((name, built.network, built.sequence))
    return scenarios


def experiment_online_streaming(
    seed: int = 0,
    small: bool = False,
    large: bool = False,
    object_size: int = 4,
    trajectory_samples: int = 4,
) -> List[Dict[str, object]]:
    """E9: stream request traces through the online strategies.

    For every scenario the standard strategy set (hindsight-static
    reference with vectorized batch replay, adaptive edge-counter,
    never-adapting first-touch) serves the sequence on the incremental
    load-state substrate; the edge-counter row additionally reports its
    congestion trajectory at ``trajectory_samples`` evenly spaced points
    (the streaming read pattern that requires the lazily-repaired running
    max).
    """
    records: List[Dict[str, object]] = []
    for name, net, seq in streaming_scenario_suite(seed=seed, small=small, large=large):
        runs = evaluate_strategies(net, seq, object_size=object_size)
        by_name = {rec.strategy: rec for rec in runs}
        static = by_name["hindsight-static"]
        for rec in runs:
            row = rec.as_dict()
            row["scenario"] = name
            row["n_events"] = len(seq)
            row["ratio_vs_static"] = (
                rec.congestion / static.congestion if static.congestion > 0 else 1.0
            )
            records.append(row)

        sample_every = max(1, len(seq) // max(1, trajectory_samples))
        trajectory = congestion_trajectory(
            EdgeCounterManager(net, seq.n_objects, object_size=object_size),
            seq,
            sample_every=sample_every,
        )
        records.append(
            {
                "scenario": name,
                "strategy": "edge-counter/trajectory",
                "n_events": len(seq),
                "congestion": float(trajectory[-1]),
                # keep the LAST samples so the list always ends at the
                # row's final congestion (the sampler appends a forced
                # final point when len(seq) % sample_every != 0)
                "trajectory": [float(x) for x in trajectory[-trajectory_samples:]],
                "monotone": bool(np.all(np.diff(trajectory) >= -1e-9)),
            }
        )
    return records


# --------------------------------------------------------------------------- #
# E10 -- topology churn (mutable bus networks, incremental substrate repair)
# --------------------------------------------------------------------------- #
def churn_scenario_suite(
    seed: int = 0,
    small: bool = False,
    large: bool = False,
    names: Optional[Sequence[str]] = None,
):
    """Labelled ``(name, network, sequence, trace)`` churn scenarios for E10.

    Four churn regimes over the streaming workload families:

    * ``flash-crowd`` -- a burst of new processors joins a third of the way
      into a Zipf trace; the newcomers then issue their own (reference-id
      addressed) read requests against the popular objects;
    * ``maintenance`` -- processors leave at a fixed cadence during a
      subtree-local trace (stranded copies re-home via nearest-copy);
    * ``degradation`` -- trunk and bus bandwidths decay under a hotspot
      trace (loads untouched, congestion climbs through the denominators);
    * ``storm`` -- a seeded mix of every mutation kind, including bus
      splits, through a Zipf trace.

    ``names`` restricts construction to the listed scenarios (the CLI
    replays one at a time); every scenario is seeded independently, so a
    filtered suite is identical to the matching slice of the full one.
    """
    from repro.sim.scenario import build_scenario, scenario_spec

    wanted = ("flash-crowd", "maintenance", "degradation", "storm")
    if names is not None:
        unknown = [n for n in names if n not in wanted]
        if unknown:
            raise KeyError(f"unknown churn scenarios: {unknown}")
        wanted = tuple(n for n in wanted if n in set(names))

    scenarios = []
    for name in wanted:
        spec = scenario_spec(name, seed=seed, small=small, large=large)
        (built,) = build_scenario(spec)
        scenarios.append((name, built.network, built.sequence, built.trace))
    return scenarios


def replay_churn_scenario(
    net,
    seq,
    trace,
    object_size: int = 4,
    trajectory_samples: int = 4,
) -> List[Dict[str, object]]:
    """Replay one churn scenario through the standard strategy pair.

    The static reference (extended nibble on the base-network aggregate,
    holders remapped and re-homed across mutations) and the adaptive
    edge-counter strategy both serve the sequence on the incrementally
    repaired load-state substrate.  Each record carries the served/dropped
    split, the mutation count, the sampled congestion trajectory and a
    substrate self-check (incremental bus loads equal a from-scratch
    recomputation after all repairs).  Shared by E10 and ``repro churn``.
    """
    strategies = {
        "hindsight-static": lambda: hindsight_static_manager(net, seq),
        "edge-counter": lambda: EdgeCounterManager(
            net, seq.n_objects, object_size=object_size
        ),
    }
    records: List[Dict[str, object]] = []
    for sname, factory in strategies.items():
        result = replay_with_churn(
            factory(),
            seq,
            trace,
            sample_every=max(1, len(seq) // max(1, trajectory_samples)),
        )
        records.append(
            {
                "strategy": sname,
                "n_events": len(seq),
                "served": result.served,
                "dropped": result.dropped,
                "n_mutations": result.n_mutations,
                "congestion": float(result.congestion),
                "total_load": float(result.account.total_load),
                "n_processors_final": result.network.n_processors,
                "trajectory": [
                    float(x) for x in result.trajectory[-trajectory_samples:]
                ],
                "repair_consistent": bool(result.account.state.verify_bus_loads()),
            }
        )
    return records


def experiment_topology_churn(
    seed: int = 0,
    small: bool = False,
    large: bool = False,
    object_size: int = 4,
    trajectory_samples: int = 4,
) -> List[Dict[str, object]]:
    """E10: stream request traces through mutation storms.

    Every scenario of :func:`churn_scenario_suite` is replayed through
    :func:`replay_churn_scenario` (static reference + adaptive
    edge-counter on the incrementally repaired substrate).
    """
    records: List[Dict[str, object]] = []
    for name, net, seq, trace in churn_scenario_suite(seed=seed, small=small, large=large):
        for rec in replay_churn_scenario(
            net, seq, trace,
            object_size=object_size, trajectory_samples=trajectory_samples,
        ):
            records.append({"scenario": name, **rec})
    return records


# --------------------------------------------------------------------------- #
# E11 -- the declarative scenario registry (simulation kernel)
# --------------------------------------------------------------------------- #
def experiment_scenario_registry(
    seed: int = 0,
    small: bool = False,
    large: bool = False,
) -> List[Dict[str, object]]:
    """E11: the new scenario families, declared and replayed via the kernel.

    Exercises the :mod:`repro.sim` stack end-to-end: every scenario is a
    declarative :class:`~repro.sim.scenario.ScenarioSpec` (round-tripped
    through JSON first, so the serialised form is what actually runs),
    materialised by the registry and driven through the
    :class:`~repro.sim.engine.SimulationEngine` with trajectory, cost and
    drop sinks attached:

    * ``adversarial-storm`` -- a mutation storm under write-heavy
      bisection traffic (churn and adversarial workload together);
    * ``flash-crowd-recovery`` -- a multi-phase flash crowd that arrives,
      issues reads and then departs again (late requests drop);
    * ``fleet-sweep`` -- one Zipf workload swept over a fleet of network
      sizes.
    """
    from repro.sim.scenario import ScenarioSpec, run_scenario, scenario_spec

    records: List[Dict[str, object]] = []
    for name in ("adversarial-storm", "flash-crowd-recovery", "fleet-sweep"):
        spec = scenario_spec(name, seed=seed, small=small, large=large)
        spec = ScenarioSpec.from_json(spec.to_json())  # prove the JSON path
        records.extend(run_scenario(spec))
    return records
