"""Version information for the :mod:`repro` package."""

from __future__ import annotations

__all__ = ["__version__", "PAPER", "version_info"]

#: Package version.  Kept in sync with ``pyproject.toml`` manually.
__version__ = "1.0.0"

#: Bibliographic reference of the reproduced paper.
PAPER = (
    "F. Meyer auf der Heide, H. Raecke, M. Westermann: "
    "Data Management in Hierarchical Bus Networks. SPAA 2000."
)


def version_info() -> tuple[int, int, int]:
    """Return the version as an ``(major, minor, patch)`` tuple of ints."""
    major, minor, patch = (int(part) for part in __version__.split("."))
    return major, minor, patch
