"""Event timelines: the one ordering every replay loop shares.

A request/churn simulation is an ordered walk through two kinds of
timeline items:

* :class:`ServeSpan` -- a half-open range ``[start, stop)`` of request
  events served without interruption (the vectorized chunk fast path);
* :class:`MutationPoint` -- a topology mutation applied *before* the
  request at its scheduled time (the contract of
  :class:`~repro.network.mutation.ChurnTrace`).

:func:`merge_timeline` builds that ordering deterministically from a
sequence length, a churn trace and a set of extra boundaries (chunk grid,
metrics sample points).  The engine walks the result in order; no replay
layer re-implements the interleaving rules.  (The store-and-forward round
replay has no request timeline -- its scheduler feeds per-round delivery
batches straight into :class:`~repro.sim.engine.RoundReplayDriver`.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Union

from repro.network.mutation import ChurnTrace, Mutation

__all__ = ["ServeSpan", "MutationPoint", "TimelineItem", "merge_timeline"]


@dataclass(frozen=True)
class ServeSpan:
    """Serve the request events ``[start, stop)`` with no interruption."""

    start: int
    stop: int


@dataclass(frozen=True)
class MutationPoint:
    """Apply ``mutation``; scheduled before the request at index ``time``."""

    time: int
    mutation: Mutation


TimelineItem = Union[ServeSpan, MutationPoint]


def merge_timeline(
    n_events: int,
    trace: Optional[ChurnTrace] = None,
    chunk_size: Optional[int] = None,
    boundaries: Iterable[int] = (),
) -> List[TimelineItem]:
    """Merge requests, churn and boundary hints into one ordered timeline.

    Parameters
    ----------
    n_events:
        Length of the request sequence.
    trace:
        Optional churn trace; every mutation scheduled at time ``t`` is
        placed before the request at position ``t`` (ties keep trace
        order), and mutations scheduled at or past ``n_events`` land after
        the final serve span, in schedule order.
    chunk_size:
        Optional upper bound on serve-span length (the batch replay grid:
        spans break at multiples of ``chunk_size`` counted from 0).
    boundaries:
        Extra positions at which serve spans must break (metrics sample
        points).  Out-of-range values are ignored.

    Returns
    -------
    list of TimelineItem
        Ordered :class:`MutationPoint` / :class:`ServeSpan` items covering
        exactly the events ``0 .. n_events`` and every trace mutation.
    """
    cuts = {0, n_events}
    for b in boundaries:
        if 0 < b < n_events:
            cuts.add(int(b))
    if chunk_size is not None:
        for b in range(chunk_size, n_events, chunk_size):
            cuts.add(b)

    timed = list(trace.events) if trace is not None else []
    for ev in timed:
        if 0 < ev.time < n_events:
            cuts.add(int(ev.time))

    items: List[TimelineItem] = []
    order = sorted(cuts)
    ti = 0

    def flush_mutations(now: int) -> None:
        nonlocal ti
        while ti < len(timed) and timed[ti].time <= now:
            items.append(MutationPoint(timed[ti].time, timed[ti].mutation))
            ti += 1

    for start, stop in zip(order, order[1:]):
        flush_mutations(start)
        items.append(ServeSpan(start, stop))
    # mutations scheduled during or after the last position (including all
    # of them when the sequence is empty)
    flush_mutations(max(n_events, timed[-1].time if timed else 0))
    return items
