"""Unified simulation kernel: one event-timeline engine behind every replay.

Before this package, every layer that replayed traffic carried its own
event loop: the online batch replay of :mod:`repro.dynamic.online`, the
trajectory sampler of :mod:`repro.dynamic.evaluate`, the request/churn
interleaver of :mod:`repro.dynamic.churn` and the round replay of
:mod:`repro.distributed.request_sim` all re-implemented chunking, mutation
handling and metrics bookkeeping.  ``repro.sim`` collapses them onto one
kernel, the same way the load-state refactor collapsed the cost
bookkeeping onto one substrate:

* :mod:`repro.sim.timeline` merges a request sequence and an optional
  churn trace into a single ordered timeline of serve spans and mutation
  points;
* :mod:`repro.sim.protocol` is the formal :class:`PlacementStrategy`
  protocol (``serve`` / ``serve_chunk`` / ``apply_mutation`` /
  ``holders``) every strategy is driven through;
* :mod:`repro.sim.engine` is the :class:`SimulationEngine` that drives a
  strategy through a timeline, staying on the vectorized chunk fast path
  between interleaved mutations, with reference-id remapping and
  dropped-request accounting when topology churn renumbers processors;
* :mod:`repro.sim.sinks` are the pluggable :class:`MetricsSink`\\ s
  (congestion trajectory, per-round stats, drop accounting, cost
  breakdown) the engine emits through;
* :mod:`repro.sim.scenario` is the declarative :class:`ScenarioSpec`
  registry: network builder + workload + churn + strategies + sinks from
  a plain dict / JSON document, runnable via ``repro simulate``.

All four legacy replay entry points are now thin adapters over this
kernel with bit-for-bit identical results (pinned by
``tests/properties/test_sim_kernel.py``).
"""

from repro.sim.engine import RoundReplayDriver, SimulationEngine, SimulationResult
from repro.sim.protocol import PlacementStrategy, fleet_groups, validate_strategy
from repro.sim.scenario import (
    SCENARIO_FAMILIES,
    BuiltScenario,
    ScenarioSpec,
    build_scenario,
    list_scenarios,
    register_scenario,
    run_scenario,
    scenario_spec,
)
from repro.sim.sinks import (
    CostBreakdownSink,
    DropAccountingSink,
    MetricsSink,
    RoundStatsSink,
    TrajectorySink,
)
from repro.sim.timeline import MutationPoint, ServeSpan, merge_timeline

__all__ = [
    "SimulationEngine",
    "SimulationResult",
    "RoundReplayDriver",
    "PlacementStrategy",
    "fleet_groups",
    "validate_strategy",
    "MetricsSink",
    "TrajectorySink",
    "RoundStatsSink",
    "DropAccountingSink",
    "CostBreakdownSink",
    "ServeSpan",
    "MutationPoint",
    "merge_timeline",
    "ScenarioSpec",
    "BuiltScenario",
    "SCENARIO_FAMILIES",
    "scenario_spec",
    "build_scenario",
    "run_scenario",
    "register_scenario",
    "list_scenarios",
]
